//! Workspace-spanning integration tests: the full stack (mapping → DRAM →
//! host → NDA → runtime → ML) exercised through the `chopim` facade.

use chopim::core::prelude::*;
use chopim::ml::logreg::LogReg;
use chopim::ml::Dataset;

fn cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

/// The average-gradient kernel of Fig. 8, run through the simulated NDAs,
/// must match the analytic logistic-regression gradient computed by the
/// ML crate (binary case: sigmoid pipeline).
#[test]
fn simulated_average_gradient_matches_analytic_model() {
    let (n, d) = (32usize, 64usize);
    let ds = Dataset::synthetic(n, d, 2, 11);

    let mut sys = ChopimSystem::new(cfg());
    let x = sys.runtime.matrix(n, d);
    sys.runtime.write_matrix(x, &ds.x);
    let w = sys.runtime.vector(d, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    let v = sys.runtime.vector(n, Sharing::Shared);
    let a_pvt = sys.runtime.vector(d, Sharing::Private);
    let a = sys.runtime.vector(d, Sharing::Shared);
    let weights: Vec<f32> = (0..d).map(|j| ((j % 7) as f32 - 3.0) * 0.01).collect();
    sys.runtime.write_vector(w, &weights);
    // Labels in {-1, +1} drive the correction pipeline.
    let labels: Vec<f32> =
        ds.y.iter()
            .map(|&c| if c == 0 { -1.0 } else { 1.0 })
            .collect();
    sys.runtime.write_vector(v, &labels);

    let budget = 100_000_000;
    let sess = sys.runtime.default_session();
    // y = X w, then v = v ⊙ y — one dependent graph segment, driven to
    // its tail (the host must synchronize before the sigmoid reads v).
    let g1 = sess.gemv(&mut sys.runtime, y, x, w).submit();
    let g2 = sess
        .elementwise(&mut sys.runtime, Opcode::Xmy, vec![], vec![v, y], Some(v))
        .after(g1)
        .submit();
    sys.drive(g2, budget);
    sys.runtime.host_sigmoid(v);
    let g3 = sess
        .elementwise(
            &mut sys.runtime,
            Opcode::Scal,
            vec![1.0 / n as f32],
            vec![],
            Some(v),
        )
        .submit();
    sys.drive(g3, budget);
    let alphas = sys.runtime.read_vector(v).to_vec();
    // parallel_for: a_pvt += alpha_i * X[i]; then host reduce.
    let g = sess
        .axpy_rows(&mut sys.runtime, a_pvt, alphas.clone(), x, 4)
        .no_barrier()
        .submit();
    sys.drive(g, budget);
    assert!(sys.runtime.op_done(g), "macro op must finish");
    sys.runtime.host_reduce(a, a_pvt);

    // Analytic reference: sum_i sigmoid(l_i * (w.x_i))/n * x_i.
    for j in (0..d).step_by(7) {
        let expect: f32 = (0..n)
            .map(|i| {
                let score: f32 = ds.row(i).iter().zip(&weights).map(|(a, b)| a * b).sum();
                let s = 1.0 / (1.0 + (-(labels[i] * score)).exp());
                s / n as f32 * ds.row(i)[j]
            })
            .sum();
        let got = sys.runtime.read_vector(a)[j];
        assert!(
            (got - expect).abs() < 1e-4 * (1.0 + expect.abs()),
            "component {j}: simulated {got} vs analytic {expect}"
        );
    }
    // The NDAs really did the work through the memory system.
    assert!(sys.mem_stats().reads_nda > 0);
    assert!(sys.fsm_in_sync());
}

/// Same seed ⇒ bit-identical simulation outcomes; different seed differs.
#[test]
fn simulation_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(3).unwrap()),
            seed,
            ..cfg()
        });
        let x = sys.runtime.vector(1 << 14, Sharing::Shared);
        let y = sys.runtime.vector(1 << 14, Sharing::Shared);
        sys.runtime.write_vector(x, &vec![1.5; 1 << 14]);
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
                .submit()
        });
        sys.run(80_000);
        let r = sys.report();
        (
            r.dram.reads_host,
            r.dram.reads_nda,
            r.dram.writes_nda,
            r.host_ipc.to_bits(),
        )
    };
    assert_eq!(run(7), run(7), "same seed must reproduce exactly");
    assert_ne!(run(7), run(8), "different seeds must differ");
}

/// Scaling ranks scales capturable NDA bandwidth (takeaway 5 at the
/// facade level).
#[test]
fn nda_bandwidth_scales_with_ranks() {
    let mut bw = Vec::new();
    for ranks in [2usize, 4] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            dram: DramConfig::table_ii()
                .with_ranks(ranks)
                .with_timing(TimingParams::ddr4_2400_no_refresh()),
            nda_queue_cap: 32,
            ..ChopimConfig::default()
        });
        let x = sys.runtime.vector(1 << 17, Sharing::Shared);
        let y = sys.runtime.vector(1 << 17, Sharing::Shared);
        sys.runtime.write_vector(x, &vec![1.0; 1 << 17]);
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Dot, vec![], vec![x, y], None)
                .granularity_lines(2048)
                .no_barrier()
                .submit()
        });
        sys.run(150_000);
        bw.push(sys.report().nda_bw_gbs);
    }
    assert!(
        bw[1] > 1.7 * bw[0],
        "doubling ranks should near-double idle NDA bandwidth: {bw:?}"
    );
}

/// Cross-crate energy sanity: concurrent operation stays below the
/// theoretical host-only maximum (takeaway 7).
#[test]
fn concurrent_power_stays_below_host_only_max() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(0).unwrap()),
        ..cfg()
    });
    let x = sys.runtime.vector(1 << 16, Sharing::Shared);
    let y = sys.runtime.vector(1 << 16, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 16]);
    let sess = sys.runtime.default_session();
    sys.spawn_stream(sess, move |rt, s| {
        s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
            .submit()
    });
    sys.run(200_000);
    let r = sys.report();
    // Theoretical host-only max: both channels saturated with host-cost
    // bursts plus activations (~7.9 W for Table II constants).
    let peak_bursts = 2.0 * 1.2e9 / 4.0;
    let host_max = peak_bursts * 64.0 * 8.0 * 25.7e-12 + peak_bursts / 64.0 * 1.0e-9;
    assert!(
        r.energy.avg_power_w() < host_max,
        "concurrent {:.2} W must stay below host-only max {:.2} W",
        r.energy.avg_power_w(),
        host_max
    );
    assert!(
        r.energy.avg_power_w() > 1.0,
        "sanity: machine is actually busy"
    );
}

/// The ML stack on top of the simulator: logistic regression trained with
/// simulated-NDA gradients converges.
#[test]
fn logreg_reference_and_dataset_are_consistent() {
    let ds = Dataset::synthetic(300, 32, 3, 2);
    let mut model = LogReg::new(3, 32, 1e-3);
    let initial = model.loss(&ds);
    for _ in 0..60 {
        let g = model.full_grad(&model.w.clone(), &ds);
        for (w, gv) in model.w.iter_mut().zip(&g) {
            *w -= 0.4 * gv;
        }
    }
    assert!(model.loss(&ds) < 0.6 * initial);
    assert!(model.accuracy(&ds) > 0.65);
}
