//! # chopim — facade crate
//!
//! Reproduction of "Near Data Acceleration with Concurrent Host Access"
//! (Cho, Kwon, Lym, Erez — ISCA 2020). This crate re-exports the whole
//! workspace so examples, integration tests, and downstream users have a
//! single dependency:
//!
//! * [`dram`] — cycle-level DDR4 device/channel timing model,
//! * [`mapping`] — XOR-hash address mapping, bank partitioning, OS
//!   coloring/allocation, chip data layout,
//! * [`host`] — multi-core out-of-order host model with SPEC-like mixes,
//! * [`nda`] — near-data accelerator PEs, microcode, write buffer, FSMs,
//! * [`core`] — the Chopim system: FR-FCFS host controller, NDA issue
//!   policies, replicated FSM coordination, runtime/API, energy model,
//! * [`ml`] — SVRG logistic regression (host-only / accelerated /
//!   delayed-update), CG and streamcluster drivers,
//! * [`exp`] — the experiment subsystem: declarative [`exp::ScenarioSpec`]s,
//!   cartesian sweep grids, and the deterministic parallel
//!   [`exp::SweepRunner`] every figure bench runs on.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

pub use chopim_core as core;
pub use chopim_dram as dram;
pub use chopim_exp as exp;
pub use chopim_host as host;
pub use chopim_mapping as mapping;
pub use chopim_ml as ml;
pub use chopim_nda as nda;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use chopim_core::prelude::*;
    pub use chopim_dram::{DramConfig, TimingParams};
    pub use chopim_exp::prelude::*;
    pub use chopim_host::MixId;
}
