//! Property tests of the out-of-order core model: structural invariants
//! that must hold for any profile, latency, and admission behavior.

use chopim_host::{CoreConfig, MemRequest, MixId, OooCore, WorkloadProfile};
use proptest::prelude::*;
use std::collections::VecDeque;

fn profiles() -> Vec<WorkloadProfile> {
    MixId::new(0).unwrap().profiles()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IPC never exceeds the issue width, retired count is monotone, and
    /// outstanding misses never exceed the MSHR count — for any profile,
    /// memory latency, and random admission stalls.
    #[test]
    fn prop_core_invariants(
        profile_idx in 0usize..8,
        latency in 10u64..500,
        accept_mod in 1u64..5,
        cycles in 500u64..4000,
    ) {
        let profile = profiles()[profile_idx];
        let cfg = CoreConfig::default();
        let mut core = OooCore::new(cfg, profile, 42);
        let mut in_flight: VecDeque<(u64, u64)> = VecDeque::new();
        let mut last_retired = 0;
        for now in 0..cycles {
            while let Some(&(ready, id)) = in_flight.front() {
                if ready <= now {
                    in_flight.pop_front();
                    core.fill(id);
                } else {
                    break;
                }
            }
            let mut sink = |r: MemRequest| {
                if now % accept_mod == 0 {
                    return false; // queue-full stall
                }
                if !r.is_write {
                    in_flight.push_back((now + latency, r.id));
                }
                true
            };
            core.cpu_cycle(&mut sink);
            prop_assert!(core.outstanding_misses() <= cfg.mshrs);
            prop_assert!(core.retired_instructions() >= last_retired);
            last_retired = core.retired_instructions();
        }
        let ipc = core.ipc();
        prop_assert!(ipc <= cfg.issue_width as f64 + 1e-9, "ipc {}", ipc);
        // Reads the memory saw are exactly the fills owed plus delivered.
        prop_assert!(core.reads_sent() as usize >= in_flight.len());
    }

    /// Line addresses always stay within the profile's footprint.
    #[test]
    fn prop_addresses_within_footprint(profile_idx in 0usize..8, seed in any::<u64>()) {
        let profile = profiles()[profile_idx];
        let mut core = OooCore::new(CoreConfig::default(), profile, seed);
        let footprint = profile.footprint_lines();
        let mut ids = Vec::new();
        let mut worst: Option<u64> = None;
        for _ in 0..2000 {
            let mut sink = |r: MemRequest| {
                if r.line >= footprint {
                    worst = Some(r.line);
                }
                if !r.is_write {
                    ids.push(r.id);
                }
                true
            };
            core.cpu_cycle(&mut sink);
            for id in ids.drain(..) {
                core.fill(id);
            }
        }
        prop_assert_eq!(worst, None, "line escaped footprint {}", footprint);
    }

    /// Whenever a core reports `is_inert`, bulk-advancing it must be
    /// indistinguishable from stepping it cycle by cycle: no memory
    /// request may escape (the sink panics), every counter must match,
    /// and post-wake behavior must be identical.
    #[test]
    fn prop_inert_advance_matches_single_cycles(
        profile_idx in 0usize..8,
        n in 1u64..5000,
        seed in any::<u64>(),
    ) {
        let profile = profiles()[profile_idx];
        let mut core = OooCore::new(CoreConfig::default(), profile, seed);
        // Drive against a never-filling memory until the core freezes.
        let mut pending: Vec<u64> = Vec::new();
        for _ in 0..3000 {
            let mut sink = |r: MemRequest| {
                if !r.is_write {
                    pending.push(r.id);
                }
                true
            };
            core.cpu_cycle(&mut sink);
            if core.is_inert() {
                break;
            }
        }
        prop_assume!(core.is_inert());
        let mut stepped = core.clone();
        let mut bulk = core.clone();
        for _ in 0..n {
            stepped.cpu_cycle(&mut |_| panic!("inert core sent a request"));
        }
        bulk.advance_inert(n);
        prop_assert_eq!(stepped.cycles(), bulk.cycles());
        prop_assert_eq!(stepped.retired_instructions(), bulk.retired_instructions());
        prop_assert_eq!(stepped.reads_sent(), bulk.reads_sent());
        prop_assert_eq!(stepped.writes_sent(), bulk.writes_sent());
        prop_assert_eq!(stepped.outstanding_misses(), bulk.outstanding_misses());
        prop_assert!(bulk.is_inert(), "inertness is stable without fills");
        // Wake both with the same fills and drive identically: behavior
        // must stay in lockstep.
        for id in &pending {
            stepped.fill(*id);
            bulk.fill(*id);
        }
        for now in 0..200u64 {
            let mut sent_a = Vec::new();
            let mut sent_b = Vec::new();
            let mut sink_a = |r: MemRequest| {
                sent_a.push((r.line, r.is_write, r.id));
                now % 3 != 0
            };
            stepped.cpu_cycle(&mut sink_a);
            let mut sink_b = |r: MemRequest| {
                sent_b.push((r.line, r.is_write, r.id));
                now % 3 != 0
            };
            bulk.cpu_cycle(&mut sink_b);
            prop_assert_eq!(&sent_a, &sent_b, "diverged at wake cycle {}", now);
        }
        prop_assert_eq!(stepped.retired_instructions(), bulk.retired_instructions());
        prop_assert_eq!(stepped.ipc(), bulk.ipc());
    }

    /// Request ids of reads are unique.
    #[test]
    fn prop_read_ids_unique(seed in any::<u64>()) {
        let mut core = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), seed);
        let mut seen = std::collections::HashSet::new();
        let mut pending = Vec::new();
        let mut dup = None;
        for _ in 0..3000 {
            let mut sink = |r: MemRequest| {
                if !r.is_write {
                    if !seen.insert(r.id) {
                        dup = Some(r.id);
                    }
                    pending.push(r.id);
                }
                true
            };
            core.cpu_cycle(&mut sink);
            for id in pending.drain(..) {
                core.fill(id);
            }
        }
        prop_assert_eq!(dup, None, "duplicate read id");
    }
}

/// Per-mix aggregate sanity: under a fixed-latency memory, the mixes
/// order by intensity (lighter mixes retire more instructions).
#[test]
fn mixes_order_by_intensity_under_equal_memory() {
    let mut totals = Vec::new();
    for mix in [MixId::new(1).unwrap(), MixId::new(8).unwrap()] {
        let mut cores: Vec<OooCore> = mix
            .profiles()
            .into_iter()
            .enumerate()
            .map(|(i, p)| OooCore::new(CoreConfig::default(), p, i as u64))
            .collect();
        let mut in_flight: VecDeque<(u64, usize, u64)> = VecDeque::new();
        for now in 0..30_000u64 {
            while let Some(&(ready, c, id)) = in_flight.front() {
                if ready <= now {
                    in_flight.pop_front();
                    cores[c].fill(id);
                } else {
                    break;
                }
            }
            for (c, core) in cores.iter_mut().enumerate() {
                let mut sink = |r: MemRequest| {
                    if !r.is_write {
                        in_flight.push_back((now + 120, c, r.id));
                    }
                    true
                };
                core.cpu_cycle(&mut sink);
            }
            in_flight.make_contiguous().sort_unstable();
        }
        totals.push(cores.iter().map(|c| c.retired_instructions()).sum::<u64>());
    }
    assert!(
        totals[1] > totals[0],
        "mix8 must out-retire mix1: {totals:?}"
    );
}
