//! The out-of-order core model.
//!
//! A classic ROB-window abstraction: instructions dispatch in order into a
//! reorder buffer at `issue_width` per cycle, LLC misses occupy an entry
//! (and an MSHR) until their fill returns, and retirement is in-order at
//! `retire_width`. Memory-level parallelism, bandwidth/latency sensitivity,
//! and the bursty rank-idle structure of Fig. 2 all emerge from the window
//! mechanics — which is what the Chopim mechanisms interact with.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::WorkloadProfile;

/// Core microarchitecture parameters (Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Dispatch width (instructions per CPU cycle).
    pub issue_width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// Outstanding LLC misses per core (L1/L2 MSHRs).
    pub mshrs: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        // 4 GHz OoO x86: Fetch/Issue 8, ROB 224, 12 MSHRs (Table II).
        Self {
            rob_entries: 224,
            issue_width: 8,
            retire_width: 8,
            mshrs: 12,
        }
    }
}

/// A memory request leaving the core: a cache-line index *within the
/// core's footprint* (the system maps it to a physical address), plus a
/// unique id for read fills. Writes are posted writebacks and receive no
/// fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Line index within the core's working set.
    pub line: u64,
    /// True for a dirty writeback.
    pub is_write: bool,
    /// Core-unique request id (reads only need it).
    pub id: u64,
}

#[derive(Debug, Clone, Copy)]
enum RobSlot {
    /// A batch of non-memory instructions.
    Insts(u32),
    /// An LLC miss waiting for its fill.
    Miss { id: u64 },
}

/// One out-of-order core running a synthetic workload profile.
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CoreConfig,
    profile: WorkloadProfile,
    rng: StdRng,
    rob: VecDeque<RobSlot>,
    rob_occupancy: usize,
    /// Returned fills not yet retired. Bounded by the MSHR count (~12),
    /// so a flat vector beats hashing on the per-cycle retire path.
    filled: Vec<u64>,
    outstanding: usize,
    next_id: u64,
    until_next_miss: u64,
    stream_pos: u64,
    stream_left: u64,
    pending_wb: Option<MemRequest>,
    retired: u64,
    cycles: u64,
    reads_sent: u64,
    writes_sent: u64,
    dispatch_stall_cycles: u64,
}

impl OooCore {
    /// A core running `profile`, with deterministic behavior per `seed`.
    pub fn new(cfg: CoreConfig, profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_c0de);
        let first_gap = Self::sample_exp(&mut rng, profile.instructions_per_miss());
        Self {
            cfg,
            profile,
            rng,
            rob: VecDeque::with_capacity(64),
            rob_occupancy: 0,
            filled: Vec::new(),
            outstanding: 0,
            next_id: 0,
            until_next_miss: first_gap,
            stream_pos: 0,
            stream_left: 0,
            pending_wb: None,
            retired: 0,
            cycles: 0,
            reads_sent: 0,
            writes_sent: 0,
            dispatch_stall_cycles: 0,
        }
    }

    fn sample_exp(rng: &mut StdRng, mean: f64) -> u64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        (-u.ln() * mean) as u64
    }

    fn next_line(&mut self) -> u64 {
        let footprint = self.profile.footprint_lines().max(1);
        if self.stream_left == 0 {
            self.stream_pos = self.rng.gen_range(0..footprint);
            let run = Self::sample_exp(&mut self.rng, self.profile.run_length).max(1);
            self.stream_left = run;
        }
        let line = self.stream_pos % footprint;
        self.stream_pos += 1;
        self.stream_left -= 1;
        line
    }

    /// Advance the core by one CPU cycle. `try_send` is the memory
    /// subsystem's admission function: it returns `false` when queues are
    /// full, stalling dispatch.
    pub fn cpu_cycle(&mut self, try_send: &mut dyn FnMut(MemRequest) -> bool) {
        self.cycles += 1;

        // Retry a deferred writeback before anything else.
        if let Some(wb) = self.pending_wb.take() {
            if !try_send(wb) {
                self.pending_wb = Some(wb);
            } else {
                self.writes_sent += 1;
            }
        }

        // In-order retire.
        let mut budget = self.cfg.retire_width as u32;
        while budget > 0 {
            match self.rob.front_mut() {
                Some(RobSlot::Insts(n)) => {
                    let k = (*n).min(budget);
                    *n -= k;
                    budget -= k;
                    self.retired += u64::from(k);
                    self.rob_occupancy -= k as usize;
                    if *n == 0 {
                        self.rob.pop_front();
                    }
                }
                Some(RobSlot::Miss { id }) => {
                    let id = *id;
                    if let Some(pos) = self.filled.iter().position(|&f| f == id) {
                        self.filled.swap_remove(pos);
                        self.rob.pop_front();
                        self.rob_occupancy -= 1;
                        self.retired += 1;
                        budget -= 1;
                    } else {
                        break; // head-of-ROB miss stalls retirement
                    }
                }
                None => break,
            }
        }

        // In-order dispatch.
        let mut budget = self.cfg.issue_width as u32;
        let mut stalled = false;
        while budget > 0 && self.rob_occupancy < self.cfg.rob_entries {
            if self.until_next_miss == 0 {
                if self.outstanding >= self.cfg.mshrs {
                    stalled = true;
                    break;
                }
                let line = self.next_line();
                let id = self.next_id;
                if !try_send(MemRequest {
                    line,
                    is_write: false,
                    id,
                }) {
                    stalled = true;
                    break;
                }
                self.next_id += 1;
                self.reads_sent += 1;
                self.outstanding += 1;
                self.rob.push_back(RobSlot::Miss { id });
                self.rob_occupancy += 1;
                budget -= 1;
                self.until_next_miss =
                    Self::sample_exp(&mut self.rng, self.profile.instructions_per_miss());
                // Dirty eviction trails the read stream.
                if self.pending_wb.is_none() && self.rng.gen_bool(self.profile.writeback_ratio) {
                    let footprint = self.profile.footprint_lines().max(1);
                    let wb_line = line.wrapping_sub(128) % footprint;
                    let wb = MemRequest {
                        line: wb_line,
                        is_write: true,
                        id: u64::MAX,
                    };
                    if try_send(wb) {
                        self.writes_sent += 1;
                    } else {
                        self.pending_wb = Some(wb);
                    }
                }
            } else {
                let space = (self.cfg.rob_entries - self.rob_occupancy) as u64;
                let k = u64::from(budget).min(self.until_next_miss).min(space) as u32;
                if let Some(RobSlot::Insts(n)) = self.rob.back_mut() {
                    *n += k;
                } else {
                    self.rob.push_back(RobSlot::Insts(k));
                }
                self.rob_occupancy += k as usize;
                self.until_next_miss -= u64::from(k);
                budget -= k;
            }
        }
        if stalled && self.rob_occupancy >= self.cfg.rob_entries / 2 {
            self.dispatch_stall_cycles += 1;
        }
    }

    /// True when the next `cpu_cycle` call is provably a pure
    /// counter-increment: retirement is blocked on an unfilled
    /// head-of-ROB miss, no deferred writeback is waiting, and dispatch
    /// cannot proceed without drawing randomness (ROB full, or the next
    /// miss is due but every MSHR is occupied). An inert core stays inert
    /// until a [`fill`](Self::fill) arrives, so the event-horizon loop may
    /// bulk-advance it with [`advance_inert`](Self::advance_inert).
    pub fn is_inert(&self) -> bool {
        self.pending_wb.is_none()
            && matches!(self.rob.front(), Some(RobSlot::Miss { id }) if !self.filled.contains(id))
            && (self.rob_occupancy >= self.cfg.rob_entries
                || (self.until_next_miss == 0 && self.outstanding >= self.cfg.mshrs))
    }

    /// Advance an inert core by `n` CPU cycles in one step: exactly the
    /// counter updates `n` calls to [`cpu_cycle`](Self::cpu_cycle) would
    /// make (asserted by `prop_inert_advance_matches_single_cycles`).
    ///
    /// # Panics
    ///
    /// Debug-asserts [`is_inert`](Self::is_inert).
    pub fn advance_inert(&mut self, n: u64) {
        debug_assert!(self.is_inert(), "bulk-advance of a non-inert core");
        self.cycles += n;
        // `cpu_cycle` only reaches the `stalled` path when the ROB still
        // has room; a completely full ROB skips the dispatch loop without
        // recording a stall.
        if self.rob_occupancy < self.cfg.rob_entries
            && self.rob_occupancy >= self.cfg.rob_entries / 2
        {
            self.dispatch_stall_cycles += n;
        }
    }

    /// Deliver the fill for read request `id`.
    pub fn fill(&mut self, id: u64) {
        debug_assert!(!self.filled.contains(&id), "duplicate fill for id {id}");
        self.filled.push(id);
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
    }

    /// Instructions retired so far.
    pub fn retired_instructions(&self) -> u64 {
        self.retired
    }

    /// CPU cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Misses currently in flight.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding
    }

    /// Reads sent to memory.
    pub fn reads_sent(&self) -> u64 {
        self.reads_sent
    }

    /// Writebacks sent to memory.
    pub fn writes_sent(&self) -> u64 {
        self.writes_sent
    }

    /// The profile this core runs.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Capture every mutable field as a plain-data image (snapshot
    /// support). The configuration and workload profile are not part of
    /// the image — a restore target is constructed from the same
    /// `ChopimConfig`-derived parameters and only its dynamic state is
    /// overwritten.
    #[cold]
    pub fn export_state(&self) -> OooCoreState {
        OooCoreState {
            rng: self.rng.state(),
            rob: self
                .rob
                .iter()
                .map(|s| match *s {
                    RobSlot::Insts(n) => (false, u64::from(n)),
                    RobSlot::Miss { id } => (true, id),
                })
                .collect(),
            filled: self.filled.clone(),
            outstanding: self.outstanding as u64,
            next_id: self.next_id,
            until_next_miss: self.until_next_miss,
            stream_pos: self.stream_pos,
            stream_left: self.stream_left,
            pending_wb_line: self.pending_wb.map(|wb| wb.line),
            retired: self.retired,
            cycles: self.cycles,
            reads_sent: self.reads_sent,
            writes_sent: self.writes_sent,
            dispatch_stall_cycles: self.dispatch_stall_cycles,
        }
    }

    /// Overwrite this core's mutable state from an image captured by
    /// [`export_state`](Self::export_state). ROB occupancy is recomputed
    /// from the slot list, so an image can never desynchronize the two.
    #[cold]
    pub fn import_state(&mut self, s: &OooCoreState) {
        self.rng = StdRng::from_state(s.rng);
        self.rob = s
            .rob
            .iter()
            .map(|&(is_miss, v)| {
                if is_miss {
                    RobSlot::Miss { id: v }
                } else {
                    RobSlot::Insts(v as u32)
                }
            })
            .collect();
        self.rob_occupancy = self
            .rob
            .iter()
            .map(|slot| match slot {
                RobSlot::Insts(n) => *n as usize,
                RobSlot::Miss { .. } => 1,
            })
            .sum();
        self.filled = s.filled.clone();
        self.outstanding = s.outstanding as usize;
        self.next_id = s.next_id;
        self.until_next_miss = s.until_next_miss;
        self.stream_pos = s.stream_pos;
        self.stream_left = s.stream_left;
        self.pending_wb = s.pending_wb_line.map(|line| MemRequest {
            line,
            is_write: true,
            id: u64::MAX,
        });
        self.retired = s.retired;
        self.cycles = s.cycles;
        self.reads_sent = s.reads_sent;
        self.writes_sent = s.writes_sent;
        self.dispatch_stall_cycles = s.dispatch_stall_cycles;
    }
}

/// A plain-data image of an [`OooCore`]'s mutable state.
///
/// The host crate deliberately has no dependency on the binary codec;
/// higher layers serialize this struct field by field (see
/// `docs/SNAPSHOT_FORMAT.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OooCoreState {
    /// xoshiro256++ state words of the address-generator RNG.
    pub rng: [u64; 4],
    /// ROB slots front-to-back: `(true, id)` for an outstanding miss,
    /// `(false, n)` for a batch of `n` plain instructions.
    pub rob: Vec<(bool, u64)>,
    /// Returned fills not yet retired.
    pub filled: Vec<u64>,
    /// Misses currently in flight.
    pub outstanding: u64,
    /// Next read-request id.
    pub next_id: u64,
    /// Instructions left before the next synthetic miss.
    pub until_next_miss: u64,
    /// Current position of the synthetic address stream.
    pub stream_pos: u64,
    /// Lines left in the current sequential run.
    pub stream_left: u64,
    /// Line of a deferred dirty writeback, if one is waiting to retry.
    pub pending_wb_line: Option<u64>,
    /// Instructions retired.
    pub retired: u64,
    /// CPU cycles simulated.
    pub cycles: u64,
    /// Reads sent to memory.
    pub reads_sent: u64,
    /// Writebacks sent to memory.
    pub writes_sent: u64,
    /// Cycles dispatch stalled with a half-full window.
    pub dispatch_stall_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `core` against a fixed-latency memory for `cycles` cycles.
    fn run_fixed_latency(profile: WorkloadProfile, latency: u64, cycles: u64) -> OooCore {
        let mut core = OooCore::new(CoreConfig::default(), profile, 7);
        let mut in_flight: VecDeque<(u64, u64)> = VecDeque::new();
        for now in 0..cycles {
            while let Some(&(ready, id)) = in_flight.front() {
                if ready <= now {
                    in_flight.pop_front();
                    core.fill(id);
                } else {
                    break;
                }
            }
            let mut sink = |r: MemRequest| {
                if !r.is_write {
                    in_flight.push_back((now + latency, r.id));
                }
                true
            };
            core.cpu_cycle(&mut sink);
        }
        core
    }

    #[test]
    fn low_mpki_core_approaches_issue_width() {
        let core = run_fixed_latency(WorkloadProfile::exchange2_r(), 200, 20_000);
        assert!(core.ipc() > 4.0, "ipc = {}", core.ipc());
    }

    #[test]
    fn high_mpki_core_is_memory_bound() {
        let fast = run_fixed_latency(WorkloadProfile::mcf_r(), 50, 20_000);
        let slow = run_fixed_latency(WorkloadProfile::mcf_r(), 400, 20_000);
        assert!(
            fast.ipc() > 1.5 * slow.ipc(),
            "{} vs {}",
            fast.ipc(),
            slow.ipc()
        );
        assert!(slow.ipc() < 1.0);
    }

    #[test]
    fn mpki_ordering_preserved_in_ipc() {
        let heavy = run_fixed_latency(WorkloadProfile::mcf_r(), 150, 20_000);
        let light = run_fixed_latency(WorkloadProfile::leela_r(), 150, 20_000);
        assert!(light.ipc() > heavy.ipc());
    }

    #[test]
    fn mlp_bounded_by_mshrs() {
        let mut core = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), 3);
        // Memory that never fills: outstanding must saturate at mshrs.
        for _ in 0..5_000 {
            core.cpu_cycle(&mut |_| true);
            assert!(core.outstanding_misses() <= CoreConfig::default().mshrs);
        }
        assert_eq!(core.outstanding_misses(), CoreConfig::default().mshrs);
    }

    #[test]
    fn writeback_fraction_tracks_profile() {
        let core = run_fixed_latency(WorkloadProfile::lbm_r(), 100, 100_000);
        let ratio = core.writes_sent() as f64 / core.reads_sent() as f64;
        let expect = WorkloadProfile::lbm_r().writeback_ratio;
        assert!(
            (ratio - expect).abs() < 0.1,
            "measured {ratio}, profile {expect}"
        );
    }

    #[test]
    fn rejected_requests_stall_but_do_not_lose_work() {
        let mut core = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), 11);
        // Memory rejects everything: no requests recorded, no panic.
        for _ in 0..1_000 {
            core.cpu_cycle(&mut |_| false);
        }
        assert_eq!(core.reads_sent(), 0);
        assert_eq!(core.outstanding_misses(), 0);
        // IPC limited: eventually the pending miss blocks the window.
        assert!(core.ipc() < 8.0);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = run_fixed_latency(WorkloadProfile::milc(), 100, 10_000);
        let b = run_fixed_latency(WorkloadProfile::milc(), 100, 10_000);
        assert_eq!(a.retired_instructions(), b.retired_instructions());
        assert_eq!(a.reads_sent(), b.reads_sent());
    }

    #[test]
    fn export_import_resumes_bit_identically() {
        // Drive a core half-way, image its state into a freshly
        // constructed twin, then run both against identical memories and
        // require identical request streams and counters.
        let run = |core: &mut OooCore, cycles: u64| -> Vec<MemRequest> {
            let mut sent = Vec::new();
            for _ in 0..cycles {
                let mut sink = |r: MemRequest| {
                    sent.push(r);
                    true
                };
                core.cpu_cycle(&mut sink);
                while core.outstanding_misses() > 0 {
                    let id = core.next_id - core.outstanding as u64;
                    core.fill(id);
                }
            }
            sent
        };
        let mut a = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), 13);
        run(&mut a, 5_000);
        let img = a.export_state();
        let mut b = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), 13);
        b.import_state(&img);
        assert_eq!(b.export_state(), img, "image must survive a round trip");
        let sa = run(&mut a, 5_000);
        let sb = run(&mut b, 5_000);
        assert_eq!(sa, sb);
        assert_eq!(a.retired_instructions(), b.retired_instructions());
        assert_eq!(a.ipc(), b.ipc());
    }

    #[test]
    fn streaming_profile_produces_sequential_lines() {
        let mut core = OooCore::new(CoreConfig::default(), WorkloadProfile::bwaves_r(), 5);
        let mut lines = Vec::new();
        for _ in 0..4_000 {
            let mut sink = |r: MemRequest| {
                if !r.is_write {
                    lines.push(r.line);
                }
                true
            };
            core.cpu_cycle(&mut sink);
            // Fill instantly to keep the stream going.
            while core.outstanding_misses() > 0 {
                let id = core.next_id - core.outstanding_misses() as u64;
                core.fill(id);
            }
        }
        assert!(lines.len() > 50);
        let sequential = lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            sequential as f64 / lines.len() as f64 > 0.7,
            "streaming workload should be mostly sequential ({sequential}/{})",
            lines.len()
        );
    }
}
