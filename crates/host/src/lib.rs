//! # chopim-host
//!
//! The host side of the Chopim reproduction: an out-of-order multi-core
//! model whose memory behavior is shaped per-benchmark to recreate the
//! SPEC2006/2017 application mixes of the paper's Table II.
//!
//! The paper ran gem5 with SimPoint traces; as documented in `DESIGN.md`,
//! we substitute a *ROB-window core model* fed by synthetic address
//! generators: each core dispatches instructions into a 224-entry reorder
//! buffer at 8-wide, LLC misses occupy entries until their fill returns
//! (bounded by per-core MSHRs), and retirement is in-order. This preserves
//! what the memory system sees — miss rate, memory-level parallelism,
//! read/write mix, and row locality — which is what Chopim's mechanisms
//! interact with.
//!
//! ```
//! use chopim_host::{CoreConfig, MixId, OooCore};
//!
//! let mix = MixId::new(1).unwrap();
//! let profiles = mix.profiles();
//! assert_eq!(profiles.len(), 4);
//! let mut core = OooCore::new(CoreConfig::default(), profiles[0], 42);
//! // Drive one CPU cycle with a memory system that accepts everything.
//! let mut reqs = Vec::new();
//! core.cpu_cycle(&mut |r| { reqs.push(r); true });
//! ```

#![forbid(unsafe_code)]

pub mod core;
pub mod mix;
pub mod profile;

pub use crate::core::{CoreConfig, MemRequest, OooCore, OooCoreState};
pub use crate::mix::MixId;
pub use crate::profile::{MemIntensity, WorkloadProfile};
