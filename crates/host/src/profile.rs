//! Synthetic per-benchmark memory profiles.
//!
//! Each SPEC application in Table II is represented by the parameters that
//! matter to the memory system: LLC misses per kilo-instruction (the
//! paper's H/M/L classes), writebacks per miss, average row-streaming run
//! length, and footprint. The absolute values are synthetic (we do not
//! replay SimPoints); the classes and relative orderings follow the
//! published characterizations of these benchmarks.

/// Memory-intensity class used in Table II's mix descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemIntensity {
    /// Low (< 2 MPKI).
    Low,
    /// Medium.
    Medium,
    /// High (> 15 MPKI).
    High,
}

impl std::fmt::Display for MemIntensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemIntensity::Low => "L",
            MemIntensity::Medium => "M",
            MemIntensity::High => "H",
        })
    }
}

/// The memory-system-visible behavior of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (SPEC short name).
    pub name: &'static str,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Dirty writebacks per LLC miss.
    pub writeback_ratio: f64,
    /// Mean consecutive cache lines touched before jumping (row streaming
    /// run length; 1.0 ≈ random access).
    pub run_length: f64,
    /// Working-set size in bytes.
    pub footprint_bytes: u64,
    /// Table II intensity class.
    pub intensity: MemIntensity,
}

impl WorkloadProfile {
    const fn new(
        name: &'static str,
        mpki: f64,
        writeback_ratio: f64,
        run_length: f64,
        footprint_mib: u64,
        intensity: MemIntensity,
    ) -> Self {
        Self {
            name,
            mpki,
            writeback_ratio,
            run_length,
            footprint_bytes: footprint_mib << 20,
            intensity,
        }
    }

    /// `mcf_r` — pointer-chasing, the most memory-bound SPEC int code.
    pub const fn mcf_r() -> Self {
        Self::new("mcf_r", 42.0, 0.25, 1.4, 1024, MemIntensity::High)
    }
    /// `lbm_r` — lattice-Boltzmann streaming with heavy writebacks.
    pub const fn lbm_r() -> Self {
        Self::new("lbm_r", 30.0, 0.72, 14.0, 512, MemIntensity::High)
    }
    /// `omnetpp_r` — discrete-event simulation, scattered heap traffic.
    pub const fn omnetpp_r() -> Self {
        Self::new("omnetpp_r", 24.0, 0.30, 1.8, 256, MemIntensity::High)
    }
    /// `gemsFDTD` — finite-difference stencils, streaming.
    pub const fn gems_fdtd() -> Self {
        Self::new("gemsFDTD", 21.0, 0.42, 8.0, 512, MemIntensity::High)
    }
    /// `soplex` — sparse LP solver.
    pub const fn soplex() -> Self {
        Self::new("soplex", 18.0, 0.28, 2.5, 256, MemIntensity::High)
    }
    /// `milc` — lattice QCD, medium streaming.
    pub const fn milc() -> Self {
        Self::new("milc", 13.0, 0.40, 4.0, 512, MemIntensity::Medium)
    }
    /// `bwaves_r` — blast-wave CFD, long streams.
    pub const fn bwaves_r() -> Self {
        Self::new("bwaves_r", 11.0, 0.35, 16.0, 512, MemIntensity::Medium)
    }
    /// `leslie3d` — combustion CFD.
    pub const fn leslie3d() -> Self {
        Self::new("leslie3d", 9.0, 0.38, 8.0, 256, MemIntensity::Medium)
    }
    /// `astar` — path-finding.
    pub const fn astar() -> Self {
        Self::new("astar", 6.0, 0.20, 1.6, 128, MemIntensity::Medium)
    }
    /// `cactusBSSN_r` — numerical relativity stencils.
    pub const fn cactus_bssn_r() -> Self {
        Self::new("cactusBSSN_r", 7.0, 0.45, 6.0, 512, MemIntensity::Medium)
    }
    /// `leela_r` — game tree search, cache resident.
    pub const fn leela_r() -> Self {
        Self::new("leela_r", 0.8, 0.15, 1.5, 64, MemIntensity::Low)
    }
    /// `deepsjeng_r` — chess, cache resident.
    pub const fn deepsjeng_r() -> Self {
        Self::new("deepsjeng_r", 1.0, 0.15, 1.5, 64, MemIntensity::Low)
    }
    /// `exchange2_r` — nearly no LLC misses.
    pub const fn exchange2_r() -> Self {
        Self::new("exchange2_r", 0.3, 0.10, 1.2, 32, MemIntensity::Low)
    }

    /// Footprint in cache lines.
    pub fn footprint_lines(&self) -> u64 {
        self.footprint_bytes / 64
    }

    /// Mean instructions between LLC misses.
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_classes_are_ordered_by_mpki() {
        let all = [
            WorkloadProfile::mcf_r(),
            WorkloadProfile::lbm_r(),
            WorkloadProfile::omnetpp_r(),
            WorkloadProfile::gems_fdtd(),
            WorkloadProfile::soplex(),
            WorkloadProfile::milc(),
            WorkloadProfile::bwaves_r(),
            WorkloadProfile::leslie3d(),
            WorkloadProfile::astar(),
            WorkloadProfile::cactus_bssn_r(),
            WorkloadProfile::leela_r(),
            WorkloadProfile::deepsjeng_r(),
            WorkloadProfile::exchange2_r(),
        ];
        for p in &all {
            match p.intensity {
                MemIntensity::High => assert!(p.mpki >= 15.0, "{}", p.name),
                MemIntensity::Medium => {
                    assert!((2.0..30.0).contains(&p.mpki), "{}", p.name)
                }
                MemIntensity::Low => assert!(p.mpki < 2.0, "{}", p.name),
            }
            assert!(p.run_length >= 1.0);
            assert!((0.0..=1.0).contains(&p.writeback_ratio));
            assert!(p.footprint_lines() > 0);
        }
    }

    #[test]
    fn streaming_codes_have_long_runs() {
        assert!(WorkloadProfile::lbm_r().run_length > 8.0);
        assert!(WorkloadProfile::bwaves_r().run_length > 8.0);
        assert!(WorkloadProfile::mcf_r().run_length < 2.0);
    }

    #[test]
    fn instructions_per_miss_inverts_mpki() {
        let p = WorkloadProfile::mcf_r();
        assert!((p.instructions_per_miss() - 1000.0 / 42.0).abs() < 1e-9);
    }
}
