//! The nine application mixes of Table II.

use crate::profile::WorkloadProfile;

/// Identifier of one of the paper's application mixes (`mix0`..`mix8`).
///
/// `mix0` runs 8 cores to model under-provisioned bandwidth; all others
/// run 4 cores (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MixId(usize);

impl MixId {
    /// All mixes in paper order.
    pub const ALL: [MixId; 9] = [
        MixId(0),
        MixId(1),
        MixId(2),
        MixId(3),
        MixId(4),
        MixId(5),
        MixId(6),
        MixId(7),
        MixId(8),
    ];

    /// Construct from an index in `0..9`.
    pub fn new(i: usize) -> Option<Self> {
        (i < 9).then_some(MixId(i))
    }

    /// The mix index.
    pub fn index(self) -> usize {
        self.0
    }

    /// The per-core workload profiles of this mix (Table II rows).
    pub fn profiles(self) -> Vec<WorkloadProfile> {
        use WorkloadProfile as P;
        match self.0 {
            0 => vec![
                P::mcf_r(),
                P::lbm_r(),
                P::omnetpp_r(),
                P::gems_fdtd(),
                P::bwaves_r(),
                P::milc(),
                P::soplex(),
                P::leslie3d(),
            ],
            1 => vec![P::mcf_r(), P::lbm_r(), P::omnetpp_r(), P::gems_fdtd()],
            2 => vec![P::mcf_r(), P::lbm_r(), P::gems_fdtd(), P::soplex()],
            3 => vec![P::lbm_r(), P::omnetpp_r(), P::gems_fdtd(), P::soplex()],
            4 => vec![P::omnetpp_r(), P::gems_fdtd(), P::soplex(), P::milc()],
            5 => vec![P::gems_fdtd(), P::soplex(), P::milc(), P::bwaves_r()],
            6 => vec![P::soplex(), P::milc(), P::bwaves_r(), P::leslie3d()],
            7 => vec![P::milc(), P::bwaves_r(), P::astar(), P::cactus_bssn_r()],
            8 => vec![
                P::leslie3d(),
                P::leela_r(),
                P::deepsjeng_r(),
                P::exchange2_r(),
            ],
            _ => unreachable!("MixId constructor bounds"),
        }
    }

    /// Number of cores this mix runs (8 for mix0, else 4).
    pub fn cores(self) -> usize {
        self.profiles().len()
    }

    /// Aggregate MPKI across cores, a proxy for mix memory intensity.
    pub fn total_mpki(self) -> f64 {
        self.profiles().iter().map(|p| p.mpki).sum()
    }
}

impl std::fmt::Display for MixId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mix{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix0_has_eight_cores_others_four() {
        assert_eq!(MixId::new(0).unwrap().cores(), 8);
        for i in 1..9 {
            assert_eq!(MixId::new(i).unwrap().cores(), 4, "mix{i}");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(MixId::new(9).is_none());
        assert!(MixId::new(usize::MAX).is_none());
    }

    #[test]
    fn intensity_declines_from_mix0_to_mix8() {
        // The paper orders mixes from most (mix0) to least (mix8)
        // memory-intensive; aggregate MPKI must be monotonically
        // non-increasing along mix1..mix8 and mix0 the largest.
        let mpkis: Vec<f64> = MixId::ALL.iter().map(|m| m.total_mpki()).collect();
        assert!(mpkis[0] > mpkis[1]);
        for w in mpkis[1..].windows(2) {
            assert!(w[0] >= w[1], "mix order violates intensity: {mpkis:?}");
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(MixId::new(3).unwrap().to_string(), "mix3");
    }
}
