//! Property tests of the replicated-FSM mechanism (paper §III-D): a
//! host-side shadow fed only launches and grants must stay bit-identical
//! to the rank's FSM under *any* instruction mix and grant pattern.

use std::sync::Arc;

use chopim_nda::fsm::NdaFsm;
use chopim_nda::isa::{NdaInstr, Opcode};
use chopim_nda::operand::OperandLayout;
use proptest::prelude::*;

fn layout(seed: u64) -> Arc<OperandLayout> {
    OperandLayout::rotating(16, (seed % 1000) as u32, 64, 128)
}

fn instr(kind: u8, lines: u64, id: u64) -> NdaInstr {
    let lines = lines.clamp(1, 4096);
    match kind % 4 {
        0 => NdaInstr::elementwise(Opcode::Nrm2, lines, vec![(layout(id), 0)], vec![], id),
        1 => NdaInstr::elementwise(
            Opcode::Copy,
            lines,
            vec![(layout(id), 0)],
            vec![(layout(id + 7), 0)],
            id,
        ),
        2 => NdaInstr::elementwise(
            Opcode::Axpby,
            lines,
            vec![(layout(id), 0), (layout(id + 3), 0)],
            vec![(layout(id + 9), 0)],
            id,
        ),
        _ => NdaInstr::gemv(
            (layout(id), 0, lines),
            (layout(id + 1), 0, 4),
            (layout(id + 2), 0, 2),
            id,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any launch schedule and grant pattern, the shadow FSM stays
    /// fingerprint-identical and both complete the same instructions in
    /// the same order.
    #[test]
    fn prop_shadow_never_diverges(
        ops in prop::collection::vec((any::<u8>(), 1u64..2048), 1..6),
        grants in prop::collection::vec(any::<bool>(), 64),
        launch_gaps in prop::collection::vec(0usize..50, 1..6),
    ) {
        let mut fsm = NdaFsm::new(8);
        let mut shadow = NdaFsm::new(8);
        let mut queued: Vec<NdaInstr> =
            ops.iter().enumerate().map(|(i, &(k, l))| instr(k, l, i as u64)).collect();
        queued.reverse();
        let mut step = 0usize;
        let mut next_launch_at = launch_gaps[0];
        let mut gap_idx = 0;
        let mut guard = 0u64;
        loop {
            guard += 1;
            prop_assert!(guard < 2_000_000, "runaway");
            // Launch at scheduled steps (both sides identically).
            if step >= next_launch_at {
                if let Some(i) = queued.pop() {
                    let a = fsm.launch(i.clone());
                    let b = shadow.launch(i);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    gap_idx += 1;
                    next_launch_at =
                        step + launch_gaps.get(gap_idx).copied().unwrap_or(10);
                }
            }
            let a = fsm.next_access();
            let b = shadow.next_access();
            prop_assert_eq!(a, b, "desired access diverged at step {}", step);
            match a {
                Some(acc) if grants[step % grants.len()] => {
                    fsm.commit(acc);
                    shadow.commit(acc);
                }
                Some(_) => {}
                None if queued.is_empty() => break,
                None => {}
            }
            prop_assert_eq!(fsm.fingerprint(), shadow.fingerprint(), "step {}", step);
            // Completion streams must match.
            loop {
                let ca = fsm.pop_completed();
                let cb = shadow.pop_completed();
                prop_assert_eq!(ca, cb);
                if ca.is_none() {
                    break;
                }
            }
            step += 1;
        }
        prop_assert_eq!(fsm.completed_count() as usize, ops.len());
        prop_assert!(fsm.is_idle());
        prop_assert!(shadow.is_idle());
    }

    /// Total grants equal the instruction's exact read+write line counts,
    /// independent of grant pattern.
    #[test]
    fn prop_grant_counts_match_instruction(
        kind in any::<u8>(),
        lines in 1u64..3000,
        stall_mod in 2usize..7,
    ) {
        let i = instr(kind, lines, 0);
        let reads = i.read_lines();
        let writes = i.write_lines();
        let mut fsm = NdaFsm::new(2);
        fsm.launch(i).unwrap();
        let mut tick = 0usize;
        let mut guard = 0u64;
        while let Some(acc) = fsm.next_access() {
            guard += 1;
            prop_assert!(guard < 5_000_000);
            if !tick.is_multiple_of(stall_mod) {
                fsm.commit(acc);
            }
            tick += 1;
        }
        prop_assert_eq!(fsm.reads_granted, reads);
        prop_assert_eq!(fsm.writes_granted, writes);
        prop_assert_eq!(fsm.completed_count(), 1);
    }
}
