//! The rank-local NDA memory controller.
//!
//! Sits between the FSM's desired access stream and the DRAM device:
//! opens/closes rows as needed (ACT/PRE), issues the column command when
//! timing allows, and defers writes when the issue policy says so (the
//! throttling hook of paper §III-B). It shares the channel's bank/timing
//! state with the host controller — in hardware via the replicated FSMs,
//! in the simulator via the common [`Channel`]. The controller only ever
//! touches its own channel, so the channel-sharded engine hands it a
//! `&mut Channel` owned by the shard rather than a system-wide object.
//!
//! Two memos keep the per-cycle cost at "two integer compares" while
//! nothing changes:
//!
//! * the desired access is cached between grants
//!   ([`NdaFsm::next_access`] is idempotent until a launch or commit, so
//!   re-deriving it every cycle is pure waste);
//! * the planned command and its ready time are keyed on the rank's
//!   [`state epoch`](chopim_dram::Rank::epoch) — they are recomputed only
//!   after a command actually touched this rank (or, for host column
//!   commands, the channel).

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::perfcount::{self, Counter};
use chopim_dram::{Channel, Command, CommandKind, Cycle, Issuer};

use crate::fsm::{NdaAccess, NdaFsm};
use crate::isa::NdaInstr;

/// Epoch sentinel marking the plan memo as stale.
const MEMO_INVALID: u64 = u64::MAX;

/// What the controller did in a cycle it was offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NdaTickResult {
    /// Nothing to do (FSM idle).
    Idle,
    /// Wanted to issue but was blocked (timing, or writes throttled).
    Blocked,
    /// Issued this command.
    Issued(Command),
}

/// One rank's NDA memory controller.
#[derive(Debug, Clone)]
pub struct NdaRankController {
    channel: usize,
    rank: usize,
    banks_per_group: usize,
    fsm: NdaFsm,
    /// The access the FSM wants (`None` = idle). Kept current so the
    /// event-horizon loop can predict this controller's next action
    /// without mutating the FSM.
    want: Option<NdaAccess>,
    /// True while `want` reflects the FSM (cleared by a launch, the only
    /// external event that can change the desired access; grants update
    /// `want` in place).
    want_valid: bool,
    /// Rank epoch under which `plan_cmd`/`plan_ready` are exact.
    plan_epoch: u64,
    /// Planned DRAM command for `want`.
    plan_cmd: Command,
    /// Earliest cycle `plan_cmd` satisfies timing.
    plan_ready: Cycle,
    /// Timing-derived wake-up: the desired command cannot issue (and no
    /// policy evaluation happens) before this cycle. Valid until this
    /// controller issues, a launch arrives, or the host commands this
    /// rank ([`invalidate_hint`](Self::invalidate_hint)); within that
    /// window the caller may skip offering cycles entirely.
    ready_hint: Option<Cycle>,
    /// Row commands issued (ACT + PRE), for stats.
    pub row_cmds: u64,
    /// Cycles the controller was offered the bus but throttled on a write.
    pub write_throttle_stalls: u64,
}

impl NdaRankController {
    /// A controller for `(channel, rank)` with an instruction queue of
    /// `queue_cap`.
    pub fn new(channel: usize, rank: usize, banks_per_group: usize, queue_cap: usize) -> Self {
        Self {
            channel,
            rank,
            banks_per_group,
            fsm: NdaFsm::new(queue_cap),
            want: None,
            want_valid: false,
            plan_epoch: MEMO_INVALID,
            plan_cmd: Command::pre(0, 0, 0),
            plan_ready: 0,
            ready_hint: None,
            row_cmds: 0,
            write_throttle_stalls: 0,
        }
    }

    /// The channel this controller's rank is on.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The rank within the channel.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The sequencer FSM (read access, e.g. for fingerprint checks).
    pub fn fsm(&self) -> &NdaFsm {
        &self.fsm
    }

    /// Mutable FSM access (completion draining).
    pub fn fsm_mut(&mut self) -> &mut NdaFsm {
        &mut self.fsm
    }

    /// Launch an instruction on this rank.
    ///
    /// # Errors
    ///
    /// Returns the instruction back when the queue is full.
    pub fn launch(&mut self, instr: NdaInstr) -> Result<(), NdaInstr> {
        // A launch can change the desired access (e.g. ending a
        // force-drain); the cached plan must be re-derived.
        self.ready_hint = None;
        self.want_valid = false;
        self.plan_epoch = MEMO_INVALID;
        self.fsm.launch(instr)
    }

    /// Permanently abandon all queued, running, and buffered work
    /// (rank-death support): aborts the FSM and clears the cached
    /// desired access and wake-up hint so the controller reads as idle
    /// immediately — `desired_access` returns `None` and
    /// `next_event_cycle` returns [`Cycle::MAX`].
    pub fn abort_all(&mut self) {
        self.fsm.abort_all();
        self.want = None;
        self.want_valid = true;
        self.ready_hint = None;
        self.plan_epoch = MEMO_INVALID;
    }

    /// Drop the cached wake-up time because the host issued a command to
    /// this rank (its timing registers or bank state changed; the plan
    /// memo self-invalidates through the rank epoch).
    pub fn invalidate_hint(&mut self) {
        self.ready_hint = None;
    }

    /// The cycle before which this controller provably cannot issue (and
    /// performs no policy evaluation), if known. See `ready_hint` field.
    pub fn ready_hint(&self) -> Option<Cycle> {
        self.ready_hint
    }

    /// The cached desired access, refreshing it from the FSM if a launch
    /// invalidated it.
    #[inline]
    fn current_want(&mut self) -> Option<NdaAccess> {
        if !self.want_valid {
            self.want = self.fsm.next_access();
            self.want_valid = true;
        }
        self.want
    }

    /// Refresh the epoch-keyed `(plan_cmd, plan_ready)` memo for `acc`.
    /// Keyed on the *NDA* epoch: host traffic to other ranks (or this
    /// rank's external-bus registers) can never move an NDA access.
    #[inline]
    fn ensure_plan(&mut self, ch: &Channel, acc: NdaAccess) {
        let epoch = ch.rank_nda_epoch(self.rank);
        if self.plan_epoch == epoch {
            perfcount::bump(Counter::NdaMemoHit);
            return;
        }
        perfcount::bump(Counter::NdaMemoMiss);
        let bg = acc.bank as usize / self.banks_per_group;
        let bank = acc.bank as usize % self.banks_per_group;
        let (cmd, ready) = ch.plan_and_ready(
            self.rank,
            bg,
            bank,
            acc.row,
            acc.col,
            acc.write,
            Issuer::Nda,
        );
        self.plan_cmd = cmd;
        self.plan_ready = ready;
        self.plan_epoch = epoch;
    }

    /// Offer the controller a chance to issue one command at `now`.
    ///
    /// The caller (the system arbiter) must only offer cycles where the
    /// host controller left the channel's command bus free — host commands
    /// always take priority (paper §III-B). `allow_write` carries the
    /// write-throttling decision for this rank; it is only consulted when
    /// the FSM actually wants a write, so stochastic policies draw exactly
    /// one coin per attempted write rather than one per cycle.
    pub fn tick(
        &mut self,
        ch: &mut Channel,
        now: Cycle,
        allow_write: impl FnOnce() -> bool,
    ) -> NdaTickResult {
        let Some(acc) = self.current_want() else {
            return NdaTickResult::Idle;
        };
        // Timing and command-mux checks come BEFORE the throttle decision:
        // a policy coin is only flipped when the write could otherwise
        // issue this cycle. This keeps stochastic policies aligned between
        // the naive loop and fast-forwarding (cycles inside a timing
        // window are provably draw-free and may be skipped).
        self.ensure_plan(ch, acc);
        if self.plan_ready > now {
            // Cache the wake-up: nothing can make this command ready
            // earlier, and every event that could change the plan
            // (host command to this rank, launch, own issue) clears
            // the hint.
            self.ready_hint = Some(self.plan_ready);
            return NdaTickResult::Blocked;
        }
        if ch.rank(self.rank).cmd_mux_busy(now) {
            return NdaTickResult::Blocked;
        }
        if acc.write && !allow_write() {
            self.write_throttle_stalls += 1;
            return NdaTickResult::Blocked;
        }
        let cmd = self.plan_cmd;
        ch.issue_prechecked(&cmd, Issuer::Nda, now);
        self.ready_hint = None;
        match cmd.kind {
            CommandKind::Rd | CommandKind::Wr => {
                self.fsm.commit(acc);
                // Re-normalize so `desired_access` reflects the post-grant
                // state (pops the next instruction, absorbs produced
                // writes). The host-side shadow performs the same call.
                self.want = self.fsm.next_access();
                self.want_valid = true;
            }
            _ => self.row_cmds += 1,
        }
        // Pre-compute the wake-up for the next desired access against the
        // post-issue timing state so the blocked window can be skipped
        // (this also warms the plan memo for the post-issue epoch).
        if let Some(next) = self.want {
            self.ensure_plan(ch, next);
            if self.plan_ready > now {
                self.ready_hint = Some(self.plan_ready);
            }
        }
        NdaTickResult::Issued(cmd)
    }

    /// The access the FSM wants (pure; `None` while idle). Valid until
    /// the next launch delivery.
    pub fn desired_access(&self) -> Option<NdaAccess> {
        self.want
    }

    /// Conservative earliest cycle at or after `now` (the first cycle not
    /// yet executed) at which this controller could issue a command,
    /// assuming no other agent touches the memory system first (any such
    /// event re-computes horizons). Returns [`Cycle::MAX`] while idle; the
    /// caller handles write throttling.
    pub fn next_event_cycle(&self, ch: &Channel, now: Cycle) -> Cycle {
        if !self.want_valid {
            // A launch just arrived; the next executed cycle re-derives
            // the desired access.
            return now;
        }
        let Some(acc) = self.want else {
            return Cycle::MAX;
        };
        if self.plan_epoch == ch.rank_nda_epoch(self.rank) {
            return self.plan_ready.max(now);
        }
        let bg = acc.bank as usize / self.banks_per_group;
        let bank = acc.bank as usize % self.banks_per_group;
        let (_, ready) = ch.plan_and_ready(
            self.rank,
            bg,
            bank,
            acc.row,
            acc.col,
            acc.write,
            Issuer::Nda,
        );
        ready.max(now)
    }

    /// Serialize all controller state (snapshot support). The memo fields
    /// (`want`, plan, hint) are captured verbatim rather than re-derived:
    /// re-deriving on restore would change which cycles get offered to the
    /// FSM and shift `write_throttle_stalls`, breaking resume bit-identity.
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.channel as u64);
        w.varint(self.rank as u64);
        w.varint(self.banks_per_group as u64);
        self.fsm.encode_state(w);
        match self.want {
            Some(a) => {
                w.u8(1);
                w.bool(a.write);
                w.varint(u64::from(a.bank));
                w.varint(u64::from(a.row));
                w.varint(u64::from(a.col));
            }
            None => w.u8(0),
        }
        w.bool(self.want_valid);
        w.varint(self.plan_epoch);
        self.plan_cmd.encode_state(w);
        w.varint(self.plan_ready);
        w.opt_cycle(self.ready_hint);
        w.varint(self.row_cmds);
        w.varint(self.write_throttle_stalls);
    }

    /// Overwrite this controller's state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`CodecError::ConfigMismatch`] when the serialized identity
    /// (channel, rank, geometry) differs from this controller's.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.varint_usize()? != self.channel
            || r.varint_usize()? != self.rank
            || r.varint_usize()? != self.banks_per_group
        {
            return Err(CodecError::ConfigMismatch);
        }
        self.fsm.decode_state(r)?;
        self.want = match r.u8()? {
            0 => None,
            1 => {
                let write = r.bool()?;
                let bank = u16::try_from(r.varint()?)
                    .map_err(|_| CodecError::Corrupt("access bank > u16"))?;
                let row = r.varint_u32()?;
                let col = r.varint_u32()?;
                Some(NdaAccess {
                    write,
                    bank,
                    row,
                    col,
                })
            }
            _ => return Err(CodecError::Corrupt("want tag")),
        };
        self.want_valid = r.bool()?;
        self.plan_epoch = r.varint()?;
        self.plan_cmd = Command::decode_state(r)?;
        self.plan_ready = r.varint()?;
        self.ready_hint = r.opt_cycle()?;
        self.row_cmds = r.varint()?;
        self.write_throttle_stalls = r.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;
    use crate::operand::OperandLayout;
    use chopim_dram::{DramConfig, DramStats, TimingParams};

    fn setup() -> (Channel, NdaRankController) {
        let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
        let ch = Channel::new(&cfg);
        let ctl = NdaRankController::new(0, 1, 4, 8);
        (ch, ctl)
    }

    fn stats(ch: &Channel) -> DramStats {
        let mut s = DramStats::default();
        s.add_channel(&ch.stats);
        s
    }

    fn copy_instr(lines: u64, id: u64) -> NdaInstr {
        let x = OperandLayout::rotating(16, 0, 64, 128);
        let y = OperandLayout::rotating(16, 100, 64, 128);
        NdaInstr::elementwise(Opcode::Copy, lines, vec![(x, 0)], vec![(y, 0)], id)
    }

    #[test]
    fn idle_controller_reports_idle() {
        let (mut ch, mut ctl) = setup();
        assert_eq!(ctl.tick(&mut ch, 0, || true), NdaTickResult::Idle);
    }

    #[test]
    fn runs_instruction_to_completion_on_idle_memory() {
        let (mut ch, mut ctl) = setup();
        ctl.launch(copy_instr(256, 42)).unwrap();
        let mut issued = 0u64;
        for now in 0..200_000u64 {
            if let NdaTickResult::Issued(_) = ctl.tick(&mut ch, now, || true) {
                issued += 1;
            }
            if ctl.fsm().completed_count() > 0 {
                break;
            }
        }
        assert_eq!(ctl.fsm_mut().pop_completed(), Some(42));
        // 256 reads + 256 writes + row commands.
        assert!(issued >= 512, "issued only {issued}");
        let s = stats(&ch);
        assert_eq!(s.reads_nda, 256);
        assert_eq!(s.writes_nda, 256);
        assert!(s.acts_nda > 0);
    }

    #[test]
    fn write_throttling_blocks_drain() {
        let (mut ch, mut ctl) = setup();
        ctl.launch(copy_instr(128, 0)).unwrap();
        // Never allow writes: the read phase completes, then it blocks.
        let mut blocked = false;
        for now in 0..50_000u64 {
            match ctl.tick(&mut ch, now, || false) {
                NdaTickResult::Blocked if ctl.write_throttle_stalls > 0 => {
                    blocked = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(blocked);
        assert_eq!(stats(&ch).writes_nda, 0);
        // Re-allow writes: finishes.
        for now in 50_000..200_000u64 {
            ctl.tick(&mut ch, now, || true);
        }
        assert_eq!(stats(&ch).writes_nda, 128);
    }

    #[test]
    fn opens_rows_with_act_and_switches_with_pre() {
        let (mut ch, mut ctl) = setup();
        // Two chunks in the same bank, different rows: forces ACT..PRE..ACT.
        let x = OperandLayout::single_bank(0, 10, 2, 128);
        let i = NdaInstr::elementwise(Opcode::Nrm2, 256, vec![(x, 0)], vec![], 0);
        ctl.launch(i).unwrap();
        let mut kinds = Vec::new();
        for now in 0..100_000u64 {
            if let NdaTickResult::Issued(c) = ctl.tick(&mut ch, now, || true) {
                if c.kind.is_row() {
                    kinds.push((c.kind, c.row));
                }
            }
            if ctl.fsm().completed_count() > 0 {
                break;
            }
        }
        assert_eq!(kinds.len(), 3, "{kinds:?}");
        assert_eq!(kinds[0].0, CommandKind::Act);
        assert_eq!(kinds[1].0, CommandKind::Pre);
        assert_eq!(kinds[2].0, CommandKind::Act);
    }

    #[test]
    fn plan_memo_tracks_host_interference() {
        let (mut ch, mut ctl) = setup();
        ctl.launch(copy_instr(64, 7)).unwrap();
        // First offered cycle plans and issues an ACT.
        let r = ctl.tick(&mut ch, 0, || true);
        assert!(matches!(r, NdaTickResult::Issued(c) if c.kind == CommandKind::Act));
        // Host command to the same rank moves its timing; the memoized
        // plan must be re-derived (epoch moved), not trusted.
        let epoch_before = ch.rank_epoch(1);
        ch.issue(&Command::act(1, 3, 3, 9), Issuer::Host, 10)
            .unwrap();
        assert_ne!(ch.rank_epoch(1), epoch_before);
        ctl.invalidate_hint();
        // The controller still makes progress and never issues illegally.
        let mut issued = 0;
        for now in 11..50_000u64 {
            if let NdaTickResult::Issued(_) = ctl.tick(&mut ch, now, || true) {
                issued += 1;
            }
            if ctl.fsm().completed_count() > 0 {
                break;
            }
        }
        assert!(issued > 0);
        assert_eq!(ctl.fsm_mut().pop_completed(), Some(7));
    }
}
