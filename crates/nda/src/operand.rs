//! Rank-local operand layouts.
//!
//! An NDA instruction's operands must be fully contained in one rank
//! (paper §III-A). The runtime computes, per rank, the deterministic
//! traversal of an operand: a sequence of 128-line *chunks*, each filling
//! one DRAM row of one bank (the PE's 1 KB-per-chip batch). In shared
//! (unpartitioned) mode the chunks rotate across all banks of the rank;
//! with bank partitioning they stay within the reserved bank(s), walking
//! the remapped rows.

use std::sync::Arc;

/// The deterministic rank-local placement of one operand.
///
/// `interleave_group > 1` models the physical-address-order walk of a
/// hash-interleaved operand: consecutive lines rotate across the group's
/// banks (all their rows stay open simultaneously), which is what exposes
/// shared-mode operands to host row conflicts (paper §III-C). Group 1 is
/// the bank-partitioned / contiguous-column walk of Fig. 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandLayout {
    /// `(flat_bank, row)` of each consecutive 128-line chunk.
    chunks: Vec<(u16, u32)>,
    /// Cache lines per chunk (one DRAM row per rank: 128 for Table II).
    lines_per_chunk: u32,
    /// Number of consecutive chunks whose lines interleave round-robin.
    // chopim-lint: allow(snapshot) -- decode_layout reads it as `group` and restores it through with_interleave
    interleave_group: u32,
}

impl OperandLayout {
    /// Build a layout from explicit chunk placements (chunk-major walk).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty or `lines_per_chunk` is zero.
    pub fn new(chunks: Vec<(u16, u32)>, lines_per_chunk: u32) -> Arc<Self> {
        assert!(!chunks.is_empty(), "operand needs at least one chunk");
        assert!(lines_per_chunk > 0);
        Arc::new(Self {
            chunks,
            lines_per_chunk,
            interleave_group: 1,
        })
    }

    /// Build a layout whose lines rotate round-robin over groups of
    /// `group` consecutive chunks (hash-interleaved walk).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty, not a multiple of `group`, or
    /// `lines_per_chunk`/`group` is zero.
    pub fn with_interleave(chunks: Vec<(u16, u32)>, lines_per_chunk: u32, group: u32) -> Arc<Self> {
        assert!(!chunks.is_empty(), "operand needs at least one chunk");
        assert!(lines_per_chunk > 0 && group > 0);
        assert!(
            chunks.len().is_multiple_of(group as usize),
            "chunk count {} must be a multiple of the interleave group {group}",
            chunks.len()
        );
        Arc::new(Self {
            chunks,
            lines_per_chunk,
            interleave_group: group,
        })
    }

    /// A synthetic layout for tests and microbenchmarks: `n_chunks` chunks
    /// rotating over `banks` banks starting at `base_row`, one row per
    /// visit.
    pub fn rotating(banks: u16, base_row: u32, n_chunks: usize, lines_per_chunk: u32) -> Arc<Self> {
        let chunks = (0..n_chunks)
            .map(|i| ((i as u16) % banks, base_row + (i / banks as usize) as u32))
            .collect();
        Self::new(chunks, lines_per_chunk)
    }

    /// A single-bank layout (bank-partitioned mode): chunks walk
    /// consecutive rows of `bank`.
    pub fn single_bank(
        bank: u16,
        base_row: u32,
        n_chunks: usize,
        lines_per_chunk: u32,
    ) -> Arc<Self> {
        let chunks = (0..n_chunks).map(|i| (bank, base_row + i as u32)).collect();
        Self::new(chunks, lines_per_chunk)
    }

    /// Total cache lines addressable through this layout.
    pub fn lines(&self) -> u64 {
        self.chunks.len() as u64 * u64::from(self.lines_per_chunk)
    }

    /// Lines per chunk.
    pub fn lines_per_chunk(&self) -> u32 {
        self.lines_per_chunk
    }

    /// Chunk placements, in traversal order.
    pub fn chunks(&self) -> &[(u16, u32)] {
        &self.chunks
    }

    /// Location of rank-local line `k`: `(flat_bank, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.lines()`.
    pub fn locate(&self, k: u64) -> (u16, u32, u32) {
        let g = u64::from(self.interleave_group);
        let span = g * u64::from(self.lines_per_chunk);
        let group = k / span;
        let within = k % span;
        let chunk = (group * g + within % g) as usize;
        let (bank, row) = self.chunks[chunk];
        (bank, row, (within / g) as u32)
    }

    /// The interleave group size (1 = chunk-major).
    pub fn interleave_group(&self) -> u32 {
        self.interleave_group
    }

    /// Distinct banks touched by this layout.
    pub fn bank_count(&self) -> usize {
        let mut banks: Vec<u16> = self.chunks.iter().map(|c| c.0).collect();
        banks.sort_unstable();
        banks.dedup();
        banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_layout_cycles_banks() {
        let l = OperandLayout::rotating(16, 100, 32, 128);
        assert_eq!(l.lines(), 32 * 128);
        assert_eq!(l.bank_count(), 16);
        assert_eq!(l.locate(0), (0, 100, 0));
        assert_eq!(l.locate(127), (0, 100, 127));
        assert_eq!(l.locate(128), (1, 100, 0));
        // Second sweep moves to the next row.
        assert_eq!(l.locate(16 * 128), (0, 101, 0));
    }

    #[test]
    fn single_bank_layout_walks_rows() {
        let l = OperandLayout::single_bank(15, 0, 4, 128);
        assert_eq!(l.bank_count(), 1);
        assert_eq!(l.locate(0), (15, 0, 0));
        assert_eq!(l.locate(129), (15, 1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_layout_rejected() {
        let _ = OperandLayout::new(vec![], 128);
    }

    #[test]
    #[should_panic]
    fn locate_out_of_range_panics() {
        let l = OperandLayout::single_bank(0, 0, 1, 128);
        let _ = l.locate(128);
    }

    #[test]
    fn interleaved_layout_rotates_banks_per_line() {
        // 4 banks x 2 sweeps, group 4: lines rotate banks; columns stream
        // per bank at stride `group`.
        let chunks = vec![
            (0, 10),
            (1, 11),
            (2, 12),
            (3, 13),
            (0, 20),
            (1, 21),
            (2, 22),
            (3, 23),
        ];
        let l = OperandLayout::with_interleave(chunks, 128, 4);
        assert_eq!(l.locate(0), (0, 10, 0));
        assert_eq!(l.locate(1), (1, 11, 0));
        assert_eq!(l.locate(2), (2, 12, 0));
        assert_eq!(l.locate(3), (3, 13, 0));
        assert_eq!(l.locate(4), (0, 10, 1));
        assert_eq!(l.locate(5), (1, 11, 1));
        // Second group starts after 4*128 lines.
        assert_eq!(l.locate(4 * 128), (0, 20, 0));
        assert_eq!(l.locate(4 * 128 + 6), (2, 22, 1));
        // Coverage: every (bank,row,col) visited exactly once.
        let mut seen = std::collections::HashSet::new();
        for k in 0..l.lines() {
            assert!(seen.insert(l.locate(k)), "dup at {k}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the interleave group")]
    fn interleave_group_must_divide_chunks() {
        let _ = OperandLayout::with_interleave(vec![(0, 0), (1, 0), (2, 0)], 128, 2);
    }
}
