//! Functional execution of NDA operations plus energy event counting.
//!
//! The simulator splits function from timing (see `DESIGN.md`): numeric
//! results are computed here on the `f32` backing store, while the cycle
//! cost comes from the microcode access stream. The PE datapath of Fig. 9
//! (two FPFMAs per chip, 8 B/cycle/chip) is rate-matched to the stream for
//! every Table I op, so the stream *is* the timing.

use crate::isa::Opcode;

/// Energy-relevant event counts from executing an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Fused multiply-add operations.
    pub fmas: u64,
    /// 8-byte accesses to the PE line buffer.
    pub buffer_accesses: u64,
    /// 8-byte accesses to the scratchpad.
    pub scratch_accesses: u64,
    /// Scalar result for reductions (DOT, NRM2).
    pub reduction: Option<f32>,
}

impl ExecStats {
    fn stream(elements: u64, fmas_per_elem: u64) -> Self {
        Self {
            fmas: elements * fmas_per_elem,
            buffer_accesses: elements / 2, // 8 B = two f32 per access
            scratch_accesses: 0,
            reduction: None,
        }
    }
}

/// Execute an elementwise/reduction operation.
///
/// Semantics follow Table I (with BLAS `axpy`, as used by the paper's
/// Fig. 8 kernels): the in-out operand (`y` for AXPY, `x` for SCAL) must
/// be passed as `output` with its pre-state.
///
/// # Panics
///
/// Panics if operand counts/lengths do not match the opcode:
/// * AXPBY needs 2 scalars, inputs `[x, y]`, an output;
/// * AXPBYPCZ needs 3 scalars, inputs `[x, y, z]`, an output;
/// * AXPY needs 1 scalar, inputs `[x]`, output `y`;
/// * COPY needs inputs `[x]`, an output;
/// * XMY needs inputs `[x, y]`, an output;
/// * DOT needs inputs `[x, y]`, no output;
/// * NRM2 needs inputs `[x]`, no output;
/// * SCAL needs 1 scalar, output `x`;
/// * GEMV is not elementwise — use [`execute_gemv`].
pub fn execute(
    op: Opcode,
    scalars: &[f32],
    inputs: &[&[f32]],
    output: Option<&mut [f32]>,
) -> ExecStats {
    let n = inputs
        .first()
        .map(|x| x.len())
        .or_else(|| output.as_ref().map(|o| o.len()))
        .expect("operation needs at least one operand") as u64;
    for (i, x) in inputs.iter().enumerate() {
        assert_eq!(x.len() as u64, n, "input {i} length mismatch");
    }
    match op {
        Opcode::Axpby => {
            let (a, b) = (scalars[0], scalars[1]);
            let (x, y) = (inputs[0], inputs[1]);
            let z = output.expect("axpby writes z");
            for i in 0..n as usize {
                z[i] = a * x[i] + b * y[i];
            }
            ExecStats::stream(n, 2)
        }
        Opcode::Axpbypcz => {
            let (a, b, c) = (scalars[0], scalars[1], scalars[2]);
            let (x, y, zz) = (inputs[0], inputs[1], inputs[2]);
            let w = output.expect("axpbypcz writes w");
            for i in 0..n as usize {
                w[i] = a * x[i] + b * y[i] + c * zz[i];
            }
            ExecStats::stream(n, 3)
        }
        Opcode::Axpy => {
            let a = scalars[0];
            let x = inputs[0];
            let y = output.expect("axpy updates y in place");
            assert_eq!(y.len() as u64, n);
            for i in 0..n as usize {
                y[i] += a * x[i];
            }
            ExecStats::stream(n, 1)
        }
        Opcode::Copy => {
            let x = inputs[0];
            let y = output.expect("copy writes y");
            y.copy_from_slice(x);
            ExecStats::stream(n, 0)
        }
        Opcode::Xmy => {
            let (x, y) = (inputs[0], inputs[1]);
            let z = output.expect("xmy writes z");
            for i in 0..n as usize {
                z[i] = x[i] * y[i];
            }
            ExecStats::stream(n, 1)
        }
        Opcode::Dot => {
            let (x, y) = (inputs[0], inputs[1]);
            let mut acc = 0.0f32;
            for i in 0..n as usize {
                acc += x[i] * y[i];
            }
            let mut s = ExecStats::stream(n, 1);
            s.scratch_accesses = 1;
            s.reduction = Some(acc);
            s
        }
        Opcode::Nrm2 => {
            let x = inputs[0];
            let mut acc = 0.0f32;
            for &v in x {
                acc += v * v;
            }
            let mut s = ExecStats::stream(n, 1);
            s.scratch_accesses = 1;
            s.reduction = Some(acc.sqrt());
            s
        }
        Opcode::Scal => {
            let a = scalars[0];
            let x = output.expect("scal updates x in place");
            for v in x.iter_mut() {
                *v *= a;
            }
            ExecStats::stream(n, 1)
        }
        Opcode::Gemv => panic!("GEMV is not elementwise; use execute_gemv"),
    }
}

/// Execute `y = A x` for a row-major `rows x cols` matrix.
///
/// `x` and `y` are scratchpad resident (paper §V): the stats count their
/// accesses against the scratchpad, not the line buffer.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn execute_gemv(a: &[f32], x: &[f32], y: &mut [f32], rows: usize, cols: usize) -> ExecStats {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols);
    assert_eq!(y.len(), rows);
    for r in 0..rows {
        let mut acc = 0.0f32;
        let row = &a[r * cols..(r + 1) * cols];
        for c in 0..cols {
            acc += row[c] * x[c];
        }
        y[r] = acc;
    }
    ExecStats {
        fmas: (rows * cols) as u64,
        buffer_accesses: (rows * cols) as u64 / 2,
        scratch_accesses: (cols + rows) as u64 / 2 + 1,
        reduction: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f32]) -> Vec<f32> {
        vals.to_vec()
    }

    #[test]
    fn axpby() {
        let mut z = vec![0.0; 3];
        let s = execute(
            Opcode::Axpby,
            &[2.0, -1.0],
            &[&v(&[1.0, 2.0, 3.0]), &v(&[10.0, 20.0, 30.0])],
            Some(&mut z),
        );
        assert_eq!(z, vec![-8.0, -16.0, -24.0]);
        assert_eq!(s.fmas, 6);
    }

    #[test]
    fn axpbypcz() {
        let mut w = vec![0.0; 2];
        execute(
            Opcode::Axpbypcz,
            &[1.0, 2.0, 3.0],
            &[&v(&[1.0, 1.0]), &v(&[2.0, 2.0]), &v(&[3.0, 3.0])],
            Some(&mut w),
        );
        assert_eq!(w, vec![14.0, 14.0]);
    }

    #[test]
    fn axpy_is_blas_semantics() {
        let mut y = v(&[1.0, 2.0]);
        execute(Opcode::Axpy, &[3.0], &[&v(&[10.0, 20.0])], Some(&mut y));
        assert_eq!(y, vec![31.0, 62.0]);
    }

    #[test]
    fn copy_xmy_scal() {
        let mut y = vec![0.0; 2];
        execute(Opcode::Copy, &[], &[&v(&[5.0, 6.0])], Some(&mut y));
        assert_eq!(y, vec![5.0, 6.0]);

        let mut z = vec![0.0; 2];
        execute(
            Opcode::Xmy,
            &[],
            &[&v(&[2.0, 3.0]), &v(&[4.0, 5.0])],
            Some(&mut z),
        );
        assert_eq!(z, vec![8.0, 15.0]);

        let mut x = v(&[1.0, -2.0]);
        execute(Opcode::Scal, &[0.5], &[], Some(&mut x));
        assert_eq!(x, vec![0.5, -1.0]);
    }

    #[test]
    fn reductions() {
        let s = execute(
            Opcode::Dot,
            &[],
            &[&v(&[1.0, 2.0, 3.0]), &v(&[4.0, 5.0, 6.0])],
            None,
        );
        assert_eq!(s.reduction, Some(32.0));
        let s = execute(Opcode::Nrm2, &[], &[&v(&[3.0, 4.0])], None);
        assert_eq!(s.reduction, Some(5.0));
    }

    #[test]
    fn gemv_matches_reference() {
        // A = [[1,2],[3,4],[5,6]], x = [1,-1].
        let a = v(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = v(&[1.0, -1.0]);
        let mut y = vec![0.0; 3];
        let s = execute_gemv(&a, &x, &mut y, 3, 2);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert_eq!(s.fmas, 6);
    }

    #[test]
    #[should_panic(expected = "not elementwise")]
    fn gemv_through_execute_panics() {
        let _ = execute(Opcode::Gemv, &[], &[&v(&[1.0])], None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = execute(Opcode::Dot, &[], &[&v(&[1.0, 2.0]), &v(&[1.0])], None);
    }

    #[test]
    fn energy_counters_scale_with_length() {
        let x: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let s = execute(Opcode::Nrm2, &[], &[&x], None);
        assert_eq!(s.fmas, 1024);
        assert_eq!(s.buffer_accesses, 512);
    }
}
