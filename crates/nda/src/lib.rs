//! # chopim-nda
//!
//! The near-data-accelerator half of the Chopim reproduction: everything
//! that lives on the DIMM logic die.
//!
//! * [`isa`] — the coarse-grain vector instruction set of Table I
//!   (AXPBY, AXPBYPCZ, AXPY, COPY, XMY, DOT, NRM2, SCAL, GEMV) with
//!   per-instruction vector width `N` (cache blocks);
//! * [`operand`] — rank-local operand layouts: the deterministic
//!   bank/row/column traversal the microcode walks;
//! * [`microcode`] — expansion of an instruction into its access stream,
//!   batched 1 KB-per-chip exactly as the PE pipeline of Fig. 9;
//! * [`pe`] — functional execution (the numerics of each op) plus energy
//!   event counters;
//! * [`wbuf`] — the 128-entry write buffer with drain watermarks (the unit
//!   Chopim's write-throttling mechanisms act on);
//! * [`fsm`] — the per-rank NDA sequencer. Its state evolves *only* from
//!   launches and issue grants, which is what lets the host replicate it
//!   (paper §III-D): the host-side controller instantiates a shadow copy
//!   and both stay bit-identical, verified by [`fsm::NdaFsm::fingerprint`];
//! * [`controller`] — the rank-local NDA memory controller that turns the
//!   FSM's desired access into legal ACT/PRE/RD/WR commands.

#![forbid(unsafe_code)]

pub mod controller;
pub mod fsm;
pub mod isa;
pub mod microcode;
pub mod operand;
pub mod pe;
pub mod snapshot;
pub mod wbuf;

pub use controller::NdaRankController;
pub use fsm::{NdaAccess, NdaFsm};
pub use isa::{NdaInstr, Opcode, Phase, Stream};
pub use operand::OperandLayout;
pub use pe::{execute, ExecStats};
pub use wbuf::WriteBuffer;
