//! The NDA write buffer (Table II: 128 entries).
//!
//! PE results accumulate here; the NDA memory controller drains entries to
//! DRAM in bursts ("write phases"). The replicated FSMs track occupancy so
//! both sides agree when a drain — the window Chopim's write throttling
//! targets — starts and ends (paper §III-D).

use std::collections::VecDeque;

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};

/// One buffered write: the rank-local DRAM location of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferedWrite {
    /// Launched-instruction id the write belongs to (completion tracking).
    pub instr: u64,
    /// Flat bank index.
    pub bank: u16,
    /// Row.
    pub row: u32,
    /// Column (line units).
    pub col: u32,
}

/// Fixed-capacity write buffer with drain hysteresis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBuffer {
    entries: VecDeque<BufferedWrite>,
    capacity: usize,
    high: usize,
    low: usize,
    draining: bool,
    /// Total writes ever drained (for stats/fingerprints).
    pub drained: u64,
}

impl WriteBuffer {
    /// A buffer of `capacity` entries that starts draining at `high`
    /// occupancy and stops at `low`.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high <= capacity`.
    pub fn new(capacity: usize, high: usize, low: usize) -> Self {
        assert!(
            low < high && high <= capacity,
            "watermarks must satisfy low < high <= cap"
        );
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            high,
            low,
            draining: false,
            drained: 0,
        }
    }

    /// The paper's configuration: 128 entries, drain at 96 down to 16.
    pub fn table_ii() -> Self {
        Self::new(128, 96, 16)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further writes can be absorbed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Absorb a PE result write.
    ///
    /// # Errors
    ///
    /// Returns the write back when the buffer is full (the PE must stall).
    pub fn push(&mut self, w: BufferedWrite) -> Result<(), BufferedWrite> {
        if self.is_full() {
            return Err(w);
        }
        self.entries.push_back(w);
        if self.entries.len() >= self.high {
            self.draining = true;
        }
        Ok(())
    }

    /// True while the buffer wants to emit writes (hysteresis between the
    /// watermarks, or `force` — e.g. end of instruction — with anything
    /// left).
    pub fn wants_drain(&self, force: bool) -> bool {
        if self.entries.is_empty() {
            false
        } else if self.draining {
            true
        } else {
            force
        }
    }

    /// The next write to drain, if any.
    pub fn peek(&self) -> Option<BufferedWrite> {
        self.entries.front().copied()
    }

    /// Commit the drain of the front entry (after its WR command issued).
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn pop(&mut self) -> BufferedWrite {
        let w = self
            .entries
            .pop_front()
            .expect("pop from empty write buffer");
        self.drained += 1;
        if self.entries.len() <= self.low {
            self.draining = false;
        }
        w
    }

    /// True while a high-watermark drain phase is active (the throttling
    /// window).
    pub fn in_drain_phase(&self) -> bool {
        self.draining
    }

    /// Discard all buffered writes and leave any drain phase (rank-death
    /// abort support). The cumulative `drained` counter is preserved.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.draining = false;
    }

    /// Serialize all buffer state (snapshot support). The watermark
    /// configuration is included so a restore against a differently
    /// configured buffer is rejected rather than silently accepted.
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.capacity as u64);
        w.varint(self.high as u64);
        w.varint(self.low as u64);
        w.varint(self.entries.len() as u64);
        for e in &self.entries {
            w.varint(e.instr);
            w.varint(u64::from(e.bank));
            w.varint(u64::from(e.row));
            w.varint(u64::from(e.col));
        }
        w.bool(self.draining);
        w.varint(self.drained);
    }

    /// Overwrite this buffer's state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`CodecError::ConfigMismatch`] when the serialized watermarks
    /// differ from this buffer's; [`CodecError::Corrupt`] on an
    /// over-capacity entry list.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.varint_usize()? != self.capacity
            || r.varint_usize()? != self.high
            || r.varint_usize()? != self.low
        {
            return Err(CodecError::ConfigMismatch);
        }
        let n = r.varint_usize()?;
        if n > self.capacity {
            return Err(CodecError::Corrupt("write buffer overfull"));
        }
        self.entries.clear();
        for _ in 0..n {
            let instr = r.varint()?;
            let bank =
                u16::try_from(r.varint()?).map_err(|_| CodecError::Corrupt("wbuf bank > u16"))?;
            let row = r.varint_u32()?;
            let col = r.varint_u32()?;
            self.entries.push_back(BufferedWrite {
                instr,
                bank,
                row,
                col,
            });
        }
        self.draining = r.bool()?;
        self.drained = r.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(col: u32) -> BufferedWrite {
        BufferedWrite {
            instr: 0,
            bank: 0,
            row: 0,
            col,
        }
    }

    #[test]
    fn hysteresis_between_watermarks() {
        let mut b = WriteBuffer::new(8, 6, 2);
        for i in 0..5 {
            b.push(w(i)).unwrap();
        }
        assert!(!b.wants_drain(false), "below high watermark");
        b.push(w(5)).unwrap();
        assert!(b.wants_drain(false), "reached high watermark");
        // Drain down to low.
        while b.len() > 2 {
            b.pop();
        }
        assert!(!b.wants_drain(false), "stops at low watermark");
        assert!(!b.is_empty());
    }

    #[test]
    fn force_drains_leftovers() {
        let mut b = WriteBuffer::new(8, 6, 2);
        b.push(w(0)).unwrap();
        assert!(!b.wants_drain(false));
        assert!(b.wants_drain(true));
        assert_eq!(b.pop(), w(0));
        assert!(!b.wants_drain(true), "empty buffer never drains");
    }

    #[test]
    fn full_buffer_rejects() {
        let mut b = WriteBuffer::new(2, 2, 0);
        b.push(w(0)).unwrap();
        b.push(w(1)).unwrap();
        assert_eq!(b.push(w(2)), Err(w(2)));
        assert!(b.is_full());
    }

    #[test]
    fn fifo_order_and_drain_count() {
        let mut b = WriteBuffer::table_ii();
        for i in 0..10 {
            b.push(w(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(b.peek(), Some(w(i)));
            assert_eq!(b.pop(), w(i));
        }
        assert_eq!(b.drained, 10);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn bad_watermarks_rejected() {
        let _ = WriteBuffer::new(8, 2, 6);
    }
}
