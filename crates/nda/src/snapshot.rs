//! Snapshot codecs for the ISA-level types (`docs/SNAPSHOT_FORMAT.md`).
//!
//! Operand layouts and instructions are plain data behind `Arc`s; the
//! engine's determinism never depends on pointer identity (FSM
//! fingerprints hash ids and positions, not addresses), so decoding
//! rebuilds fresh `Arc`s. State-carrying structs (`Program`,
//! `WriteBuffer`, `NdaFsm`, `NdaRankController`) serialize themselves
//! via methods next to their private fields; this module holds the
//! shared value codecs they build on.

use std::sync::Arc;

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};

use crate::isa::{NdaInstr, Opcode, Phase, Stream};
use crate::operand::OperandLayout;

/// Serialize an operand layout (chunk list + walk parameters).
#[cold]
pub fn encode_layout(l: &OperandLayout, w: &mut ByteWriter) {
    let chunks = l.chunks();
    w.varint(chunks.len() as u64);
    for &(bank, row) in chunks {
        w.varint(u64::from(bank));
        w.varint(u64::from(row));
    }
    w.varint(u64::from(l.lines_per_chunk()));
    w.varint(u64::from(l.interleave_group()));
}

/// Decode an operand layout into a fresh `Arc`.
///
/// # Errors
///
/// Rejects layouts violating the constructor invariants (empty chunk
/// list, zero strides, group not dividing the chunk count) as
/// [`CodecError::Corrupt`] instead of panicking.
#[cold]
pub fn decode_layout(r: &mut ByteReader<'_>) -> Result<Arc<OperandLayout>, CodecError> {
    let n = r.varint_usize()?;
    let mut chunks = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let bank =
            u16::try_from(r.varint()?).map_err(|_| CodecError::Corrupt("layout bank > u16"))?;
        let row = r.varint_u32()?;
        chunks.push((bank, row));
    }
    let lines_per_chunk = r.varint_u32()?;
    let group = r.varint_u32()?;
    if chunks.is_empty()
        || lines_per_chunk == 0
        || group == 0
        || !chunks.len().is_multiple_of(group as usize)
    {
        return Err(CodecError::Corrupt("layout invariants"));
    }
    Ok(OperandLayout::with_interleave(
        chunks,
        lines_per_chunk,
        group,
    ))
}

/// Serialize a full NDA instruction (opcode, phases, streams, id).
#[cold]
pub fn encode_instr(i: &NdaInstr, w: &mut ByteWriter) {
    let op = Opcode::ALL
        .iter()
        .position(|o| *o == i.op)
        .expect("opcode in ALL") as u8;
    w.u8(op);
    w.varint(i.phases.len() as u64);
    for p in i.phases.iter() {
        w.varint(p.lines);
        w.varint(p.streams.len() as u64);
        for s in &p.streams {
            encode_layout(&s.layout, w);
            w.varint(s.start_line);
            w.bool(s.write);
        }
    }
    w.varint(i.id);
}

/// Decode an NDA instruction written by [`encode_instr`].
///
/// # Errors
///
/// Rejects unknown opcodes and corrupt layouts.
#[cold]
pub fn decode_instr(r: &mut ByteReader<'_>) -> Result<NdaInstr, CodecError> {
    let op = *Opcode::ALL
        .get(r.u8()? as usize)
        .ok_or(CodecError::Corrupt("opcode"))?;
    let nphases = r.varint_usize()?;
    let mut phases = Vec::with_capacity(nphases.min(r.remaining()));
    for _ in 0..nphases {
        let lines = r.varint()?;
        let nstreams = r.varint_usize()?;
        let mut streams = Vec::with_capacity(nstreams.min(r.remaining()));
        for _ in 0..nstreams {
            let layout = decode_layout(r)?;
            let start_line = r.varint()?;
            let write = r.bool()?;
            streams.push(Stream {
                layout,
                start_line,
                write,
            });
        }
        phases.push(Phase { streams, lines });
    }
    let id = r.varint()?;
    Ok(NdaInstr {
        op,
        phases: phases.into(),
        id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trip() {
        for l in [
            OperandLayout::rotating(16, 100, 32, 128),
            OperandLayout::single_bank(3, 9, 4, 128),
            OperandLayout::with_interleave(vec![(0, 1), (1, 2), (2, 3), (3, 4)], 128, 4),
        ] {
            let mut w = ByteWriter::new();
            encode_layout(&l, &mut w);
            let buf = w.finish();
            let back = decode_layout(&mut ByteReader::new(&buf)).unwrap();
            assert_eq!(*back, *l);
        }
    }

    #[test]
    fn instr_round_trip_preserves_access_stream() {
        let a = OperandLayout::rotating(16, 0, 64, 128);
        let x = OperandLayout::single_bank(0, 500, 1, 128);
        let y = OperandLayout::single_bank(1, 501, 1, 128);
        let i = NdaInstr::gemv((a, 0, 1024), (x, 0, 4), (y, 0, 2), 77);
        let mut w = ByteWriter::new();
        encode_instr(&i, &mut w);
        let buf = w.finish();
        let back = decode_instr(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.id, 77);
        assert_eq!(back.op, i.op);
        // The decoded instruction expands to the identical micro-op
        // stream — the property the snapshot actually needs.
        let mut p1 = crate::microcode::Program::new(i);
        let mut p2 = crate::microcode::Program::new(back);
        while let (Some(m1), Some(m2)) = (p1.peek(), p2.peek()) {
            assert_eq!(m1, m2);
            p1.advance();
            p2.advance();
        }
        assert!(p1.done() && p2.done());
    }

    #[test]
    fn corrupt_layout_rejected() {
        let mut w = ByteWriter::new();
        // 3 chunks with interleave group 2: violates the divisibility
        // invariant and must decode to an error, not a panic.
        w.varint(3);
        for _ in 0..3 {
            w.varint(0);
            w.varint(0);
        }
        w.varint(128);
        w.varint(2);
        let buf = w.finish();
        assert!(decode_layout(&mut ByteReader::new(&buf)).is_err());
    }
}
