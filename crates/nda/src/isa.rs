//! The coarse-grain NDA vector ISA (paper Table I).
//!
//! Each instruction carries a vector width `N` in cache blocks; one
//! instruction processes up to `N` blocks per operand without occupying
//! the host channel again — the property Fig. 10 sweeps.

use std::sync::Arc;

use crate::operand::OperandLayout;

/// Table I operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// `z = alpha*x + beta*y`
    Axpby,
    /// `w = alpha*x + beta*y + gamma*z`
    Axpbypcz,
    /// `y = y + alpha*x` (BLAS axpy; used by the SVRG kernels of Fig. 8)
    Axpy,
    /// `y = x`
    Copy,
    /// `z = x ⊙ y` (elementwise multiply)
    Xmy,
    /// `c = x · y` (reduction to scratchpad, no DRAM writes)
    Dot,
    /// `c = sqrt(x · x)` (reduction; the Fig. 10 granularity probe)
    Nrm2,
    /// `x = alpha*x`
    Scal,
    /// `y = A x` (matrix streamed, x/y scratchpad resident)
    Gemv,
}

impl Opcode {
    /// All opcodes in Table I order.
    pub const ALL: [Opcode; 9] = [
        Opcode::Axpby,
        Opcode::Axpbypcz,
        Opcode::Axpy,
        Opcode::Copy,
        Opcode::Xmy,
        Opcode::Dot,
        Opcode::Nrm2,
        Opcode::Scal,
        Opcode::Gemv,
    ];

    /// Lower-case mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Axpby => "axpby",
            Opcode::Axpbypcz => "axpbypcz",
            Opcode::Axpy => "axpy",
            Opcode::Copy => "copy",
            Opcode::Xmy => "xmy",
            Opcode::Dot => "dot",
            Opcode::Nrm2 => "nrm2",
            Opcode::Scal => "scal",
            Opcode::Gemv => "gemv",
        }
    }

    /// DRAM lines written per line read, the write intensity that drives
    /// Fig. 11–13 (DOT/NRM2 ≈ 0, COPY = 1, SCAL = 1, three-input ops ≈ ⅓).
    pub fn write_intensity(self) -> f64 {
        match self {
            Opcode::Dot | Opcode::Nrm2 | Opcode::Gemv => 0.0,
            Opcode::Copy | Opcode::Scal => 1.0,
            Opcode::Axpy | Opcode::Axpby => 0.5,
            Opcode::Xmy | Opcode::Axpbypcz => 1.0 / 3.0,
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One operand stream inside an instruction phase.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Rank-local placement walked by the microcode.
    pub layout: Arc<OperandLayout>,
    /// Starting line within the layout.
    pub start_line: u64,
    /// True when the stream is written (results drain via the write
    /// buffer).
    pub write: bool,
}

/// A microcode phase: its streams advance together in 1 KB-per-chip
/// batches (paper Fig. 9).
#[derive(Debug, Clone)]
pub struct Phase {
    /// Streams interleaved within a batch (reads first, then writes).
    pub streams: Vec<Stream>,
    /// Lines processed per stream in this phase.
    pub lines: u64,
}

/// One launched NDA instruction for one rank.
///
/// Phases are behind an `Arc`: an instruction is cloned on every launch
/// (the shard hands one copy to the rank FSM and may keep another in
/// its in-flight records), and a refcount bump keeps that hot-path
/// clone allocation-free. The microcode is immutable once built.
#[derive(Debug, Clone)]
pub struct NdaInstr {
    /// Operation (for reporting and functional execution).
    pub op: Opcode,
    /// Microcode phases.
    pub phases: Arc<[Phase]>,
    /// Runtime-assigned id for completion tracking.
    pub id: u64,
}

impl NdaInstr {
    /// Build an elementwise instruction (everything except GEMV):
    /// `reads` then `writes` advance together over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if any operand is too short for `lines` or no stream given.
    pub fn elementwise(
        op: Opcode,
        lines: u64,
        reads: Vec<(Arc<OperandLayout>, u64)>,
        writes: Vec<(Arc<OperandLayout>, u64)>,
        id: u64,
    ) -> Self {
        assert!(
            !reads.is_empty() || !writes.is_empty(),
            "instruction needs operands"
        );
        assert!(lines > 0, "zero-length instruction");
        let mk = |write: bool| {
            move |(layout, start_line): (Arc<OperandLayout>, u64)| {
                assert!(
                    start_line + lines <= layout.lines(),
                    "operand too short: {} + {} > {}",
                    start_line,
                    lines,
                    layout.lines()
                );
                Stream {
                    layout,
                    start_line,
                    write,
                }
            }
        };
        let streams: Vec<Stream> = reads
            .into_iter()
            .map(mk(false))
            .chain(writes.into_iter().map(mk(true)))
            .collect();
        Self {
            op,
            phases: vec![Phase { streams, lines }].into(),
            id,
        }
    }

    /// Build a GEMV instruction: read `x` fully, stream `a` fully, then
    /// write `y` (paper §V execution flow).
    pub fn gemv(
        a: (Arc<OperandLayout>, u64, u64),
        x: (Arc<OperandLayout>, u64, u64),
        y: (Arc<OperandLayout>, u64, u64),
        id: u64,
    ) -> Self {
        let phase = |(layout, start_line, lines): (Arc<OperandLayout>, u64, u64), write| Phase {
            streams: vec![Stream {
                layout,
                start_line,
                write,
            }],
            lines,
        };
        Self {
            op: Opcode::Gemv,
            phases: vec![phase(x, false), phase(a, false), phase(y, true)].into(),
            id,
        }
    }

    /// Total DRAM lines read by this instruction.
    pub fn read_lines(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.lines * p.streams.iter().filter(|s| !s.write).count() as u64)
            .sum()
    }

    /// Total DRAM lines written (via the write buffer).
    pub fn write_lines(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.lines * p.streams.iter().filter(|s| s.write).count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(chunks: usize) -> Arc<OperandLayout> {
        OperandLayout::rotating(16, 0, chunks, 128)
    }

    #[test]
    fn copy_reads_and_writes_equally() {
        let i = NdaInstr::elementwise(
            Opcode::Copy,
            256,
            vec![(layout(2), 0)],
            vec![(layout(2), 0)],
            0,
        );
        assert_eq!(i.read_lines(), 256);
        assert_eq!(i.write_lines(), 256);
    }

    #[test]
    fn dot_never_writes() {
        let i = NdaInstr::elementwise(
            Opcode::Dot,
            128,
            vec![(layout(1), 0), (layout(1), 0)],
            vec![],
            0,
        );
        assert_eq!(i.read_lines(), 256);
        assert_eq!(i.write_lines(), 0);
    }

    #[test]
    fn gemv_phases_are_sequential() {
        let i = NdaInstr::gemv(
            (layout(64), 0, 64 * 128),
            (layout(1), 0, 8),
            (layout(1), 0, 8),
            0,
        );
        assert_eq!(i.phases.len(), 3);
        assert_eq!(i.read_lines(), 64 * 128 + 8);
        assert_eq!(i.write_lines(), 8);
    }

    #[test]
    #[should_panic(expected = "operand too short")]
    fn oversized_instruction_rejected() {
        let _ = NdaInstr::elementwise(Opcode::Copy, 1 << 20, vec![(layout(1), 0)], vec![], 0);
    }

    #[test]
    fn write_intensity_ordering() {
        assert!(Opcode::Copy.write_intensity() > Opcode::Axpy.write_intensity());
        assert!(Opcode::Axpy.write_intensity() > Opcode::Dot.write_intensity());
        assert_eq!(Opcode::Nrm2.write_intensity(), 0.0);
    }

    #[test]
    fn names_are_table_i() {
        let names: Vec<&str> = Opcode::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            ["axpby", "axpbypcz", "axpy", "copy", "xmy", "dot", "nrm2", "scal", "gemv"]
        );
    }
}
