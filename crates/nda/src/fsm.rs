//! The per-rank NDA sequencer FSM — the unit Chopim replicates on the
//! host side (paper §III-D, Fig. 5).
//!
//! The FSM's state evolves through exactly three deterministic inputs:
//!
//! 1. [`launch`](NdaFsm::launch) — a new instruction arrives (the host-side
//!    controller knows every launch because it performed it);
//! 2. [`next_access`](NdaFsm::next_access) — the FSM exposes the next DRAM
//!    access it wants (absorbing any produced writes into the write buffer
//!    along the way — a state change that depends only on the microcode);
//! 3. [`commit`](NdaFsm::commit) — a memory controller granted that access.
//!
//! Because grants are visible on the shared channel and the microcode is
//! deterministic, a host-side *shadow* copy fed the same launches and
//! grants stays bit-identical — asserted via [`NdaFsm::fingerprint`] in
//! the integration tests. No NDA→host signaling is required, which is the
//! paper's key enabler for DDR4 (non-packetized) NDAs.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};

use crate::isa::NdaInstr;
use crate::microcode::Program;
use crate::wbuf::{BufferedWrite, WriteBuffer};

/// A DRAM access the FSM wants to perform next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdaAccess {
    /// True for a write-buffer drain write.
    pub write: bool,
    /// Flat bank within the rank.
    pub bank: u16,
    /// Row.
    pub row: u32,
    /// Column (line units).
    pub col: u32,
}

/// The per-rank NDA sequencer.
#[derive(Debug, Clone)]
pub struct NdaFsm {
    queue: VecDeque<NdaInstr>,
    queue_cap: usize,
    program: Option<Program>,
    wbuf: WriteBuffer,
    /// Writes still buffered per instruction id.
    wr_outstanding: BTreeMap<u64, u64>,
    /// Instructions whose program finished but writes are still draining.
    program_done: BTreeSet<u64>,
    completed: VecDeque<u64>,
    /// Total reads granted.
    pub reads_granted: u64,
    /// Total writes granted.
    pub writes_granted: u64,
    completed_count: u64,
}

impl NdaFsm {
    /// An idle FSM accepting up to `queue_cap` queued instructions, with
    /// the Table II write buffer.
    pub fn new(queue_cap: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            queue_cap,
            program: None,
            wbuf: WriteBuffer::table_ii(),
            wr_outstanding: BTreeMap::new(),
            program_done: BTreeSet::new(),
            completed: VecDeque::new(),
            reads_granted: 0,
            writes_granted: 0,
            completed_count: 0,
        }
    }

    /// Queue slots still free.
    pub fn queue_space(&self) -> usize {
        self.queue_cap - self.queue.len()
    }

    /// Enqueue a launched instruction.
    ///
    /// # Errors
    ///
    /// Returns the instruction back when the queue is full (the host-side
    /// controller must back off — it knows the occupancy from its shadow).
    pub fn launch(&mut self, instr: NdaInstr) -> Result<(), NdaInstr> {
        if self.queue.len() >= self.queue_cap {
            return Err(instr);
        }
        self.queue.push_back(instr);
        Ok(())
    }

    /// True when nothing is queued, running, or buffered.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.program.is_none() && self.wbuf.is_empty()
    }

    /// True while a high-watermark write-drain phase is active — the
    /// window the write-throttling policies act on.
    pub fn in_drain_phase(&self) -> bool {
        self.wbuf.in_drain_phase()
    }

    /// Instructions fully completed (results in DRAM), FIFO.
    pub fn pop_completed(&mut self) -> Option<u64> {
        self.completed.pop_front()
    }

    /// Abandon all queued, running, and buffered work (permanent rank
    /// death): the queue, active program, write buffer, and completion
    /// bookkeeping are discarded, leaving the FSM idle forever. Applied
    /// identically to an FSM and its shadow so fingerprints stay equal.
    pub fn abort_all(&mut self) {
        self.queue.clear();
        self.program = None;
        self.wbuf.clear();
        self.wr_outstanding.clear();
        self.program_done.clear();
        self.completed.clear();
    }

    /// Count of instructions completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed_count
    }

    fn finish_program_bookkeeping(&mut self, id: u64) {
        if self.wr_outstanding.get(&id).copied().unwrap_or(0) == 0 {
            self.wr_outstanding.remove(&id);
            self.completed.push_back(id);
            self.completed_count += 1;
        } else {
            self.program_done.insert(id);
        }
    }

    /// Compute the next desired DRAM access, absorbing produced writes
    /// into the write buffer. Idempotent between grants: calling twice
    /// without a [`commit`](Self::commit) returns the same access.
    pub fn next_access(&mut self) -> Option<NdaAccess> {
        loop {
            // Start the next instruction when idle.
            if self.program.is_none() {
                match self.queue.pop_front() {
                    Some(instr) => self.program = Some(Program::new(instr)),
                    None => break,
                }
            }
            // High-watermark drains preempt the read stream.
            if self.wbuf.wants_drain(false) {
                let w = self.wbuf.peek().expect("draining implies nonempty");
                return Some(NdaAccess {
                    write: true,
                    bank: w.bank,
                    row: w.row,
                    col: w.col,
                });
            }
            let program = self.program.as_mut().expect("set above");
            match program.peek() {
                Some(m) if m.write => {
                    // PE result: absorb into the buffer (no DRAM access yet).
                    if self.wbuf.is_full() {
                        let w = self.wbuf.peek().expect("full implies nonempty");
                        return Some(NdaAccess {
                            write: true,
                            bank: w.bank,
                            row: w.row,
                            col: w.col,
                        });
                    }
                    let id = program.instr().id;
                    self.wbuf
                        .push(BufferedWrite {
                            instr: id,
                            bank: m.bank,
                            row: m.row,
                            col: m.col,
                        })
                        .expect("checked not full");
                    *self.wr_outstanding.entry(id).or_insert(0) += 1;
                    program.advance();
                    if m.last {
                        let done = self.program.take().expect("program running");
                        self.finish_program_bookkeeping(done.instr().id);
                    }
                    continue;
                }
                Some(m) => {
                    return Some(NdaAccess {
                        write: false,
                        bank: m.bank,
                        row: m.row,
                        col: m.col,
                    })
                }
                None => {
                    let done = self.program.take().expect("program running");
                    self.finish_program_bookkeeping(done.instr().id);
                    continue;
                }
            }
        }
        // No program and nothing queued: force-drain leftovers.
        if self.wbuf.wants_drain(true) {
            let w = self.wbuf.peek().expect("drain implies nonempty");
            return Some(NdaAccess {
                write: true,
                bank: w.bank,
                row: w.row,
                col: w.col,
            });
        }
        None
    }

    /// Record that `access` (the value last returned by
    /// [`next_access`](Self::next_access)) was granted a DRAM command.
    ///
    /// # Panics
    ///
    /// Panics if `access` does not match the FSM's current expectation —
    /// that would mean host and NDA controllers diverged.
    pub fn commit(&mut self, access: NdaAccess) {
        if access.write {
            let w = self.wbuf.pop();
            assert_eq!(
                (w.bank, w.row, w.col),
                (access.bank, access.row, access.col),
                "granted write does not match buffer head"
            );
            self.writes_granted += 1;
            let left = self
                .wr_outstanding
                .get_mut(&w.instr)
                .expect("buffered write has outstanding count");
            *left -= 1;
            if *left == 0 && self.program_done.remove(&w.instr) {
                self.wr_outstanding.remove(&w.instr);
                self.completed.push_back(w.instr);
                self.completed_count += 1;
            }
        } else {
            let program = self.program.as_mut().expect("read grant without program");
            let m = program.peek().expect("read grant past end");
            assert!(
                !m.write && (m.bank, m.row, m.col) == (access.bank, access.row, access.col),
                "granted read does not match program position"
            );
            self.reads_granted += 1;
            program.advance();
            if m.last {
                let done = self.program.take().expect("program running");
                self.finish_program_bookkeeping(done.instr().id);
            }
        }
    }

    /// A digest of all replication-relevant state. Host-side shadow and
    /// NDA-side FSM must agree on this after every cycle.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.queue.len().hash(&mut h);
        for i in &self.queue {
            i.id.hash(&mut h);
        }
        match &self.program {
            Some(p) => {
                p.instr().id.hash(&mut h);
                p.position_key().hash(&mut h);
            }
            None => u64::MAX.hash(&mut h),
        }
        self.wbuf.len().hash(&mut h);
        self.wbuf.drained.hash(&mut h);
        self.wbuf.in_drain_phase().hash(&mut h);
        self.reads_granted.hash(&mut h);
        self.writes_granted.hash(&mut h);
        self.completed_count.hash(&mut h);
        h.finish()
    }

    /// Serialize all sequencer state (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.queue_cap as u64);
        w.varint(self.queue.len() as u64);
        for i in &self.queue {
            crate::snapshot::encode_instr(i, w);
        }
        match &self.program {
            Some(p) => {
                w.bool(true);
                p.encode_state(w);
            }
            None => w.bool(false),
        }
        self.wbuf.encode_state(w);
        w.varint(self.wr_outstanding.len() as u64);
        for (&id, &n) in &self.wr_outstanding {
            w.varint(id);
            w.varint(n);
        }
        w.varint(self.program_done.len() as u64);
        for &id in &self.program_done {
            w.varint(id);
        }
        w.varint(self.completed.len() as u64);
        for &id in &self.completed {
            w.varint(id);
        }
        w.varint(self.reads_granted);
        w.varint(self.writes_granted);
        w.varint(self.completed_count);
    }

    /// Overwrite this FSM's state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`CodecError::ConfigMismatch`] when the serialized queue capacity
    /// differs; [`CodecError::Corrupt`] on invariant violations.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.varint_usize()? != self.queue_cap {
            return Err(CodecError::ConfigMismatch);
        }
        let n = r.varint_usize()?;
        if n > self.queue_cap {
            return Err(CodecError::Corrupt("instruction queue overfull"));
        }
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(crate::snapshot::decode_instr(r)?);
        }
        self.program = if r.bool()? {
            Some(Program::decode_state(r)?)
        } else {
            None
        };
        self.wbuf.decode_state(r)?;
        let n = r.varint_usize()?;
        self.wr_outstanding.clear();
        for _ in 0..n {
            let id = r.varint()?;
            let count = r.varint()?;
            self.wr_outstanding.insert(id, count);
        }
        let n = r.varint_usize()?;
        self.program_done.clear();
        for _ in 0..n {
            self.program_done.insert(r.varint()?);
        }
        let n = r.varint_usize()?;
        self.completed.clear();
        for _ in 0..n {
            self.completed.push_back(r.varint()?);
        }
        self.reads_granted = r.varint()?;
        self.writes_granted = r.varint()?;
        self.completed_count = r.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;
    use crate::operand::OperandLayout;

    fn copy_instr(lines: u64, id: u64) -> NdaInstr {
        let x = OperandLayout::rotating(16, 0, 64, 128);
        let y = OperandLayout::rotating(16, 100, 64, 128);
        NdaInstr::elementwise(Opcode::Copy, lines, vec![(x, 0)], vec![(y, 0)], id)
    }

    fn nrm2_instr(lines: u64, id: u64) -> NdaInstr {
        let x = OperandLayout::rotating(16, 0, 64, 128);
        NdaInstr::elementwise(Opcode::Nrm2, lines, vec![(x, 0)], vec![], id)
    }

    /// Grant every access immediately until idle; return (reads, writes).
    fn run_to_idle(fsm: &mut NdaFsm) -> (u64, u64) {
        let mut guard = 0;
        while let Some(a) = fsm.next_access() {
            fsm.commit(a);
            guard += 1;
            assert!(guard < 1_000_000, "runaway FSM");
        }
        (fsm.reads_granted, fsm.writes_granted)
    }

    #[test]
    fn read_only_instruction_completes_without_writes() {
        let mut fsm = NdaFsm::new(4);
        fsm.launch(nrm2_instr(256, 9)).unwrap();
        let (r, w) = run_to_idle(&mut fsm);
        assert_eq!((r, w), (256, 0));
        assert_eq!(fsm.pop_completed(), Some(9));
        assert!(fsm.is_idle());
    }

    #[test]
    fn copy_drains_all_writes() {
        let mut fsm = NdaFsm::new(4);
        fsm.launch(copy_instr(300, 1)).unwrap();
        let (r, w) = run_to_idle(&mut fsm);
        assert_eq!((r, w), (300, 300));
        assert_eq!(fsm.pop_completed(), Some(1));
        assert!(fsm.is_idle());
    }

    #[test]
    fn completion_waits_for_write_drain() {
        let mut fsm = NdaFsm::new(4);
        fsm.launch(copy_instr(64, 5)).unwrap();
        // Consume all reads; leave writes buffered.
        loop {
            let a = fsm.next_access().unwrap();
            if a.write {
                break;
            }
            fsm.commit(a);
        }
        assert_eq!(fsm.pop_completed(), None, "writes still buffered");
        run_to_idle(&mut fsm);
        assert_eq!(fsm.pop_completed(), Some(5));
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut fsm = NdaFsm::new(2);
        fsm.launch(nrm2_instr(1, 0)).unwrap();
        fsm.launch(nrm2_instr(1, 1)).unwrap();
        assert!(fsm.launch(nrm2_instr(1, 2)).is_err());
        assert_eq!(fsm.queue_space(), 0);
    }

    #[test]
    fn instructions_complete_in_launch_order() {
        let mut fsm = NdaFsm::new(8);
        for id in 0..5 {
            fsm.launch(copy_instr(128, id)).unwrap();
        }
        run_to_idle(&mut fsm);
        for id in 0..5 {
            assert_eq!(fsm.pop_completed(), Some(id));
        }
        assert_eq!(fsm.completed_count(), 5);
    }

    #[test]
    fn next_access_is_idempotent() {
        let mut fsm = NdaFsm::new(4);
        fsm.launch(copy_instr(256, 0)).unwrap();
        let a = fsm.next_access().unwrap();
        let b = fsm.next_access().unwrap();
        assert_eq!(a, b);
        let fp1 = fsm.fingerprint();
        let _ = fsm.next_access();
        assert_eq!(
            fp1,
            fsm.fingerprint(),
            "peeking must not change state further"
        );
    }

    #[test]
    fn shadow_stays_in_sync() {
        let mut fsm = NdaFsm::new(8);
        let mut shadow = NdaFsm::new(8);
        for id in 0..3 {
            let i = copy_instr(200, id);
            fsm.launch(i.clone()).unwrap();
            shadow.launch(i).unwrap();
        }
        // Interleave grants with idle cycles; both sides see the same
        // grant stream.
        let mut step = 0u64;
        loop {
            let a = fsm.next_access();
            let b = shadow.next_access();
            assert_eq!(a, b, "divergent desired access at step {step}");
            match a {
                Some(acc) => {
                    // Grant only every third attempt (simulated contention).
                    if step.is_multiple_of(3) {
                        fsm.commit(acc);
                        shadow.commit(acc);
                    }
                }
                None => break,
            }
            assert_eq!(fsm.fingerprint(), shadow.fingerprint(), "step {step}");
            step += 1;
        }
        assert_eq!(fsm.completed_count(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_commit_panics() {
        let mut fsm = NdaFsm::new(4);
        fsm.launch(copy_instr(128, 0)).unwrap();
        let a = fsm.next_access().unwrap();
        fsm.commit(NdaAccess {
            col: a.col + 1,
            ..a
        });
    }

    #[test]
    fn high_watermark_preempts_reads() {
        // An instruction with more writes than buffer capacity must start
        // draining mid-stream.
        let mut fsm = NdaFsm::new(4);
        let x = OperandLayout::rotating(16, 0, 200, 128);
        let y = OperandLayout::rotating(16, 100, 200, 128);
        fsm.launch(NdaInstr::elementwise(
            Opcode::Copy,
            20_000,
            vec![(x, 0)],
            vec![(y, 0)],
            3,
        ))
        .unwrap();
        let mut saw_drain_mid_stream = false;
        let mut reads_before = 0u64;
        for _ in 0..10_000 {
            let Some(a) = fsm.next_access() else { break };
            if a.write && fsm.in_drain_phase() {
                saw_drain_mid_stream = true;
                break;
            }
            reads_before += 1;
            fsm.commit(a);
        }
        assert!(saw_drain_mid_stream, "after {reads_before} reads");
    }
}
