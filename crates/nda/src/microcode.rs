//! Microcode expansion: turning one NDA instruction into its deterministic
//! DRAM access stream.
//!
//! The expansion mirrors the PE execution flow of Fig. 9: each phase
//! advances its streams together in 1 KB-per-chip *batches* (128 cache
//! lines for Table II geometry), reads before writes within a batch.
//! Determinism is load-bearing: the host-side shadow FSM replays exactly
//! this stream, which is what lets Chopim avoid NDA→host signaling.

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};

use crate::isa::NdaInstr;

/// Lines per batch: one DRAM row per chip (1 KB per chip, Table II).
pub const BATCH_LINES: u64 = 128;

/// One expanded micro-operation: a single cache-line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// True for a result write (absorbed by the write buffer).
    pub write: bool,
    /// Flat bank within the rank.
    pub bank: u16,
    /// Row.
    pub row: u32,
    /// Column in line units.
    pub col: u32,
    /// True for the final micro-op of the instruction.
    pub last: bool,
}

/// The sequencer state walking one instruction's access stream.
#[derive(Debug, Clone)]
pub struct Program {
    instr: NdaInstr,
    phase: usize,
    batch_start: u64,
    stream: usize,
    line: u64,
}

impl Program {
    /// Start expanding `instr`.
    pub fn new(instr: NdaInstr) -> Self {
        Self {
            instr,
            phase: 0,
            batch_start: 0,
            stream: 0,
            line: 0,
        }
    }

    /// The instruction being expanded.
    pub fn instr(&self) -> &NdaInstr {
        &self.instr
    }

    /// True when every micro-op has been consumed.
    pub fn done(&self) -> bool {
        self.phase >= self.instr.phases.len()
    }

    fn batch_len(&self) -> u64 {
        let p = &self.instr.phases[self.phase];
        BATCH_LINES.min(p.lines - self.batch_start)
    }

    /// The current micro-op, or `None` when done.
    pub fn peek(&self) -> Option<MicroOp> {
        if self.done() {
            return None;
        }
        let p = &self.instr.phases[self.phase];
        let s = &p.streams[self.stream];
        let k = s.start_line + self.batch_start + self.line;
        let (bank, row, col) = s.layout.locate(k);
        let last = self.is_last_position();
        Some(MicroOp {
            write: s.write,
            bank,
            row,
            col,
            last,
        })
    }

    fn is_last_position(&self) -> bool {
        let p = &self.instr.phases[self.phase];
        self.phase == self.instr.phases.len() - 1
            && self.stream == p.streams.len() - 1
            && self.batch_start + self.batch_len() == p.lines
            && self.line == self.batch_len() - 1
    }

    /// Advance past the current micro-op.
    ///
    /// # Panics
    ///
    /// Panics if already done.
    pub fn advance(&mut self) {
        assert!(!self.done(), "advance past end of program");
        let blen = self.batch_len();
        self.line += 1;
        if self.line < blen {
            return;
        }
        self.line = 0;
        self.stream += 1;
        let p = &self.instr.phases[self.phase];
        if self.stream < p.streams.len() {
            return;
        }
        self.stream = 0;
        self.batch_start += blen;
        if self.batch_start < p.lines {
            return;
        }
        self.batch_start = 0;
        self.phase += 1;
    }

    /// Total micro-ops in the whole program.
    pub fn total_ops(&self) -> u64 {
        self.instr
            .phases
            .iter()
            .map(|p| p.lines * p.streams.len() as u64)
            .sum()
    }

    /// A compact encoding of progress, for FSM fingerprints.
    pub fn position_key(&self) -> u64 {
        (self.phase as u64) << 48 | self.batch_start << 16 | (self.stream as u64) << 8 | self.line
    }

    /// Serialize the instruction plus the walk position (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        crate::snapshot::encode_instr(&self.instr, w);
        w.varint(self.phase as u64);
        w.varint(self.batch_start);
        w.varint(self.stream as u64);
        w.varint(self.line);
    }

    /// Decode a program written by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Rejects positions outside the instruction's access stream (they
    /// would make [`peek`](Self::peek)/[`advance`](Self::advance) panic).
    #[cold]
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let instr = crate::snapshot::decode_instr(r)?;
        let phase = r.varint_usize()?;
        let batch_start = r.varint()?;
        let stream = r.varint_usize()?;
        let line = r.varint()?;
        if phase > instr.phases.len() {
            return Err(CodecError::Corrupt("program phase out of range"));
        }
        if phase == instr.phases.len() {
            if batch_start != 0 || stream != 0 || line != 0 {
                return Err(CodecError::Corrupt("finished program with position"));
            }
        } else {
            let p = &instr.phases[phase];
            if stream >= p.streams.len() || batch_start >= p.lines {
                return Err(CodecError::Corrupt("program position out of range"));
            }
            if line >= BATCH_LINES.min(p.lines - batch_start) {
                return Err(CodecError::Corrupt("program line out of batch"));
            }
        }
        Ok(Self {
            instr,
            phase,
            batch_start,
            stream,
            line,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;
    use crate::operand::OperandLayout;

    fn copy_instr(lines: u64) -> NdaInstr {
        let x = OperandLayout::rotating(16, 0, 64, 128);
        let y = OperandLayout::rotating(16, 100, 64, 128);
        NdaInstr::elementwise(Opcode::Copy, lines, vec![(x, 0)], vec![(y, 0)], 7)
    }

    fn drain(mut p: Program) -> Vec<MicroOp> {
        let mut v = Vec::new();
        while let Some(m) = p.peek() {
            v.push(m);
            p.advance();
        }
        v
    }

    #[test]
    fn copy_interleaves_read_and_write_batches() {
        let ops = drain(Program::new(copy_instr(256)));
        assert_eq!(ops.len(), 512);
        // First 128: reads from the X layout (rows at 0..).
        assert!(ops[..128].iter().all(|m| !m.write && m.row < 100));
        // Next 128: writes to the Y layout.
        assert!(ops[128..256].iter().all(|m| m.write && m.row >= 100));
        // Columns stream 0..127 within each batch.
        assert_eq!(ops[0].col, 0);
        assert_eq!(ops[127].col, 127);
        // Exactly one `last`.
        assert_eq!(ops.iter().filter(|m| m.last).count(), 1);
        assert!(ops.last().unwrap().last && ops.last().unwrap().write);
    }

    #[test]
    fn partial_final_batch() {
        let ops = drain(Program::new(copy_instr(300)));
        assert_eq!(ops.len(), 600);
        // Final batch has 44 lines per stream.
        let tail = &ops[512..];
        assert_eq!(tail.len(), 88);
        assert!(tail[..44].iter().all(|m| !m.write));
        assert!(tail[44..].iter().all(|m| m.write));
    }

    #[test]
    fn tiny_instruction_single_line() {
        let x = OperandLayout::single_bank(3, 9, 1, 128);
        let i = NdaInstr::elementwise(Opcode::Nrm2, 1, vec![(x, 5)], vec![], 0);
        let ops = drain(Program::new(i));
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0],
            MicroOp {
                write: false,
                bank: 3,
                row: 9,
                col: 5,
                last: true
            }
        );
    }

    #[test]
    fn gemv_phases_run_in_order() {
        let a = OperandLayout::rotating(16, 0, 8, 128);
        let x = OperandLayout::single_bank(0, 500, 1, 128);
        let y = OperandLayout::single_bank(1, 501, 1, 128);
        let i = NdaInstr::gemv((a, 0, 1024), (x, 0, 4), (y, 0, 2), 0);
        let ops = drain(Program::new(i));
        assert_eq!(ops.len(), 1024 + 4 + 2);
        assert!(ops[..4].iter().all(|m| m.row == 500));
        assert!(ops[4..1028].iter().all(|m| !m.write));
        assert!(ops[1028..].iter().all(|m| m.write && m.row == 501));
    }

    #[test]
    fn total_ops_matches_drained_count() {
        for lines in [1, 127, 128, 129, 1000] {
            let p = Program::new(copy_instr(lines));
            assert_eq!(
                p.total_ops(),
                drain(p.clone()).len() as u64,
                "lines={lines}"
            );
        }
    }

    #[test]
    fn position_key_is_monotonic_within_phase() {
        let mut p = Program::new(copy_instr(256));
        let mut prev = p.position_key();
        for _ in 0..511 {
            p.advance();
            let k = p.position_key();
            assert!(k > prev);
            prev = k;
        }
    }
}
