//! Tagged sweep results with lookup, table, CSV, and JSON helpers.

use chopim_core::SimReport;

use crate::scenario::ScenarioSpec;

/// One executed point: the spec and what it produced.
#[derive(Debug, Clone)]
pub struct SweepPoint<R> {
    pub spec: ScenarioSpec,
    pub result: R,
}

/// All points of one sweep, in grid order.
#[derive(Debug, Clone)]
pub struct SweepResult<R> {
    pub points: Vec<SweepPoint<R>>,
}

/// Named scalar metrics extracted from a result, for CSV/JSON emit.
pub trait Metrics {
    fn metrics(&self) -> Vec<(&'static str, f64)>;
}

impl Metrics for SimReport {
    fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("cycles", self.cycles as f64),
            ("host_ipc", self.host_ipc),
            ("host_bw_gbs", self.host_bw_gbs),
            ("core_bw_gbs", self.core_bw_gbs),
            ("nda_bw_gbs", self.nda_bw_gbs),
            ("nda_bw_utilization", self.nda_bw_utilization),
            ("host_row_hit_rate", self.host_row_hit_rate),
            ("avg_read_latency", self.avg_read_latency),
            ("avg_power_w", self.energy.avg_power_w()),
            ("nda_power_w", self.energy.nda_power_w()),
            ("nda_instrs_completed", self.nda_instrs_completed as f64),
        ]
    }
}

impl<R> SweepResult<R> {
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &SweepPoint<R>> {
        self.points.iter()
    }

    /// Distinct value labels of axis `name`, in first-seen (grid) order.
    pub fn tag_values(&self, name: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.points {
            if let Some(v) = p.spec.tag(name) {
                if !out.iter().any(|seen| seen == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// All points whose tags match every `(axis, label)` filter.
    pub fn select(&self, filters: &[(&str, &str)]) -> Vec<&SweepPoint<R>> {
        self.points
            .iter()
            .filter(|p| filters.iter().all(|(k, v)| p.spec.tag(k) == Some(v)))
            .collect()
    }

    /// The unique point matching the filters; panics on zero or many, so
    /// figure tables fail loudly when a sweep axis changes shape.
    pub fn get(&self, filters: &[(&str, &str)]) -> &SweepPoint<R> {
        let hits = self.select(filters);
        match hits.len() {
            1 => hits[0],
            0 => panic!("no sweep point matches {filters:?}"),
            n => panic!("{n} sweep points match {filters:?}; expected exactly one"),
        }
    }
}

impl<R: Metrics> SweepResult<R> {
    /// CSV: one row per point, axis columns then metric columns.
    pub fn to_csv(&self) -> String {
        let Some(first) = self.points.first() else {
            return String::new();
        };
        let axes: Vec<&str> = first.spec.tags.iter().map(|(k, _)| k.as_str()).collect();
        let metric_names: Vec<&str> = first.result.metrics().iter().map(|(k, _)| *k).collect();
        let mut out = String::new();
        for (i, a) in axes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&csv_escape(a));
        }
        for m in &metric_names {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&csv_escape(m));
        }
        out.push('\n');
        for p in &self.points {
            let mut cells: Vec<String> = p.spec.tags.iter().map(|(_, v)| csv_escape(v)).collect();
            for (_, v) in p.result.metrics() {
                cells.push(format_metric(v));
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// JSON: an array of `{tags: {...}, metrics: {...}}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"tags\": {");
            for (j, (k, v)) in p.spec.tags.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push_str("}, \"metrics\": {");
            for (j, (k, v)) in p.result.metrics().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_number(*v)));
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Write `to_csv()` to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// CSV-encode an arbitrary header + rows table. For sweeps whose results
/// don't reduce to [`Metrics`] (e.g. optimizer traces), where the caller
/// shapes its own rows.
pub fn rows_to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| csv_escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in rows {
        out.push_str(
            &r.iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

fn format_metric(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; encode as null.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{labeled, SweepBuilder};
    use crate::runner::SweepRunner;
    use crate::scenario::ScenarioSpec;

    struct Fake(f64);

    impl Metrics for Fake {
        fn metrics(&self) -> Vec<(&'static str, f64)> {
            vec![("value", self.0), ("twice", self.0 * 2.0)]
        }
    }

    fn fake_sweep() -> SweepResult<Fake> {
        let specs = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis("a", labeled([1u64, 2]), |s, &v| s.window = v)
            .axis("b", [("x", 0u64), ("y", 1)], |_, _| {})
            .build();
        SweepRunner::serial().run(&specs, |s| Fake(s.window as f64))
    }

    #[test]
    fn lookup_by_tags() {
        let r = fake_sweep();
        assert_eq!(r.len(), 4);
        assert_eq!(r.tag_values("b"), vec!["x", "y"]);
        assert_eq!(r.get(&[("a", "2"), ("b", "y")]).result.0, 2.0);
        assert_eq!(r.select(&[("a", "1")]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "no sweep point")]
    fn get_panics_on_miss() {
        fake_sweep().get(&[("a", "9")]);
    }

    #[test]
    fn csv_shape() {
        let csv = fake_sweep().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b,value,twice"));
        assert_eq!(lines.next(), Some("1,x,1,2"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let json = fake_sweep().to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"tags\": {\"a\": \"1\", \"b\": \"x\"}"));
        assert!(json.contains("\"metrics\": {\"value\": 1, \"twice\": 2}"));
        assert_eq!(json.matches("{\"tags\"").count(), 4);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
