//! Executes a grid of specs, serially or across threads, with identical
//! results either way.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use chopim_core::SimReport;

use crate::result::{SweepPoint, SweepResult};
use crate::scenario::{capture_prefix, run_scenario, run_scenario_from, ScenarioSpec};

/// Runs every point of a sweep and collects the results in grid order.
///
/// Each point is executed by an independent `ChopimSystem` seeded from
/// its spec, so the work partitions perfectly: the parallel schedule
/// cannot change any result, only the wall-clock time. Results are
/// reassembled in spec order regardless of completion order, making
/// serial and parallel runs bit-identical (enforced by
/// `tests/sweep_determinism.rs`).
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// One point at a time, on the calling thread.
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// Use `CHOPIM_SWEEP_THREADS` if set, else all available cores.
    pub fn parallel() -> Self {
        let threads = std::env::var("CHOPIM_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        SweepRunner { threads }
    }

    /// Exactly `threads` workers (1 = serial).
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        SweepRunner { threads }
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` on every spec and collect results in spec order.
    ///
    /// `f` must be a pure function of the spec for parallel == serial to
    /// hold; the standard executor [`run_scenario`] qualifies.
    ///
    /// Set `CHOPIM_SWEEP_PROGRESS=1` to emit a completion line per point
    /// on stderr — long sweeps otherwise give no sign of life.
    pub fn run<R, F>(&self, specs: &[ScenarioSpec], f: F) -> SweepResult<R>
    where
        R: Send,
        F: Fn(&ScenarioSpec) -> R + Sync,
    {
        let n = specs.len();
        let progress = progress_enabled();
        let completed = AtomicUsize::new(0);
        let report = |spec: &ScenarioSpec| {
            if progress {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                let label = if spec.label.is_empty() {
                    "(unlabeled)"
                } else {
                    spec.label.as_str()
                };
                eprintln!("[sweep] {done}/{n} {label}");
            }
        };
        if self.threads == 1 || n <= 1 {
            let points = specs
                .iter()
                .map(|spec| {
                    let result = f(spec);
                    report(spec);
                    SweepPoint {
                        spec: spec.clone(),
                        result,
                    }
                })
                .collect();
            return SweepResult { points };
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&specs[i]);
                    report(&specs[i]);
                    collected
                        .lock()
                        .expect("sweep worker panicked while holding the lock")
                        .push((i, r));
                });
            }
        });
        let mut indexed = collected
            .into_inner()
            .expect("sweep worker panicked while holding the lock");
        assert_eq!(indexed.len(), n, "every point must produce a result");
        indexed.sort_unstable_by_key(|(i, _)| *i);
        let points = specs
            .iter()
            .zip(indexed)
            .map(|(spec, (_, result))| SweepPoint {
                spec: spec.clone(),
                result,
            })
            .collect();
        SweepResult { points }
    }

    /// Run the standard executor over the grid.
    pub fn run_reports(&self, specs: &[ScenarioSpec]) -> SweepResult<SimReport> {
        self.run(specs, run_scenario)
    }

    /// Warm-start sweep: simulate `base` once for `prefix` cycles (its
    /// workload not yet spawned), snapshot, and fork every point from
    /// the shared image ([`run_scenario_from`]). Every spec must agree
    /// with `base` on the semantic machine configuration and seed —
    /// sweep axes may vary the engine-mode knobs, the workload, and the
    /// window. Bit-identical to running each point cold with the same
    /// prefix ([`run_scenario_prefixed`](crate::scenario::run_scenario_prefixed)),
    /// but the prefix is simulated
    /// once instead of once per point.
    pub fn run_warm_start(
        &self,
        base: &ScenarioSpec,
        prefix: u64,
        specs: &[ScenarioSpec],
    ) -> SweepResult<SimReport> {
        let image = capture_prefix(base, prefix);
        self.run(specs, |spec| run_scenario_from(spec, &image))
    }
}

/// True when `CHOPIM_SWEEP_PROGRESS=1` (or any nonempty value except `0`).
fn progress_enabled() -> bool {
    std::env::var("CHOPIM_SWEEP_PROGRESS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{labeled, SweepBuilder};

    #[test]
    fn results_come_back_in_spec_order() {
        let specs = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis("i", labeled(0u64..16), |s, &v| s.window = v)
            .build();
        // Uneven fake work so completion order scrambles.
        let res = SweepRunner::with_threads(4).run(&specs, |s| {
            std::thread::sleep(std::time::Duration::from_millis((16 - s.window) % 5));
            s.window * 10
        });
        let values: Vec<u64> = res.points.iter().map(|p| p.result).collect();
        assert_eq!(values, (0u64..16).map(|v| v * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_clamps_to_work() {
        let specs = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis("i", labeled([1u64, 2]), |_, _| {})
            .build();
        let res = SweepRunner::with_threads(64).run(&specs, |s| s.label.clone());
        assert_eq!(res.points.len(), 2);
    }
}
