//! The fixed perf/equivalence scenario matrix.
//!
//! `chopim-perf` measures these scenarios and the `ff_lockstep` test
//! proves fast-forward/naive equivalence on them — sharing one
//! definition guarantees the equivalence job always covers exactly what
//! the perf gate measures.

use chopim_core::prelude::*;

use crate::scenario::{ScenarioSpec, Workload};

/// The measurement window: `CHOPIM_BENCH_CYCLES`, defaulting to
/// `default` cycles.
pub fn bench_window(default: u64) -> u64 {
    std::env::var("CHOPIM_BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scenario matrix, each point `w` cycles long.
pub fn perf_matrix(w: u64) -> Vec<(&'static str, ScenarioSpec)> {
    let mut points = Vec::new();

    // Pure host traffic: a memory-intensive mix, no NDA work.
    let mut host_only = ScenarioSpec::with_window(w);
    host_only.cfg.mix = MixId::new(2);
    points.push(("host_only", host_only));

    // Host idle, NDAs idle: only periodic refresh. The idle-heavy limit
    // case — it measures the event-horizon floor (bursty/sparse windows
    // approach this as their duty cycle drops) and exercises refresh
    // timer skipping.
    points.push(("host_idle", ScenarioSpec::with_window(w)));

    // Host idle, NDAs streaming.
    let mut nda_only = ScenarioSpec::with_window(w);
    nda_only.workload = Workload::elementwise(Opcode::Axpy, 1 << 16);
    points.push(("nda_only", nda_only));

    // The co-located default: the paper's SVRG collaboration — the
    // SVRG-shaped host inner loop (custom profile) against the NDA
    // average-gradient macro stream on the default (bank-partitioned)
    // machine.
    let mut colocated = ScenarioSpec::with_window(w);
    colocated.cfg.custom_profiles = Some(vec![chopim_ml::SvrgTimeModel::svrg_host_profile()]);
    colocated.workload = Workload::MacroAxpyRows {
        rows: 64,
        d: 4096,
        rows_per_instr: 8,
        opts: LaunchOpts::default(),
    };
    points.push(("colocated_svrg", colocated));

    // A SPEC-mix co-location point as well, so both host models run
    // concurrently with NDA traffic.
    let mut colocated_mix = ScenarioSpec::with_window(w);
    colocated_mix.cfg.mix = MixId::new(2);
    colocated_mix.workload = Workload::MacroAxpyRows {
        rows: 64,
        d: 4096,
        rows_per_instr: 8,
        opts: LaunchOpts::default(),
    };
    points.push(("colocated_mix", colocated_mix));

    // Rank-partitioning baseline (Fig. 14): dedicated NDA ranks.
    let mut rank_part = ScenarioSpec::with_window(w);
    rank_part.cfg.mix = MixId::new(2);
    rank_part.cfg.rank_partition = true;
    rank_part.cfg.reserved_banks = 0;
    rank_part.workload = Workload::elementwise(Opcode::Copy, 1 << 15);
    points.push(("rank_partitioned", rank_part));

    // Wide-machine scenarios: the production-scale geometry the
    // channel-sharded engine exists for — 8 channels (16 NDA ranks) with
    // proportionally more host cores (mix0's 8 memory-intensive cores).
    // `chopim-perf` additionally measures these with a 4-thread worker
    // pool to gate the parallel-vs-serial speedup.
    let mut wide_host = ScenarioSpec::with_window(w);
    wide_host.cfg.dram = DramConfig::table_ii().with_channels(8);
    wide_host.cfg.mix = MixId::new(0);
    points.push(("wide_host_8ch", wide_host));

    let mut wide_col = ScenarioSpec::with_window(w);
    wide_col.cfg.dram = DramConfig::table_ii().with_channels(8);
    wide_col.cfg.mix = MixId::new(0);
    wide_col.workload = Workload::MacroAxpyRows {
        rows: 64,
        d: 16384,
        rows_per_instr: 8,
        opts: LaunchOpts::default(),
    };
    points.push(("wide_colocated_8ch", wide_col));

    // The 16-channel tier of the same pair (32 NDA ranks): twice the
    // shard count stresses the barrier/exchange machinery — per-shard
    // horizons and the flat exchange have to hold their per-window cost
    // flat as shards multiply, and the speedup gate gets a point with
    // more shards than worker threads.
    let mut wide_host_16 = ScenarioSpec::with_window(w);
    wide_host_16.cfg.dram = DramConfig::table_ii().with_channels(16);
    wide_host_16.cfg.mix = MixId::new(0);
    points.push(("wide_host_16ch", wide_host_16));

    let mut wide_col_16 = ScenarioSpec::with_window(w);
    wide_col_16.cfg.dram = DramConfig::table_ii().with_channels(16);
    wide_col_16.cfg.mix = MixId::new(0);
    wide_col_16.workload = Workload::MacroAxpyRows {
        rows: 64,
        d: 16384,
        rows_per_instr: 8,
        opts: LaunchOpts::default(),
    };
    points.push(("wide_colocated_16ch", wide_col_16));

    // Two tenants on the 8-channel machine: an SVRG-shaped session (the
    // average-gradient macro stream) and an elementwise-stream session,
    // submitted concurrently under fair-share arbitration, with the
    // SVRG-shaped host inner loop live — the multi-tenant axis the
    // session API opened.
    let mut multi = ScenarioSpec::with_window(w);
    multi.cfg.dram = DramConfig::table_ii().with_channels(8);
    multi.cfg.custom_profiles = Some(vec![chopim_ml::SvrgTimeModel::svrg_host_profile()]);
    multi.workload = Workload::MultiTenant {
        tenants: vec![
            Workload::MacroAxpyRows {
                rows: 64,
                d: 4096,
                rows_per_instr: 8,
                opts: LaunchOpts::default(),
            },
            Workload::elementwise(Opcode::Axpy, 1 << 15),
        ],
    };
    points.push(("multi_tenant_2sess", multi));

    // Mid-scale QoS point: 32 streaming tenants with mixed classes
    // (latency-sensitive + weighted batch) on a 4-channel machine. Small
    // enough that the lockstep suites' debug-build oracle (which
    // re-derives every arbitration pick by scanning all sessions) stays
    // active, pinning the ready index against the naive scheduler.
    let mut qos = ScenarioSpec::with_window(w);
    qos.cfg.dram = DramConfig::table_ii().with_channels(4);
    qos.workload = Workload::TenantFleet {
        tenants: 32,
        shared_vectors: 8,
        elems: 1 << 13,
    };
    points.push(("multi_tenant_qos", qos));

    // The headline thousand-tenant point: 1000 streaming sessions with
    // mixed QoS classes on the 8-channel machine, host idle. Arbitration
    // cost must stay O(active) — `sched_sessions_scanned` per launch
    // window, not O(sessions); the pre-index rotating scan made this
    // point quadratic-ish and unmeasurable.
    let mut fleet = ScenarioSpec::with_window(w);
    fleet.cfg.dram = DramConfig::table_ii().with_channels(8);
    fleet.workload = Workload::TenantFleet {
        tenants: 1000,
        shared_vectors: 16,
        elems: 1 << 12,
    };
    points.push(("multi_tenant_1k", fleet));

    // The wide co-located point under an active fault plane: transient
    // compute faults, FSM hangs, dropped and delayed completions, plus a
    // mid-window rank death — the recovery machinery (retry staging,
    // inflight timeout scan, quarantine re-shard) all on the hot path.
    // The lockstep suites pin its schedule across thread counts and
    // loop variants; `chopim-perf` measures what the fault plane costs
    // when it is actually firing.
    let mut faulty = ScenarioSpec::with_window(w);
    faulty.cfg.dram = DramConfig::table_ii().with_channels(8);
    faulty.cfg.mix = MixId::new(0);
    faulty.cfg.faults =
        FaultPlan::parse("seed=7,transient=600,hang=900:120,drop=1100,delay=700:48");
    faulty.cfg.faults.rank_death_cycle = w / 2;
    faulty.cfg.faults.rank_death_nda = 3;
    faulty.workload = Workload::MacroAxpyRows {
        rows: 64,
        d: 16384,
        rows_per_instr: 8,
        opts: LaunchOpts::default(),
    };
    points.push(("faulty_colocated_8ch", faulty));

    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique_and_stable() {
        let m = perf_matrix(1000);
        let names: Vec<&str> = m.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "host_only",
                "host_idle",
                "nda_only",
                "colocated_svrg",
                "colocated_mix",
                "rank_partitioned",
                "wide_host_8ch",
                "wide_colocated_8ch",
                "wide_host_16ch",
                "wide_colocated_16ch",
                "multi_tenant_2sess",
                "multi_tenant_qos",
                "multi_tenant_1k",
                "faulty_colocated_8ch"
            ]
        );
        for (_, spec) in &m {
            assert_eq!(spec.window, 1000);
        }
    }

    #[test]
    fn faulty_scenario_has_active_plan() {
        let m = perf_matrix(20_000);
        let (_, spec) = m
            .iter()
            .find(|(n, _)| *n == "faulty_colocated_8ch")
            .unwrap();
        assert!(!spec.cfg.faults.is_empty());
        assert_eq!(spec.cfg.faults.rank_death_cycle, 10_000);
        for (name, spec) in &m {
            if *name != "faulty_colocated_8ch" {
                assert!(spec.cfg.faults.is_empty(), "{name} should be fault-free");
            }
        }
    }
}
