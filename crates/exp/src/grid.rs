//! Cartesian sweep grids over [`ScenarioSpec`]s.

use std::any::Any;
use std::sync::Arc;

use crate::scenario::ScenarioSpec;

type Mutator = Arc<dyn Fn(&mut ScenarioSpec) + Send + Sync>;

struct AxisPoint {
    label: String,
    mutate: Mutator,
    value: Arc<dyn Any + Send + Sync>,
}

struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

/// Builds the cartesian grid of [`ScenarioSpec`]s from named axes.
///
/// Each axis is a list of `(value label, value)` pairs plus a closure
/// that applies the value to a spec. `build()` produces the full product
/// in row-major order (the last axis varies fastest), tags every spec
/// with its axis labels, and derives a deterministic per-point seed from
/// the base seed and the tag set — so a point's seed does not depend on
/// grid order, thread schedule, or which other axes exist beside it.
pub struct SweepBuilder {
    base: ScenarioSpec,
    axes: Vec<Axis>,
    finishers: Vec<Mutator>,
}

/// Label values by their `Display` form: `labeled([1, 2, 4])` →
/// `[("1", 1), ("2", 2), ("4", 4)]`.
pub fn labeled<T: std::fmt::Display>(values: impl IntoIterator<Item = T>) -> Vec<(String, T)> {
    values.into_iter().map(|v| (v.to_string(), v)).collect()
}

impl SweepBuilder {
    pub fn new(base: ScenarioSpec) -> Self {
        SweepBuilder {
            base,
            axes: Vec::new(),
            finishers: Vec::new(),
        }
    }

    /// Post-product hook: runs on every spec after all axes applied, for
    /// fields derived from *combinations* of axis values (e.g. a workload
    /// whose shape depends on both the op and the operand-size axes —
    /// read the typed values back with [`ScenarioSpec::value`]).
    pub fn finish(mut self, f: impl Fn(&mut ScenarioSpec) + Send + Sync + 'static) -> Self {
        self.finishers.push(Arc::new(f));
        self
    }

    /// Add an axis: one grid dimension named `name`, whose points are
    /// `(label, value)` pairs, with `apply` writing the value into a spec.
    pub fn axis<T, L>(
        mut self,
        name: &str,
        values: impl IntoIterator<Item = (L, T)>,
        apply: impl Fn(&mut ScenarioSpec, &T) + Send + Sync + 'static,
    ) -> Self
    where
        T: Send + Sync + 'static,
        L: Into<String>,
    {
        let apply = Arc::new(apply);
        let points = values
            .into_iter()
            .map(|(label, value)| {
                let value = Arc::new(value);
                let apply = Arc::clone(&apply);
                let v = Arc::clone(&value);
                let mutate: Mutator = Arc::new(move |spec: &mut ScenarioSpec| apply(spec, &v));
                AxisPoint {
                    label: label.into(),
                    mutate,
                    value,
                }
            })
            .collect::<Vec<_>>();
        assert!(!points.is_empty(), "axis {name:?} has no points");
        self.axes.push(Axis {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Materialize the grid.
    pub fn build(self) -> Vec<ScenarioSpec> {
        let base_seed = self.base.seed;
        let mut specs = vec![self.base];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(specs.len() * axis.points.len());
            for spec in &specs {
                for point in &axis.points {
                    let mut s = spec.clone();
                    (point.mutate)(&mut s);
                    s.tags.push((axis.name.clone(), point.label.clone()));
                    s.values.push((axis.name.clone(), Arc::clone(&point.value)));
                    next.push(s);
                }
            }
            specs = next;
        }
        for spec in &mut specs {
            for f in &self.finishers {
                f(spec);
            }
            spec.label = spec
                .tags
                .iter()
                .map(|(_, v)| v.as_str())
                .collect::<Vec<_>>()
                .join("/");
            spec.seed = point_seed(base_seed, &spec.tags);
        }
        specs
    }
}

/// Deterministic per-point seed: FNV-1a over the tag pairs, mixed with
/// the base seed. A function of the *labels only*, so the same point
/// gets the same seed regardless of grid shape or execution order.
fn point_seed(base: u64, tags: &[(String, String)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (k, v) in tags {
        eat(k);
        eat(v);
    }
    // Avalanche so adjacent tag sets decorrelate in the low bits.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major_product() {
        let specs = SweepBuilder::new(ScenarioSpec::with_window(100))
            .axis("a", labeled([0u64, 1]), |s, &v| s.window = 100 + v)
            .axis("b", labeled([0u64, 1, 2]), |_, _| {})
            .build();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].label, "0/0");
        assert_eq!(specs[1].label, "0/1");
        assert_eq!(specs[3].label, "1/0");
        assert_eq!(specs[3].window, 101);
        assert_eq!(specs[0].tag("a"), Some("0"));
        assert_eq!(specs[5].tag("b"), Some("2"));
    }

    #[test]
    fn typed_values_travel_with_specs() {
        #[derive(Debug, PartialEq)]
        enum Mode {
            Fast,
            Slow,
        }
        let specs = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis(
                "mode",
                [("fast", Mode::Fast), ("slow", Mode::Slow)],
                |_, _| {},
            )
            .axis("n", labeled([7usize]), |_, _| {})
            .build();
        assert_eq!(specs[0].value::<Mode>("mode"), Some(&Mode::Fast));
        assert_eq!(specs[1].value::<Mode>("mode"), Some(&Mode::Slow));
        assert_eq!(specs[1].value::<usize>("n"), Some(&7));
        // Wrong type or unknown axis -> None, not a silent garbage read.
        assert_eq!(specs[0].value::<usize>("mode"), None);
        assert_eq!(specs[0].value::<Mode>("nope"), None);
    }

    #[test]
    fn seeds_depend_on_labels_not_order() {
        let ab = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis("a", labeled([0u64, 1]), |_, _| {})
            .axis("b", labeled([0u64, 1]), |_, _| {})
            .build();
        // Same labels, distinct points -> distinct seeds.
        let mut seeds: Vec<u64> = ab.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "per-point seeds must be distinct");
        // Rebuilding the identical grid reproduces identical seeds.
        let again = SweepBuilder::new(ScenarioSpec::with_window(1))
            .axis("a", labeled([0u64, 1]), |_, _| {})
            .axis("b", labeled([0u64, 1]), |_, _| {})
            .build();
        for (x, y) in ab.iter().zip(&again) {
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn base_seed_feeds_point_seeds() {
        let mut base = ScenarioSpec::with_window(1);
        base.seed = 7;
        let a = SweepBuilder::new(base.clone())
            .axis("x", labeled([1u64]), |_, _| {})
            .build();
        base.seed = 8;
        let b = SweepBuilder::new(base)
            .axis("x", labeled([1u64]), |_, _| {})
            .build();
        assert_ne!(a[0].seed, b[0].seed);
    }
}
