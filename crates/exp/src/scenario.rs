//! One simulation point, described declaratively.

use std::any::Any;
use std::sync::Arc;

use chopim_core::prelude::*;

/// A declarative, cloneable description of one simulation point.
///
/// A spec is everything needed to reproduce a single figure data point:
/// the machine configuration, the NDA workload running against the host
/// mix, the measurement window, and the seed. Specs are usually produced
/// by [`SweepBuilder`](crate::SweepBuilder), which also assigns `tags`
/// (axis-name → value-label), the typed axis `values`, and a
/// deterministic per-point `seed`.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Human-readable point label (the joined tag values).
    pub label: String,
    /// `(axis name, value label)` pairs in axis-declaration order.
    pub tags: Vec<(String, String)>,
    /// The typed axis values behind `tags`, for executors and `finish`
    /// hooks that need more than the label — see [`ScenarioSpec::value`].
    pub values: Vec<(String, Arc<dyn Any + Send + Sync>)>,
    /// Machine configuration. `cfg.seed` is overwritten by `seed` at
    /// execution time.
    pub cfg: ChopimConfig,
    /// NDA workload to keep resident for the whole window.
    pub workload: Workload,
    /// Measurement window in DRAM cycles.
    pub window: u64,
    /// Per-point RNG seed (cores, policy coins).
    pub seed: u64,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("label", &self.label)
            .field("tags", &self.tags)
            .field("cfg", &self.cfg)
            .field("workload", &self.workload)
            .field("window", &self.window)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl ScenarioSpec {
    /// A bare spec: default machine, host-only workload, `window` cycles.
    pub fn with_window(window: u64) -> Self {
        ScenarioSpec {
            label: String::new(),
            tags: Vec::new(),
            values: Vec::new(),
            cfg: ChopimConfig::default(),
            workload: Workload::HostOnly,
            window,
            seed: ChopimConfig::default().seed,
        }
    }

    /// The value label of axis `name`, if this spec carries it.
    pub fn tag(&self, name: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The typed value of axis `name`. `T` must be the value type the
    /// axis was declared with; a mismatched `T` returns `None`, so
    /// callers `expect` rather than silently proceeding.
    pub fn value<T: Any>(&self, name: &str) -> Option<&T> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.downcast_ref::<T>())
    }
}

/// The NDA-side workload resident during the measurement window.
///
/// Covers the paper's evaluation kernels. Every variant relaunches for
/// the whole window (`ChopimSystem::run_relaunching`), matching the §VI
/// methodology; [`Workload::HostOnly`] runs the host mix alone.
#[derive(Debug, Clone)]
pub enum Workload {
    /// No NDA traffic; the host mix runs alone (Fig. 2).
    HostOnly,
    /// One elementwise vector op, relaunched over a resident operand set
    /// of `elems` f32 per vector (Figs. 10-14). Coefficients and operand
    /// arity are derived from the opcode (the paper's shapes).
    Elementwise {
        op: Opcode,
        elems: usize,
        opts: LaunchOpts,
    },
    /// Dense GEMV, `rows x cols` (part of Fig. 13).
    Gemv { rows: usize, cols: usize },
    /// The SVRG average-gradient macro stream: per-sample AXPY rows into
    /// per-NDA private accumulators (Fig. 8 / Fig. 14 "SVRG").
    MacroAxpyRows {
        rows: usize,
        d: usize,
        rows_per_instr: usize,
        opts: LaunchOpts,
    },
    /// GEMV + DOT + AXPY + AXPBY iteration stream (Fig. 14 "CG").
    CgStream {
        rows: usize,
        n: usize,
        opts: LaunchOpts,
    },
    /// GEMV + XMY + NRM2 distance-evaluation stream (Fig. 14 "SC").
    ScStream {
        n: usize,
        d: usize,
        opts: LaunchOpts,
    },
}

impl Workload {
    /// Elementwise op with default launch options.
    pub fn elementwise(op: Opcode, elems: usize) -> Self {
        Workload::Elementwise {
            op,
            elems,
            opts: LaunchOpts::default(),
        }
    }

    /// Elementwise op with explicit launch options.
    pub fn elementwise_opts(op: Opcode, elems: usize, opts: LaunchOpts) -> Self {
        Workload::Elementwise { op, elems, opts }
    }
}

/// Allocate and initialize a deterministic f32 vector of `len`.
fn init_data(len: usize) -> Vec<f32> {
    (0..len).map(|i| (i % 101) as f32 * 0.5 - 25.0).collect()
}

/// Execute one spec: build the machine, keep the workload resident for
/// the window, and return the [`SimReport`].
///
/// This is the standard executor the benches share; sweeps whose points
/// are not plain `ChopimSystem` windows (e.g. the SVRG convergence
/// figures) pass their own closure to
/// [`SweepRunner::run`](crate::SweepRunner::run) instead.
pub fn run_scenario(spec: &ScenarioSpec) -> SimReport {
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let mut sys = ChopimSystem::new(cfg);
    let window = spec.window;

    match spec.workload.clone() {
        Workload::HostOnly => {
            sys.run(window);
        }
        Workload::Elementwise { op, elems, opts } => {
            // Allocate only the operands this opcode touches: sweeps run
            // many points concurrently, and the big-operand figures
            // (fig13: 8 MB/rank) would otherwise hold three full vectors
            // per in-flight point regardless of arity.
            let needs_y = !matches!(op, Opcode::Nrm2 | Opcode::Scal);
            let needs_z = matches!(op, Opcode::Axpby | Opcode::Axpbypcz | Opcode::Xmy);
            let x = sys.runtime.vector(elems, Sharing::Shared);
            let y = if needs_y {
                sys.runtime.vector(elems, Sharing::Shared)
            } else {
                x
            };
            let z = if needs_z {
                sys.runtime.vector(elems, Sharing::Shared)
            } else {
                x
            };
            {
                let data = init_data(elems);
                sys.runtime.write_vector(x, &data);
                if needs_y {
                    sys.runtime.write_vector(y, &data);
                }
            }
            sys.run_relaunching(window, |rt| match op {
                Opcode::Axpby => {
                    rt.launch_elementwise(op, vec![2.0, -1.0], vec![x, y], Some(z), opts)
                }
                Opcode::Axpbypcz => {
                    rt.launch_elementwise(op, vec![2.0, -1.0, 0.5], vec![x, y, z], Some(z), opts)
                }
                Opcode::Axpy => rt.launch_elementwise(op, vec![0.5], vec![x], Some(y), opts),
                Opcode::Copy => rt.launch_elementwise(op, vec![], vec![x], Some(y), opts),
                Opcode::Xmy => rt.launch_elementwise(op, vec![], vec![x, y], Some(z), opts),
                Opcode::Dot => rt.launch_elementwise(op, vec![], vec![x, y], None, opts),
                Opcode::Nrm2 => rt.launch_elementwise(op, vec![], vec![x], None, opts),
                Opcode::Scal => rt.launch_elementwise(op, vec![0.99], vec![], Some(x), opts),
                Opcode::Gemv => panic!("use Workload::Gemv for GEMV points"),
            });
        }
        Workload::Gemv { rows, cols } => {
            let a = sys.runtime.matrix(rows, cols);
            let x = sys.runtime.vector(cols, Sharing::Shared);
            let y = sys.runtime.vector(rows, Sharing::Shared);
            sys.runtime.write_vector(x, &vec![1.0; cols]);
            sys.run_relaunching(window, |rt| rt.launch_gemv(y, a, x, LaunchOpts::default()));
        }
        Workload::MacroAxpyRows {
            rows,
            d,
            rows_per_instr,
            opts,
        } => {
            let xs = sys.runtime.matrix(rows, d);
            let a_pvt = sys.runtime.vector(d, Sharing::Private);
            let alphas = vec![0.01f32; rows];
            sys.run_relaunching(window, |rt| {
                rt.launch_macro_axpy_rows(a_pvt, alphas.clone(), xs, rows_per_instr, opts)
            });
        }
        Workload::CgStream { rows, n, opts } => {
            let a = sys.runtime.matrix(rows, n);
            let p = sys.runtime.vector(n, Sharing::Shared);
            let ap = sys.runtime.vector(rows, Sharing::Shared);
            let r = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(p, &vec![1.0; n]);
            sys.runtime.write_vector(r, &vec![1.0; n]);
            let mut phase = 0usize;
            sys.run_relaunching(window, move |rt| {
                phase = (phase + 1) % 4;
                match phase {
                    0 => rt.launch_gemv(ap, a, p, LaunchOpts::default()),
                    1 => rt.launch_elementwise(Opcode::Dot, vec![], vec![ap, ap], None, opts),
                    2 => rt.launch_elementwise(Opcode::Axpy, vec![0.5], vec![p], Some(r), opts),
                    _ => rt.launch_elementwise(
                        Opcode::Axpby,
                        vec![1.0, 0.5],
                        vec![r, p],
                        Some(p),
                        opts,
                    ),
                }
            });
        }
        Workload::ScStream { n, d, opts } => {
            let pts = sys.runtime.matrix(n, d);
            let c = sys.runtime.vector(d, Sharing::Shared);
            let dots = sys.runtime.vector(n, Sharing::Shared);
            let acc = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(c, &vec![1.0; d]);
            let mut phase = 0usize;
            sys.run_relaunching(window, move |rt| {
                phase = (phase + 1) % 3;
                match phase {
                    0 => rt.launch_gemv(dots, pts, c, LaunchOpts::default()),
                    1 => rt.launch_elementwise(
                        Opcode::Xmy,
                        vec![],
                        vec![dots, dots],
                        Some(acc),
                        opts,
                    ),
                    _ => rt.launch_elementwise(Opcode::Nrm2, vec![], vec![dots], None, opts),
                }
            });
        }
    }
    sys.report()
}
