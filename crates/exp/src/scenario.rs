//! One simulation point, described declaratively.

use std::any::Any;
use std::sync::Arc;

use chopim_core::prelude::*;

/// A declarative, cloneable description of one simulation point.
///
/// A spec is everything needed to reproduce a single figure data point:
/// the machine configuration, the NDA workload running against the host
/// mix, the measurement window, and the seed. Specs are usually produced
/// by [`SweepBuilder`](crate::SweepBuilder), which also assigns `tags`
/// (axis-name → value-label), the typed axis `values`, and a
/// deterministic per-point `seed`.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Human-readable point label (the joined tag values).
    pub label: String,
    /// `(axis name, value label)` pairs in axis-declaration order.
    pub tags: Vec<(String, String)>,
    /// The typed axis values behind `tags`, for executors and `finish`
    /// hooks that need more than the label — see [`ScenarioSpec::value`].
    pub values: Vec<(String, Arc<dyn Any + Send + Sync>)>,
    /// Machine configuration. `cfg.seed` is overwritten by `seed` at
    /// execution time.
    pub cfg: ChopimConfig,
    /// NDA workload to keep resident for the whole window.
    pub workload: Workload,
    /// Measurement window in DRAM cycles.
    pub window: u64,
    /// Per-point RNG seed (cores, policy coins).
    pub seed: u64,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("label", &self.label)
            .field("tags", &self.tags)
            .field("cfg", &self.cfg)
            .field("workload", &self.workload)
            .field("window", &self.window)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl ScenarioSpec {
    /// A bare spec: default machine, host-only workload, `window` cycles.
    pub fn with_window(window: u64) -> Self {
        ScenarioSpec {
            label: String::new(),
            tags: Vec::new(),
            values: Vec::new(),
            cfg: ChopimConfig::default(),
            workload: Workload::HostOnly,
            window,
            seed: ChopimConfig::default().seed,
        }
    }

    /// The value label of axis `name`, if this spec carries it.
    pub fn tag(&self, name: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The typed value of axis `name`. `T` must be the value type the
    /// axis was declared with; a mismatched `T` returns `None`, so
    /// callers `expect` rather than silently proceeding.
    pub fn value<T: Any>(&self, name: &str) -> Option<&T> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.downcast_ref::<T>())
    }
}

/// The NDA-side workload resident during the measurement window.
///
/// Covers the paper's evaluation kernels. Every variant runs as a
/// resident relaunching stream ([`ChopimSystem::spawn_stream`]) on its
/// own [`Session`], matching the §VI methodology;
/// [`Workload::HostOnly`] runs the host mix alone, and
/// [`Workload::MultiTenant`] gives each tenant its own session so
/// independent streams share the machine under fair-share arbitration.
#[derive(Debug, Clone)]
pub enum Workload {
    /// No NDA traffic; the host mix runs alone (Fig. 2).
    HostOnly,
    /// One elementwise vector op, relaunched over a resident operand set
    /// of `elems` f32 per vector (Figs. 10-14). Coefficients and operand
    /// arity are derived from the opcode (the paper's shapes).
    Elementwise {
        op: Opcode,
        elems: usize,
        opts: LaunchOpts,
    },
    /// Dense GEMV, `rows x cols` (part of Fig. 13).
    Gemv { rows: usize, cols: usize },
    /// The SVRG average-gradient macro stream: per-sample AXPY rows into
    /// per-NDA private accumulators (Fig. 8 / Fig. 14 "SVRG").
    MacroAxpyRows {
        rows: usize,
        d: usize,
        rows_per_instr: usize,
        opts: LaunchOpts,
    },
    /// GEMV + DOT + AXPY + AXPBY iteration stream (Fig. 14 "CG").
    CgStream {
        rows: usize,
        n: usize,
        opts: LaunchOpts,
    },
    /// GEMV + XMY + NRM2 distance-evaluation stream (Fig. 14 "SC").
    ScStream {
        n: usize,
        d: usize,
        opts: LaunchOpts,
    },
    /// Several tenants sharing one machine, each as its own [`Session`]
    /// with a resident stream — the concurrent-submission axis the
    /// session API exists for. Nested [`Workload::MultiTenant`]s are not
    /// allowed; a [`Workload::HostOnly`] tenant contributes nothing.
    MultiTenant {
        /// One inner workload per tenant.
        tenants: Vec<Workload>,
    },
    /// A fleet of identical streaming tenants under mixed QoS classes —
    /// the thousand-tenant scaling axis. Each tenant is its own
    /// [`Session`] streaming an in-place `SCAL` over one of
    /// `shared_vectors` shared resident vectors (vector `t %
    /// shared_vectors`), with a deterministic class rotation: every
    /// 32nd tenant is `LatencySensitive`, the rest are `Batch` with
    /// weights rotating through {1, 2, 4}.
    TenantFleet {
        /// Number of sessions (each with one resident stream).
        tenants: usize,
        /// Shared resident vectors the fleet's streams rotate over.
        shared_vectors: usize,
        /// Elements per shared vector.
        elems: usize,
    },
}

impl Workload {
    /// Elementwise op with default launch options.
    pub fn elementwise(op: Opcode, elems: usize) -> Self {
        Workload::Elementwise {
            op,
            elems,
            opts: LaunchOpts::default(),
        }
    }

    /// Elementwise op with explicit launch options.
    pub fn elementwise_opts(op: Opcode, elems: usize, opts: LaunchOpts) -> Self {
        Workload::Elementwise { op, elems, opts }
    }
}

/// Allocate and initialize a deterministic f32 vector of `len`.
fn init_data(len: usize) -> Vec<f32> {
    (0..len).map(|i| (i % 101) as f32 * 0.5 - 25.0).collect()
}

/// Allocate a workload's resident operands and spawn its relaunching
/// stream on `sess`. [`Workload::HostOnly`] spawns nothing.
///
/// # Panics
///
/// Panics on a nested [`Workload::MultiTenant`] (tenants must be leaf
/// workloads) and on `Workload::Elementwise` with [`Opcode::Gemv`].
pub fn spawn_workload(sys: &mut ChopimSystem, sess: Session, workload: Workload) {
    match workload {
        Workload::HostOnly => {}
        Workload::Elementwise { op, elems, opts } => {
            // Allocate only the operands this opcode touches: sweeps run
            // many points concurrently, and the big-operand figures
            // (fig13: 8 MB/rank) would otherwise hold three full vectors
            // per in-flight point regardless of arity.
            let needs_y = !matches!(op, Opcode::Nrm2 | Opcode::Scal);
            let needs_z = matches!(op, Opcode::Axpby | Opcode::Axpbypcz | Opcode::Xmy);
            let x = sys.runtime.vector(elems, Sharing::Shared);
            let y = if needs_y {
                sys.runtime.vector(elems, Sharing::Shared)
            } else {
                x
            };
            let z = if needs_z {
                sys.runtime.vector(elems, Sharing::Shared)
            } else {
                x
            };
            {
                let data = init_data(elems);
                sys.runtime.write_vector(x, &data);
                if needs_y {
                    sys.runtime.write_vector(y, &data);
                }
            }
            sys.spawn_stream(sess, move |rt, s| {
                // The paper's per-opcode operand shapes.
                let (scalars, inputs, output) = match op {
                    Opcode::Axpby => (vec![2.0, -1.0], vec![x, y], Some(z)),
                    Opcode::Axpbypcz => (vec![2.0, -1.0, 0.5], vec![x, y, z], Some(z)),
                    Opcode::Axpy => (vec![0.5], vec![x], Some(y)),
                    Opcode::Copy => (vec![], vec![x], Some(y)),
                    Opcode::Xmy => (vec![], vec![x, y], Some(z)),
                    Opcode::Dot => (vec![], vec![x, y], None),
                    Opcode::Nrm2 => (vec![], vec![x], None),
                    Opcode::Scal => (vec![0.99], vec![], Some(x)),
                    Opcode::Gemv => panic!("use Workload::Gemv for GEMV points"),
                };
                s.elementwise(rt, op, scalars, inputs, output)
                    .opts(opts)
                    .submit()
            });
        }
        Workload::Gemv { rows, cols } => {
            let a = sys.runtime.matrix(rows, cols);
            let x = sys.runtime.vector(cols, Sharing::Shared);
            let y = sys.runtime.vector(rows, Sharing::Shared);
            sys.runtime.write_vector(x, &vec![1.0; cols]);
            sys.spawn_stream(sess, move |rt, s| s.gemv(rt, y, a, x).submit());
        }
        Workload::MacroAxpyRows {
            rows,
            d,
            rows_per_instr,
            opts,
        } => {
            let xs = sys.runtime.matrix(rows, d);
            let a_pvt = sys.runtime.vector(d, Sharing::Private);
            let alphas = vec![0.01f32; rows];
            sys.spawn_stream(sess, move |rt, s| {
                s.axpy_rows(rt, a_pvt, alphas.clone(), xs, rows_per_instr)
                    .opts(opts)
                    .submit()
            });
        }
        Workload::CgStream { rows, n, opts } => {
            let a = sys.runtime.matrix(rows, n);
            let p = sys.runtime.vector(n, Sharing::Shared);
            let ap = sys.runtime.vector(rows, Sharing::Shared);
            let r = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(p, &vec![1.0; n]);
            sys.runtime.write_vector(r, &vec![1.0; n]);
            let mut phase = 0usize;
            sys.spawn_stream(sess, move |rt, s| {
                phase = (phase + 1) % 4;
                match phase {
                    0 => s.gemv(rt, ap, a, p).submit(),
                    1 => s
                        .elementwise(rt, Opcode::Dot, vec![], vec![ap, ap], None)
                        .opts(opts)
                        .submit(),
                    2 => s
                        .elementwise(rt, Opcode::Axpy, vec![0.5], vec![p], Some(r))
                        .opts(opts)
                        .submit(),
                    _ => s
                        .elementwise(rt, Opcode::Axpby, vec![1.0, 0.5], vec![r, p], Some(p))
                        .opts(opts)
                        .submit(),
                }
            });
        }
        Workload::ScStream { n, d, opts } => {
            let pts = sys.runtime.matrix(n, d);
            let c = sys.runtime.vector(d, Sharing::Shared);
            let dots = sys.runtime.vector(n, Sharing::Shared);
            let acc = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(c, &vec![1.0; d]);
            let mut phase = 0usize;
            sys.spawn_stream(sess, move |rt, s| {
                phase = (phase + 1) % 3;
                match phase {
                    0 => s.gemv(rt, dots, pts, c).submit(),
                    1 => s
                        .elementwise(rt, Opcode::Xmy, vec![], vec![dots, dots], Some(acc))
                        .opts(opts)
                        .submit(),
                    _ => s
                        .elementwise(rt, Opcode::Nrm2, vec![], vec![dots], None)
                        .opts(opts)
                        .submit(),
                }
            });
        }
        Workload::MultiTenant { .. } => panic!("MultiTenant tenants must be leaf workloads"),
        Workload::TenantFleet { .. } => {
            panic!("TenantFleet spawns its own sessions; use spawn_spec_workload")
        }
    }
}

/// The deterministic QoS class of fleet tenant `t` (see
/// [`Workload::TenantFleet`]).
pub fn fleet_qos(t: usize) -> QosClass {
    if t.is_multiple_of(32) {
        QosClass::LatencySensitive
    } else {
        QosClass::Batch {
            weight: [1, 2, 4][t % 3],
        }
    }
}

/// Execute one spec: build the machine, keep the workload resident for
/// the window (one session and stream per tenant), and return the
/// [`SimReport`].
///
/// This is the standard executor the benches share; sweeps whose points
/// are not plain `ChopimSystem` windows (e.g. the SVRG convergence
/// figures) pass their own closure to
/// [`SweepRunner::run`](crate::SweepRunner::run) instead.
pub fn run_scenario(spec: &ScenarioSpec) -> SimReport {
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let mut sys = ChopimSystem::new(cfg);
    spawn_spec_workload(&mut sys, spec.workload.clone());
    sys.run(spec.window);
    sys.report()
}

/// Spawn a spec's workload: one session and stream per tenant for
/// [`Workload::MultiTenant`], the default session otherwise.
pub fn spawn_spec_workload(sys: &mut ChopimSystem, workload: Workload) {
    match workload {
        Workload::MultiTenant { tenants } => {
            for t in tenants {
                let sess = sys.runtime.create_session();
                spawn_workload(sys, sess, t);
            }
        }
        Workload::TenantFleet {
            tenants,
            shared_vectors,
            elems,
        } => {
            let vecs: Vec<VecId> = (0..shared_vectors.max(1))
                .map(|_| sys.runtime.vector(elems, Sharing::Shared))
                .collect();
            let data = init_data(elems);
            for &v in &vecs {
                sys.runtime.write_vector(v, &data);
            }
            for t in 0..tenants {
                let sess = sys.runtime.create_session();
                sys.runtime.set_qos(sess, fleet_qos(t));
                let x = vecs[t % vecs.len()];
                sys.spawn_stream(sess, move |rt, s| {
                    s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(x))
                        .submit()
                });
            }
        }
        w => {
            let sess = sys.runtime.default_session();
            spawn_workload(sys, sess, w);
        }
    }
}

/// Capture a warm-start image for `spec`: build its machine, run
/// `prefix` cycles with the workload **not yet spawned** (the host mix
/// and refresh machinery run and populate MC queues, core state, bank
/// timing, and clock dividers), and snapshot. Op streams cannot be
/// serialized, so the warm-up prefix is exactly the part of a scenario
/// that precedes stream spawning; fork the image into full points with
/// [`run_scenario_from`].
pub fn capture_prefix(spec: &ScenarioSpec, prefix: u64) -> Vec<u8> {
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let mut sys = ChopimSystem::new(cfg);
    sys.run(prefix);
    sys.snapshot()
        .expect("a machine without spawned streams must snapshot")
}

/// Execute one spec from a warm-start image instead of a cold machine:
/// resume the snapshot, spawn the workload, run the window. The image
/// must come from a [`capture_prefix`] whose spec agrees with this one
/// on the semantic configuration and seed — only the engine-mode knobs
/// (`sim_threads`, `fixed_window`, `fast_forward`, `verify_fsm`,
/// `trace_path`) may differ. Bit-identical to
/// [`run_scenario_prefixed`] with the same prefix (enforced by
/// `tests/snapshot_lockstep.rs`).
pub fn run_scenario_from(spec: &ScenarioSpec, image: &[u8]) -> SimReport {
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let mut sys = ChopimSystem::resume(cfg, image)
        .expect("warm-start image must match the spec's semantic configuration");
    spawn_spec_workload(&mut sys, spec.workload.clone());
    sys.run(spec.window);
    sys.report()
}

/// The cold-path oracle for [`run_scenario_from`]: build the machine,
/// run `prefix` cycles before spawning the workload, then run the
/// window.
pub fn run_scenario_prefixed(spec: &ScenarioSpec, prefix: u64) -> SimReport {
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let mut sys = ChopimSystem::new(cfg);
    sys.run(prefix);
    spawn_spec_workload(&mut sys, spec.workload.clone());
    sys.run(spec.window);
    sys.report()
}

/// A two-session op-graph scenario for the lockstep equivalence suites:
/// session A runs an ordered chain, session B runs ops gated on A's
/// handles across the session boundary (explicit DAG edges, one of them
/// `unordered`), then both sessions turn into resident streams for the
/// remainder of `window`. Exercises cross-session completion routing,
/// DAG staging, and fair-share arbitration under every engine mode.
pub fn run_two_session_dag(mut cfg: ChopimConfig, window: u64, seed: u64) -> SimReport {
    cfg.seed = seed;
    let mut sys = ChopimSystem::new(cfg);
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let n = 1 << 13;
    let x = sys.runtime.vector(n, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    let u = sys.runtime.vector(n, Sharing::Shared);
    let v = sys.runtime.vector(n, Sharing::Shared);
    let data = init_data(n);
    sys.runtime.write_vector(x, &data);
    sys.runtime.write_vector(v, &data);

    // Session A: y = x, then y *= 2 (implicit program order).
    let _a1 = sa
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let a2 = sa
        .elementwise(&mut sys.runtime, Opcode::Scal, vec![2.0], vec![], Some(y))
        .submit();
    // Session B: u = x independently; then v += y gated on A's chain via
    // an explicit cross-session edge, free of B's program order.
    let b1 = sb
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(u))
        .submit();
    let b2 = sb
        .elementwise(&mut sys.runtime, Opcode::Axpy, vec![1.0], vec![y], Some(v))
        .after(a2)
        .after(b1)
        .unordered()
        .submit();
    sys.drive(Waitable::all_of([a2, b2]), window);

    // Both tenants stream for the rest of the window under fair share.
    sys.spawn_stream(sa, move |rt, s| {
        s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![x], Some(y))
            .submit()
    });
    sys.spawn_stream(sb, move |rt, s| {
        s.elementwise(rt, Opcode::Dot, vec![], vec![u, v], None)
            .submit()
    });
    sys.run(window);
    sys.report()
}
