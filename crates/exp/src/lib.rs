//! # chopim-exp — the experiment subsystem
//!
//! Every figure in the paper is a *sweep*: the same machine simulated over
//! a grid of configuration points (policies, bank partitions, launch
//! granularities, rank counts, host mixes). This crate turns those sweeps
//! from hand-rolled per-bench loops into three declarative pieces:
//!
//! * [`ScenarioSpec`] — a cloneable description of one simulation point:
//!   a [`ChopimConfig`](chopim_core::ChopimConfig), a declarative
//!   [`Workload`], a measurement window, and a seed;
//! * [`SweepBuilder`] — builds the cartesian grid of specs from named
//!   axes, tagging each point and deriving a deterministic per-point
//!   seed from the tag set (stable under reordering and threading);
//! * [`SweepRunner`] — executes points across threads (or serially; the
//!   results are bit-identical either way) and collects them into a
//!   tagged [`SweepResult`] with CSV/JSON emit and table helpers.
//!
//! ## Example
//!
//! ```
//! use chopim_exp::prelude::*;
//! use chopim_core::prelude::*;
//!
//! let specs = SweepBuilder::new(ScenarioSpec::with_window(5_000))
//!     .axis("banks", [("shared", 0usize), ("partitioned", 1)],
//!           |s, &r| s.cfg.reserved_banks = r)
//!     .axis("op", [("DOT", Opcode::Dot), ("COPY", Opcode::Copy)],
//!           |s, &op| s.workload = Workload::elementwise(op, 1 << 10))
//!     .build();
//! assert_eq!(specs.len(), 4);
//! let result = SweepRunner::serial().run_reports(&specs);
//! let dot = result.get(&[("banks", "partitioned"), ("op", "DOT")]);
//! assert!(dot.result.cycles >= 5_000);
//! ```

#![forbid(unsafe_code)]

pub mod grid;
pub mod perfmatrix;
pub mod result;
pub mod runner;
pub mod scenario;

pub use grid::{labeled, SweepBuilder};
pub use perfmatrix::{bench_window, perf_matrix};
pub use result::{rows_to_csv, Metrics, SweepPoint, SweepResult};
pub use runner::SweepRunner;
pub use scenario::{
    capture_prefix, fleet_qos, run_scenario, run_scenario_from, run_scenario_prefixed,
    run_two_session_dag, spawn_spec_workload, spawn_workload, ScenarioSpec, Workload,
};

/// Everything needed to declare and run a sweep.
pub mod prelude {
    pub use crate::grid::{labeled, SweepBuilder};
    pub use crate::result::{rows_to_csv, Metrics, SweepPoint, SweepResult};
    pub use crate::runner::SweepRunner;
    pub use crate::scenario::{run_scenario, spawn_workload, ScenarioSpec, Workload};
}
