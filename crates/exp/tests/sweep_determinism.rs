//! The acceptance property of the experiment subsystem: running the same
//! spec grid serially and in parallel yields bit-identical `SimReport`s,
//! and identical seeds reproduce identical reports across runs.

use chopim_core::prelude::*;
use chopim_exp::prelude::*;

/// A small but real grid: 2 bank modes x 2 ops x 2 mixes = 8 simulation
/// points, each a genuine `ChopimSystem` window with host + NDA traffic.
fn grid(window: u64, base_seed: u64) -> Vec<ScenarioSpec> {
    let mut base = ScenarioSpec::with_window(window);
    base.seed = base_seed;
    base.cfg.dram = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    SweepBuilder::new(base)
        .axis(
            "banks",
            [("shared", 0usize), ("partitioned", 1)],
            |s, &r| s.cfg.reserved_banks = r,
        )
        .axis(
            "op",
            [("DOT", Opcode::Dot), ("COPY", Opcode::Copy)],
            |s, &op| s.workload = Workload::elementwise(op, 1 << 12),
        )
        .axis("mix", [("mix0", 0usize), ("mix4", 4)], |s, &m| {
            s.cfg.mix = Some(MixId::new(m).unwrap())
        })
        .build()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let specs = grid(4_000, 11);
    assert_eq!(specs.len(), 8);

    let serial = SweepRunner::serial().run_reports(&specs);
    let parallel = SweepRunner::with_threads(4).run_reports(&specs);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.spec.label, p.spec.label, "point order must match");
        assert_eq!(
            s.result, p.result,
            "parallel run diverged from serial at point {}",
            s.spec.label
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let specs = grid(3_000, 23);
    let a = SweepRunner::with_threads(3).run_reports(&specs);
    let b = SweepRunner::with_threads(2).run_reports(&grid(3_000, 23));
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.result, y.result, "rerun diverged at {}", x.spec.label);
    }
}

#[test]
fn different_base_seeds_change_the_simulation() {
    // Guards against per-point seeding being accidentally constant: with
    // host traffic present, a different seed must perturb the reports
    // somewhere in the grid.
    let a = SweepRunner::serial().run_reports(&grid(3_000, 1));
    let b = SweepRunner::serial().run_reports(&grid(3_000, 2));
    assert!(
        a.iter().zip(b.iter()).any(|(x, y)| x.result != y.result),
        "base seed had no effect on any of the 8 points"
    );
}

#[test]
fn csv_and_json_cover_every_point() {
    let specs = grid(2_000, 5);
    let res = SweepRunner::with_threads(4).run_reports(&specs);
    let csv = res.to_csv();
    // Header + 8 points.
    assert_eq!(csv.lines().count(), 9);
    assert!(csv.lines().next().unwrap().starts_with("banks,op,mix,"));
    let json = res.to_json();
    assert_eq!(json.matches("\"tags\"").count(), 8);
}
