//! Lockstep equivalence of the event-horizon fast-forward: for every
//! scenario in the shared perf matrix, running with `fast_forward`
//! enabled must produce a `SimReport` bit-identical to the naive
//! cycle-by-cycle loop.
//!
//! This is the contract that makes the fast path trustworthy: skipping is
//! only legal across cycles in which *every* component is provably idle,
//! so any divergence — a missed refresh, a misplaced launch packet, an
//! off-by-one stall count — shows up as a report mismatch. The matrix is
//! the same `chopim_exp::perf_matrix` the `chopim-perf` harness measures,
//! so the equivalence job always covers exactly what the perf gate gates.
//!
//! CI runs this across 2 seeds x all matrix scenarios (the `equivalence`
//! job); `CHOPIM_BENCH_CYCLES` scales the window for the weekly long run.

use chopim_core::prelude::*;
use chopim_exp::{bench_window, perf_matrix, run_scenario, ScenarioSpec, Workload};

fn window() -> u64 {
    bench_window(30_000)
}

fn assert_lockstep(name: &str, spec: &ScenarioSpec, seed: u64) {
    let mut naive = spec.clone();
    naive.seed = seed;
    naive.cfg.fast_forward = false;
    let mut fast = spec.clone();
    fast.seed = seed;
    fast.cfg.fast_forward = true;
    let naive_report = run_scenario(&naive);
    let fast_report = run_scenario(&fast);
    assert_eq!(
        naive_report, fast_report,
        "fast-forward diverged from the naive loop on `{name}` (seed {seed})"
    );
}

fn run_matrix_entry(name: &str) {
    let matrix = perf_matrix(window());
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == name)
        .expect("scenario in matrix");
    for seed in [1, 7] {
        assert_lockstep(name, spec, seed);
    }
}

/// Every matrix entry has a dedicated test below; this guards against a
/// new scenario being added to the matrix without lockstep coverage.
#[test]
fn matrix_is_fully_covered() {
    let names: Vec<&str> = perf_matrix(1).iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "host_only",
            "host_idle",
            "nda_only",
            "colocated_svrg",
            "colocated_mix",
            "rank_partitioned",
            "wide_host_8ch",
            "wide_colocated_8ch",
            "wide_host_16ch",
            "wide_colocated_16ch",
            "multi_tenant_2sess",
            "multi_tenant_qos",
            "multi_tenant_1k",
            "faulty_colocated_8ch"
        ],
        "new matrix scenario: add a lockstep test for it"
    );
}

#[test]
fn lockstep_host_only() {
    run_matrix_entry("host_only");
}

#[test]
fn lockstep_host_idle() {
    run_matrix_entry("host_idle");
}

#[test]
fn lockstep_nda_only() {
    run_matrix_entry("nda_only");
}

#[test]
fn lockstep_colocated_svrg() {
    run_matrix_entry("colocated_svrg");
}

#[test]
fn lockstep_colocated_mix() {
    run_matrix_entry("colocated_mix");
}

#[test]
fn lockstep_rank_partitioned() {
    run_matrix_entry("rank_partitioned");
}

#[test]
fn lockstep_wide_host_8ch() {
    run_matrix_entry("wide_host_8ch");
}

#[test]
fn lockstep_wide_colocated_8ch() {
    run_matrix_entry("wide_colocated_8ch");
}

#[test]
fn lockstep_wide_host_16ch() {
    run_matrix_entry("wide_host_16ch");
}

#[test]
fn lockstep_wide_colocated_16ch() {
    run_matrix_entry("wide_colocated_16ch");
}

#[test]
fn lockstep_multi_tenant_2sess() {
    run_matrix_entry("multi_tenant_2sess");
}

/// 32 mixed-QoS streaming tenants: the debug-build arbitration oracle is
/// active at this scale, so this point pins the ready index against a
/// full-scan re-derivation of every pick on top of naive/fast identity.
#[test]
fn lockstep_multi_tenant_qos() {
    let matrix = perf_matrix(window().min(20_000));
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == "multi_tenant_qos")
        .expect("scenario in matrix");
    for seed in [1, 7] {
        assert_lockstep(name, spec, seed);
    }
}

/// The thousand-tenant headline point, windowed down: the ready index,
/// per-NDA waitlists, and the finished-op stream pump all carry real
/// load here, and the fast path must still skip bit-identically.
#[test]
fn lockstep_multi_tenant_1k() {
    let matrix = perf_matrix(window().min(12_000));
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == "multi_tenant_1k")
        .expect("scenario in matrix");
    assert_lockstep(name, spec, 1);
}

#[test]
fn lockstep_faulty_colocated_8ch() {
    run_matrix_entry("faulty_colocated_8ch");
}

/// The two-session dependency-graph scenario (cross-session `.after()`
/// edges, an `unordered` op, then two fair-share streams): the DAG
/// stager's launch gating feeds the fast-forward horizon, so skipping
/// must stay exact under multi-tenant submission too.
#[test]
fn lockstep_dag_two_sessions() {
    let window = window().min(20_000);
    for seed in [1, 7] {
        let mk = |ff: bool| {
            let mut cfg = ChopimConfig {
                mix: MixId::new(2),
                ..ChopimConfig::default()
            };
            cfg.fast_forward = ff;
            chopim_exp::run_two_session_dag(cfg, window, seed)
        };
        assert_eq!(
            mk(false),
            mk(true),
            "fast-forward diverged from the naive loop on the two-session DAG (seed {seed})"
        );
    }
}

/// Stochastic write throttling draws a coin per attempted write; the
/// horizon logic must refuse to skip any cycle where a draw could occur
/// so the RNG stream stays aligned.
#[test]
fn lockstep_stochastic_policy() {
    let mut spec = ScenarioSpec::with_window(window().min(20_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.policy = WriteIssuePolicy::stochastic(1, 4);
    spec.workload = Workload::elementwise(Opcode::Copy, 1 << 15);
    assert_lockstep("stochastic", &spec, 3);
}

/// Packetized mode routes everything through the ingress queue; its
/// serialization delays are part of the horizon.
#[test]
fn lockstep_packetized() {
    let mut spec = ScenarioSpec::with_window(window().min(20_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.packetized_latency = 8;
    spec.workload = Workload::elementwise(Opcode::Axpy, 1 << 15);
    assert_lockstep("packetized", &spec, 5);
}

/// Non-default cross-boundary pipeline depths (delayed ingress, a
/// shrunken lookahead window) must preserve naive/fast bit-identity
/// just like the default schedule.
#[test]
fn lockstep_boundary_latencies() {
    let mut spec = ScenarioSpec::with_window(window().min(15_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.ingress_latency = 6;
    spec.cfg.completion_latency = 5;
    spec.workload = Workload::elementwise(Opcode::Axpy, 1 << 15);
    assert_lockstep("boundary_latencies", &spec, 11);
}

/// Closed-page + FCFS ablation modes exercise the eager-precharge branch
/// of the controller horizon.
#[test]
fn lockstep_closed_page_fcfs() {
    let mut spec = ScenarioSpec::with_window(window().min(20_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.scheduler = SchedulerKind::Fcfs;
    spec.cfg.page_policy = PagePolicy::Closed;
    spec.workload = Workload::elementwise(Opcode::Dot, 1 << 15);
    assert_lockstep("closed_page_fcfs", &spec, 9);
}
