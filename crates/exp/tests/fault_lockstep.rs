//! Determinism of the fault plane itself: an *active* `FaultPlan` must
//! produce bit-identical `SimReport`s — fault counters included —
//! across serial, 2-thread, and 4-thread execution, across the naive
//! and fast-forward loops, and across the fixed-window oracle. The
//! fault streams are keyed on per-shard event counters (not wall
//! cycles), and the only cycle-keyed fault (rank death) is folded into
//! the shard horizon, so every engine variant must draw the exact same
//! schedule and make the exact same recovery decisions.
//!
//! Also covers snapshot/restore under fire: capturing mid-run with
//! faults enabled and resuming must continue bit-identically to a run
//! that never snapshotted — including a plan whose rank death fires
//! *before* the capture point, so the quarantine/death state itself
//! rides through the image.

use chopim_core::prelude::*;
use chopim_exp::{
    bench_window, capture_prefix, run_scenario, run_scenario_from, run_scenario_prefixed,
    ScenarioSpec, Workload,
};

fn window() -> u64 {
    bench_window(20_000)
}

/// A co-located point with real NDA completion traffic: the SPEC mix
/// against a fine-grained elementwise stream (small chunks, so many
/// instructions retire inside the window and the retirement-keyed fault
/// streams actually draw), with a short launch timeout so drops and
/// hangs retry in-window.
fn faulted_spec(plan: &str, w: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::with_window(w);
    spec.cfg.mix = MixId::new(2);
    spec.cfg.faults = FaultPlan::parse(plan);
    spec.cfg.instr_timeout = 8_000;
    spec.workload = Workload::elementwise_opts(
        Opcode::Axpy,
        1 << 13,
        LaunchOpts {
            granularity_lines: Some(4),
            barrier_per_chunk: false,
        },
    );
    spec
}

/// The full engine cross-product on one spec: serial naive is the
/// oracle; serial/2-thread/4-thread fast, 4-thread naive, and the
/// fixed-window schedule must all match it bit-for-bit.
fn assert_fault_lockstep(label: &str, spec: &ScenarioSpec) -> SimReport {
    let run = |threads: usize, ff: bool, fixed: bool| {
        let mut s = spec.clone();
        s.cfg.sim_threads = threads;
        s.cfg.fast_forward = ff;
        s.cfg.fixed_window = fixed;
        run_scenario(&s)
    };
    let oracle = run(1, false, false);
    for (mode, threads, ff, fixed) in [
        ("serial fast", 1usize, true, false),
        ("2-thread fast", 2, true, false),
        ("4-thread fast", 4, true, false),
        ("4-thread naive", 4, false, false),
        ("fixed-window", 1, true, true),
    ] {
        assert_eq!(
            oracle,
            run(threads, ff, fixed),
            "{mode} diverged from serial naive under `{label}`"
        );
    }
    oracle
}

#[test]
fn fault_lockstep_transient() {
    let r = assert_fault_lockstep("transient", &faulted_spec("seed=3,transient=60", window()));
    assert!(r.faults.transient_faults > 0, "plan must actually fire");
    assert!(r.faults.instr_retries > 0, "failed launches must retry");
}

#[test]
fn fault_lockstep_hang() {
    let r = assert_fault_lockstep("hang", &faulted_spec("seed=5,hang=80:150", window()));
    assert!(r.faults.fsm_hangs > 0, "plan must actually fire");
}

#[test]
fn fault_lockstep_drop() {
    let r = assert_fault_lockstep("drop", &faulted_spec("seed=11,drop=70", window()));
    assert!(r.faults.completions_dropped > 0, "plan must actually fire");
    assert!(
        r.faults.instr_timeouts > 0,
        "dropped completions must hit the launch timeout"
    );
}

#[test]
fn fault_lockstep_delay() {
    let r = assert_fault_lockstep("delay", &faulted_spec("seed=13,delay=50:96", window()));
    assert!(r.faults.completions_delayed > 0, "plan must actually fire");
}

#[test]
fn fault_lockstep_bitflip_ecc() {
    let r = assert_fault_lockstep(
        "bitflip",
        &faulted_spec("seed=17,bitflip=200,uncorrectable=20", window()),
    );
    assert!(r.dram.ecc_corrected > 0, "ECC must correct some flips");
    assert!(
        r.dram.ecc_uncorrectable > 0,
        "some flips must be detected-uncorrectable"
    );
}

#[test]
fn fault_lockstep_rank_death() {
    let mut spec = faulted_spec("seed=19", window());
    spec.cfg.faults.rank_death_cycle = window() / 3;
    spec.cfg.faults.rank_death_nda = 1;
    let r = assert_fault_lockstep("rank_death", &spec);
    assert_eq!(r.faults.rank_deaths, 1);
    assert!(
        r.faults.ranks_quarantined > 0,
        "the dead rank must be quarantined once a completion reports it"
    );
}

/// Every fault class firing at once — injection, retry, timeout, and
/// quarantine all interleaved — still bit-identical everywhere.
#[test]
fn fault_lockstep_all_classes() {
    let mut spec = faulted_spec(
        "seed=7,bitflip=400,uncorrectable=10,transient=90,hang=110:120,drop=100,delay=80:48",
        window(),
    );
    spec.cfg.faults.rank_death_cycle = window() / 2;
    spec.cfg.faults.rank_death_nda = 2;
    let r = assert_fault_lockstep("all_classes", &spec);
    assert!(r.faults.transient_faults > 0);
    assert!(r.faults.completions_dropped > 0);
    assert_eq!(r.faults.rank_deaths, 1);
}

/// Off the lookahead-window grid, as in `snapshot_lockstep`.
const PREFIX: u64 = 4_003;

/// Snapshot-at-N + resume must equal the straight run with the plan
/// active on both sides of the capture point.
fn assert_snapshot_under_faults(label: &str, spec: &ScenarioSpec) {
    let oracle = run_scenario_prefixed(spec, PREFIX);
    let image = capture_prefix(spec, PREFIX);
    for (mode, threads, fixed) in [
        ("serial", 1usize, false),
        ("2-thread", 2, false),
        ("fixed-window", 1, true),
    ] {
        let mut s = spec.clone();
        s.cfg.sim_threads = threads;
        s.cfg.fixed_window = fixed;
        assert_eq!(
            oracle,
            run_scenario_from(&s, &image),
            "{mode} resume diverged from the straight run under `{label}`"
        );
    }
}

#[test]
fn snapshot_resume_under_active_faults() {
    let w = window().min(20_000);
    assert_snapshot_under_faults(
        "combined",
        &faulted_spec("seed=7,transient=90,hang=110:100,drop=100,delay=80:64", w),
    );
}

/// Rank death *before* the capture point: the shard-side death state and
/// the fault counters must ride through the image so the resumed machine
/// quarantines on first contact exactly like the straight run.
#[test]
fn snapshot_resume_after_rank_death() {
    let w = window().min(20_000);
    let mut spec = faulted_spec("seed=23,transient=120", w);
    spec.cfg.faults.rank_death_cycle = 2_000; // < PREFIX
    spec.cfg.faults.rank_death_nda = 0;
    assert_snapshot_under_faults("dead_at_capture", &spec);
    let r = run_scenario_prefixed(&spec, PREFIX);
    assert_eq!(r.faults.rank_deaths, 1);
    assert!(r.faults.ranks_quarantined > 0);
}
