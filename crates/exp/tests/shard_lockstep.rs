//! Thread-count lockstep of the channel-sharded engine: for every
//! scenario in the shared perf matrix, running the shards on a 2- or
//! 4-thread worker pool must produce a `SimReport` bit-identical to
//! serial execution.
//!
//! This is the contract that makes the parallel executor trustworthy:
//! the engine's schedule — lookahead windows, message delivery cycles,
//! per-shard policy RNG streams — is fixed by the configuration, and
//! `sim_threads` only chooses how many workers tick the (fully
//! independent) shards. Any shared mutable state that leaked across the
//! shard boundary, any ordering that depended on worker interleaving,
//! or any drifted RNG stream shows up as a report mismatch.
//!
//! The matrix is the same `chopim_exp::perf_matrix` the `chopim-perf`
//! harness measures (including the wide 8-channel scenarios the
//! parallel speedup gate runs on), so the equivalence job always covers
//! exactly what the perf gate gates. CI runs this suite twice — with
//! `CHOPIM_SIM_THREADS` unset (specs pin their own thread counts) — and
//! the weekly job repeats it at the 200 000-cycle window via
//! `CHOPIM_BENCH_CYCLES`.

use chopim_core::prelude::*;
use chopim_exp::{bench_window, perf_matrix, run_scenario, ScenarioSpec, Workload};

fn window() -> u64 {
    bench_window(20_000)
}

/// Serial vs 2-thread vs 4-thread reports must be bit-identical.
fn assert_thread_lockstep(name: &str, spec: &ScenarioSpec, seed: u64) {
    let mut serial = spec.clone();
    serial.seed = seed;
    serial.cfg.sim_threads = 1;
    let serial_report = run_scenario(&serial);
    for threads in [2usize, 4] {
        let mut par = spec.clone();
        par.seed = seed;
        par.cfg.sim_threads = threads;
        let par_report = run_scenario(&par);
        assert_eq!(
            serial_report, par_report,
            "{threads}-thread execution diverged from serial on `{name}` (seed {seed})"
        );
    }
}

fn run_matrix_entry(name: &str) {
    let matrix = perf_matrix(window());
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == name)
        .expect("scenario in matrix");
    for seed in [1, 7] {
        assert_thread_lockstep(name, spec, seed);
    }
}

/// Every matrix entry has a dedicated test below; this guards against a
/// new scenario being added to the matrix without thread-lockstep
/// coverage.
#[test]
fn matrix_is_fully_covered() {
    let names: Vec<&str> = perf_matrix(1).iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "host_only",
            "host_idle",
            "nda_only",
            "colocated_svrg",
            "colocated_mix",
            "rank_partitioned",
            "wide_host_8ch",
            "wide_colocated_8ch",
            "wide_host_16ch",
            "wide_colocated_16ch",
            "multi_tenant_2sess",
            "multi_tenant_qos",
            "multi_tenant_1k",
            "faulty_colocated_8ch"
        ],
        "new matrix scenario: add a shard-lockstep test for it"
    );
}

#[test]
fn shard_lockstep_faulty_colocated_8ch() {
    run_matrix_entry("faulty_colocated_8ch");
}

#[test]
fn shard_lockstep_host_only() {
    run_matrix_entry("host_only");
}

#[test]
fn shard_lockstep_host_idle() {
    run_matrix_entry("host_idle");
}

#[test]
fn shard_lockstep_nda_only() {
    run_matrix_entry("nda_only");
}

#[test]
fn shard_lockstep_colocated_svrg() {
    run_matrix_entry("colocated_svrg");
}

#[test]
fn shard_lockstep_colocated_mix() {
    run_matrix_entry("colocated_mix");
}

#[test]
fn shard_lockstep_rank_partitioned() {
    run_matrix_entry("rank_partitioned");
}

#[test]
fn shard_lockstep_wide_host_8ch() {
    run_matrix_entry("wide_host_8ch");
}

#[test]
fn shard_lockstep_multi_tenant_2sess() {
    run_matrix_entry("multi_tenant_2sess");
}

/// 32 mixed-QoS streaming tenants on a 4-channel machine: credit
/// returns (which wake parked sessions) arrive from different shards,
/// so worker interleaving must not perturb QoS arbitration.
#[test]
fn shard_lockstep_multi_tenant_qos() {
    let matrix = perf_matrix(window().min(20_000));
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == "multi_tenant_qos")
        .expect("scenario in matrix");
    for seed in [1, 7] {
        assert_thread_lockstep(name, spec, seed);
    }
}

/// The thousand-tenant headline point, windowed down: the ready-index
/// schedule over 1000 sessions must be thread-count independent.
#[test]
fn shard_lockstep_multi_tenant_1k() {
    let matrix = perf_matrix(window().min(12_000));
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == "multi_tenant_1k")
        .expect("scenario in matrix");
    assert_thread_lockstep(name, spec, 1);
}

#[test]
fn shard_lockstep_wide_colocated_8ch() {
    run_matrix_entry("wide_colocated_8ch");
}

#[test]
fn shard_lockstep_wide_host_16ch() {
    run_matrix_entry("wide_host_16ch");
}

#[test]
fn shard_lockstep_wide_colocated_16ch() {
    run_matrix_entry("wide_colocated_16ch");
}

/// Fixed-window vs computed-horizon ablation: the conservative global
/// window (the pre-horizon schedule, `CHOPIM_FIXED_WINDOW=1` in CI) and
/// the per-shard computed horizons must produce bit-identical reports at
/// every thread count — horizon skips may only elide provably idle shard
/// cycles, never reorder a message or a tick.
#[test]
fn shard_lockstep_fixed_window_vs_computed_horizon() {
    let matrix = perf_matrix(window().min(20_000));
    for name in [
        "host_only",
        "host_idle",
        "colocated_svrg",
        "wide_host_8ch",
        "wide_colocated_16ch",
    ] {
        let (_, spec) = matrix
            .iter()
            .find(|(n, _)| *n == name)
            .expect("scenario in matrix");
        for seed in [1, 7] {
            let mut fixed = spec.clone();
            fixed.seed = seed;
            fixed.cfg.fixed_window = true;
            fixed.cfg.sim_threads = 1;
            let oracle = run_scenario(&fixed);
            for threads in [1usize, 2, 4] {
                let mut s = spec.clone();
                s.seed = seed;
                s.cfg.fixed_window = false;
                s.cfg.sim_threads = threads;
                assert_eq!(
                    oracle,
                    run_scenario(&s),
                    "computed horizons diverged from the fixed-window oracle on \
                     `{name}` ({threads} threads, seed {seed})"
                );
            }
        }
    }
}

/// The two-session dependency-graph scenario on a 4-channel machine:
/// `(session, op)`-tagged completion routing crosses the shard boundary,
/// so worker interleaving must not perturb DAG staging or fair-share
/// arbitration.
#[test]
fn shard_lockstep_dag_two_sessions() {
    let window = window().min(20_000);
    for seed in [1, 7] {
        let mk = |threads: usize| {
            let mut cfg = ChopimConfig {
                dram: DramConfig::table_ii().with_channels(4),
                mix: MixId::new(2),
                ..ChopimConfig::default()
            };
            cfg.sim_threads = threads;
            chopim_exp::run_two_session_dag(cfg, window, seed)
        };
        let serial = mk(1);
        for threads in [2usize, 4] {
            assert_eq!(
                serial,
                mk(threads),
                "{threads}-thread execution diverged on the two-session DAG (seed {seed})"
            );
        }
    }
}

/// Stochastic write throttling draws per-shard RNG streams; worker
/// interleaving must not perturb them.
#[test]
fn shard_lockstep_stochastic_policy() {
    let mut spec = ScenarioSpec::with_window(window().min(20_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.policy = WriteIssuePolicy::stochastic(1, 4);
    spec.workload = Workload::elementwise(Opcode::Copy, 1 << 15);
    assert_thread_lockstep("stochastic", &spec, 3);
}

/// Packetized mode routes everything through the ingress queues whose
/// occupancy view is published at window barriers; the barrier schedule
/// must be thread-count independent.
#[test]
fn shard_lockstep_packetized() {
    let mut spec = ScenarioSpec::with_window(window().min(20_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.packetized_latency = 8;
    spec.workload = Workload::elementwise(Opcode::Axpy, 1 << 15);
    assert_thread_lockstep("packetized", &spec, 5);
}

/// Non-default cross-boundary pipeline depths change the lookahead
/// window (`completion_latency = 5` shrinks W to 5; `ingress_latency`
/// exercises delayed front-end → shard delivery). The schedule must
/// stay thread-count independent at every window length.
#[test]
fn shard_lockstep_boundary_latencies() {
    let mut spec = ScenarioSpec::with_window(window().min(10_000));
    spec.cfg.mix = MixId::new(2);
    spec.cfg.ingress_latency = 6;
    spec.cfg.completion_latency = 5;
    spec.workload = Workload::elementwise(Opcode::Axpy, 1 << 15);
    assert_thread_lockstep("boundary_latencies", &spec, 11);
}

/// `completion_latency = 1` collapses the lookahead window to a single
/// cycle — a barrier every cycle, the degenerate schedule most likely
/// to expose an off-by-one in the window grid.
#[test]
fn shard_lockstep_single_cycle_window() {
    let mut spec = ScenarioSpec::with_window(window().min(3_000));
    spec.cfg.mix = MixId::new(4);
    spec.cfg.completion_latency = 1;
    spec.workload = Workload::elementwise(Opcode::Copy, 1 << 14);
    assert_thread_lockstep("single_cycle_window", &spec, 13);
}

/// The naive reference loop (`fast_forward = false`) must be just as
/// thread-count independent as the fast path.
#[test]
fn shard_lockstep_naive_loop() {
    let mut spec = ScenarioSpec::with_window(window().min(10_000));
    spec.cfg.mix = MixId::new(4);
    spec.cfg.fast_forward = false;
    spec.workload = Workload::elementwise(Opcode::Dot, 1 << 15);
    assert_thread_lockstep("naive_loop", &spec, 9);
}
