//! Snapshot/restore lockstep: capturing a machine mid-run and resuming
//! the image must continue bit-identically to a run that never
//! snapshotted — under every engine mode — and a captured event trace
//! must replay to identical DRAM statistics.
//!
//! Three layers of coverage:
//!
//! * **Warm-start lockstep over the perf matrix**: for every scenario in
//!   the shared `chopim_exp::perf_matrix`, run a warm-up prefix, fork a
//!   snapshot, and check that resuming under serial, 2-thread, and
//!   fixed-window engines all reproduce the cold-path oracle
//!   ([`run_scenario_prefixed`]) bit-for-bit. The prefix is deliberately
//!   off the lookahead-window grid, so mid-window ingress accounting,
//!   refresh phases, and the CPU-clock divider are all captured
//!   mid-flight.
//! * **Mid-op snapshot**: the two-session DAG scenario snapshotted with
//!   NDA instructions in flight (launch slab occupied, FSMs busy, write
//!   buffers non-empty, completions in transit), resumed under every
//!   engine mode and driven to completion against the straight-run
//!   oracle.
//! * **Trace capture → replay**: the recorded DRAM command stream
//!   re-issued through the validating device model must land on the
//!   exact `DramStats` of the original run.
//!
//! Plus rejection coverage: truncated and bit-flipped images, mismatched
//! semantic configurations, and the snapshot preconditions (no spawned
//! streams, not finalized).

use chopim_core::prelude::*;
use chopim_core::SnapshotError;
use chopim_dram::codec::CodecError;
use chopim_dram::trace::replay_bytes;
use chopim_exp::{
    bench_window, capture_prefix, perf_matrix, run_scenario_from, run_scenario_prefixed,
    spawn_spec_workload, ScenarioSpec, SweepRunner, Workload,
};

fn window() -> u64 {
    bench_window(10_000)
}

/// Off the lookahead-window grid (W = 20 for Table II timing), so the
/// capture point sits mid-window.
const PREFIX: u64 = 4_003;

/// Cold oracle vs snapshot-resume under {serial, 2-thread,
/// fixed-window}: all four reports must be bit-identical.
fn assert_snapshot_lockstep(name: &str, spec: &ScenarioSpec, seed: u64) {
    let mut spec = spec.clone();
    spec.seed = seed;
    spec.cfg.sim_threads = 1;
    spec.cfg.fixed_window = false;
    let oracle = run_scenario_prefixed(&spec, PREFIX);
    let image = capture_prefix(&spec, PREFIX);

    let serial = run_scenario_from(&spec, &image);
    assert_eq!(
        oracle, serial,
        "serial resume diverged from the cold run on `{name}` (seed {seed})"
    );
    let mut par = spec.clone();
    par.cfg.sim_threads = 2;
    assert_eq!(
        oracle,
        run_scenario_from(&par, &image),
        "2-thread resume diverged from the cold run on `{name}` (seed {seed})"
    );
    let mut fixed = spec.clone();
    fixed.cfg.fixed_window = true;
    assert_eq!(
        oracle,
        run_scenario_from(&fixed, &image),
        "fixed-window resume diverged from the cold run on `{name}` (seed {seed})"
    );
}

fn run_matrix_entry(name: &str) {
    let matrix = perf_matrix(window());
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == name)
        .expect("scenario in matrix");
    for seed in [1, 7] {
        assert_snapshot_lockstep(name, spec, seed);
    }
}

/// Every matrix entry has a dedicated test below; this guards against a
/// new scenario being added to the matrix without snapshot-lockstep
/// coverage.
#[test]
fn matrix_is_fully_covered() {
    let names: Vec<&str> = perf_matrix(1).iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "host_only",
            "host_idle",
            "nda_only",
            "colocated_svrg",
            "colocated_mix",
            "rank_partitioned",
            "wide_host_8ch",
            "wide_colocated_8ch",
            "wide_host_16ch",
            "wide_colocated_16ch",
            "multi_tenant_2sess",
            "multi_tenant_qos",
            "multi_tenant_1k",
            "faulty_colocated_8ch"
        ],
        "new matrix scenario: add a snapshot-lockstep test for it"
    );
}

#[test]
fn snapshot_lockstep_host_only() {
    run_matrix_entry("host_only");
}

#[test]
fn snapshot_lockstep_host_idle() {
    run_matrix_entry("host_idle");
}

#[test]
fn snapshot_lockstep_nda_only() {
    run_matrix_entry("nda_only");
}

#[test]
fn snapshot_lockstep_colocated_svrg() {
    run_matrix_entry("colocated_svrg");
}

#[test]
fn snapshot_lockstep_colocated_mix() {
    run_matrix_entry("colocated_mix");
}

#[test]
fn snapshot_lockstep_rank_partitioned() {
    run_matrix_entry("rank_partitioned");
}

#[test]
fn snapshot_lockstep_wide_host_8ch() {
    run_matrix_entry("wide_host_8ch");
}

#[test]
fn snapshot_lockstep_wide_colocated_8ch() {
    run_matrix_entry("wide_colocated_8ch");
}

#[test]
fn snapshot_lockstep_wide_host_16ch() {
    run_matrix_entry("wide_host_16ch");
}

#[test]
fn snapshot_lockstep_wide_colocated_16ch() {
    run_matrix_entry("wide_colocated_16ch");
}

#[test]
fn snapshot_lockstep_multi_tenant_2sess() {
    run_matrix_entry("multi_tenant_2sess");
}

#[test]
fn snapshot_lockstep_multi_tenant_qos() {
    run_matrix_entry("multi_tenant_qos");
}

#[test]
fn snapshot_lockstep_multi_tenant_1k() {
    let matrix = perf_matrix(window().min(8_000));
    let (name, spec) = matrix
        .iter()
        .find(|(n, _)| *n == "multi_tenant_1k")
        .expect("scenario in matrix");
    assert_snapshot_lockstep(name, spec, 1);
}

#[test]
fn snapshot_lockstep_faulty_colocated_8ch() {
    run_matrix_entry("faulty_colocated_8ch");
}

/// Build the two-session DAG machine (the first half of
/// `run_two_session_dag`, before any stream is spawned): session A runs
/// an ordered chain, session B is gated on it across the session
/// boundary.
fn dag_machine(mut cfg: ChopimConfig, seed: u64) -> (ChopimSystem, OpHandle, OpHandle) {
    cfg.seed = seed;
    let mut sys = ChopimSystem::new(cfg);
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let n = 1 << 13;
    let x = sys.runtime.vector(n, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    let u = sys.runtime.vector(n, Sharing::Shared);
    let v = sys.runtime.vector(n, Sharing::Shared);
    let data: Vec<f32> = (0..n).map(|i| (i % 101) as f32 * 0.5 - 25.0).collect();
    sys.runtime.write_vector(x, &data);
    sys.runtime.write_vector(v, &data);
    let _a1 = sa
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let a2 = sa
        .elementwise(&mut sys.runtime, Opcode::Scal, vec![2.0], vec![], Some(y))
        .submit();
    let b1 = sb
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(u))
        .submit();
    let b2 = sb
        .elementwise(&mut sys.runtime, Opcode::Axpy, vec![1.0], vec![y], Some(v))
        .after(a2)
        .after(b1)
        .unordered()
        .submit();
    (sys, a2, b2)
}

/// Snapshot with NDA instructions genuinely in flight: launch slab
/// occupied, rank FSMs mid-instruction, op-graph partially complete.
/// Resuming under every engine mode must finish identically to the
/// straight run.
#[test]
fn snapshot_mid_flight_dag() {
    // Off-grid, and early enough that the DAG is still executing.
    const SPLIT: u64 = 777;
    let base_cfg = || ChopimConfig {
        dram: DramConfig::table_ii().with_channels(4),
        mix: MixId::new(2),
        ..ChopimConfig::default()
    };
    let finish = |mut sys: ChopimSystem, a2: OpHandle, b2: OpHandle| {
        sys.drive(Waitable::all_of([a2, b2]), 4_000_000);
        assert!(sys.runtime.op_done(a2) && sys.runtime.op_done(b2));
        sys.run(2_000);
        sys.report()
    };
    for seed in [1, 7] {
        let (mut sys, a2, b2) = dag_machine(base_cfg(), seed);
        sys.run(SPLIT);
        let oracle = finish(sys, a2, b2);

        let (mut sys, a2, b2) = dag_machine(base_cfg(), seed);
        sys.run(SPLIT);
        let image = sys.snapshot().expect("no streams spawned yet");
        drop(sys);

        for (label, threads, fixed) in [
            ("serial", 1usize, false),
            ("2-thread", 2, false),
            ("fixed-window", 1, true),
        ] {
            let mut cfg = base_cfg();
            cfg.seed = seed;
            cfg.sim_threads = threads;
            cfg.fixed_window = fixed;
            let resumed = ChopimSystem::resume(cfg, &image).expect("image must resume");
            assert_eq!(
                oracle,
                finish(resumed, a2, b2),
                "{label} mid-flight resume diverged (seed {seed})"
            );
        }
    }
}

/// Build a three-tenant machine with the QoS runtime state fully
/// populated: mixed classes, direct submissions on two sessions, and an
/// executor session whose in-flight cap admits its first job graph and
/// parks the second in the admission queue.
fn qos_machine(mut cfg: ChopimConfig, seed: u64) -> (ChopimSystem, Ticket, Ticket) {
    cfg.seed = seed;
    let mut sys = ChopimSystem::new(cfg);
    let lat = sys.runtime.default_session();
    let heavy = sys.runtime.create_session();
    let light = sys.runtime.create_session();
    sys.runtime.set_qos(lat, QosClass::LatencySensitive);
    sys.runtime.set_qos(heavy, QosClass::Batch { weight: 4 });
    // `light` keeps the default Batch { weight: 1 }.
    let n = 1 << 14;
    let x = sys.runtime.vector(n, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    let u = sys.runtime.vector(n, Sharing::Shared);
    let w = sys.runtime.vector(n, Sharing::Shared);
    let data: Vec<f32> = (0..n).map(|i| (i % 97) as f32 * 0.25 - 12.0).collect();
    sys.runtime.write_vector(x, &data);
    let _ = lat
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let _ = lat
        .elementwise(&mut sys.runtime, Opcode::Scal, vec![0.5], vec![], Some(y))
        .submit();
    let _ = light
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(w))
        .submit();
    // Cap of 2 in-flight ops: the two-node graph is admitted whole, the
    // follow-up job must wait in the queue until it retires.
    sys.runtime.set_tenant_limits(
        heavy,
        TenantLimits {
            max_inflight_ops: 2,
            queue_depth: 4,
        },
    );
    let mut g1 = JobGraph::new();
    let c = g1.elementwise(Opcode::Copy, vec![], vec![x], Some(u));
    let a = g1.elementwise(Opcode::Axpy, vec![1.0], vec![u], Some(y));
    g1.after(a, c);
    let t1 = sys
        .runtime
        .submit_job(heavy, g1)
        .expect("fits under the cap");
    let mut g2 = JobGraph::new();
    g2.elementwise(Opcode::Scal, vec![0.75], vec![], Some(u));
    let t2 = sys.runtime.submit_job(heavy, g2).expect("queue has room");
    (sys, t1, t2)
}

/// Snapshot with the QoS scheduler mid-stride: ready-index entries live,
/// virtual times charged, per-tenant meters non-zero, one executor job
/// admitted and another parked in the admission queue. Resuming under
/// every engine mode must admit, schedule, and retire identically to the
/// straight run — including the `SimReport.tenants` metering.
#[test]
fn snapshot_mid_flight_qos_executor() {
    // Off the lookahead-window grid, early enough that the queued job is
    // still waiting on the admitted one.
    const SPLIT: u64 = 777;
    let base_cfg = || ChopimConfig {
        dram: DramConfig::table_ii().with_channels(4),
        mix: MixId::new(2),
        ..ChopimConfig::default()
    };
    let finish = |mut sys: ChopimSystem, t1: Ticket, t2: Ticket| {
        sys.run(60_000);
        assert!(sys.runtime.ticket_done(t1), "admitted job must retire");
        assert!(
            sys.runtime.ticket_done(t2),
            "queued job must be admitted and retire"
        );
        assert!(sys.runtime.quiescent());
        sys.report()
    };
    for seed in [1, 7] {
        let (mut sys, t1, t2) = qos_machine(base_cfg(), seed);
        sys.run(SPLIT);
        let oracle = finish(sys, t1, t2);

        let (mut sys, t1, t2) = qos_machine(base_cfg(), seed);
        sys.run(SPLIT);
        assert!(
            sys.runtime.ticket_admitted(t1),
            "first job admitted at submit"
        );
        assert!(
            !sys.runtime.ticket_admitted(t2),
            "second job must still be queued at the capture point"
        );
        let image = sys.snapshot().expect("no streams spawned");
        drop(sys);

        for (label, threads, fixed) in [
            ("serial", 1usize, false),
            ("2-thread", 2, false),
            ("fixed-window", 1, true),
        ] {
            let mut cfg = base_cfg();
            cfg.seed = seed;
            cfg.sim_threads = threads;
            cfg.fixed_window = fixed;
            let resumed = ChopimSystem::resume(cfg, &image).expect("image must resume");
            assert_eq!(
                oracle,
                finish(resumed, t1, t2),
                "{label} QoS/executor mid-flight resume diverged (seed {seed})"
            );
        }
    }
}

/// Capture → replay: re-issuing the recorded command stream through the
/// validating device model must land on the original run's exact DRAM
/// statistics.
#[test]
fn trace_capture_replay_stats_identity() {
    let matrix = perf_matrix(window().min(10_000));
    for name in [
        "host_only",
        "nda_only",
        "colocated_svrg",
        "rank_partitioned",
    ] {
        let (_, spec) = matrix
            .iter()
            .find(|(n, _)| *n == name)
            .expect("scenario in matrix");
        let mut cfg = spec.cfg.clone();
        cfg.seed = spec.seed;
        let dram_cfg = cfg.dram.clone();
        let mut sys = ChopimSystem::new(cfg);
        sys.enable_trace_capture();
        spawn_spec_workload(&mut sys, spec.workload.clone());
        sys.run(spec.window);
        let bytes = sys.trace_bytes();
        let report = sys.report();
        let outcome = replay_bytes(&dram_cfg, &bytes)
            .unwrap_or_else(|e| panic!("replay failed on `{name}`: {e:?}"));
        assert_eq!(outcome.end_cycle, report.cycles, "end cycle on `{name}`");
        assert_eq!(
            outcome.stats, report.dram,
            "replayed DRAM stats diverged on `{name}`"
        );
        if name != "host_only" {
            assert!(outcome.launches > 0, "`{name}` should record launches");
        }
    }

    // A small-op scenario whose instructions actually retire inside the
    // window, so launch AND completion records are exercised end-to-end
    // (the matrix's big-operand ops stay in flight at these windows).
    let mut spec = ScenarioSpec::with_window(20_000);
    spec.workload = Workload::elementwise(Opcode::Axpy, 1 << 12);
    let mut cfg = spec.cfg.clone();
    cfg.seed = spec.seed;
    let dram_cfg = cfg.dram.clone();
    let mut sys = ChopimSystem::new(cfg);
    sys.enable_trace_capture();
    spawn_spec_workload(&mut sys, spec.workload.clone());
    sys.run(spec.window);
    let bytes = sys.trace_bytes();
    let report = sys.report();
    assert!(report.nda_instrs_completed > 0, "ops must retire in-window");
    let outcome = replay_bytes(&dram_cfg, &bytes).expect("replay small-op trace");
    assert_eq!(outcome.stats, report.dram);
    assert!(outcome.launches > 0);
    assert!(outcome.completions > 0);
}

/// `ChopimConfig::trace_path` wires capture at construction and
/// `write_trace` emits a file replayable from disk.
#[test]
fn trace_path_writes_replayable_file() {
    let path = std::env::temp_dir().join(format!("chopim_trace_test_{}.chtr", std::process::id()));
    let mut cfg = ChopimConfig {
        mix: MixId::new(2),
        ..ChopimConfig::default()
    };
    cfg.trace_path = Some(path.clone());
    let dram_cfg = cfg.dram.clone();
    let mut sys = ChopimSystem::new(cfg);
    sys.run(5_000);
    let written = sys.write_trace().expect("write").expect("path configured");
    assert_eq!(written, path);
    let report = sys.report();
    let bytes = std::fs::read(&path).expect("trace file");
    let _ = std::fs::remove_file(&path);
    let outcome = replay_bytes(&dram_cfg, &bytes).expect("replay from file");
    assert_eq!(outcome.stats, report.dram);
}

/// Damaged images must be rejected with an error, never accepted or
/// panicked on; engine-mode knobs may differ, semantic knobs may not.
#[test]
fn snapshot_rejects_damage_and_config_mismatch() {
    let mut spec = ScenarioSpec::with_window(1);
    spec.cfg.mix = MixId::new(2);
    let image = capture_prefix(&spec, 2_003);
    let cfg = || {
        let mut c = spec.cfg.clone();
        c.seed = spec.seed;
        c
    };
    assert!(
        ChopimSystem::resume(cfg(), &image).is_ok(),
        "baseline resume"
    );

    // Truncations at a spread of lengths: always a clean error.
    for len in [0, 3, 4, 11, image.len() / 2, image.len() - 1] {
        assert!(
            ChopimSystem::resume(cfg(), &image[..len]).is_err(),
            "truncation to {len} bytes accepted"
        );
    }
    // Bit flips across the whole image: the checksum (or a structural
    // validation) must catch every one.
    let step = (image.len() / 29).max(1);
    for i in (0..image.len()).step_by(step) {
        let mut bad = image.clone();
        bad[i] ^= 0x40;
        assert!(
            ChopimSystem::resume(cfg(), &bad).is_err(),
            "bit flip at byte {i} accepted"
        );
    }
    // A different semantic configuration is a fingerprint mismatch.
    let mut other = cfg();
    other.seed ^= 1;
    assert!(matches!(
        ChopimSystem::resume(other, &image),
        Err(CodecError::ConfigMismatch)
    ));
    let mut other = cfg();
    other.nda_queue_cap += 1;
    assert!(matches!(
        ChopimSystem::resume(other, &image),
        Err(CodecError::ConfigMismatch)
    ));
    // Engine-mode knobs are free.
    let mut free = cfg();
    free.sim_threads = 2;
    free.fixed_window = true;
    free.fast_forward = false;
    assert!(ChopimSystem::resume(free, &image).is_ok());
}

/// Snapshot preconditions: spawned streams and finalized statistics are
/// both refused.
#[test]
fn snapshot_refuses_streams_and_finalized() {
    let mut sys = ChopimSystem::new(ChopimConfig::default());
    spawn_spec_workload(&mut sys, Workload::elementwise(Opcode::Axpy, 1 << 12));
    assert_eq!(sys.snapshot().unwrap_err(), SnapshotError::ActiveStreams);

    let mut sys = ChopimSystem::new(ChopimConfig::default());
    sys.run(100);
    let _ = sys.report();
    assert_eq!(sys.snapshot().unwrap_err(), SnapshotError::Finalized);
}

/// The `SweepRunner` warm-start mode forks N points from one captured
/// prefix; every point must equal its cold-path run, and the fork must
/// be thread-safe (the image is shared read-only).
#[test]
fn warm_start_sweep_matches_cold_runs() {
    let prefix = 3_003;
    let mut base = ScenarioSpec::with_window(window().min(8_000));
    base.cfg.mix = MixId::new(2);
    base.workload = Workload::elementwise(Opcode::Axpy, 1 << 14);

    let mut p1 = base.clone();
    p1.cfg.sim_threads = 2;
    let mut p2 = base.clone();
    p2.cfg.fixed_window = true;
    let mut p3 = base.clone();
    p3.workload = Workload::elementwise(Opcode::Dot, 1 << 14);
    let specs = vec![base.clone(), p1, p2, p3];

    let warm = SweepRunner::with_threads(2).run_warm_start(&base, prefix, &specs);
    assert_eq!(warm.points.len(), specs.len());
    for (point, spec) in warm.points.iter().zip(&specs) {
        assert_eq!(
            point.result,
            run_scenario_prefixed(spec, prefix),
            "warm-start point diverged from its cold run"
        );
    }
}
