//! Ready-made address mappings.

use chopim_dram::DramConfig;

use crate::linear::{LinearMapping, OutBit, OutField};

/// A Skylake-like hashed interleaving (paper Fig. 4a):
///
/// * channels interleave at cache-line granularity, hashed with row bits;
/// * bank group / bank / rank are XOR hashes of dedicated low bits and row
///   bits (permutation-based interleaving);
/// * the most significant physical-address bits feed *only* the row — the
///   property the bank-partition remap of Fig. 4b requires;
/// * the row bits feeding channel+rank hashes form the OS page-coloring
///   mask. For Table II geometry that is 3 bits → 8 colors of 4 GiB,
///   matching the paper.
///
/// # Panics
///
/// Panics if `config` is not a valid power-of-two geometry (programmer
/// error).
pub fn skylake_like(config: &DramConfig) -> LinearMapping {
    let n_col = config.lines_per_row().trailing_zeros();
    let n_ch = config.channels.trailing_zeros();
    let n_bg = config.bankgroups.trailing_zeros();
    let n_bk = config.banks_per_group.trailing_zeros();
    let n_rk = config.ranks_per_channel.trailing_zeros();
    let n_row = config.rows.trailing_zeros();

    let mut bits = Vec::new();
    let mut next = 0u32; // next primary (identity) line bit to assign
    let take = |n: &mut u32| {
        let b = *n;
        *n += 1;
        b
    };

    // Three lowest column bits first: consecutive lines share a row before
    // hitting the channel hash (open-page friendliness).
    for bit in 0..3.min(n_col) {
        bits.push(OutBit {
            field: OutField::Col,
            bit,
            mask: 1 << take(&mut next),
        });
    }
    // Channel bits: primary low bit + two row-region bits (assigned below,
    // patched afterwards). Record primaries now.
    let ch_primary: Vec<u32> = (0..n_ch).map(|_| take(&mut next)).collect();
    // Remaining column bits.
    for bit in 3.min(n_col)..n_col {
        bits.push(OutBit {
            field: OutField::Col,
            bit,
            mask: 1 << take(&mut next),
        });
    }
    let bg_primary: Vec<u32> = (0..n_bg).map(|_| take(&mut next)).collect();
    let bk_primary: Vec<u32> = (0..n_bk).map(|_| take(&mut next)).collect();
    let rk_primary: Vec<u32> = (0..n_rk).map(|_| take(&mut next)).collect();
    let row_base = next;

    // Row bits are identity on the top of the line address.
    for bit in 0..n_row {
        bits.push(OutBit {
            field: OutField::Row,
            bit,
            mask: 1 << (row_base + bit),
        });
    }

    // Hash extras, all drawn from the *low* row region — never the top
    // `bank_bits` row bits, which the partition remap (Fig. 4b) requires to
    // be pure pass-throughs of the physical-address MSBs.
    // Channel/rank extras define the color mask and are kept minimal:
    // 2 bits per channel bit, 1 per rank bit, distinct when geometry allows.
    let avail = n_row.saturating_sub(n_bg + n_bk + 1).max(1);
    let mut extra = 0u32;
    let row_bit = |i: &mut u32| {
        let b = row_base + 1 + (*i % avail);
        *i += 1;
        b
    };
    for (i, &p) in ch_primary.iter().enumerate() {
        let m = (1u64 << p) | (1 << row_bit(&mut extra)) | (1 << row_bit(&mut extra));
        bits.push(OutBit {
            field: OutField::Channel,
            bit: i as u32,
            mask: m,
        });
    }
    for (i, &p) in rk_primary.iter().enumerate() {
        let m = (1u64 << p) | (1 << row_bit(&mut extra));
        bits.push(OutBit {
            field: OutField::Rank,
            bit: i as u32,
            mask: m,
        });
    }
    for (i, &p) in bg_primary.iter().enumerate() {
        let m = (1u64 << p) | (1 << row_bit(&mut extra)) | (1 << row_bit(&mut extra));
        bits.push(OutBit {
            field: OutField::BankGroup,
            bit: i as u32,
            mask: m,
        });
    }
    for (i, &p) in bk_primary.iter().enumerate() {
        let m = (1u64 << p) | (1 << row_bit(&mut extra)) | (1 << row_bit(&mut extra));
        bits.push(OutBit {
            field: OutField::Bank,
            bit: i as u32,
            mask: m,
        });
    }

    LinearMapping::new(config, bits).expect("skylake_like preset must be bijective")
}

/// The naive direct mapping `row : rank : bank : bankgroup : channel : col`
/// with no hashing — the "any linear mapping" baseline used in ablations
/// and tests.
///
/// # Panics
///
/// Panics if `config` is not a valid power-of-two geometry.
pub fn naive(config: &DramConfig) -> LinearMapping {
    let n_col = config.lines_per_row().trailing_zeros();
    let n_ch = config.channels.trailing_zeros();
    let n_bg = config.bankgroups.trailing_zeros();
    let n_bk = config.banks_per_group.trailing_zeros();
    let n_rk = config.ranks_per_channel.trailing_zeros();
    let n_row = config.rows.trailing_zeros();

    let mut bits = Vec::new();
    let mut next = 0u32;
    let field = |f: OutField, n: u32, bits: &mut Vec<OutBit>, next: &mut u32| {
        for bit in 0..n {
            bits.push(OutBit {
                field: f,
                bit,
                mask: 1 << *next,
            });
            *next += 1;
        }
    };
    field(OutField::Col, n_col, &mut bits, &mut next);
    field(OutField::Channel, n_ch, &mut bits, &mut next);
    field(OutField::BankGroup, n_bg, &mut bits, &mut next);
    field(OutField::Bank, n_bk, &mut bits, &mut next);
    field(OutField::Rank, n_rk, &mut bits, &mut next);
    field(OutField::Row, n_row, &mut bits, &mut next);
    LinearMapping::new(config, bits).expect("naive preset must be bijective")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_for_all_paper_geometries() {
        for ranks in [2, 4, 8] {
            let cfg = DramConfig::table_ii().with_ranks(ranks);
            let _ = skylake_like(&cfg);
            let _ = naive(&cfg);
        }
    }

    #[test]
    fn naive_maps_low_bits_to_columns() {
        let cfg = DramConfig::table_ii();
        let m = naive(&cfg);
        let d0 = m.map_line(0);
        let d1 = m.map_line(1);
        assert_eq!(d1.col, d0.col + 1);
        assert_eq!(d0.channel, d1.channel);
    }

    #[test]
    fn skylake_spreads_banks_within_a_system_row_worth_of_lines() {
        let cfg = DramConfig::table_ii();
        let m = skylake_like(&cfg);
        let mut banks = std::collections::HashSet::new();
        // One system row of lines covers every (channel, rank, bank).
        for line in 0..(cfg.system_row_bytes() / 64) {
            let d = m.map_line(line);
            banks.insert((d.channel, d.rank, d.bankgroup, d.bank));
        }
        // All 64 (channel, rank, bank) combinations get touched.
        assert_eq!(
            banks.len(),
            cfg.channels * cfg.ranks_per_channel * cfg.banks_per_rank()
        );
    }
}
