//! Data layout across the DRAM chips of a rank (paper §III-A, "Data
//! layout across DRAM chips").
//!
//! A 64 B cache line spans the 8 chips of a rank. In the baseline layout
//! each 4-byte word is *striped* bytewise across chips, so no chip holds a
//! whole word and a per-chip PE cannot compute on its local bytes. Chopim
//! places each word wholly within one chip (8 contiguous bytes per chip
//! per burst), which is invisible to the host (ECC protects bits, not
//! their interpretation) but makes every word PE-local.

/// How words of a cache line are spread over the chips of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChipLayout {
    /// Baseline: consecutive bytes rotate across chips, so a 4-byte word
    /// spans 4 chips.
    Striped,
    /// Chopim: each chip holds contiguous 8-byte sub-blocks, so every
    /// 4-byte word lives in exactly one chip.
    #[default]
    WordPerChip,
}

/// Where one byte of a cache line lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordLocation {
    /// Chip within the rank.
    pub chip: usize,
    /// Byte offset within that chip's burst payload.
    pub offset: usize,
}

impl ChipLayout {
    /// Location of byte `byte` (0..64) of a line, for `chips` chips each
    /// contributing `64/chips` bytes per burst.
    ///
    /// # Panics
    ///
    /// Panics if `byte >= 64` or `chips` does not divide 64.
    pub fn locate_byte(self, byte: usize, chips: usize) -> WordLocation {
        assert!(byte < 64, "cache lines are 64 B");
        assert!(64 % chips == 0, "chips must divide the line");
        let per_chip = 64 / chips;
        match self {
            ChipLayout::Striped => WordLocation {
                chip: byte % chips,
                offset: byte / chips,
            },
            ChipLayout::WordPerChip => WordLocation {
                chip: byte / per_chip,
                offset: byte % per_chip,
            },
        }
    }

    /// The chip holding the whole 4-byte word `word` (0..16) of a line, or
    /// `None` if the layout splits words across chips.
    pub fn chip_of_word(self, word: usize, chips: usize) -> Option<usize> {
        assert!(word < 16, "16 words per 64 B line");
        let locs: Vec<usize> = (0..4)
            .map(|b| self.locate_byte(word * 4 + b, chips).chip)
            .collect();
        if locs.iter().all(|&c| c == locs[0]) {
            Some(locs[0])
        } else {
            None
        }
    }

    /// Number of whole f32 words per chip per line (0 when words are
    /// split).
    pub fn words_per_chip_line(self, chips: usize) -> usize {
        (0..16)
            .filter(|&w| self.chip_of_word(w, chips).is_some())
            .count()
            / chips
    }
}

/// Split a line-sized f32 slice (16 values) into the per-chip streams the
/// PEs see under `layout`. Returns `chips` vectors of the word indices
/// local to each chip (empty under [`ChipLayout::Striped`]).
pub fn per_chip_words(layout: ChipLayout, chips: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); chips];
    for w in 0..16 {
        if let Some(c) = layout.chip_of_word(w, chips) {
            out[c].push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_splits_every_word() {
        for w in 0..16 {
            assert_eq!(ChipLayout::Striped.chip_of_word(w, 8), None);
        }
        assert_eq!(ChipLayout::Striped.words_per_chip_line(8), 0);
    }

    #[test]
    fn word_per_chip_keeps_words_local() {
        // 8 chips x 8 B: chip c holds words 2c and 2c+1.
        for w in 0..16 {
            assert_eq!(ChipLayout::WordPerChip.chip_of_word(w, 8), Some(w / 2));
        }
        assert_eq!(ChipLayout::WordPerChip.words_per_chip_line(8), 2);
    }

    #[test]
    fn byte_locations_partition_the_line() {
        for layout in [ChipLayout::Striped, ChipLayout::WordPerChip] {
            let mut seen = std::collections::HashSet::new();
            for b in 0..64 {
                let loc = layout.locate_byte(b, 8);
                assert!(loc.chip < 8 && loc.offset < 8);
                assert!(seen.insert((loc.chip, loc.offset)), "collision at byte {b}");
            }
            assert_eq!(seen.len(), 64);
        }
    }

    #[test]
    fn per_chip_word_lists_cover_all_words() {
        let lists = per_chip_words(ChipLayout::WordPerChip, 8);
        let total: usize = lists.iter().map(Vec::len).sum();
        assert_eq!(total, 16);
        for (c, l) in lists.iter().enumerate() {
            assert_eq!(l, &vec![2 * c, 2 * c + 1]);
        }
        // Striped: nothing is chip-local.
        let striped = per_chip_words(ChipLayout::Striped, 8);
        assert!(striped.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "cache lines are 64 B")]
    fn byte_out_of_range_panics() {
        let _ = ChipLayout::WordPerChip.locate_byte(64, 8);
    }
}
