//! DRAMA-style reverse engineering of address mappings.
//!
//! Chopim's OS coloring needs to know which physical-address bits feed the
//! rank/channel hashes; the paper notes these "can be reverse engineered
//! if necessary \[67\]". This module implements the software analogue: given
//! only an address→coordinate oracle, recover the XOR masks of every
//! output bit and verify the mapping is actually linear (the class the
//! paper's mechanisms assume).
//!
//! For a GF(2)-linear map `f`, `f(x) = f(0) ⊕ ⊕_{i∈x} (f(2^i) ⊕ f(0))`,
//! so probing the zero address and each power of two recovers the full
//! bit matrix; random probes then confirm linearity (a partitioned
//! mapping's conditional swap, for example, is detected as non-linear).

use chopim_dram::DramAddress;

use crate::linear::OutField;

/// The recovered mapping: per output field, one XOR mask per bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredMapping {
    /// Masks for `(field, bit)` pairs, in field order.
    pub masks: Vec<(OutField, u32, u64)>,
    /// Line-address bits probed.
    pub line_bits: u32,
}

impl RecoveredMapping {
    /// The mask of one output bit, if recovered.
    pub fn mask_of(&self, field: OutField, bit: u32) -> Option<u64> {
        self.masks
            .iter()
            .find(|(f, b, _)| *f == field && *b == bit)
            .map(|(_, _, m)| *m)
    }

    /// OR of all masks feeding `field`.
    pub fn field_mask(&self, field: OutField) -> u64 {
        self.masks
            .iter()
            .filter(|(f, _, _)| *f == field)
            .fold(0, |acc, (_, _, m)| acc | m)
    }

    /// The page-coloring mask the OS needs: row-region bits that also
    /// feed channel or rank (paper §III-A). `row_region` is the OR of the
    /// row-field masks.
    pub fn color_mask(&self) -> u64 {
        let row_region = self.field_mask(OutField::Row);
        (self.field_mask(OutField::Channel) | self.field_mask(OutField::Rank)) & row_region
    }
}

/// Why recovery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// A random probe contradicted linearity at this line address.
    NotLinear {
        /// The offending probe.
        line: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NotLinear { line } => {
                write!(f, "mapping is not GF(2)-linear (probe {line:#x} deviates)")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// Field/bit decomposition of a coordinate into probe-comparable bits.
fn bits_of(d: &DramAddress) -> Vec<(OutField, u32, bool)> {
    let mut out = Vec::with_capacity(40);
    for bit in 0..8u32 {
        out.push((OutField::Channel, bit, d.channel >> bit & 1 == 1));
        out.push((OutField::Rank, bit, d.rank >> bit & 1 == 1));
        out.push((OutField::BankGroup, bit, d.bankgroup >> bit & 1 == 1));
        out.push((OutField::Bank, bit, d.bank >> bit & 1 == 1));
    }
    for bit in 0..32u32 {
        out.push((OutField::Row, bit, d.row >> bit & 1 == 1));
        out.push((OutField::Col, bit, d.col >> bit & 1 == 1));
    }
    out
}

/// Recover the XOR masks of `oracle` over `line_bits` of line address,
/// validating linearity with `probes` pseudo-random checks.
///
/// # Errors
///
/// [`RecoverError::NotLinear`] when a probe deviates from the recovered
/// linear model (e.g. a bank-partitioned mapping).
pub fn recover(
    oracle: impl Fn(u64) -> DramAddress,
    line_bits: u32,
    probes: u32,
) -> Result<RecoveredMapping, RecoverError> {
    let zero = bits_of(&oracle(0));
    // Basis probes: which output bits toggle per input bit.
    let mut masks: Vec<(OutField, u32, u64)> = zero.iter().map(|&(f, b, _)| (f, b, 0u64)).collect();
    for i in 0..line_bits {
        let probe = bits_of(&oracle(1u64 << i));
        for (slot, (z, p)) in masks.iter_mut().zip(zero.iter().zip(probe.iter())) {
            debug_assert_eq!((z.0, z.1), (p.0, p.1));
            if z.2 != p.2 {
                slot.2 |= 1u64 << i;
            }
        }
    }
    // Linearity validation on deterministic pseudo-random lines.
    let predict = |line: u64| -> Vec<bool> {
        masks
            .iter()
            .zip(zero.iter())
            .map(|(&(_, _, m), &(_, _, z))| z ^ ((line & m).count_ones() & 1 == 1))
            .collect()
    };
    let mut x = 0x243f_6a88_85a3_08d3u64;
    for _ in 0..probes {
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let line = x.wrapping_mul(0x2545_f491_4f6c_dd1d) & ((1u64 << line_bits) - 1);
        let actual: Vec<bool> = bits_of(&oracle(line)).iter().map(|&(_, _, v)| v).collect();
        if actual != predict(line) {
            return Err(RecoverError::NotLinear { line });
        }
    }
    // Drop all-zero masks of bits that never toggled (absent fields).
    let masks = masks.into_iter().filter(|&(_, _, m)| m != 0).collect();
    Ok(RecoveredMapping { masks, line_bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, AddressMapper, PartitionedMapping};
    use chopim_dram::DramConfig;

    #[test]
    fn recovers_skylake_masks_exactly() {
        let cfg = DramConfig::table_ii();
        let m = presets::skylake_like(&cfg);
        let rec = recover(|l| m.map_line(l), m.line_bits(), 256).expect("linear");
        // Every recovered mask must predict the real mapping — check the
        // color mask, the paper's actually-needed output.
        assert_eq!(rec.color_mask(), m.rank_channel_row_mask());
        // Channel gets 1 bit, rank 1 bit, 16 row bits, 7 col bits...
        assert_eq!(rec.masks.len() as u32, m.line_bits());
    }

    #[test]
    fn recovers_naive_mapping() {
        let cfg = DramConfig::table_ii();
        let m = presets::naive(&cfg);
        let rec = recover(|l| m.map_line(l), m.line_bits(), 128).expect("linear");
        // Naive mapping: no hashed color bits at all.
        assert_eq!(rec.color_mask(), 0);
        // Column bit 0 is line bit 0.
        assert_eq!(rec.mask_of(OutField::Col, 0), Some(1));
    }

    #[test]
    fn detects_partitioned_mapping_as_nonlinear() {
        let cfg = DramConfig::table_ii();
        let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 2);
        let err = recover(|l| m.map_pa(l << 6), m.line_bits(), 512).unwrap_err();
        assert!(matches!(err, RecoverError::NotLinear { .. }), "{err}");
    }

    #[test]
    fn zero_reserved_partition_is_linear_again() {
        let cfg = DramConfig::table_ii();
        let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 0);
        assert!(recover(|l| m.map_pa(l << 6), m.line_bits(), 256).is_ok());
    }
}
