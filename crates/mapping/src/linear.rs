//! Invertible GF(2) linear (XOR-hash) address mappings.
//!
//! Every DRAM-coordinate bit is the XOR of a subset of the cache-line
//! physical-address bits. This captures the hashed interleavings of real
//! memory controllers (Intel Skylake and others reverse engineered in the
//! DRAMA work the paper cites) while staying analyzable: the mapping is a
//! square bit matrix over GF(2) whose invertibility we verify at
//! construction.

use chopim_dram::{DramAddress, DramConfig};

use crate::{AddressMapper, Pa};

/// Which DRAM coordinate a mapping output bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutField {
    /// Column (cache-line units).
    Col,
    /// Channel.
    Channel,
    /// Bank group.
    BankGroup,
    /// Bank within group.
    Bank,
    /// Rank within channel.
    Rank,
    /// Row.
    Row,
}

/// One output bit: its field, bit position within the field, and the XOR
/// mask over line-address bits that computes it.
#[derive(Debug, Clone, Copy)]
pub struct OutBit {
    /// Target coordinate field.
    pub field: OutField,
    /// Bit position within the field.
    pub bit: u32,
    /// XOR mask over cache-line address bits.
    pub mask: u64,
}

/// An invertible XOR-hash mapping between cache-line physical addresses
/// and DRAM coordinates.
///
/// Construct via [`LinearMapping::new`] (validates bijectivity) or one of
/// the [`crate::presets`].
#[derive(Debug, Clone)]
pub struct LinearMapping {
    bits: Vec<OutBit>,
    inverse: Vec<u64>,
    line_bits: u32,
    banks_per_group: usize,
    /// Number of row bits (exposed for the partition remap).
    pub row_bits: u32,
    /// Number of flat bank bits, `log2(banks_per_rank)`.
    pub bank_bits: u32,
}

fn parity(x: u64) -> u64 {
    u64::from(x.count_ones() & 1)
}

impl LinearMapping {
    /// Build a mapping from explicit output-bit specifications.
    ///
    /// `bits` must contain exactly `line_bits` entries whose masks form an
    /// invertible matrix over GF(2) and whose fields cover the geometry of
    /// `config`.
    ///
    /// # Errors
    ///
    /// Returns a description if the matrix is singular or the field widths
    /// do not match `config`.
    pub fn new(config: &DramConfig, bits: Vec<OutBit>) -> Result<Self, String> {
        let line_bits = (config.capacity_bytes() / config.line_bytes() as u64).trailing_zeros();
        if bits.len() != line_bits as usize {
            return Err(format!(
                "need exactly {line_bits} output bits, got {}",
                bits.len()
            ));
        }
        let width = |f: OutField| bits.iter().filter(|b| b.field == f).count() as u32;
        let expect = [
            (OutField::Col, config.lines_per_row().trailing_zeros()),
            (OutField::Channel, config.channels.trailing_zeros()),
            (OutField::BankGroup, config.bankgroups.trailing_zeros()),
            (OutField::Bank, config.banks_per_group.trailing_zeros()),
            (OutField::Rank, config.ranks_per_channel.trailing_zeros()),
            (OutField::Row, config.rows.trailing_zeros()),
        ];
        for (f, w) in expect {
            if width(f) != w {
                return Err(format!("field {f:?} needs {w} bits, got {}", width(f)));
            }
        }
        let inverse = invert_gf2(&bits.iter().map(|b| b.mask).collect::<Vec<_>>(), line_bits)
            .ok_or("mapping matrix is singular (not a bijection)")?;
        Ok(Self {
            bits,
            inverse,
            line_bits,
            banks_per_group: config.banks_per_group,
            row_bits: config.rows.trailing_zeros(),
            bank_bits: config.banks_per_rank().trailing_zeros(),
        })
    }

    /// Map a cache-line index to a DRAM coordinate.
    pub fn map_line(&self, line: u64) -> DramAddress {
        debug_assert!(line < 1u64 << self.line_bits, "line index out of range");
        let mut d = DramAddress::default();
        for b in &self.bits {
            let v = parity(line & b.mask);
            match b.field {
                OutField::Col => d.col |= (v as u32) << b.bit,
                OutField::Channel => d.channel |= (v as usize) << b.bit,
                OutField::BankGroup => d.bankgroup |= (v as usize) << b.bit,
                OutField::Bank => d.bank |= (v as usize) << b.bit,
                OutField::Rank => d.rank |= (v as usize) << b.bit,
                OutField::Row => d.row |= (v as u32) << b.bit,
            }
        }
        d
    }

    /// Inverse of [`map_line`](Self::map_line).
    pub fn unmap_line(&self, d: &DramAddress) -> u64 {
        let mut out_vec = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            let v = match b.field {
                OutField::Col => u64::from(d.col >> b.bit) & 1,
                OutField::Channel => (d.channel >> b.bit) as u64 & 1,
                OutField::BankGroup => (d.bankgroup >> b.bit) as u64 & 1,
                OutField::Bank => (d.bank >> b.bit) as u64 & 1,
                OutField::Rank => (d.rank >> b.bit) as u64 & 1,
                OutField::Row => u64::from(d.row >> b.bit) & 1,
            };
            out_vec |= v << i;
        }
        let mut line = 0u64;
        for (i, row) in self.inverse.iter().enumerate() {
            line |= parity(out_vec & row) << i;
        }
        line
    }

    /// The XOR masks (over *row-region line bits*) feeding channel and rank
    /// outputs — these define the OS page-coloring bits (paper §III-A).
    pub fn rank_channel_row_mask(&self) -> u64 {
        // Row-region bits are those used as the primary (identity) inputs of
        // row outputs.
        let row_region: u64 = self
            .bits
            .iter()
            .filter(|b| b.field == OutField::Row)
            .fold(0, |acc, b| acc | b.mask);
        self.bits
            .iter()
            .filter(|b| matches!(b.field, OutField::Channel | OutField::Rank))
            .fold(0, |acc, b| acc | (b.mask & row_region))
    }

    /// Banks per group (needed to flatten bank ids).
    pub fn banks_per_group(&self) -> usize {
        self.banks_per_group
    }
}

impl AddressMapper for LinearMapping {
    fn map_pa(&self, pa: Pa) -> DramAddress {
        self.map_line((pa >> 6) & ((1u64 << self.line_bits) - 1))
    }

    fn unmap(&self, d: &DramAddress) -> Pa {
        self.unmap_line(d) << 6
    }

    fn line_bits(&self) -> u32 {
        self.line_bits
    }
}

/// Invert an `n x n` bit matrix given as row masks. Returns `None` if
/// singular.
fn invert_gf2(rows: &[u64], n: u32) -> Option<Vec<u64>> {
    let n = n as usize;
    let mut a: Vec<u64> = rows.to_vec();
    let mut inv: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r] >> col & 1 == 1)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..n {
            if r != col && a[r] >> col & 1 == 1 {
                a[r] ^= a[col];
                inv[r] ^= inv[col];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    #[test]
    fn gf2_inversion_round_trip() {
        // Small known-invertible matrix: rows = {b01, b11}.
        let inv = invert_gf2(&[0b01, 0b11], 2).unwrap();
        // M = [[1,0],[1,1]] (row i = mask): M^-1 = [[1,0],[1,1]].
        assert_eq!(inv, vec![0b01, 0b11]);
        // Singular matrix rejected.
        assert!(invert_gf2(&[0b01, 0b01], 2).is_none());
    }

    #[test]
    fn wrong_bit_count_rejected() {
        let cfg = chopim_dram::DramConfig::table_ii();
        assert!(LinearMapping::new(&cfg, vec![]).is_err());
    }

    #[test]
    fn skylake_preset_is_bijective_on_samples() {
        let cfg = chopim_dram::DramConfig::table_ii();
        let m = presets::skylake_like(&cfg);
        for line in (0..1u64 << 20).step_by(7919) {
            let d = m.map_line(line);
            assert_eq!(m.unmap_line(&d), line, "line {line} -> {d}");
        }
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let cfg = chopim_dram::DramConfig::table_ii();
        let m = presets::skylake_like(&cfg);
        // Fine-grain channel interleaving: among any 16 consecutive lines,
        // both channels must appear (paper §II, address mapping policy).
        for base in [0u64, 1 << 12, 1 << 20] {
            let chans: std::collections::HashSet<_> =
                (base..base + 16).map(|l| m.map_line(l).channel).collect();
            assert_eq!(chans.len(), cfg.channels);
        }
    }

    #[test]
    fn msbs_only_feed_row() {
        let cfg = chopim_dram::DramConfig::table_ii();
        let m = presets::skylake_like(&cfg);
        // Flipping any of the top `bank_bits` line bits must change only
        // the row (the partitioning prerequisite, paper Fig. 4b).
        let line = 0x0123_4567u64 & ((1 << m.line_bits()) - 1);
        let top = m.line_bits() - m.bank_bits;
        for b in top..m.line_bits() {
            let d0 = m.map_line(line);
            let d1 = m.map_line(line ^ (1 << b));
            assert_eq!(d0.channel, d1.channel);
            assert_eq!(d0.rank, d1.rank);
            assert_eq!(d0.bankgroup, d1.bankgroup);
            assert_eq!(d0.bank, d1.bank);
            assert_eq!(d0.col, d1.col);
            assert_ne!(d0.row, d1.row);
        }
    }

    #[test]
    fn color_mask_has_eight_colors_for_table_ii() {
        let cfg = chopim_dram::DramConfig::table_ii();
        let m = presets::skylake_like(&cfg);
        // 3 color bits -> 8 colors -> 4 GiB regions in a 32 GiB system,
        // matching the paper's "8 colors ... 4GiB" baseline.
        assert_eq!(m.rank_channel_row_mask().count_ones(), 3);
    }

    proptest! {
        #[test]
        fn prop_bijective(line in 0u64..(1 << 29)) {
            let cfg = chopim_dram::DramConfig::table_ii();
            let m = presets::skylake_like(&cfg);
            let d = m.map_line(line);
            prop_assert_eq!(m.unmap_line(&d), line);
        }

        #[test]
        fn prop_naive_bijective(line in 0u64..(1 << 29)) {
            let cfg = chopim_dram::DramConfig::table_ii();
            let m = presets::naive(&cfg);
            let d = m.map_line(line);
            prop_assert_eq!(m.unmap_line(&d), line);
        }

        #[test]
        fn prop_scaled_geometries_bijective(line in 0u64..(1 << 20), ranks in prop::sample::select(vec![2usize, 4, 8])) {
            let cfg = chopim_dram::DramConfig::table_ii().with_ranks(ranks);
            let m = presets::skylake_like(&cfg);
            let line = line & ((1 << m.line_bits()) - 1);
            let d = m.map_line(line);
            prop_assert_eq!(m.unmap_line(&d), line);
        }
    }
}
