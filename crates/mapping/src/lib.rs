//! # chopim-mapping
//!
//! Everything between an OS physical address and a DRAM coordinate:
//!
//! * [`linear`] — invertible GF(2) (XOR-hash) address interleaving, the
//!   class of mapping used by modern server processors (paper Fig. 4a);
//! * [`presets`] — a Skylake-like hashed preset and a naive
//!   row:rank:bank:channel:column baseline;
//! * [`partition`] — the paper's bank-partitioning remap (Fig. 4b): an
//!   MSB-nibble ↔ bank-bit swap that is compatible with huge pages *and*
//!   arbitrary hash interleaving, proven alias-free by construction
//!   (it is an involution on the DRAM coordinate space);
//! * [`color`] — the OS model: coarse *system-row* allocation with page
//!   coloring so that all operands of an NDA instruction interleave across
//!   ranks identically (paper §III-A);
//! * [`layout`] — data layout across the chips of a rank: baseline striped
//!   words vs. Chopim's word-per-chip layout that keeps every word local to
//!   one PE;
//! * [`drama`] — DRAMA-style reverse engineering: recover the XOR masks
//!   (and the OS color mask) from an address→coordinate oracle, as the
//!   paper's OS support assumes is possible \[67\].
//!
//! ```
//! use chopim_dram::DramConfig;
//! use chopim_mapping::{presets, AddressMapper};
//!
//! let cfg = DramConfig::table_ii();
//! let map = presets::skylake_like(&cfg);
//! let d = map.map_pa(0x4000_0040);
//! assert_eq!(map.unmap(&d), 0x4000_0040 >> 6 << 6);
//! ```

#![forbid(unsafe_code)]

pub mod color;
pub mod drama;
pub mod layout;
pub mod linear;
pub mod partition;
pub mod presets;

pub use color::{Color, ColoredAllocator, Region, SystemRow};
pub use drama::{recover, RecoverError, RecoveredMapping};
pub use layout::{ChipLayout, WordLocation};
pub use linear::LinearMapping;
pub use partition::PartitionedMapping;

/// A byte physical address.
pub type Pa = u64;

/// The interface every host-side address mapping implements: a bijection
/// between cache-line physical addresses and DRAM coordinates.
pub trait AddressMapper {
    /// Map a cache-line-aligned physical address (low 6 bits ignored).
    fn map_pa(&self, pa: Pa) -> chopim_dram::DramAddress;

    /// Inverse mapping back to the (line-aligned) physical address.
    fn unmap(&self, d: &chopim_dram::DramAddress) -> Pa;

    /// Number of cache-line address bits covered by the mapping.
    fn line_bits(&self) -> u32;
}
