//! The OS memory-management model: coarse *system-row* allocation with
//! page coloring (paper §III-A).
//!
//! NDA operands must interleave across ranks exactly the same way, so the
//! Chopim runtime asks the OS for memory that is (a) aligned and allocated
//! at system-row granularity (one DRAM row in every bank of the system —
//! 512 KiB for the Table II machine) and (b) *colored*: the row-index bits
//! that feed the channel/rank hash are equal for every allocation of the
//! same color. Allocation itself is a free-list per color, the fragmentation
//! behavior of which matches huge-page allocation as the paper argues.

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::DramConfig;

use crate::linear::LinearMapping;
use crate::Pa;

/// A page color: the compressed value of the row-index bits that determine
/// rank/channel interleaving. Operands sharing a color stay rank-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(pub u32);

/// One allocated system row: `index` is the global row index (the DRAM row
/// opened in every bank when this allocation streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemRow {
    /// Global system-row index (== DRAM row index).
    pub index: u32,
}

/// A contiguous physical allocation of whole system rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The system rows backing the region, in virtual order.
    pub rows: Vec<SystemRow>,
    /// Bytes per system row.
    pub row_bytes: u64,
    /// Color shared by all rows (None for host-only, uncolored regions).
    pub color: Option<Color>,
}

impl Region {
    /// Total bytes in the region.
    pub fn len_bytes(&self) -> u64 {
        self.rows.len() as u64 * self.row_bytes
    }

    /// Physical address of byte `offset` into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len_bytes()`.
    pub fn pa_of(&self, offset: u64) -> Pa {
        assert!(offset < self.len_bytes(), "offset out of region");
        let row = &self.rows[(offset / self.row_bytes) as usize];
        u64::from(row.index) * self.row_bytes + (offset % self.row_bytes)
    }
}

/// The OS physical allocator: hands out system rows, colored on request.
///
/// When built over a partitioned mapping, rows at or above
/// `shared_boundary` form the shared (NDA-reachable) space and host-only
/// requests never receive them.
#[derive(Debug, Clone)]
pub struct ColoredAllocator {
    row_bytes: u64,
    color_bits: Vec<u32>, // positions within the row index
    /// Free host-only rows, per color bucket.
    host_free: Vec<Vec<u32>>,
    /// Free shared-region rows, per color bucket.
    shared_free: Vec<Vec<u32>>,
    total_rows: u32,
    allocated: u32,
}

impl ColoredAllocator {
    /// Build an allocator for `config`, deriving the color mask from
    /// `mapping` and splitting host/shared space at row `shared_boundary`
    /// (use `config.rows` when partitioning is off).
    pub fn new(config: &DramConfig, mapping: &LinearMapping, shared_boundary: u32) -> Self {
        // The mapping's color mask is over line-address bits; row index i
        // corresponds to line bits (row_base + i), so translate.
        let mask = mapping.rank_channel_row_mask();
        use crate::AddressMapper as _;
        let row_base = mapping.line_bits() - mapping.row_bits;
        let color_bits: Vec<u32> = (0..mapping.row_bits)
            .filter(|i| mask >> (row_base + i) & 1 == 1)
            .collect();
        let ncolors = 1usize << color_bits.len();
        let mut host_free = vec![Vec::new(); ncolors];
        let mut shared_free = vec![Vec::new(); ncolors];
        let total_rows = config.rows as u32;
        // Highest rows first so early allocations look "top of memory".
        for row in (0..total_rows).rev() {
            let c = Self::color_of_row(&color_bits, row);
            if row < shared_boundary {
                host_free[c.0 as usize].push(row);
            } else {
                shared_free[c.0 as usize].push(row);
            }
        }
        Self {
            row_bytes: config.system_row_bytes(),
            color_bits,
            host_free,
            shared_free,
            total_rows,
            allocated: 0,
        }
    }

    fn color_of_row(bits: &[u32], row: u32) -> Color {
        let mut c = 0u32;
        for (i, b) in bits.iter().enumerate() {
            c |= (row >> b & 1) << i;
        }
        Color(c)
    }

    /// Number of distinct colors.
    pub fn num_colors(&self) -> usize {
        1 << self.color_bits.len()
    }

    /// The color a given system row belongs to.
    pub fn color_of(&self, row: SystemRow) -> Color {
        Self::color_of_row(&self.color_bits, row.index)
    }

    /// Bytes per system row.
    pub fn system_row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Allocate `n` system rows of `color` from the shared region.
    ///
    /// Returns `None` when the color bucket is exhausted (the OS would
    /// fall back to migration/defrag; our experiments never need it).
    pub fn alloc_shared(&mut self, color: Color, n: usize) -> Option<Region> {
        self.alloc_from(true, color, n)
    }

    /// Allocate `n` host-only system rows of `color`.
    pub fn alloc_host_colored(&mut self, color: Color, n: usize) -> Option<Region> {
        self.alloc_from(false, color, n)
    }

    /// Allocate `n` host-only system rows with no color constraint.
    pub fn alloc_host(&mut self, n: usize) -> Option<Region> {
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let c = (0..self.num_colors())
                .max_by_key(|&c| self.host_free[c].len())
                .expect("at least one color");
            match self.host_free[c].pop() {
                Some(r) => rows.push(SystemRow { index: r }),
                None => return None,
            }
        }
        self.allocated += rows.len() as u32;
        Some(Region {
            rows,
            row_bytes: self.row_bytes,
            color: None,
        })
    }

    fn alloc_from(&mut self, shared: bool, color: Color, n: usize) -> Option<Region> {
        assert!((color.0 as usize) < self.num_colors(), "color out of range");
        let pool = if shared {
            &mut self.shared_free
        } else {
            &mut self.host_free
        };
        let bucket = &mut pool[color.0 as usize];
        if bucket.len() < n {
            return None;
        }
        let rows = bucket.split_off(bucket.len() - n);
        self.allocated += n as u32;
        Some(Region {
            rows: rows.into_iter().map(|index| SystemRow { index }).collect(),
            row_bytes: self.row_bytes,
            color: Some(color),
        })
    }

    /// Return a region's rows to the free pools.
    pub fn free(&mut self, region: Region, shared_boundary: u32) {
        for row in region.rows {
            let c = self.color_of(row).0 as usize;
            if row.index < shared_boundary {
                self.host_free[c].push(row.index);
            } else {
                self.shared_free[c].push(row.index);
            }
            self.allocated -= 1;
        }
    }

    /// Rows currently allocated.
    pub fn allocated_rows(&self) -> u32 {
        self.allocated
    }

    /// Total rows managed.
    pub fn total_rows(&self) -> u32 {
        self.total_rows
    }

    /// Serialize the allocator's free-list state (snapshot support). The
    /// free-list *order* is captured verbatim: allocation pops from the
    /// tail, so order determines every future placement decision.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.row_bytes);
        w.varint(self.color_bits.len() as u64);
        w.varint(u64::from(self.total_rows));
        for pool in [&self.host_free, &self.shared_free] {
            for bucket in pool {
                w.u32_slice(bucket);
            }
        }
        w.varint(u64::from(self.allocated));
    }

    /// Overwrite this allocator's state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`CodecError::ConfigMismatch`] when the serialized geometry (row
    /// size, color count, total rows) differs from this allocator's.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.varint()? != self.row_bytes
            || r.varint_usize()? != self.color_bits.len()
            || r.varint_u32()? != self.total_rows
        {
            return Err(CodecError::ConfigMismatch);
        }
        let ncolors = self.num_colors();
        for pool in [&mut self.host_free, &mut self.shared_free] {
            for bucket in pool.iter_mut().take(ncolors) {
                *bucket = r.u32_vec()?;
            }
        }
        self.allocated = r.varint_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::AddressMapper;

    fn setup() -> (DramConfig, LinearMapping, ColoredAllocator) {
        let cfg = DramConfig::table_ii();
        let map = presets::skylake_like(&cfg);
        // Reserve the top 1/16 of rows as shared space (1 reserved bank).
        let boundary = (cfg.rows - cfg.rows / 16) as u32;
        let alloc = ColoredAllocator::new(&cfg, &map, boundary);
        (cfg, map, alloc)
    }

    #[test]
    fn eight_colors_for_table_ii() {
        let (_, _, a) = setup();
        assert_eq!(a.num_colors(), 8);
    }

    #[test]
    fn same_color_rows_share_rank_channel_interleave() {
        let (cfg, map, mut alloc) = setup();
        let r1 = alloc.alloc_shared(Color(3), 1).unwrap();
        let r2 = alloc.alloc_shared(Color(3), 1).unwrap();
        // Walk both regions line by line: the (channel, rank) sequence must
        // be identical — this is exactly the paper's operand-alignment
        // requirement.
        let lines = cfg.system_row_bytes() / 64;
        for i in (0..lines).step_by(17) {
            let d1 = map.map_pa(r1.pa_of(i * 64));
            let d2 = map.map_pa(r2.pa_of(i * 64));
            assert_eq!((d1.channel, d1.rank), (d2.channel, d2.rank), "line {i}");
        }
    }

    #[test]
    fn different_colors_can_diverge() {
        let (cfg, map, mut alloc) = setup();
        let r1 = alloc.alloc_shared(Color(0), 1).unwrap();
        let r2 = alloc.alloc_shared(Color(5), 1).unwrap();
        let lines = cfg.system_row_bytes() / 64;
        let diverges = (0..lines).any(|i| {
            let d1 = map.map_pa(r1.pa_of(i * 64));
            let d2 = map.map_pa(r2.pa_of(i * 64));
            (d1.channel, d1.rank) != (d2.channel, d2.rank)
        });
        assert!(diverges, "distinct colors should shuffle ranks differently");
    }

    #[test]
    fn shared_and_host_pools_are_disjoint() {
        let (cfg, _, mut alloc) = setup();
        let boundary = (cfg.rows - cfg.rows / 16) as u32;
        let shared = alloc.alloc_shared(Color(0), 4).unwrap();
        for r in &shared.rows {
            assert!(r.index >= boundary);
        }
        let host = alloc.alloc_host(4).unwrap();
        for r in &host.rows {
            assert!(r.index < boundary);
        }
    }

    #[test]
    fn exhaustion_returns_none_and_free_recycles() {
        let (cfg, map, _) = setup();
        let mut alloc = ColoredAllocator::new(&cfg, &map, (cfg.rows / 2) as u32);
        let per_color = cfg.rows / 2 / 8;
        let region = alloc.alloc_shared(Color(1), per_color).unwrap();
        assert!(alloc.alloc_shared(Color(1), 1).is_none());
        assert!(
            alloc.alloc_shared(Color(2), 1).is_some(),
            "other colors unaffected"
        );
        alloc.free(region, (cfg.rows / 2) as u32);
        assert!(alloc.alloc_shared(Color(1), per_color).is_some());
    }

    #[test]
    fn region_pa_addressing_is_row_contiguous() {
        let (cfg, _, mut alloc) = setup();
        let r = alloc.alloc_shared(Color(0), 2).unwrap();
        assert_eq!(r.len_bytes(), 2 * cfg.system_row_bytes());
        let row_bytes = cfg.system_row_bytes();
        // Within one system row, PAs are contiguous.
        assert_eq!(r.pa_of(100) - r.pa_of(0), 100);
        // Across rows, PA jumps to the next allocated row.
        let pa_last = r.pa_of(row_bytes - 1);
        let pa_next = r.pa_of(row_bytes);
        assert_eq!(
            pa_last,
            u64::from(r.rows[0].index) * row_bytes + row_bytes - 1
        );
        assert_eq!(pa_next, u64::from(r.rows[1].index) * row_bytes);
    }

    #[test]
    #[should_panic(expected = "offset out of region")]
    fn out_of_region_offset_panics() {
        let (_, _, mut alloc) = setup();
        let r = alloc.alloc_shared(Color(0), 1).unwrap();
        let _ = r.pa_of(r.len_bytes());
    }
}
