//! Bank partitioning compatible with huge pages and hashed interleaving
//! (paper §III-C, Fig. 4b).
//!
//! The OS reserves the top `reserved` banks of every rank for data shared
//! with the NDAs and withholds the top `reserved/banks` fraction of the
//! physical address space from host-only use. The memory controller then
//! applies *any* hash mapping and fixes up collisions with a single swap:
//!
//! > if the initially mapped bank is reserved, swap the row MSB-nibble with
//! > the bank bits.
//!
//! We generalize the paper's rule to a total involution on the DRAM
//! coordinate space (swap whenever *either* the mapped bank *or* the row
//! MSB nibble is reserved), which simultaneously:
//!
//! * redirects host-only addresses out of reserved banks (never aliasing,
//!   because host MSBs are never a reserved-bank pattern), and
//! * lands every shared-region address (MSB nibble reserved) *in* a
//!   reserved bank.
//!
//! Because the fix-up is an involution over (bank-id, row-MSB-nibble), it
//! is trivially bijective — property-tested below.

use chopim_dram::{DramAddress, DramConfig};

use crate::linear::LinearMapping;
use crate::{AddressMapper, Pa};

/// A hash mapping wrapped with the Fig.-4b bank-partition remap.
#[derive(Debug, Clone)]
pub struct PartitionedMapping {
    inner: LinearMapping,
    /// Banks per rank reserved for the shared/NDA region (taken from the
    /// top of the flat bank-id space). Zero disables partitioning.
    reserved: usize,
    banks_per_rank: usize,
    banks_per_group: usize,
    bank_bits: u32,
    row_bits: u32,
    line_bits: u32,
}

impl PartitionedMapping {
    /// Wrap `inner`, reserving `reserved` banks per rank (the paper's
    /// evaluation reserves one).
    ///
    /// # Panics
    ///
    /// Panics if `reserved >= banks_per_rank` — at least one host bank must
    /// remain.
    pub fn new(config: &DramConfig, inner: LinearMapping, reserved: usize) -> Self {
        let banks_per_rank = config.banks_per_rank();
        assert!(reserved < banks_per_rank, "must leave host banks");
        Self {
            reserved,
            banks_per_rank,
            banks_per_group: config.banks_per_group,
            bank_bits: inner.bank_bits,
            row_bits: inner.row_bits,
            line_bits: {
                use crate::AddressMapper as _;
                inner.line_bits()
            },
            inner,
        }
    }

    /// First reserved flat bank id (== number of host banks per rank).
    #[inline]
    pub fn first_reserved(&self) -> usize {
        self.banks_per_rank - self.reserved
    }

    /// Banks per rank reserved for the shared region.
    #[inline]
    pub fn reserved_banks(&self) -> usize {
        self.reserved
    }

    /// Bytes of physical address space usable by host-only allocations.
    pub fn host_capacity_bytes(&self) -> u64 {
        let total = 1u64 << (self.line_bits + 6);
        total / self.banks_per_rank as u64 * self.first_reserved() as u64
    }

    /// First physical address of the shared (NDA-visible) region.
    pub fn shared_base(&self) -> Pa {
        self.host_capacity_bytes()
    }

    /// True if `pa` lies in the shared region (row-MSB nibble reserved).
    pub fn is_shared_pa(&self, pa: Pa) -> bool {
        self.reserved > 0 && pa >= self.shared_base()
    }

    /// The involutive fix-up on a mapped coordinate.
    fn fixup(&self, mut d: DramAddress) -> DramAddress {
        if self.reserved == 0 {
            return d;
        }
        let first = self.first_reserved() as u32;
        let shift = self.row_bits - self.bank_bits;
        let nibble = d.row >> shift;
        let bank = d.flat_bank(self.banks_per_group) as u32;
        if bank >= first || nibble >= first {
            let low_row = d.row & ((1 << shift) - 1);
            d.row = (bank << shift) | low_row;
            d = d.with_flat_bank(nibble as usize, self.banks_per_group);
        }
        d
    }

    /// The underlying hash mapping (pre-fix-up), for tests and analysis.
    pub fn inner(&self) -> &LinearMapping {
        &self.inner
    }
}

impl AddressMapper for PartitionedMapping {
    fn map_pa(&self, pa: Pa) -> DramAddress {
        self.fixup(self.inner.map_pa(pa))
    }

    fn unmap(&self, d: &DramAddress) -> Pa {
        // The fix-up is an involution: applying it again undoes it.
        self.inner.unmap(&self.fixup(*d))
    }

    fn line_bits(&self) -> u32 {
        self.line_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    fn mk(reserved: usize) -> (DramConfig, PartitionedMapping) {
        let cfg = DramConfig::table_ii();
        let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), reserved);
        (cfg, m)
    }

    #[test]
    fn host_region_never_touches_reserved_banks() {
        let (cfg, m) = mk(1);
        let host_lines = m.host_capacity_bytes() >> 6;
        let first = m.first_reserved();
        let mut rng_lines = (0..host_lines).step_by(104729);
        assert!(rng_lines.by_ref().take(1).next().is_some());
        for line in (0..host_lines).step_by(104729) {
            let d = m.map_pa(line << 6);
            assert!(
                d.flat_bank(cfg.banks_per_group) < first,
                "host pa mapped into reserved bank: {d}"
            );
        }
    }

    #[test]
    fn shared_region_maps_only_to_reserved_banks() {
        let (cfg, m) = mk(2);
        let first = m.first_reserved();
        let total = 1u64 << (m.line_bits() + 6);
        for pa in (m.shared_base()..total).step_by(1 << 17) {
            let d = m.map_pa(pa);
            assert!(
                d.flat_bank(cfg.banks_per_group) >= first,
                "shared pa {pa:#x} landed in host bank: {d}"
            );
        }
    }

    #[test]
    fn one_reserved_bank_matches_paper_methodology() {
        let (_, m) = mk(1);
        assert_eq!(m.first_reserved(), 15);
        // 15/16 of 32 GiB for the host.
        assert_eq!(m.host_capacity_bytes(), 30 * (1u64 << 30));
    }

    #[test]
    fn zero_reserved_is_identity() {
        let (_, m) = mk(0);
        for pa in (0..(1u64 << 30)).step_by(999331) {
            assert_eq!(m.map_pa(pa), m.inner().map_pa(pa));
        }
    }

    #[test]
    #[should_panic(expected = "host banks")]
    fn reserving_all_banks_panics() {
        let _ = mk(16);
    }

    proptest! {
        /// The partitioned mapping stays a bijection: unmap(map(pa)) == pa.
        #[test]
        fn prop_round_trip(pa in 0u64..(1u64 << 35), reserved in 0usize..4) {
            let cfg = DramConfig::table_ii();
            let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), reserved);
            let pa = pa & !63;
            let d = m.map_pa(pa);
            prop_assert_eq!(m.unmap(&d), pa);
        }

        /// No two distinct lines collide (spot check via random pairs).
        #[test]
        fn prop_no_alias(a in 0u64..(1u64 << 29), b in 0u64..(1u64 << 29)) {
            prop_assume!(a != b);
            let cfg = DramConfig::table_ii();
            let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 1);
            prop_assert_ne!(m.map_pa(a << 6), m.map_pa(b << 6));
        }

        /// The fix-up is an involution on coordinates.
        #[test]
        fn prop_fixup_involution(line in 0u64..(1u64 << 29)) {
            let cfg = DramConfig::table_ii();
            let m = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 2);
            let d = m.inner().map_line(line);
            let once = m.fixup(d);
            let twice = m.fixup(once);
            prop_assert_eq!(d, twice);
        }
    }
}
