//! Wall-clock costs of SVRG steps, measured on the Chopim simulator.
//!
//! The paper measures convergence against wall-clock seconds on its
//! simulated machine. Running 50 000-sample epochs through a cycle
//! simulator end-to-end is infeasible, so we do what the paper's
//! evaluation effectively does: measure the *rates* (NDA summarization
//! bandwidth with and without host interference, host streaming bandwidth
//! with and without NDA interference) on representative windows, then
//! compose per-step times. All rates come from real simulation of the
//! average-gradient kernel (Fig. 8) — not hand-picked constants.

use chopim_core::prelude::*;

/// DRAM bus frequency (Table II).
const CLOCK_HZ: f64 = 1.2e9;

/// Per-step wall-clock costs for the SVRG variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrgTimeModel {
    /// Host inner-loop iteration, no NDA interference (s).
    pub host_iter_s: f64,
    /// Host inner-loop iteration while NDAs summarize (s).
    pub host_iter_concurrent_s: f64,
    /// Host-only full-dataset summarization (s).
    pub host_summarize_s: f64,
    /// NDA summarization, host otherwise idle (s).
    pub nda_summarize_s: f64,
    /// NDA summarization under a live host inner loop (s).
    pub nda_summarize_concurrent_s: f64,
    /// Host↔NDA exchange of the correction term and weights (s).
    pub exchange_s: f64,
}

impl SvrgTimeModel {
    /// A fixed, simulator-free model for unit tests (values in the right
    /// ratios: NDA summarization ~4x faster than host, ~20% mutual
    /// slowdown when concurrent).
    pub fn analytic_default() -> Self {
        Self {
            host_iter_s: 2.0e-6,
            host_iter_concurrent_s: 2.4e-6,
            host_summarize_s: 4.0e-3,
            nda_summarize_s: 1.0e-3,
            nda_summarize_concurrent_s: 1.25e-3,
            exchange_s: 2.0e-5,
        }
    }

    /// The host profile standing in for the SVRG inner loop: streams one
    /// sample (d features) per iteration with modest writeback traffic.
    pub fn svrg_host_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "svrg_inner",
            mpki: 24.0,
            writeback_ratio: 0.05,
            run_length: 12.0,
            footprint_bytes: 64 << 20,
            intensity: chopim_host::MemIntensity::High,
        }
    }

    /// Measure the model on the simulator for a dataset of `n x d` and a
    /// machine with `ranks` ranks per channel.
    ///
    /// `n_probe` samples are actually simulated (cost is linear in n, so
    /// the per-sample rate transfers; see module docs).
    pub fn measure(n: usize, d: usize, classes: usize, ranks: usize) -> Self {
        let n_probe = 96.min(n);
        let mk_cfg = |profiles: Option<Vec<WorkloadProfile>>| ChopimConfig {
            dram: DramConfig::table_ii()
                .with_ranks(ranks)
                .with_timing(TimingParams::ddr4_2400_no_refresh()),
            custom_profiles: profiles,
            nda_queue_cap: 32,
            ..ChopimConfig::default()
        };

        // --- NDA summarization rate, host idle. ---
        let serial = Self::summarize_cycles(mk_cfg(None), n_probe, d);
        // --- NDA summarization rate, host inner loop live. ---
        let concurrent =
            Self::summarize_cycles(mk_cfg(Some(vec![Self::svrg_host_profile()])), n_probe, d);

        let per_sample_serial = serial as f64 / n_probe as f64 / CLOCK_HZ;
        let per_sample_concurrent = concurrent as f64 / n_probe as f64 / CLOCK_HZ;

        // --- Host streaming bandwidth (for host-only summarization and
        // the inner loop's sample fetch), measured host-only. ---
        let (host_bw, host_bw_concurrent) = Self::host_bandwidth(mk_cfg, n_probe, d);

        let sample_bytes = (d * 4) as f64;
        let flops_per_sample = (2 * classes * d) as f64;
        // 4-core host at 8 FLOPs/cycle/core, 4 GHz.
        let host_flops = 4.0 * 8.0 * 4.0e9;
        let host_iter_s = sample_bytes / host_bw + flops_per_sample / host_flops;
        let host_iter_concurrent_s =
            sample_bytes / host_bw_concurrent + flops_per_sample / host_flops;
        let host_summarize_s =
            n as f64 * (sample_bytes / host_bw + 3.0 * flops_per_sample / host_flops);
        let exchange_bytes = (2 * classes * d * 4) as f64;
        let peak = 2.0 * 16.0 * CLOCK_HZ; // 2 channels x 16 B/cycle

        Self {
            host_iter_s,
            host_iter_concurrent_s,
            host_summarize_s,
            nda_summarize_s: per_sample_serial * n as f64,
            nda_summarize_concurrent_s: per_sample_concurrent * n as f64,
            exchange_s: exchange_bytes / peak + 1.0e-6,
        }
    }

    /// Cycles to run the average-gradient kernel (Fig. 8) over `n_probe`
    /// samples on the simulator.
    fn summarize_cycles(cfg: ChopimConfig, n_probe: usize, d: usize) -> u64 {
        let mut sys = ChopimSystem::new(cfg);
        let x = sys.runtime.matrix(n_probe, d);
        let w = sys.runtime.vector(d, Sharing::Shared);
        let y = sys.runtime.vector(n_probe, Sharing::Shared);
        let v = sys.runtime.vector(n_probe, Sharing::Shared);
        let a_pvt = sys.runtime.vector(d, Sharing::Private);
        sys.runtime.write_vector(w, &vec![0.01; d]);
        sys.runtime.write_vector(v, &vec![1.0; n_probe]);
        let start = sys.now();
        let sess = sys.runtime.create_session();
        // gemv(y = X w); xmy(v = v*y); host sigmoid; xmy; scal; then the
        // per-sample macro AXPY (Fig. 8). The host must synchronize at
        // the sigmoid (it reads v) and before reading the alphas, so the
        // graph is driven in two dependent segments.
        let g1 = sess.gemv(&mut sys.runtime, y, x, w).submit();
        let g2 = sess
            .elementwise(&mut sys.runtime, Opcode::Xmy, vec![], vec![v, y], Some(v))
            .after(g1)
            .submit();
        sys.drive(g2, 160_000_000);
        sys.runtime.host_sigmoid(v);
        let g3 = sess
            .elementwise(
                &mut sys.runtime,
                Opcode::Scal,
                vec![1.0 / n_probe as f32],
                vec![],
                Some(v),
            )
            .submit();
        sys.drive(g3, 80_000_000);
        let alphas = sys.runtime.read_vector(v).to_vec();
        let g4 = sess
            .axpy_rows(&mut sys.runtime, a_pvt, alphas, x, 8)
            .no_barrier()
            .submit();
        sys.drive(g4, 200_000_000);
        assert!(
            sys.runtime.op_done(g4),
            "summarization kernel did not finish"
        );
        sys.now() - start + sys.runtime.host_comm_cycles
    }

    /// Achieved host streaming bandwidth (bytes/s) without and with a
    /// concurrent NDA summarization kernel.
    fn host_bandwidth(
        mk_cfg: impl Fn(Option<Vec<WorkloadProfile>>) -> ChopimConfig,
        n_probe: usize,
        d: usize,
    ) -> (f64, f64) {
        // Host alone.
        let mut sys = ChopimSystem::new(mk_cfg(Some(vec![Self::svrg_host_profile()])));
        sys.run(150_000);
        let alone = sys.report().core_bw_gbs * 1e9;

        // Host with the NDA macro kernel running (a resident relaunching
        // stream for the whole window).
        let mut sys = ChopimSystem::new(mk_cfg(Some(vec![Self::svrg_host_profile()])));
        let x = sys.runtime.matrix(n_probe, d);
        let a_pvt = sys.runtime.vector(d, Sharing::Private);
        let alphas = vec![0.5f32; n_probe];
        let sess = sys.runtime.create_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.axpy_rows(rt, a_pvt, alphas.clone(), x, 8)
                .no_barrier()
                .submit()
        });
        sys.run(150_000);
        let with_nda = sys.report().core_bw_gbs * 1e9;
        (alone.max(1.0), with_nda.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_default_has_sane_ratios() {
        let t = SvrgTimeModel::analytic_default();
        assert!(t.nda_summarize_s < t.host_summarize_s);
        assert!(t.host_iter_concurrent_s >= t.host_iter_s);
        assert!(t.nda_summarize_concurrent_s >= t.nda_summarize_s);
        assert!(t.exchange_s < t.nda_summarize_s);
    }

    #[test]
    fn measured_model_is_consistent() {
        // Small probe to keep test time bounded.
        let t = SvrgTimeModel::measure(2048, 256, 10, 2);
        assert!(t.nda_summarize_s > 0.0);
        assert!(t.host_iter_s > 0.0);
        assert!(
            t.nda_summarize_s < t.host_summarize_s,
            "NDAs must summarize faster than the host: {t:?}"
        );
        assert!(
            t.nda_summarize_concurrent_s >= t.nda_summarize_s * 0.99,
            "interference should not speed NDAs up: {t:?}"
        );
        assert!(t.host_iter_concurrent_s >= t.host_iter_s * 0.99, "{t:?}");
    }
}
