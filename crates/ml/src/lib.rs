//! # chopim-ml
//!
//! The paper's case-study workloads (§IV, §VII):
//!
//! * [`dataset`] — a synthetic 10-class dataset standing in for cifar10
//!   (see `DESIGN.md` substitutions): same objective class, configurable
//!   scale;
//! * [`logreg`] — multinomial logistic regression with ℓ2 regularization,
//!   full/sample gradients and loss;
//! * [`svrg`] — stochastic variance-reduced gradient descent in the
//!   paper's three modes: host-only, NDA-accelerated (serialized), and
//!   *delayed-update* (host inner loop and NDA summarization overlap, at
//!   the cost of one epoch of staleness);
//! * [`timemodel`] — per-step wall-clock costs *measured on the Chopim
//!   simulator* (NDA summarization bandwidth, host streaming bandwidth,
//!   concurrent-slowdown factors) and composed into convergence-vs-time
//!   trajectories (Fig. 15);
//! * [`cg`] / [`sc`] — conjugate gradient and a streamcluster kernel
//!   expressed as NDA op streams (the "app" points of Figs. 13/14).

#![forbid(unsafe_code)]

pub mod cg;
pub mod dataset;
pub mod logreg;
pub mod sc;
pub mod svrg;
pub mod timemodel;

pub use dataset::Dataset;
pub use logreg::LogReg;
pub use svrg::{SvrgConfig, SvrgMode, SvrgTrace};
pub use timemodel::SvrgTimeModel;
