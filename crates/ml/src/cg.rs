//! Conjugate gradient on the NDA runtime — one of the paper's "app"
//! workloads (Table II: CG 16K x 16K; scaled here).
//!
//! Each iteration is the classic op sequence GEMV + 2xDOT + 3xAXPY-class
//! updates, launched through the public runtime API, so its read/write
//! intensity lands between DOT and COPY exactly as Fig. 14 expects.

use chopim_core::prelude::*;

/// Result of a CG run.
#[derive(Debug, Clone, Copy)]
pub struct CgResult {
    /// DRAM cycles consumed by the NDA op stream.
    pub cycles: u64,
    /// Final residual norm ‖b − Ax‖.
    pub residual: f32,
    /// Iterations executed.
    pub iters: usize,
}

/// Run `iters` CG iterations for a synthetic SPD system of size `n`.
///
/// Returns the cycles consumed and the final residual (which must shrink —
/// the numerics are exact, see `DESIGN.md` on the function/timing split).
///
/// # Panics
///
/// Panics if an op fails to complete within a generous cycle budget.
pub fn run_cg(sys: &mut ChopimSystem, n: usize, iters: usize) -> CgResult {
    assert!(n.is_multiple_of(16), "n must be line aligned");
    // SPD matrix: A = L + n*I with small symmetric off-diagonals.
    let a = sys.runtime.matrix(n, n);
    let mut a_data = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let v = 1.0 / (1.0 + (i as f32 - j as f32).abs());
            a_data[i * n + j] = v;
        }
        a_data[i * n + i] += n as f32 * 0.05;
    }
    sys.runtime.write_matrix(a, &a_data);

    let b = sys.runtime.vector(n, Sharing::Shared);
    let xv = sys.runtime.vector(n, Sharing::Shared);
    let r = sys.runtime.vector(n, Sharing::Shared);
    let p = sys.runtime.vector(n, Sharing::Shared);
    let ap = sys.runtime.vector(n, Sharing::Shared);
    let b_data: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) - 8.0).collect();
    sys.runtime.write_vector(b, &b_data);
    // x = 0, r = b, p = b.
    sys.runtime.write_vector(r, &b_data);
    sys.runtime.write_vector(p, &b_data);

    let start = sys.now();
    let budget = 500_000_000;
    let sess = sys.runtime.create_session();
    let mut rsold = {
        let op = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![r, r], None)
            .submit();
        sys.drive(op, budget);
        sys.runtime.op_result(op).expect("dot result")
    };
    let mut done = 0;
    for _ in 0..iters {
        done += 1;
        // The session's in-order op graph: GEMV, then the dependent DOT.
        // Dependencies between consecutive ops are implicit (program
        // order); the host only synchronizes where it consumes a
        // reduction result.
        let g = sess.gemv(&mut sys.runtime, ap, a, p).submit();
        let d = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![p, ap], None)
            .after(g)
            .submit();
        sys.drive(d, budget);
        let p_ap = sys.runtime.op_result(d).expect("dot");
        let alpha = rsold / p_ap;
        // x += alpha p ; r -= alpha Ap: disjoint operands, so both are
        // submitted `unordered` to overlap on the NDAs, awaited as a set
        // together with the dependent residual DOT.
        let updates: Vec<_> = [(xv, p, alpha), (r, ap, -alpha)]
            .into_iter()
            .map(|(dst, src, coef)| {
                sess.elementwise(
                    &mut sys.runtime,
                    Opcode::Axpy,
                    vec![coef],
                    vec![src],
                    Some(dst),
                )
                .unordered()
                .submit()
            })
            .collect();
        let d2 = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![r, r], None)
            .after(updates[1])
            .submit();
        sys.drive(Waitable::all_of(updates.into_iter().chain([d2])), budget);
        let rsnew = sys.runtime.op_result(d2).expect("dot");
        if rsnew.sqrt() < 1e-4 {
            rsold = rsnew;
            break;
        }
        // p = r + (rsnew/rsold) p.
        let beta = rsnew / rsold;
        let opp = sess
            .elementwise(
                &mut sys.runtime,
                Opcode::Axpby,
                vec![1.0, beta],
                vec![r, p],
                Some(p),
            )
            .submit();
        sys.drive(opp, budget);
        rsold = rsnew;
    }
    CgResult {
        cycles: sys.now() - start,
        residual: rsold.sqrt(),
        iters: done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_converges_on_the_simulator() {
        let mut sys = ChopimSystem::new(ChopimConfig {
            dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
            ..ChopimConfig::default()
        });
        let b_norm = {
            let b: Vec<f32> = (0..64).map(|i| ((i % 17) as f32) - 8.0).collect();
            b.iter().map(|v| v * v).sum::<f32>().sqrt()
        };
        let res = run_cg(&mut sys, 64, 12);
        assert!(res.cycles > 0);
        assert!(
            res.residual < 0.05 * b_norm,
            "CG must reduce the residual: {} vs ||b||={}",
            res.residual,
            b_norm
        );
    }
}
