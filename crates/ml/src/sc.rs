//! A streamcluster-style kernel (Table II: SC 2M x 128; scaled here):
//! distance evaluation of a point set against candidate centers.
//!
//! Per center the NDAs run GEMV (dot products of every point with the
//! center), XMY (squared terms), and an AXPY accumulation — a moderately
//! write-intensive stream that lands between DOT and COPY in Fig. 14.

use chopim_core::prelude::*;

/// Result of one clustering round.
#[derive(Debug, Clone, Copy)]
pub struct ScResult {
    /// DRAM cycles consumed.
    pub cycles: u64,
    /// Index of the closest center to the point mass (sanity output).
    pub best_center: usize,
}

/// Evaluate `centers` candidate centers against an `n x d` point set.
///
/// # Panics
///
/// Panics if ops fail to finish within a generous budget.
pub fn run_sc(sys: &mut ChopimSystem, n: usize, d: usize, centers: usize) -> ScResult {
    assert!(d.is_multiple_of(16));
    let points = sys.runtime.matrix(n, d);
    let pts: Vec<f32> = (0..n * d).map(|i| ((i % 23) as f32) * 0.1 - 1.1).collect();
    sys.runtime.write_matrix(points, &pts);
    let center = sys.runtime.vector(d, Sharing::Shared);
    let dots = sys.runtime.vector(n, Sharing::Shared);
    let acc = sys.runtime.vector(n, Sharing::Shared);

    let start = sys.now();
    let budget = 500_000_000;
    let sess = sys.runtime.create_session();
    let mut best = (0usize, f32::NEG_INFINITY);
    for c in 0..centers {
        let cdata: Vec<f32> = (0..d)
            .map(|j| (((j + c * 7) % 13) as f32) * 0.2 - 1.2)
            .collect();
        sys.runtime.write_vector(center, &cdata);
        // One dependency chain per center — GEMV, the squared-term XMY,
        // and the NRM2 reduction — submitted as a graph and driven to the
        // final reduction in one call.
        // dots = P . center  (read-dominant stream over the whole set)
        let g = sess.gemv(&mut sys.runtime, dots, points, center).submit();
        // acc = dots ⊙ dots   (writes)
        let x = sess
            .elementwise(
                &mut sys.runtime,
                Opcode::Xmy,
                vec![],
                vec![dots, dots],
                Some(acc),
            )
            .after(g)
            .submit();
        // total affinity = Σ dots (via DOT with itself in acc).
        let s = sess
            .elementwise(&mut sys.runtime, Opcode::Nrm2, vec![], vec![dots], None)
            .after(x)
            .submit();
        sys.drive(s, budget);
        let score = sys.runtime.op_result(s).expect("nrm2");
        if score > best.1 {
            best = (c, score);
        }
    }
    ScResult {
        cycles: sys.now() - start,
        best_center: best.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_runs_and_scores_centers() {
        let mut sys = ChopimSystem::new(ChopimConfig {
            dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
            ..ChopimConfig::default()
        });
        let res = run_sc(&mut sys, 128, 32, 3);
        assert!(res.cycles > 0);
        assert!(res.best_center < 3);
        // The NDA side must have moved real data.
        assert!(sys.mem_stats().reads_nda > 0);
    }
}
