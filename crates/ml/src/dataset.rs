//! Synthetic multi-class dataset (the cifar10 stand-in; see `DESIGN.md`).
//!
//! Samples are drawn from class-dependent Gaussian clusters so the
//! logistic-regression objective is non-trivially conditioned: SVRG's
//! epoch-size/staleness trade-offs (Fig. 15) appear exactly as in real
//! data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n x d` features, row-major.
    pub x: Vec<f32>,
    /// Labels in `0..classes`.
    pub y: Vec<usize>,
    /// Samples.
    pub n: usize,
    /// Features (multiple of 16 so rows are cache-line aligned).
    pub d: usize,
    /// Classes.
    pub classes: usize,
}

impl Dataset {
    /// Generate `n` samples of `d` features over `classes` Gaussian
    /// clusters.
    ///
    /// # Panics
    ///
    /// Panics unless `d` is a multiple of 16 (the runtime's line-aligned
    /// matrix requirement).
    pub fn synthetic(n: usize, d: usize, classes: usize, seed: u64) -> Self {
        assert!(d.is_multiple_of(16), "d must be a multiple of 16");
        assert!(classes >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        // Class centers on a scaled simplex-ish arrangement.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..d).map(|_| normal(&mut rng) * 0.8).collect())
            .collect();
        let mut x = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.gen_range(0..classes);
            y.push(c);
            for cj in centers[c].iter() {
                x.push(cj + normal(&mut rng));
            }
        }
        Self {
            x,
            y,
            n,
            d,
            classes,
        }
    }

    /// One sample's feature row.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.d..(i + 1) * self.d]
    }

    /// Bytes of the feature matrix.
    pub fn bytes(&self) -> u64 {
        (self.n * self.d * 4) as u64
    }
}

/// Standard normal via Box-Muller.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let ds = Dataset::synthetic(100, 32, 10, 7);
        assert_eq!(ds.x.len(), 100 * 32);
        assert_eq!(ds.y.len(), 100);
        assert!(ds.y.iter().all(|&c| c < 10));
        assert_eq!(ds.row(3).len(), 32);
        assert_eq!(ds.bytes(), 100 * 32 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::synthetic(50, 16, 3, 1);
        let b = Dataset::synthetic(50, 16, 3, 1);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        let c = Dataset::synthetic(50, 16, 3, 2);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn clusters_are_separable_enough() {
        // A nearest-center classifier should beat random guessing by a
        // lot — otherwise SVRG convergence curves are meaningless.
        let ds = Dataset::synthetic(400, 64, 4, 3);
        let mut centers = vec![vec![0.0f32; 64]; 4];
        let mut counts = [0usize; 4];
        for i in 0..ds.n {
            counts[ds.y[i]] += 1;
            for (cj, xj) in centers[ds.y[i]].iter_mut().zip(ds.row(i)) {
                *cj += xj;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            for v in center.iter_mut() {
                *v /= counts[c].max(1) as f32;
            }
        }
        let mut correct = 0;
        for i in 0..ds.n {
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = ds
                        .row(i)
                        .iter()
                        .zip(&centers[a])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    let db: f32 = ds
                        .row(i)
                        .iter()
                        .zip(&centers[b])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == ds.y[i] {
                correct += 1;
            }
        }
        assert!(correct > ds.n / 2, "only {correct}/{} correct", ds.n);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn unaligned_d_rejected() {
        let _ = Dataset::synthetic(10, 15, 2, 0);
    }
}
