//! Multinomial logistic regression with ℓ2 regularization — the paper's
//! case-study objective (10-class classification, λ = 1e-3).

use crate::dataset::Dataset;

/// The model: a `classes x d` weight matrix (row-major) and the
/// regularization strength.
#[derive(Debug, Clone)]
pub struct LogReg {
    /// Weights, `classes x d` row-major.
    pub w: Vec<f32>,
    /// Classes.
    pub classes: usize,
    /// Features.
    pub d: usize,
    /// ℓ2 regularization λ.
    pub lambda: f32,
}

impl LogReg {
    /// Zero-initialized model.
    pub fn new(classes: usize, d: usize, lambda: f32) -> Self {
        Self {
            w: vec![0.0; classes * d],
            classes,
            d,
            lambda,
        }
    }

    /// Class scores `W x` for one sample.
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        (0..self.classes)
            .map(|c| {
                let row = &self.w[c * self.d..(c + 1) * self.d];
                row.iter().zip(x).map(|(w, v)| w * v).sum()
            })
            .collect()
    }

    /// Softmax probabilities for one sample.
    pub fn probs(&self, x: &[f32]) -> Vec<f32> {
        softmax(&self.scores(x))
    }

    /// Regularized negative log-likelihood over the dataset.
    pub fn loss(&self, ds: &Dataset) -> f64 {
        let mut total = 0.0f64;
        for i in 0..ds.n {
            let p = self.probs(ds.row(i));
            total -= f64::from(p[ds.y[i]].max(1e-30).ln());
        }
        let reg: f64 = self
            .w
            .iter()
            .map(|&w| f64::from(w) * f64::from(w))
            .sum::<f64>()
            * 0.5
            * f64::from(self.lambda);
        total / ds.n as f64 + reg
    }

    /// Gradient contribution of sample `i` at weights `w_at` (same shape
    /// as `self.w`), *excluding* regularization, accumulated into `out`
    /// scaled by `scale`.
    pub fn sample_grad_into(
        &self,
        w_at: &[f32],
        ds: &Dataset,
        i: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        let x = ds.row(i);
        let scores: Vec<f32> = (0..self.classes)
            .map(|c| {
                let row = &w_at[c * self.d..(c + 1) * self.d];
                row.iter().zip(x).map(|(w, v)| w * v).sum()
            })
            .collect();
        let p = softmax(&scores);
        for c in 0..self.classes {
            let coeff = scale * (p[c] - if c == ds.y[i] { 1.0 } else { 0.0 });
            let row = &mut out[c * self.d..(c + 1) * self.d];
            for (o, v) in row.iter_mut().zip(x) {
                *o += coeff * v;
            }
        }
    }

    /// Full-batch gradient at `w_at`, including regularization.
    pub fn full_grad(&self, w_at: &[f32], ds: &Dataset) -> Vec<f32> {
        let mut g = vec![0.0f32; self.classes * self.d];
        let inv_n = 1.0 / ds.n as f32;
        for i in 0..ds.n {
            self.sample_grad_into(w_at, ds, i, inv_n, &mut g);
        }
        for (gv, wv) in g.iter_mut().zip(w_at) {
            *gv += self.lambda * wv;
        }
        g
    }

    /// Classification accuracy.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        let mut correct = 0;
        for i in 0..ds.n {
            let p = self.scores(ds.row(i));
            let best = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(c, _)| c);
            if best == ds.y[i] {
                correct += 1;
            }
        }
        correct as f64 / ds.n as f64
    }
}

/// Numerically stable softmax.
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|s| (s - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Dataset, LogReg) {
        let ds = Dataset::synthetic(200, 16, 3, 5);
        (ds, LogReg::new(3, 16, 1e-3))
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stable under large scores.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_weights_give_uniform_loss() {
        let (ds, model) = small();
        let expect = (3.0f64).ln();
        assert!((model.loss(&ds) - expect).abs() < 1e-6);
    }

    #[test]
    fn full_gradient_matches_finite_difference() {
        let (ds, mut model) = small();
        // Random-ish nonzero weights.
        for (i, w) in model.w.iter_mut().enumerate() {
            *w = ((i * 37 % 19) as f32 - 9.0) * 0.01;
        }
        let g = model.full_grad(&model.w.clone(), &ds);
        let eps = 1e-3f32;
        for &idx in &[0usize, 7, 16 + 3, 2 * 16 + 11] {
            let mut wp = model.w.clone();
            wp[idx] += eps;
            let lp = LogReg {
                w: wp,
                ..model.clone()
            }
            .loss(&ds);
            let mut wm = model.w.clone();
            wm[idx] -= eps;
            let lm = LogReg {
                w: wm,
                ..model.clone()
            }
            .loss(&ds);
            let fd = ((lp - lm) / (2.0 * f64::from(eps))) as f32;
            assert!(
                (fd - g[idx]).abs() < 2e-3,
                "idx {idx}: finite-diff {fd} vs analytic {}",
                g[idx]
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss_and_improves_accuracy() {
        let (ds, mut model) = small();
        let l0 = model.loss(&ds);
        for _ in 0..50 {
            let g = model.full_grad(&model.w.clone(), &ds);
            for (w, gv) in model.w.iter_mut().zip(&g) {
                *w -= 0.5 * gv;
            }
        }
        let l1 = model.loss(&ds);
        assert!(l1 < 0.7 * l0, "loss {l0} -> {l1}");
        assert!(model.accuracy(&ds) > 0.6);
    }
}
