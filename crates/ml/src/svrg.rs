//! Stochastic variance-reduced gradient descent \[37\] in the paper's three
//! execution modes (§IV):
//!
//! * **host-only** — the host alternates summarization (full gradient of
//!   the snapshot) and the stochastic inner loop;
//! * **accelerated** — NDAs compute the summarization, serialized with the
//!   host inner loop (host waits);
//! * **delayed-update** — host inner loop and NDA summarization run
//!   *concurrently*; the correction term used in an epoch is one epoch
//!   stale, trading per-iteration convergence for wall-clock overlap.
//!
//! Wall-clock time per step comes from the simulator-calibrated
//! [`crate::timemodel::SvrgTimeModel`]; the optimization math runs exactly
//! (f32) so convergence behavior is real, not modeled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::logreg::LogReg;
use crate::timemodel::SvrgTimeModel;

/// Which execution mode to simulate (paper Fig. 15 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvrgMode {
    /// Host computes everything (HO).
    HostOnly,
    /// NDAs summarize, serialized with the host inner loop (ACC).
    Accelerated,
    /// NDAs summarize concurrently with the host inner loop
    /// (DelayedUpdate).
    DelayedUpdate,
}

impl SvrgMode {
    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            SvrgMode::HostOnly => "HO",
            SvrgMode::Accelerated => "ACC",
            SvrgMode::DelayedUpdate => "DelayedUpdate",
        }
    }
}

/// SVRG hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvrgConfig {
    /// Inner iterations per outer iteration (the paper's epoch knob:
    /// N, N/2, N/4 where N = dataset size).
    pub epoch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum (paper: 0.9).
    pub momentum: f32,
    /// ℓ2 regularization λ (paper: 1e-3).
    pub lambda: f32,
    /// Outer iterations to run.
    pub max_outer: usize,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl SvrgConfig {
    /// The paper's hyper-parameters for a dataset of `n` samples.
    pub fn paper_defaults(n: usize) -> Self {
        Self {
            epoch: n,
            lr: 4e-3,
            momentum: 0.9,
            lambda: 1e-3,
            max_outer: 30,
            seed: 42,
        }
    }
}

/// A convergence trajectory: `(seconds, loss)` after each outer iteration.
#[derive(Debug, Clone)]
pub struct SvrgTrace {
    /// Mode that produced the trace.
    pub mode: SvrgMode,
    /// Epoch size used.
    pub epoch: usize,
    /// Learning rate used.
    pub lr: f32,
    /// `(wall-clock seconds, training loss)` samples.
    pub points: Vec<(f64, f64)>,
}

impl SvrgTrace {
    /// First time at which `loss - optimum <= tol`, if reached.
    pub fn time_to_converge(&self, optimum: f64, tol: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(_, l)| l - optimum <= tol)
            .map(|(t, _)| *t)
    }

    /// Best (lowest) loss reached.
    pub fn best_loss(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Run SVRG in `mode` and return its convergence trajectory.
pub fn run(mode: SvrgMode, ds: &Dataset, cfg: SvrgConfig, time: &SvrgTimeModel) -> SvrgTrace {
    let mut model = LogReg::new(ds.classes, ds.d, cfg.lambda);
    let dim = ds.classes * ds.d;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut mom = vec![0.0f32; dim];
    let mut t = 0.0f64;
    let mut points = Vec::with_capacity(cfg.max_outer);

    // Delayed-update state: the (stale) snapshot/correction pair in use.
    let mut s_used = model.w.clone();
    let mut g_used = model.full_grad(&s_used, ds);
    if mode == SvrgMode::DelayedUpdate {
        // Initial correction must be computed serially once.
        t += time.nda_summarize_s + time.exchange_s;
    }

    for _outer in 0..cfg.max_outer {
        let pending = match mode {
            SvrgMode::HostOnly => {
                let s = model.w.clone();
                let g = model.full_grad(&s, ds);
                t += time.host_summarize_s;
                (s_used, g_used) = (s, g);
                None
            }
            SvrgMode::Accelerated => {
                let s = model.w.clone();
                let g = model.full_grad(&s, ds);
                t += time.nda_summarize_s + time.exchange_s;
                (s_used, g_used) = (s, g);
                None
            }
            SvrgMode::DelayedUpdate => {
                // NDAs summarize the snapshot taken *now*, while the host
                // inner loop below still runs with the previous epoch's
                // (s_used, g_used).
                let s = model.w.clone();
                let g = model.full_grad(&s, ds);
                Some((s, g))
            }
        };

        // Stochastic inner loop (the host's tight loop).
        let mut gi = vec![0.0f32; dim];
        let mut gs = vec![0.0f32; dim];
        for _ in 0..cfg.epoch {
            let i = rng.gen_range(0..ds.n);
            gi.iter_mut().for_each(|v| *v = 0.0);
            gs.iter_mut().for_each(|v| *v = 0.0);
            model.sample_grad_into(&model.w.clone(), ds, i, 1.0, &mut gi);
            model.sample_grad_into(&s_used, ds, i, 1.0, &mut gs);
            for j in 0..dim {
                let v = (gi[j] + cfg.lambda * model.w[j]) - (gs[j] + cfg.lambda * s_used[j])
                    + g_used[j];
                mom[j] = cfg.momentum * mom[j] + v;
                model.w[j] -= cfg.lr * mom[j];
            }
        }

        match mode {
            SvrgMode::HostOnly | SvrgMode::Accelerated => {
                t += cfg.epoch as f64 * time.host_iter_s;
            }
            SvrgMode::DelayedUpdate => {
                // Overlapped execution: epoch time is the max of the two
                // concurrent activities, plus the small exchange.
                let host = cfg.epoch as f64 * time.host_iter_concurrent_s;
                t += host.max(time.nda_summarize_concurrent_s) + time.exchange_s;
                (s_used, g_used) = pending.expect("delayed mode computed a snapshot");
            }
        }
        points.push((t, model.loss(ds)));
    }
    SvrgTrace {
        mode,
        epoch: cfg.epoch,
        lr: cfg.lr,
        points,
    }
}

/// A near-optimal reference loss via full-batch gradient descent with
/// momentum (used to plot `loss - optimum` like Fig. 15a).
pub fn optimum_loss(ds: &Dataset, lambda: f32, iters: usize) -> f64 {
    let mut model = LogReg::new(ds.classes, ds.d, lambda);
    let dim = ds.classes * ds.d;
    let mut mom = vec![0.0f32; dim];
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let g = model.full_grad(&model.w.clone(), ds);
        for j in 0..dim {
            mom[j] = 0.9 * mom[j] + g[j];
            model.w[j] -= 1.0 * mom[j];
        }
        best = best.min(model.loss(ds));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dataset, SvrgTimeModel) {
        let ds = Dataset::synthetic(256, 32, 4, 9);
        (ds, SvrgTimeModel::analytic_default())
    }

    fn cfg(ds: &Dataset) -> SvrgConfig {
        SvrgConfig {
            epoch: ds.n / 2,
            lr: 0.05,
            momentum: 0.9,
            lambda: 1e-3,
            max_outer: 12,
            seed: 3,
        }
    }

    #[test]
    fn all_modes_reduce_loss() {
        let (ds, tm) = setup();
        let l0 = (ds.classes as f64).ln();
        for mode in [
            SvrgMode::HostOnly,
            SvrgMode::Accelerated,
            SvrgMode::DelayedUpdate,
        ] {
            let trace = run(mode, &ds, cfg(&ds), &tm);
            assert!(
                trace.best_loss() < 0.5 * l0,
                "{}: {} -> {}",
                mode.label(),
                l0,
                trace.best_loss()
            );
            // Time must be strictly increasing.
            assert!(trace.points.windows(2).all(|w| w[1].0 > w[0].0));
        }
    }

    #[test]
    fn accelerated_is_faster_than_host_only_per_outer() {
        let (ds, tm) = setup();
        let ho = run(SvrgMode::HostOnly, &ds, cfg(&ds), &tm);
        let acc = run(SvrgMode::Accelerated, &ds, cfg(&ds), &tm);
        // Same per-iteration math (same seed): identical losses,
        // different clocks.
        for (a, b) in ho.points.iter().zip(&acc.points) {
            assert_eq!(a.1, b.1);
        }
        assert!(
            acc.points.last().unwrap().0 < ho.points.last().unwrap().0,
            "NDA summarization must beat host summarization"
        );
    }

    #[test]
    fn delayed_update_overlaps_but_is_staler() {
        let (ds, tm) = setup();
        // Size the epoch so inner-loop time ~ summarization time — the
        // regime where overlap pays (paper §IV).
        let mut c = cfg(&ds);
        c.epoch = (tm.nda_summarize_s / tm.host_iter_s) as usize;
        let acc = run(SvrgMode::Accelerated, &ds, c, &tm);
        let del = run(SvrgMode::DelayedUpdate, &ds, c, &tm);
        // Less wall-clock per outer iteration...
        assert!(del.points.last().unwrap().0 < acc.points.last().unwrap().0);
        // ...but staleness costs some per-iteration progress (losses are
        // no better at equal iteration counts).
        let acc_best = acc.best_loss();
        let del_best = del.best_loss();
        assert!(
            del_best >= acc_best * 0.85,
            "staleness shouldn't help: {del_best} vs {acc_best}"
        );
    }

    #[test]
    fn optimal_epoch_shrinks_when_summarization_gets_cheap() {
        // The paper's core SVRG trade-off (§IV): cheap summarization
        // favors smaller epochs (fresher correction terms).
        let ds = Dataset::synthetic(256, 32, 4, 9);
        let opt = optimum_loss(&ds, 1e-3, 200);
        let mut tm_cheap = SvrgTimeModel::analytic_default();
        tm_cheap.nda_summarize_s = 1.0e-5; // nearly free
        let mut tm_dear = SvrgTimeModel::analytic_default();
        tm_dear.nda_summarize_s = 2.0e-2; // very expensive
        let best_epoch = |tm: &SvrgTimeModel| {
            let mut best = (usize::MAX, f64::INFINITY);
            for e in [ds.n / 4, ds.n / 2, ds.n, 2 * ds.n] {
                let c = SvrgConfig {
                    epoch: e,
                    lr: 0.05,
                    momentum: 0.9,
                    lambda: 1e-3,
                    max_outer: 8 * (2 * ds.n) / e,
                    seed: 3,
                };
                let t = run(SvrgMode::Accelerated, &ds, c, tm);
                if let Some(tt) = t.time_to_converge(opt, 5e-2) {
                    if tt < best.1 {
                        best = (e, tt);
                    }
                }
            }
            best.0
        };
        let cheap = best_epoch(&tm_cheap);
        let dear = best_epoch(&tm_dear);
        assert!(
            cheap < dear,
            "cheap summarization must favor smaller epochs: {cheap} vs {dear}"
        );
    }

    #[test]
    fn optimum_is_below_all_traces() {
        let (ds, tm) = setup();
        let opt = optimum_loss(&ds, 1e-3, 150);
        let trace = run(SvrgMode::Accelerated, &ds, cfg(&ds), &tm);
        assert!(opt <= trace.best_loss() + 1e-9);
        assert!(trace.time_to_converge(opt, 0.5).is_some());
        assert!(trace.time_to_converge(opt, -1.0).is_none());
    }
}
