//! Shared harness utilities for the figure-regeneration benches.
//!
//! Every bench target under `benches/` declares one paper table or figure
//! as a [`chopim_exp`] sweep: a [`ScenarioSpec`] base plus named axes,
//! executed by [`SweepRunner`] across cores, then printed as the figure's
//! rows/series. Window lengths trade fidelity for harness runtime; set
//! `CHOPIM_BENCH_CYCLES` to override the default window. Set
//! `CHOPIM_SWEEP_OUT=<dir>` to also dump each sweep as `<dir>/<name>.csv`,
//! and `CHOPIM_SWEEP_THREADS` to pin the worker count.

#![forbid(unsafe_code)]

use chopim_core::prelude::*;
use chopim_exp::prelude::*;

/// Default measurement window in DRAM cycles per configuration point.
pub const DEFAULT_WINDOW: u64 = 200_000;

/// The measurement window (override with `CHOPIM_BENCH_CYCLES`).
pub fn window() -> u64 {
    std::env::var("CHOPIM_BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_WINDOW)
}

/// The paper's base configuration (Table II, bank partitioning on,
/// next-rank prediction, refresh off for run-to-run determinism of the
/// microbenchmark figures).
pub fn paper_cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

/// The shared sweep base: paper configuration, `window()` cycles,
/// host-only until an axis installs a workload.
pub fn paper_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::with_window(window());
    spec.cfg = paper_cfg();
    spec
}

/// Run a figure sweep with the standard executor: parallel across cores,
/// then optionally dumped to `$CHOPIM_SWEEP_OUT/<name>.csv`.
pub fn run_sweep(name: &str, specs: &[ScenarioSpec]) -> SweepResult<SimReport> {
    let result = SweepRunner::parallel().run(specs, run_scenario);
    dump_csv(name, &result);
    result
}

/// Run a figure sweep whose points need a custom executor (e.g. the SVRG
/// convergence figures, which run the optimizer rather than a plain
/// simulation window).
pub fn run_sweep_with<R, F>(specs: &[ScenarioSpec], f: F) -> SweepResult<R>
where
    R: Send,
    F: Fn(&ScenarioSpec) -> R + Sync,
{
    SweepRunner::parallel().run(specs, f)
}

/// If `CHOPIM_SWEEP_OUT` is set, write the sweep as `<dir>/<name>.csv`.
pub fn dump_csv<R: Metrics>(name: &str, result: &SweepResult<R>) {
    if let Ok(dir) = std::env::var("CHOPIM_SWEEP_OUT") {
        write_out(&dir, name, result.to_csv());
    }
}

/// `dump_csv` for custom-executor sweeps whose results don't reduce to
/// [`Metrics`]: the bench shapes its own header/rows (fig15a/b).
pub fn dump_rows_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("CHOPIM_SWEEP_OUT") {
        write_out(&dir, name, rows_to_csv(header, rows));
    }
}

fn write_out(dir: &str, name: &str, csv: String) {
    let path = std::path::Path::new(dir).join(format!("{name}.csv"));
    let res = path
        .parent()
        .map(std::fs::create_dir_all)
        .unwrap_or(Ok(()))
        .and_then(|()| std::fs::write(&path, csv));
    match res {
        Ok(()) => eprintln!("[sweep] wrote {}", path.display()),
        Err(e) => eprintln!("[sweep] failed to write {}: {e}", path.display()),
    }
}

/// Allocate a shared vector pair of `len` f32, x initialized.
pub fn vec_pair(sys: &mut ChopimSystem, len: usize) -> (VecId, VecId) {
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    let data: Vec<f32> = (0..len).map(|i| (i % 101) as f32 * 0.5 - 25.0).collect();
    sys.runtime.write_vector(x, &data);
    sys.runtime.write_vector(y, &data);
    (x, y)
}

/// Print a Markdown-ish table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n## {title}");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Print one table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}
