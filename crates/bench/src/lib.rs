//! Shared harness utilities for the figure-regeneration benches.
//!
//! Every bench target under `benches/` prints the rows/series of one paper
//! table or figure (see `DESIGN.md` §5 for the index and `EXPERIMENTS.md`
//! for recorded outputs). Window lengths trade fidelity for harness
//! runtime; set `CHOPIM_BENCH_CYCLES` to override the default window.

use chopim_core::prelude::*;

/// Default measurement window in DRAM cycles per configuration point.
pub const DEFAULT_WINDOW: u64 = 200_000;

/// The measurement window (override with `CHOPIM_BENCH_CYCLES`).
pub fn window() -> u64 {
    std::env::var("CHOPIM_BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_WINDOW)
}

/// The paper's base configuration (Table II, bank partitioning on,
/// next-rank prediction, refresh off for run-to-run determinism of the
/// microbenchmark figures).
pub fn paper_cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

/// Allocate a shared vector pair of `len` f32, x initialized.
pub fn vec_pair(sys: &mut ChopimSystem, len: usize) -> (VecId, VecId) {
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    let data: Vec<f32> = (0..len).map(|i| (i % 101) as f32 * 0.5 - 25.0).collect();
    sys.runtime.write_vector(x, &data);
    sys.runtime.write_vector(y, &data);
    (x, y)
}

/// Print a Markdown-ish table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n## {title}");
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Print one table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}
