//! **Fig. 12** — Stochastic issue and next-rank prediction.
//!
//! The write-intensive COPY runs against every mix under four policies:
//! stochastic issue at 1/16 and 1/4, next-rank prediction, and the
//! unthrottled issue-if-idle baseline. Expected shape: issue-if-idle gives
//! the best NDA utilization but the worst host IPC; stochastic trades one
//! for the other with its coin weight; next-rank prediction sits near the
//! best of both without tuning (paper takeaway 3).

use chopim_bench::{f3, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

fn main() {
    let policies = [
        WriteIssuePolicy::stochastic(1, 16),
        WriteIssuePolicy::stochastic(1, 4),
        WriteIssuePolicy::NextRankPredict,
        WriteIssuePolicy::IssueIfIdle,
    ];
    let mut cols = vec!["mix".to_string()];
    for p in &policies {
        cols.push(format!("{} ipc", p.label()));
        cols.push(format!("{} util", p.label()));
    }
    header(
        "Fig. 12: NDA write throttling under COPY (host IPC / NDA BW utilization)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for mix in MixId::ALL {
        let mut cells = vec![mix.to_string()];
        for policy in policies {
            let mut cfg = paper_cfg();
            cfg.mix = Some(mix);
            cfg.policy = policy;
            let mut sys = ChopimSystem::new(cfg);
            let (x, y) = vec_pair(&mut sys, 1 << 17);
            sys.run_relaunching(window(), |rt| {
                rt.launch_elementwise(
                    Opcode::Copy,
                    vec![],
                    vec![x],
                    Some(y),
                    LaunchOpts::default(),
                )
            });
            let r = sys.report();
            cells.push(f3(r.host_ipc));
            cells.push(f3(r.nda_bw_utilization));
        }
        row(&cells);
    }
    println!(
        "\nTakeaway 3: throttling NDA writes mitigates read/write-turnaround \
         interference; next-rank prediction is robust without tuning, while \
         stochastic issue extends the trade-off range with no signaling."
    );
}
