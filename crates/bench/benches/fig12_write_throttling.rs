//! **Fig. 12** — Stochastic issue and next-rank prediction.
//!
//! The write-intensive COPY runs against every mix under four policies:
//! stochastic issue at 1/16 and 1/4, next-rank prediction, and the
//! unthrottled issue-if-idle baseline. Expected shape: issue-if-idle gives
//! the best NDA utilization but the worst host IPC; stochastic trades one
//! for the other with its coin weight; next-rank prediction sits near the
//! best of both without tuning (paper takeaway 3).

use chopim_bench::{f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    let policies = [
        WriteIssuePolicy::stochastic(1, 16),
        WriteIssuePolicy::stochastic(1, 4),
        WriteIssuePolicy::NextRankPredict,
        WriteIssuePolicy::IssueIfIdle,
    ];
    let mut base = paper_spec();
    base.workload = Workload::elementwise(Opcode::Copy, 1 << 17);
    let specs = SweepBuilder::new(base)
        .axis("mix", labeled(MixId::ALL), |s, &m| s.cfg.mix = Some(m))
        .axis("policy", policies.map(|p| (p.label(), p)), |s, &p| {
            s.cfg.policy = p
        })
        .build();
    let result = run_sweep("fig12_write_throttling", &specs);

    let mut cols = vec!["mix".to_string()];
    for p in result.tag_values("policy") {
        cols.push(format!("{p} ipc"));
        cols.push(format!("{p} util"));
    }
    header(
        "Fig. 12: NDA write throttling under COPY (host IPC / NDA BW utilization)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for mix in result.tag_values("mix") {
        let mut cells = vec![mix.clone()];
        for policy in result.tag_values("policy") {
            let r = &result.get(&[("mix", &mix), ("policy", &policy)]).result;
            cells.push(f3(r.host_ipc));
            cells.push(f3(r.nda_bw_utilization));
        }
        row(&cells);
    }
    println!(
        "\nTakeaway 3: throttling NDA writes mitigates read/write-turnaround \
         interference; next-rank prediction is robust without tuning, while \
         stochastic issue extends the trade-off range with no signaling."
    );
}
