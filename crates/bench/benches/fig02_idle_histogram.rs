//! **Fig. 2** — Rank idle-time breakdown vs. idleness granularity.
//!
//! Host-only runs of mix0..mix8; for each mix we report the fraction of
//! rank cycles that are busy vs. idle, bucketed by the length of the idle
//! gap. The paper's takeaway: the majority of idle periods are shorter
//! than 100 cycles, so only fine-grain interleaving can exploit them.

use chopim_bench::{header, paper_cfg, row, window};
use chopim_core::prelude::*;

fn main() {
    header(
        "Fig. 2: rank idle-time breakdown (host-only, fraction of cycles)",
        &["mix", "Busy", "1-10", "10-100", "100-250", "250-500", "500-1000", "1000-"],
    );
    let mut short_gap_share = Vec::new();
    for mix in MixId::ALL {
        let mut sys = ChopimSystem::new(ChopimConfig { mix: Some(mix), ..paper_cfg() });
        sys.run(window());
        let r = sys.report();
        let h = r.idle_histogram_total();
        let f = h.fractions();
        row(&[
            mix.to_string(),
            format!("{:.3}", f[0]),
            format!("{:.3}", f[1]),
            format!("{:.3}", f[2]),
            format!("{:.3}", f[3]),
            format!("{:.3}", f[4]),
            format!("{:.3}", f[5]),
            format!("{:.3}", f[6]),
        ]);
        let idle: f64 = f[1..].iter().sum();
        if idle > 0.0 {
            // Fraction of idle time in gaps under 250 cycles.
            short_gap_share.push((f[1] + f[2] + f[3]) / idle);
        }
    }
    let avg = short_gap_share.iter().sum::<f64>() / short_gap_share.len() as f64;
    println!(
        "\nPaper claim: the vast majority of idle periods are under 250 cycles. \
         Measured: {:.0}% of idle cycles sit in sub-250-cycle gaps (mean over mixes).",
        avg * 100.0
    );
}
