//! **Fig. 2** — Rank idle-time breakdown vs. idleness granularity.
//!
//! Host-only runs of mix0..mix8; for each mix we report the fraction of
//! rank cycles that are busy vs. idle, bucketed by the length of the idle
//! gap. The paper's takeaway: the majority of idle periods are shorter
//! than 100 cycles, so only fine-grain interleaving can exploit them.

use chopim_bench::{header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    let specs = SweepBuilder::new(paper_spec())
        .axis("mix", labeled(MixId::ALL), |s, &m| s.cfg.mix = Some(m))
        .build();
    let result = run_sweep("fig02_idle_histogram", &specs);

    header(
        "Fig. 2: rank idle-time breakdown (host-only, fraction of cycles)",
        &[
            "mix", "Busy", "1-10", "10-100", "100-250", "250-500", "500-1000", "1000-",
        ],
    );
    let mut short_gap_share = Vec::new();
    for p in result.iter() {
        let h = p.result.idle_histogram_total();
        let f = h.fractions();
        let mut cells = vec![p.spec.label.clone()];
        cells.extend(f.iter().map(|v| format!("{v:.3}")));
        row(&cells);
        let idle: f64 = f[1..].iter().sum();
        if idle > 0.0 {
            // Fraction of idle time in gaps under 250 cycles.
            short_gap_share.push((f[1] + f[2] + f[3]) / idle);
        }
    }
    let avg = short_gap_share.iter().sum::<f64>() / short_gap_share.len() as f64;
    println!(
        "\nPaper claim: the vast majority of idle periods are under 250 cycles. \
         Measured: {:.0}% of idle cycles sit in sub-250-cycle gaps (mean over mixes).",
        avg * 100.0
    );
}
