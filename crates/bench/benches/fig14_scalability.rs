//! **Fig. 14** — Chopim vs. rank partitioning, 2ch x 2rk and 2ch x 4rk.
//!
//! Five workloads run against mix1: the DOT and COPY extremes, plus the
//! SVRG summarization kernel, a CG iteration stream, and a streamcluster
//! stream. Reported: host IPC and absolute NDA bandwidth (GB/s).
//!
//! Expected shape: Chopim beats rank partitioning at equal rank count
//! (opportunistic idle-bandwidth capture beats dedicating half the ranks),
//! and scales better when ranks double because short idle slots grow with
//! rank count (takeaway 5).

use chopim_bench::{f2, f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    let opts = LaunchOpts {
        granularity_lines: Some(2048),
        barrier_per_chunk: false,
    };
    let apps: [(&str, Workload); 5] = [
        (
            "DOT",
            Workload::elementwise_opts(Opcode::Dot, 1 << 17, opts),
        ),
        (
            "COPY",
            Workload::elementwise_opts(Opcode::Copy, 1 << 17, opts),
        ),
        // The average-gradient macro stream (Fig. 8): per-sample AXPY
        // into per-NDA private accumulators.
        (
            "SVRG",
            Workload::MacroAxpyRows {
                rows: 64,
                d: 3072,
                rows_per_instr: 8,
                opts,
            },
        ),
        // GEMV + DOT + AXPY + AXPBY iteration stream (CG shapes).
        (
            "CG",
            Workload::CgStream {
                rows: 128,
                n: 2048,
                opts,
            },
        ),
        // GEMV + XMY + NRM2 distance-evaluation stream.
        (
            "SC",
            Workload::ScStream {
                n: 1024,
                d: 128,
                opts,
            },
        ),
    ];

    let mut base = paper_spec();
    base.cfg.mix = Some(MixId::new(1).unwrap());
    base.cfg.nda_queue_cap = 32;
    let specs = SweepBuilder::new(base)
        .axis("ranks", labeled([2usize, 4]), |s, &r| {
            s.cfg.dram = s.cfg.dram.clone().with_ranks(r)
        })
        .axis("arch", [("RP", true), ("Chopim", false)], |s, &rp| {
            s.cfg.rank_partition = rp;
            if rp {
                s.cfg.reserved_banks = 0;
            }
        })
        .axis("app", apps, |s, w| s.workload = w.clone())
        .build();
    let result = run_sweep("fig14_scalability", &specs);

    for ranks in result.tag_values("ranks") {
        header(
            &format!("Fig. 14: Chopim vs rank partitioning — 2 ch x {ranks} ranks (mix1)"),
            &[
                "workload",
                "RP host IPC",
                "RP NDA GB/s",
                "Chopim host IPC",
                "Chopim NDA GB/s",
            ],
        );
        for app in result.tag_values("app") {
            let rp = &result
                .get(&[("ranks", &ranks), ("arch", "RP"), ("app", &app)])
                .result;
            let ch = &result
                .get(&[("ranks", &ranks), ("arch", "Chopim"), ("app", &app)])
                .result;
            row(&[
                app.clone(),
                f3(rp.host_ipc),
                f2(rp.nda_bw_gbs),
                f3(ch.host_ipc),
                f2(ch.nda_bw_gbs),
            ]);
        }
    }
    println!(
        "\nTakeaway 5: Chopim scales better than rank partitioning because \
         short issue opportunities grow with rank count."
    );
}
