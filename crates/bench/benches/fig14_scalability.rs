//! **Fig. 14** — Chopim vs. rank partitioning, 2ch x 2rk and 2ch x 4rk.
//!
//! Five workloads run against mix1: the DOT and COPY extremes, plus the
//! SVRG summarization kernel, a CG iteration stream, and a streamcluster
//! stream. Reported: host IPC and absolute NDA bandwidth (GB/s).
//!
//! Expected shape: Chopim beats rank partitioning at equal rank count
//! (opportunistic idle-bandwidth capture beats dedicating half the ranks),
//! and scales better when ranks double because short idle slots grow with
//! rank count (takeaway 5).

use chopim_bench::{f2, f3, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

#[derive(Clone, Copy)]
enum App {
    Dot,
    Copy,
    Svrg,
    Cg,
    Sc,
}

impl App {
    fn label(self) -> &'static str {
        match self {
            App::Dot => "DOT",
            App::Copy => "COPY",
            App::Svrg => "SVRG",
            App::Cg => "CG",
            App::Sc => "SC",
        }
    }
}

fn run_app(ranks: usize, rank_partition: bool, app: App) -> (f64, f64) {
    let mut cfg = paper_cfg();
    cfg.dram = cfg.dram.with_ranks(ranks);
    cfg.mix = Some(MixId::new(1).unwrap());
    cfg.rank_partition = rank_partition;
    if rank_partition {
        cfg.reserved_banks = 0;
    }
    cfg.nda_queue_cap = 32;
    let mut sys = ChopimSystem::new(cfg);
    let (x, y) = vec_pair(&mut sys, 1 << 17);
    let opts = LaunchOpts { granularity_lines: Some(2048), barrier_per_chunk: false };
    match app {
        App::Dot => {
            sys.run_relaunching(window(), |rt| {
                rt.launch_elementwise(Opcode::Dot, vec![], vec![x, y], None, opts)
            });
        }
        App::Copy => {
            sys.run_relaunching(window(), |rt| {
                rt.launch_elementwise(Opcode::Copy, vec![], vec![x], Some(y), opts)
            });
        }
        App::Svrg => {
            // The average-gradient macro stream (Fig. 8): per-sample AXPY
            // into per-NDA private accumulators.
            let d = 3072;
            let xs = sys.runtime.matrix(64, d);
            let a_pvt = sys.runtime.vector(d, Sharing::Private);
            let alphas = vec![0.01f32; 64];
            sys.run_relaunching(window(), |rt| {
                rt.launch_macro_axpy_rows(a_pvt, alphas.clone(), xs, 8, opts)
            });
        }
        App::Cg => {
            // GEMV + DOT + AXPY + AXPBY iteration stream (CG shapes).
            let (rows, n) = (128usize, 2048usize);
            let a = sys.runtime.matrix(rows, n);
            let p = sys.runtime.vector(n, Sharing::Shared);
            let ap = sys.runtime.vector(rows, Sharing::Shared);
            let r = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(p, &vec![1.0; n]);
            sys.runtime.write_vector(r, &vec![1.0; n]);
            let mut phase = 0usize;
            sys.run_relaunching(window(), move |rt| {
                phase = (phase + 1) % 4;
                match phase {
                    0 => rt.launch_gemv(ap, a, p, LaunchOpts::default()),
                    1 => rt.launch_elementwise(Opcode::Dot, vec![], vec![ap, ap], None, opts),
                    2 => rt.launch_elementwise(
                        Opcode::Axpy,
                        vec![0.5],
                        vec![p],
                        Some(r),
                        opts,
                    ),
                    _ => rt.launch_elementwise(
                        Opcode::Axpby,
                        vec![1.0, 0.5],
                        vec![r, p],
                        Some(p),
                        opts,
                    ),
                }
            });
        }
        App::Sc => {
            // GEMV + XMY + NRM2 distance-evaluation stream.
            let (n, d) = (1024, 128);
            let pts = sys.runtime.matrix(n, d);
            let c = sys.runtime.vector(d, Sharing::Shared);
            let dots = sys.runtime.vector(n, Sharing::Shared);
            let acc = sys.runtime.vector(n, Sharing::Shared);
            sys.runtime.write_vector(c, &vec![1.0; d]);
            let mut phase = 0usize;
            sys.run_relaunching(window(), move |rt| {
                phase = (phase + 1) % 3;
                match phase {
                    0 => rt.launch_gemv(dots, pts, c, LaunchOpts::default()),
                    1 => rt.launch_elementwise(
                        Opcode::Xmy,
                        vec![],
                        vec![dots, dots],
                        Some(acc),
                        opts,
                    ),
                    _ => rt.launch_elementwise(Opcode::Nrm2, vec![], vec![dots], None, opts),
                }
            });
        }
    }
    let rep = sys.report();
    (rep.host_ipc, rep.nda_bw_gbs)
}

fn main() {
    for ranks in [2usize, 4] {
        header(
            &format!("Fig. 14: Chopim vs rank partitioning — 2 ch x {ranks} ranks (mix1)"),
            &["workload", "RP host IPC", "RP NDA GB/s", "Chopim host IPC", "Chopim NDA GB/s"],
        );
        for app in [App::Dot, App::Copy, App::Svrg, App::Cg, App::Sc] {
            let (rp_ipc, rp_bw) = run_app(ranks, true, app);
            let (ch_ipc, ch_bw) = run_app(ranks, false, app);
            row(&[
                app.label().to_string(),
                f3(rp_ipc),
                f2(rp_bw),
                f3(ch_ipc),
                f2(ch_bw),
            ]);
        }
    }
    println!(
        "\nTakeaway 5: Chopim scales better than rank partitioning because \
         short issue opportunities grow with rank count."
    );
}
