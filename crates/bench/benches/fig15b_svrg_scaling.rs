//! **Fig. 15b** — SVRG speedup vs. NDA count (4 / 8 / 16 NDAs =
//! 2ch x {2,4,8} ranks), normalized to host-only execution.
//!
//! For each machine size the harness measures step times on the simulator,
//! runs host-only, best-epoch accelerated, and delayed-update SVRG, and
//! reports time-to-target speedups. Expected shape: both accelerated modes
//! speed up with more NDAs, delayed-update scaling better (staleness
//! shrinks as summarization gets faster).

use chopim_bench::{f2, header, row};
use chopim_ml::svrg::{self, SvrgMode};
use chopim_ml::{Dataset, SvrgConfig, SvrgTimeModel};

fn time_to_target(
    mode: SvrgMode,
    epochs: &[usize],
    ds: &Dataset,
    tm: &SvrgTimeModel,
    opt: f64,
    tol: f64,
) -> f64 {
    let mut best = f64::INFINITY;
    for &e in epochs {
        let cfg = SvrgConfig {
            epoch: e,
            lr: 0.04,
            momentum: 0.9,
            lambda: 1e-3,
            max_outer: 24 * ds.n / e,
            seed: 42,
        };
        let trace = svrg::run(mode, ds, cfg, tm);
        if let Some(t) = trace.time_to_converge(opt, tol) {
            best = best.min(t);
        }
    }
    best
}

fn main() {
    let (n, d, classes) = (2048usize, 256usize, 10usize);
    let ds = Dataset::synthetic(n, d, classes, 17);
    let opt = svrg::optimum_loss(&ds, 1e-3, 250);
    let tol = 2e-2;
    let epochs = [n, n / 2, n / 4];

    header(
        "Fig. 15b: speedup over host-only (time to loss gap < 2e-2)",
        &["NDAs", "geometry", "ACC_Best", "DelayedUpdate"],
    );
    for ranks in [2usize, 4, 8] {
        let tm = SvrgTimeModel::measure(n, d, classes, ranks);
        let ho = time_to_target(SvrgMode::HostOnly, &epochs, &ds, &tm, opt, tol);
        let acc = time_to_target(SvrgMode::Accelerated, &epochs, &ds, &tm, opt, tol);
        let del = time_to_target(SvrgMode::DelayedUpdate, &epochs, &ds, &tm, opt, tol);
        row(&[
            format!("{}", 2 * ranks),
            format!("2ch x {ranks}rk"),
            f2(ho / acc),
            f2(ho / del),
        ]);
    }
    println!(
        "\nPaper shape: ACC ~1.6x, DelayedUpdate ~2x at 8 NDAs, both growing \
         with NDA count (staleness shrinks as summarization accelerates)."
    );
}
