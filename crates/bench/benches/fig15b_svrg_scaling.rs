//! **Fig. 15b** — SVRG speedup vs. NDA count (4 / 8 / 16 NDAs =
//! 2ch x {2,4,8} ranks), normalized to host-only execution.
//!
//! For each machine size the harness measures step times on the simulator,
//! runs host-only, best-epoch accelerated, and delayed-update SVRG, and
//! reports time-to-target speedups. Expected shape: both accelerated modes
//! speed up with more NDAs, delayed-update scaling better (staleness
//! shrinks as summarization gets faster).

use chopim_bench::{dump_rows_csv, f2, header, paper_spec, row, run_sweep_with};
use chopim_exp::prelude::*;
use chopim_ml::svrg::{self, SvrgMode};
use chopim_ml::{Dataset, SvrgConfig, SvrgTimeModel};

fn main() {
    let (n, d, classes) = (2048usize, 256usize, 10usize);
    let ds = Dataset::synthetic(n, d, classes, 17);
    let opt = svrg::optimum_loss(&ds, 1e-3, 250);
    let tol = 2e-2;
    let ranks_axis = [2usize, 4, 8];

    // Stage 1: measure the per-machine step-time models, in parallel.
    let rank_specs = SweepBuilder::new(paper_spec())
        .axis("ranks", labeled(ranks_axis), |_, _| {})
        .build();
    let time_models = run_sweep_with(&rank_specs, |spec| {
        let ranks: usize = spec.tag("ranks").unwrap().parse().unwrap();
        SvrgTimeModel::measure(n, d, classes, ranks)
    });

    // Stage 2: the (ranks x mode x epoch) optimizer grid; each point
    // reports its time to the target loss gap. The optimizer fixes its
    // own seed (the paper's 42), so per-point sweep seeds are unused.
    let modes = [
        ("HO", SvrgMode::HostOnly),
        ("ACC", SvrgMode::Accelerated),
        ("DEL", SvrgMode::DelayedUpdate),
    ];
    let specs = SweepBuilder::new(paper_spec())
        .axis("ranks", labeled(ranks_axis), |_, _| {})
        .axis("mode", modes, |_, _| {})
        .axis("epoch_div", labeled([1usize, 2, 4]), |_, _| {})
        .build();
    let times = run_sweep_with(&specs, |spec| {
        let ranks = spec.tag("ranks").unwrap();
        let tm = &time_models.get(&[("ranks", ranks)]).result;
        let mode = *spec.value::<SvrgMode>("mode").expect("mode axis");
        let e = n / *spec.value::<usize>("epoch_div").expect("epoch_div axis");
        let cfg = SvrgConfig {
            epoch: e,
            lr: 0.04,
            momentum: 0.9,
            lambda: 1e-3,
            max_outer: 24 * ds.n / e,
            seed: 42,
        };
        svrg::run(mode, &ds, cfg, tm).time_to_converge(opt, tol)
    });

    // Best epoch per (ranks, mode), as the paper plots.
    let best = |ranks: &str, mode: &str| {
        times
            .select(&[("ranks", ranks), ("mode", mode)])
            .iter()
            .filter_map(|p| p.result)
            .fold(f64::INFINITY, f64::min)
    };

    header(
        "Fig. 15b: speedup over host-only (time to loss gap < 2e-2)",
        &["NDAs", "geometry", "ACC_Best", "DelayedUpdate"],
    );
    let mut csv_rows = Vec::new();
    for ranks in times.tag_values("ranks") {
        let ho = best(&ranks, "HO");
        let acc = best(&ranks, "ACC");
        let del = best(&ranks, "DEL");
        let nranks: usize = ranks.parse().unwrap();
        let cells = vec![
            format!("{}", 2 * nranks),
            format!("2ch x {ranks}rk"),
            f2(ho / acc),
            f2(ho / del),
        ];
        row(&cells);
        csv_rows.push(cells);
    }
    dump_rows_csv(
        "fig15b_svrg_scaling",
        &[
            "ndas",
            "geometry",
            "acc_best_speedup",
            "delayed_update_speedup",
        ],
        &csv_rows,
    );
    println!(
        "\nPaper shape: ACC ~1.6x, DelayedUpdate ~2x at 8 NDAs, both growing \
         with NDA count (staleness shrinks as summarization accelerates)."
    );
}
