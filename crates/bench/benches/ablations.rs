//! Ablations of Chopim design choices called out in `DESIGN.md` §6:
//!
//! * launch-packet cost (control writes per NDA instruction) — the knob
//!   behind the Fig. 10 shape;
//! * NDA instruction-queue depth — how much asynchrony the launch pipeline
//!   can exploit;
//! * write-buffer capacity sensitivity is covered indirectly via the
//!   policies bench (Fig. 12): drains are the throttling window.

use chopim_bench::{f3, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

fn measure(cfg: ChopimConfig, granularity: u64) -> (f64, f64) {
    let mut sys = ChopimSystem::new(cfg);
    let (x, _) = vec_pair(&mut sys, 1 << 17);
    sys.run_relaunching(window(), |rt| {
        rt.launch_elementwise(
            Opcode::Nrm2,
            vec![],
            vec![x],
            None,
            LaunchOpts { granularity_lines: Some(granularity), barrier_per_chunk: false },
        )
    });
    let r = sys.report();
    (r.host_ipc, r.nda_bw_utilization)
}

fn main() {
    header(
        "Ablation: launch-packet cost (NRM2 @ 64 blocks/instr, mix1)",
        &["ctrl writes per launch", "host IPC", "NDA BW util"],
    );
    for k in [1u32, 2, 4, 8] {
        let mut cfg = paper_cfg();
        cfg.mix = Some(MixId::new(1).unwrap());
        cfg.launch_writes_per_instr = k;
        cfg.nda_queue_cap = 32;
        let (ipc, util) = measure(cfg, 64);
        row(&[k.to_string(), f3(ipc), f3(util)]);
    }

    header(
        "Ablation: NDA instruction-queue depth (NRM2 @ 64 blocks/instr, mix1)",
        &["queue depth", "host IPC", "NDA BW util"],
    );
    for q in [1usize, 4, 16, 64] {
        let mut cfg = paper_cfg();
        cfg.mix = Some(MixId::new(1).unwrap());
        cfg.nda_queue_cap = q;
        let (ipc, util) = measure(cfg, 64);
        row(&[q.to_string(), f3(ipc), f3(util)]);
    }

    header(
        "Ablation: host scheduler / page policy (NRM2 @ 64 blocks/instr, mix1)",
        &["scheduler", "page policy", "host IPC", "NDA BW util"],
    );
    for (sched, page) in [
        (SchedulerKind::FrFcfs, PagePolicy::Open),
        (SchedulerKind::Fcfs, PagePolicy::Open),
        (SchedulerKind::FrFcfs, PagePolicy::Closed),
    ] {
        let mut cfg = paper_cfg();
        cfg.mix = Some(MixId::new(1).unwrap());
        cfg.scheduler = sched;
        cfg.page_policy = page;
        cfg.nda_queue_cap = 32;
        let (ipc, util) = measure(cfg, 64);
        row(&[format!("{sched:?}"), format!("{page:?}"), f3(ipc), f3(util)]);
    }

    header(
        "Ablation: memory interface — DDR4 (replicated FSMs) vs packetized (HMC-like)",
        &["interface", "host IPC", "avg read latency", "NDA BW util"],
    );
    for (name, pkt) in [("DDR4 (Chopim)", 0u32), ("packetized +20cyc/dir", 20), ("packetized +40cyc/dir", 40)] {
        let mut cfg = paper_cfg();
        cfg.mix = Some(MixId::new(1).unwrap());
        cfg.packetized_latency = pkt;
        cfg.nda_queue_cap = 32;
        let mut sys = ChopimSystem::new(cfg);
        let (x, _) = vec_pair(&mut sys, 1 << 17);
        sys.run_relaunching(window(), |rt| {
            rt.launch_elementwise(
                Opcode::Nrm2,
                vec![],
                vec![x],
                None,
                LaunchOpts { granularity_lines: Some(1024), barrier_per_chunk: false },
            )
        });
        let r = sys.report();
        row(&[name.to_string(), f3(r.host_ipc), f3(r.avg_read_latency), f3(r.nda_bw_utilization)]);
    }

    header(
        "Ablation: NDA operand walk — Chopim contiguous-column layout vs PA-order (Fig. 3's naive-layout argument)",
        &["walk", "banks mode", "NDA BW util"],
    );
    for (name, reserved, pa_order) in [
        ("contiguous-column (Chopim)", 0usize, false),
        ("contiguous-column (Chopim)", 1, false),
        ("PA-order (naive)", 0, true),
    ] {
        let mut cfg = paper_cfg();
        cfg.reserved_banks = reserved;
        cfg.nda_pa_order_walk = pa_order;
        let mut sys = ChopimSystem::new(cfg);
        let (x, y) = vec_pair(&mut sys, 1 << 17);
        sys.run_relaunching(window(), |rt| {
            rt.launch_elementwise(Opcode::Copy, vec![], vec![x], Some(y), LaunchOpts::default())
        });
        let mode = if reserved > 0 { "partitioned" } else { "shared" };
        row(&[name.to_string(), mode.to_string(), f3(sys.report().nda_bw_utilization)]);
    }
    println!(
        "\nThe PA-order walk keeps every bank's row buffer live at once, so any \
         interleaving (even the NDA's own two operand streams) thrashes rows — \
         the collapse Chopim's data layout exists to prevent (paper Fig. 3)."
    );
}
