//! Ablations of Chopim design choices called out in `DESIGN.md` §6:
//!
//! * launch-packet cost (control writes per NDA instruction) — the knob
//!   behind the Fig. 10 shape;
//! * NDA instruction-queue depth — how much asynchrony the launch pipeline
//!   can exploit;
//! * host scheduler / page policy, the memory interface (replicated FSMs
//!   vs packetized), and the NDA operand walk order.
//!
//! Each ablation is its own sweep over the paper base configuration.

use chopim_bench::{f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

/// NRM2 at a fixed granularity, the probe workload of the ablations.
fn nrm2(granularity: u64) -> Workload {
    Workload::elementwise_opts(
        Opcode::Nrm2,
        1 << 17,
        LaunchOpts {
            granularity_lines: Some(granularity),
            barrier_per_chunk: false,
        },
    )
}

fn mix1_base(granularity: u64) -> ScenarioSpec {
    let mut base = paper_spec();
    base.cfg.mix = Some(MixId::new(1).unwrap());
    base.cfg.nda_queue_cap = 32;
    base.workload = nrm2(granularity);
    base
}

fn main() {
    let launch_cost = run_sweep(
        "ablation_launch_cost",
        &SweepBuilder::new(mix1_base(64))
            .axis("ctrl_writes", labeled([1u32, 2, 4, 8]), |s, &k| {
                s.cfg.launch_writes_per_instr = k
            })
            .build(),
    );
    header(
        "Ablation: launch-packet cost (NRM2 @ 64 blocks/instr, mix1)",
        &["ctrl writes per launch", "host IPC", "NDA BW util"],
    );
    for p in launch_cost.iter() {
        row(&[
            p.spec.label.clone(),
            f3(p.result.host_ipc),
            f3(p.result.nda_bw_utilization),
        ]);
    }

    let queue_depth = run_sweep(
        "ablation_queue_depth",
        &SweepBuilder::new(mix1_base(64))
            .axis("queue", labeled([1usize, 4, 16, 64]), |s, &q| {
                s.cfg.nda_queue_cap = q
            })
            .build(),
    );
    header(
        "Ablation: NDA instruction-queue depth (NRM2 @ 64 blocks/instr, mix1)",
        &["queue depth", "host IPC", "NDA BW util"],
    );
    for p in queue_depth.iter() {
        row(&[
            p.spec.label.clone(),
            f3(p.result.host_ipc),
            f3(p.result.nda_bw_utilization),
        ]);
    }

    let sched = run_sweep(
        "ablation_scheduler",
        &SweepBuilder::new(mix1_base(64))
            .axis(
                "discipline",
                [
                    ("FrFcfs/Open", (SchedulerKind::FrFcfs, PagePolicy::Open)),
                    ("Fcfs/Open", (SchedulerKind::Fcfs, PagePolicy::Open)),
                    ("FrFcfs/Closed", (SchedulerKind::FrFcfs, PagePolicy::Closed)),
                ],
                |s, &(sched, page)| {
                    s.cfg.scheduler = sched;
                    s.cfg.page_policy = page;
                },
            )
            .build(),
    );
    header(
        "Ablation: host scheduler / page policy (NRM2 @ 64 blocks/instr, mix1)",
        &["scheduler/page policy", "host IPC", "NDA BW util"],
    );
    for p in sched.iter() {
        row(&[
            p.spec.label.clone(),
            f3(p.result.host_ipc),
            f3(p.result.nda_bw_utilization),
        ]);
    }

    let interface = run_sweep(
        "ablation_interface",
        &SweepBuilder::new(mix1_base(1024))
            .axis(
                "interface",
                [
                    ("DDR4 (Chopim)", 0u32),
                    ("packetized +20cyc/dir", 20),
                    ("packetized +40cyc/dir", 40),
                ],
                |s, &pkt| s.cfg.packetized_latency = pkt,
            )
            .build(),
    );
    header(
        "Ablation: memory interface — DDR4 (replicated FSMs) vs packetized (HMC-like)",
        &["interface", "host IPC", "avg read latency", "NDA BW util"],
    );
    for p in interface.iter() {
        row(&[
            p.spec.label.clone(),
            f3(p.result.host_ipc),
            f3(p.result.avg_read_latency),
            f3(p.result.nda_bw_utilization),
        ]);
    }

    let mut walk_base = paper_spec();
    walk_base.workload = Workload::elementwise(Opcode::Copy, 1 << 17);
    let walk = run_sweep(
        "ablation_operand_walk",
        &SweepBuilder::new(walk_base)
            .axis(
                "walk",
                [
                    ("contiguous-column (Chopim), shared", (0usize, false)),
                    ("contiguous-column (Chopim), partitioned", (1, false)),
                    ("PA-order (naive), shared", (0, true)),
                ],
                |s, &(reserved, pa_order)| {
                    s.cfg.reserved_banks = reserved;
                    s.cfg.nda_pa_order_walk = pa_order;
                },
            )
            .build(),
    );
    header(
        "Ablation: NDA operand walk — Chopim contiguous-column layout vs PA-order (Fig. 3's naive-layout argument)",
        &["walk, banks mode", "NDA BW util"],
    );
    for p in walk.iter() {
        row(&[p.spec.label.clone(), f3(p.result.nda_bw_utilization)]);
    }
    println!(
        "\nThe PA-order walk keeps every bank's row buffer live at once, so any \
         interleaving (even the NDA's own two operand streams) thrashes rows — \
         the collapse Chopim's data layout exists to prevent (paper Fig. 3)."
    );
}
