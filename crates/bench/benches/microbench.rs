//! Criterion microbenchmarks of the simulator's hot paths: address
//! mapping, DRAM command issue, FSM stepping, and the core model. These
//! track simulator performance (cycles simulated per second), not paper
//! results.

use chopim_dram::{Command, DramConfig, DramSystem, Issuer, TimingParams};
use chopim_host::{CoreConfig, OooCore, WorkloadProfile};
use chopim_mapping::{presets, AddressMapper, PartitionedMapping};
use chopim_nda::fsm::NdaFsm;
use chopim_nda::isa::{NdaInstr, Opcode};
use chopim_nda::operand::OperandLayout;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let cfg = DramConfig::table_ii();
    let map = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 1);
    c.bench_function("mapping/map_pa", |b| {
        let mut pa = 0u64;
        b.iter(|| {
            pa = pa.wrapping_add(0x9e37_79b9_7f4a_7c15) & ((1 << 35) - 1);
            black_box(map.map_pa(black_box(pa)))
        })
    });
}

fn bench_dram_issue(c: &mut Criterion) {
    c.bench_function("dram/act_rd_pre_cycle", |b| {
        let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
        let mut mem = DramSystem::new(cfg);
        let mut now = 0u64;
        let mut row = 0u32;
        b.iter(|| {
            let act = Command::act(0, 0, 0, row);
            while !mem.can_issue(0, &act, Issuer::Host, now) {
                now += 1;
            }
            mem.issue(0, &act, Issuer::Host, now).unwrap();
            let rd = Command::rd(0, 0, 0, row, 0);
            while !mem.can_issue(0, &rd, Issuer::Host, now) {
                now += 1;
            }
            mem.issue(0, &rd, Issuer::Host, now).unwrap();
            let pre = Command::pre(0, 0, 0);
            while !mem.can_issue(0, &pre, Issuer::Host, now) {
                now += 1;
            }
            mem.issue(0, &pre, Issuer::Host, now).unwrap();
            row = row.wrapping_add(1) % 1024;
            black_box(now)
        })
    });
}

fn bench_fsm(c: &mut Criterion) {
    c.bench_function("nda/fsm_grant", |b| {
        let mut fsm = NdaFsm::new(64);
        let mut id = 0u64;
        b.iter(|| {
            if fsm.is_idle() {
                let x = OperandLayout::rotating(16, 0, 64, 128);
                let y = OperandLayout::rotating(16, 100, 64, 128);
                fsm.launch(NdaInstr::elementwise(
                    Opcode::Copy,
                    4096,
                    vec![(x, 0)],
                    vec![(y, 0)],
                    id,
                ))
                .unwrap();
                id += 1;
            }
            let acc = fsm.next_access().expect("work queued");
            fsm.commit(acc);
            while fsm.pop_completed().is_some() {}
            black_box(acc)
        })
    });
}

fn bench_core(c: &mut Criterion) {
    c.bench_function("host/core_cpu_cycle", |b| {
        let mut core = OooCore::new(CoreConfig::default(), WorkloadProfile::mcf_r(), 1);
        let mut pending: Vec<u64> = Vec::new();
        b.iter(|| {
            let mut sink = |r: chopim_host::MemRequest| {
                if !r.is_write {
                    pending.push(r.id);
                }
                true
            };
            core.cpu_cycle(&mut sink);
            // Fill with a fixed two-cycle lag to keep the window moving.
            if pending.len() > 4 {
                for id in pending.drain(..) {
                    core.fill(id);
                }
            }
            black_box(core.retired_instructions())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_mapping, bench_dram_issue, bench_fsm, bench_core
);
criterion_main!(benches);
