//! **Fig. 15a** — SVRG convergence over wall-clock time, with and without
//! NDAs (8 NDAs = 2ch x 4rk).
//!
//! Seven traces, as in the paper's legend: host-only (HO) and accelerated
//! (ACC) at epochs {N, N/2, N/4}, plus delayed-update. Step times come
//! from the simulator-measured [`chopim_ml::SvrgTimeModel`]; the
//! optimization math is exact.
//!
//! Expected shape: ACC's optimal epoch shrinks (summarization got cheap),
//! and delayed-update reaches the target loss fastest despite staleness.

use chopim_bench::{dump_rows_csv, header, paper_spec, run_sweep_with};
use chopim_exp::prelude::*;
use chopim_ml::svrg::{self, SvrgMode};
use chopim_ml::{Dataset, SvrgConfig, SvrgTimeModel};

fn main() {
    // cifar10 stand-in, scaled for harness runtime (see DESIGN.md).
    let (n, d, classes) = (2048usize, 256usize, 10usize);
    let ds = Dataset::synthetic(n, d, classes, 17);
    println!("measuring step times on the simulator (2ch x 4rk = 8 NDAs)...");
    let tm = SvrgTimeModel::measure(n, d, classes, 4);
    println!(
        "  host_iter={:.2}us host_summarize={:.2}ms nda_summarize={:.2}ms \
         (concurrent {:.2}ms) exchange={:.2}us",
        tm.host_iter_s * 1e6,
        tm.host_summarize_s * 1e3,
        tm.nda_summarize_s * 1e3,
        tm.nda_summarize_concurrent_s * 1e3,
        tm.exchange_s * 1e6,
    );
    let opt_gd = svrg::optimum_loss(&ds, 1e-3, 250);

    let base_cfg = SvrgConfig {
        epoch: n,
        lr: 0.04,
        momentum: 0.9,
        lambda: 1e-3,
        max_outer: 24,
        seed: 42,
    };
    let modes = [
        ("HO", SvrgMode::HostOnly),
        ("ACC", SvrgMode::Accelerated),
        ("DelayedUpdate", SvrgMode::DelayedUpdate),
    ];
    // The optimizer runs below fix their own RNG seed (the paper's 42),
    // so the sweep's per-point seeds are unused here — the grid supplies
    // the (mode x epoch) product, parallelism, and tagging. Delayed
    // update is only plotted at its best epoch (N/4), as in the legend.
    let specs: Vec<ScenarioSpec> = SweepBuilder::new(paper_spec())
        .axis("mode", modes, |_, _| {})
        .axis("epoch_div", labeled([1usize, 2, 4]), |_, _| {})
        .build()
        .into_iter()
        .filter(|s| s.tag("mode") != Some("DelayedUpdate") || s.tag("epoch_div") == Some("4"))
        .collect();
    assert_eq!(specs.len(), 7);

    let result = run_sweep_with(&specs, |spec| {
        let mode = *spec.value::<SvrgMode>("mode").expect("mode axis");
        let div = *spec.value::<usize>("epoch_div").expect("epoch_div axis");
        let e = n / div;
        let cfg = SvrgConfig {
            epoch: e,
            max_outer: base_cfg.max_outer * n / e,
            ..base_cfg
        };
        let name = match mode {
            SvrgMode::DelayedUpdate => "DelayedUpdate".to_string(),
            m => format!("{}, Epoch(N/{})", m.label(), div),
        };
        (name, svrg::run(mode, &ds, cfg, &tm))
    });

    // Tighten the reference with the best loss any trace reached (the
    // plotted quantity is loss *gap*, which must be nonnegative).
    let opt = result
        .iter()
        .map(|p| p.result.1.best_loss())
        .fold(opt_gd, f64::min)
        - 1e-9;
    println!("reference optimum loss: {opt:.6}");

    header(
        "Fig. 15a: training loss - optimum vs time (seconds)",
        &[
            "series",
            "t25%",
            "loss",
            "t50%",
            "loss",
            "t100%",
            "loss",
            "time to gap<2e-2",
        ],
    );
    let mut csv_rows = Vec::new();
    for p in result.iter() {
        let (name, trace) = &p.result;
        let pts = &trace.points;
        let pick = |f: f64| {
            let i = ((pts.len() as f64 * f) as usize).min(pts.len() - 1);
            pts[i]
        };
        let (t1, l1) = pick(0.25);
        let (t2, l2) = pick(0.5);
        let (t3, l3) = pick(1.0);
        let conv = trace
            .time_to_converge(opt, 2e-2)
            .map(|t| format!("{t:.4}s"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "| {name} | {t1:.4} | {:.4} | {t2:.4} | {:.4} | {t3:.4} | {:.4} | {conv} |",
            l1 - opt,
            l2 - opt,
            l3 - opt
        );
        csv_rows.push(vec![
            name.clone(),
            format!("{t1}"),
            format!("{}", l1 - opt),
            format!("{t2}"),
            format!("{}", l2 - opt),
            format!("{t3}"),
            format!("{}", l3 - opt),
            conv,
        ]);
    }
    dump_rows_csv(
        "fig15a_svrg_convergence",
        &[
            "series",
            "t25",
            "gap25",
            "t50",
            "gap50",
            "t100",
            "gap100",
            "time_to_gap_2e-2",
        ],
        &csv_rows,
    );
    println!(
        "\nTakeaway 6: collaborative host-NDA processing speeds up SVRG; the \
         optimal epoch shrinks when NDAs summarize, and delayed updates \
         convert concurrency into faster convergence."
    );
}
