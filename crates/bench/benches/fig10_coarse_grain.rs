//! **Fig. 10** — Impact of coarse-grain NDA operations.
//!
//! NRM2 with the per-instruction vector width swept from 1 to 4096 cache
//! blocks, the most memory-intensive host mix (mix1), asynchronous
//! launches, bank partitioning on — exactly the paper's setup. Reported:
//! host IPC and NDA bandwidth utilization, for 2ch x {2,4,8} ranks.
//!
//! Expected shape: both curves rise with granularity (launch packets stop
//! contending with host transactions), and more ranks need coarser ops to
//! reach the same utilization.

use chopim_bench::{f3, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

fn main() {
    let granularities: [u64; 7] = [1, 4, 16, 64, 256, 1024, 4096];
    for ranks in [2usize, 4, 8] {
        header(
            &format!("Fig. 10: coarse-grain NDA ops — 2 ch x {ranks} ranks (mix1, NRM2, async)"),
            &["blocks/instr", "host IPC", "NDA BW util"],
        );
        for g in granularities {
            let mut cfg = paper_cfg();
            cfg.dram = cfg.dram.with_ranks(ranks);
            cfg.mix = Some(MixId::new(1).unwrap());
            cfg.nda_queue_cap = 32;
            let mut sys = ChopimSystem::new(cfg);
            let (x, _) = vec_pair(&mut sys, 1 << 17);
            sys.run_relaunching(window(), |rt| {
                rt.launch_elementwise(
                    Opcode::Nrm2,
                    vec![],
                    vec![x],
                    None,
                    LaunchOpts { granularity_lines: Some(g), barrier_per_chunk: false },
                )
            });
            let r = sys.report();
            row(&[g.to_string(), f3(r.host_ipc), f3(r.nda_bw_utilization)]);
        }
    }
    println!(
        "\nTakeaway 1: coarse-grain NDA operations are crucial for mitigating \
         contention on the host memory channel."
    );
}
