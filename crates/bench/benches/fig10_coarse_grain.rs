//! **Fig. 10** — Impact of coarse-grain NDA operations.
//!
//! NRM2 with the per-instruction vector width swept from 1 to 4096 cache
//! blocks, the most memory-intensive host mix (mix1), asynchronous
//! launches, bank partitioning on — exactly the paper's setup. Reported:
//! host IPC and NDA bandwidth utilization, for 2ch x {2,4,8} ranks.
//!
//! Expected shape: both curves rise with granularity (launch packets stop
//! contending with host transactions), and more ranks need coarser ops to
//! reach the same utilization.

use chopim_bench::{f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    let mut base = paper_spec();
    base.cfg.mix = Some(MixId::new(1).unwrap());
    base.cfg.nda_queue_cap = 32;
    let specs = SweepBuilder::new(base)
        .axis("ranks", labeled([2usize, 4, 8]), |s, &r| {
            s.cfg.dram = s.cfg.dram.clone().with_ranks(r)
        })
        .axis(
            "blocks",
            labeled([1u64, 4, 16, 64, 256, 1024, 4096]),
            |s, &g| {
                s.workload = Workload::elementwise_opts(
                    Opcode::Nrm2,
                    1 << 17,
                    LaunchOpts {
                        granularity_lines: Some(g),
                        barrier_per_chunk: false,
                    },
                )
            },
        )
        .build();
    let result = run_sweep("fig10_coarse_grain", &specs);

    for ranks in result.tag_values("ranks") {
        header(
            &format!("Fig. 10: coarse-grain NDA ops — 2 ch x {ranks} ranks (mix1, NRM2, async)"),
            &["blocks/instr", "host IPC", "NDA BW util"],
        );
        for p in result.select(&[("ranks", &ranks)]) {
            let r = &p.result;
            row(&[
                p.spec.tag("blocks").unwrap().to_string(),
                f3(r.host_ipc),
                f3(r.nda_bw_utilization),
            ]);
        }
    }
    println!(
        "\nTakeaway 1: coarse-grain NDA operations are crucial for mitigating \
         contention on the host memory channel."
    );
}
