//! **Fig. 13** — Impact of NDA operation type and operand size.
//!
//! All eight vector ops (plus GEMV) with three input sizes — small
//! (8 KB/rank), medium (128 KB/rank), large (8 MB/rank) — plus the small
//! size with asynchronous launch, under mix1 and next-rank prediction.
//!
//! Expected shape: performance inversely related to write intensity;
//! short-running ops (small inputs) suffer launch overhead and load
//! imbalance; async launch recovers most of the small-input loss
//! (takeaway 4).

use chopim_bench::{f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

#[derive(Clone, Copy, PartialEq)]
enum Size {
    Small,
    Medium,
    Large,
    SmallAsync,
}

impl Size {
    fn label(self) -> &'static str {
        match self {
            Size::Small => "small(8KB/rank)",
            Size::Medium => "medium(128KB/rank)",
            Size::Large => "large(8MB/rank)",
            Size::SmallAsync => "small+async",
        }
    }
    /// Per-launch vector width per rank, in cache lines (the paper's
    /// per-launch operand size).
    fn lines_per_launch(self) -> u64 {
        match self {
            Size::Small | Size::SmallAsync => (8 << 10) / 64,
            Size::Medium => (128 << 10) / 64,
            Size::Large => (8 << 20) / 64,
        }
    }
    fn barrier(self) -> bool {
        !matches!(self, Size::SmallAsync)
    }
}

fn main() {
    let ops = [
        Opcode::Axpby,
        Opcode::Axpbypcz,
        Opcode::Axpy,
        Opcode::Copy,
        Opcode::Dot,
        Opcode::Gemv,
        Opcode::Nrm2,
        Opcode::Scal,
    ];
    let sizes = [Size::Small, Size::Medium, Size::Large, Size::SmallAsync];

    let mut base = paper_spec();
    base.cfg.mix = Some(MixId::new(1).unwrap());
    base.cfg.nda_queue_cap = 32;
    let total_ranks = base.cfg.dram.channels * base.cfg.dram.ranks_per_channel;

    // Ops repeatedly launch over a large resident vector; the size axis
    // sets the per-launch width, and blocking launches put a barrier
    // between consecutive launches (paper §V). GEMV instead derives its
    // shape from the per-launch width (128 rows, columns sized to match,
    // capped to keep harness memory bounded).
    let specs = SweepBuilder::new(base)
        .axis("op", ops.map(|op| (op.to_string(), op)), |_, _| {})
        .axis("size", sizes.map(|sz| (sz.label(), sz)), |_, _| {})
        .finish(move |spec| {
            let op = *spec.value::<Opcode>("op").expect("op axis");
            let size = *spec.value::<Size>("size").expect("size axis");
            spec.workload = if op == Opcode::Gemv {
                let rows = 128usize;
                let gemv_elems = size.lines_per_launch() as usize * 16 * total_ranks;
                let cols = (gemv_elems / rows).clamp(16, 65_536) / 16 * 16;
                Workload::Gemv { rows, cols }
            } else {
                Workload::elementwise_opts(
                    op,
                    (8 << 20) * total_ranks / 4,
                    LaunchOpts {
                        granularity_lines: Some(size.lines_per_launch()),
                        barrier_per_chunk: size.barrier(),
                    },
                )
            };
        })
        .build();
    let result = run_sweep("fig13_op_sweep", &specs);

    header(
        "Fig. 13: NDA op x operand size (mix1, next-rank prediction) — host IPC / NDA BW util",
        &["op", "size", "host IPC", "NDA BW util"],
    );
    for p in result.iter() {
        row(&[
            p.spec.tag("op").unwrap().to_string(),
            p.spec.tag("size").unwrap().to_string(),
            f3(p.result.host_ipc),
            f3(p.result.nda_bw_utilization),
        ]);
    }
    println!(
        "\nTakeaway 4: performance is inversely related to write intensity; \
         asynchronous launch mitigates the load imbalance of short ops."
    );
}
