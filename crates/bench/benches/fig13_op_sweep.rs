//! **Fig. 13** — Impact of NDA operation type and operand size.
//!
//! All eight vector ops (plus GEMV) with three input sizes — small
//! (8 KB/rank), medium (128 KB/rank), large (8 MB/rank) — plus the small
//! size with asynchronous launch, under mix1 and next-rank prediction.
//!
//! Expected shape: performance inversely related to write intensity;
//! short-running ops (small inputs) suffer launch overhead and load
//! imbalance; async launch recovers most of the small-input loss
//! (takeaway 4).

use chopim_bench::{f3, header, paper_cfg, row, window};
use chopim_core::prelude::*;

#[derive(Clone, Copy, PartialEq)]
enum Size {
    Small,
    Medium,
    Large,
    SmallAsync,
}

impl Size {
    fn label(self) -> &'static str {
        match self {
            Size::Small => "small(8KB/rank)",
            Size::Medium => "medium(128KB/rank)",
            Size::Large => "large(8MB/rank)",
            Size::SmallAsync => "small+async",
        }
    }
    /// Per-launch vector width per rank, in cache lines (the paper's
    /// per-launch operand size).
    fn lines_per_launch(self) -> u64 {
        match self {
            Size::Small | Size::SmallAsync => (8 << 10) / 64,
            Size::Medium => (128 << 10) / 64,
            Size::Large => (8 << 20) / 64,
        }
    }
    fn barrier(self) -> bool {
        !matches!(self, Size::SmallAsync)
    }
}

fn main() {
    let ops = [
        Opcode::Axpby,
        Opcode::Axpbypcz,
        Opcode::Axpy,
        Opcode::Copy,
        Opcode::Dot,
        Opcode::Gemv,
        Opcode::Nrm2,
        Opcode::Scal,
    ];
    let sizes = [Size::Small, Size::Medium, Size::Large, Size::SmallAsync];
    header(
        "Fig. 13: NDA op x operand size (mix1, next-rank prediction) — host IPC / NDA BW util",
        &["op", "size", "host IPC", "NDA BW util"],
    );
    for op in ops {
        for size in sizes {
            let mut cfg = paper_cfg();
            cfg.mix = Some(MixId::new(1).unwrap());
            cfg.nda_queue_cap = 32;
            let mut sys = ChopimSystem::new(cfg);
            let total_ranks = sys.runtime.nda_ranks().len();
            // Ops repeatedly launch over a large resident vector; the size
            // axis sets the per-launch width, and blocking launches put a
            // barrier between consecutive launches (paper §V).
            let elems = (8 << 20) * total_ranks / 4;
            let opts = LaunchOpts {
                granularity_lines: Some(size.lines_per_launch()),
                barrier_per_chunk: size.barrier(),
            };
            let r = if op == Opcode::Gemv {
                // 128 rows, columns = per-launch vector size (paper's GEMV
                // shapes), capped to keep harness memory bounded.
                let rows = 128usize;
                let gemv_elems = size.lines_per_launch() as usize * 16 * total_ranks;
                let cols = (gemv_elems / rows).clamp(16, 65_536) / 16 * 16;
                let a = sys.runtime.matrix(rows, cols);
                let x = sys.runtime.vector(cols, Sharing::Shared);
                let y = sys.runtime.vector(rows, Sharing::Shared);
                sys.runtime.write_vector(x, &vec![1.0; cols]);
                let _ = a;
                sys.run_relaunching(window(), |rt| {
                    rt.launch_gemv(y, a, x, LaunchOpts::default())
                });
                sys.report()
            } else {
                let x = sys.runtime.vector(elems, Sharing::Shared);
                let y = sys.runtime.vector(elems, Sharing::Shared);
                let z = sys.runtime.vector(elems, Sharing::Shared);
                sys.runtime.write_vector(x, &vec![1.0; elems]);
                sys.runtime.write_vector(y, &vec![2.0; elems]);
                sys.run_relaunching(window(), |rt| match op {
                    Opcode::Axpby => rt.launch_elementwise(
                        op,
                        vec![2.0, -1.0],
                        vec![x, y],
                        Some(z),
                        opts,
                    ),
                    Opcode::Axpbypcz => rt.launch_elementwise(
                        op,
                        vec![2.0, -1.0, 0.5],
                        vec![x, y, z],
                        Some(z),
                        opts,
                    ),
                    Opcode::Axpy => {
                        rt.launch_elementwise(op, vec![0.5], vec![x], Some(y), opts)
                    }
                    Opcode::Copy => rt.launch_elementwise(op, vec![], vec![x], Some(y), opts),
                    Opcode::Xmy => {
                        rt.launch_elementwise(op, vec![], vec![x, y], Some(z), opts)
                    }
                    Opcode::Dot => rt.launch_elementwise(op, vec![], vec![x, y], None, opts),
                    Opcode::Nrm2 => rt.launch_elementwise(op, vec![], vec![x], None, opts),
                    Opcode::Scal => {
                        rt.launch_elementwise(op, vec![0.99], vec![], Some(x), opts)
                    }
                    Opcode::Gemv => unreachable!(),
                });
                sys.report()
            };
            row(&[
                op.to_string(),
                size.label().to_string(),
                f3(r.host_ipc),
                f3(r.nda_bw_utilization),
            ]);
        }
    }
    println!(
        "\nTakeaway 4: performance is inversely related to write intensity; \
         asynchronous launch mitigates the load imbalance of short ops."
    );
}
