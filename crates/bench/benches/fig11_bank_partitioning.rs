//! **Fig. 11** — Concurrent access to different memory regions: shared vs
//! partitioned banks, for the read-intensive DOT and write-intensive COPY
//! extremes, across mix0..mix8.
//!
//! Reported per mix: host IPC under each mode and NDA bandwidth
//! utilization (1.0 = idealized). Expected shape: partitioning
//! substantially lifts NDA utilization (row-conflict shielding), most
//! visibly for DOT; COPY additionally depresses host IPC via write
//! turnarounds (addressed by Fig. 12's throttling).

use chopim_bench::{f3, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    // Fig. 11 isolates bank-conflict effects: the aggressive issue-if-idle
    // policy runs here; write throttling is evaluated in Fig. 12.
    let mut base = paper_spec();
    base.cfg.policy = WriteIssuePolicy::IssueIfIdle;
    let specs = SweepBuilder::new(base)
        .axis("mix", labeled(MixId::ALL), |s, &m| s.cfg.mix = Some(m))
        .axis("banks", [("Shared", 0usize), ("Part", 1)], |s, &r| {
            s.cfg.reserved_banks = r
        })
        .axis(
            "op",
            [("DOT", Opcode::Dot), ("COPY", Opcode::Copy)],
            |s, &op| s.workload = Workload::elementwise(op, 1 << 17),
        )
        .build();
    let result = run_sweep("fig11_bank_partitioning", &specs);

    header(
        "Fig. 11: shared vs partitioned banks (host IPC / NDA BW utilization)",
        &[
            "mix",
            "Shared+DOT ipc",
            "Shared+DOT util",
            "Part+DOT ipc",
            "Part+DOT util",
            "Shared+COPY ipc",
            "Shared+COPY util",
            "Part+COPY ipc",
            "Part+COPY util",
        ],
    );
    let mut gain_sum = 0.0;
    let mut n = 0.0;
    for mix in result.tag_values("mix") {
        let mut cells = vec![mix.clone()];
        for op in ["DOT", "COPY"] {
            for banks in ["Shared", "Part"] {
                let r = &result
                    .get(&[("mix", &mix), ("banks", banks), ("op", op)])
                    .result;
                cells.push(f3(r.host_ipc));
                cells.push(f3(r.nda_bw_utilization));
            }
        }
        row(&cells);
        let sd = &result
            .get(&[("mix", &mix), ("banks", "Shared"), ("op", "DOT")])
            .result;
        let pd = &result
            .get(&[("mix", &mix), ("banks", "Part"), ("op", "DOT")])
            .result;
        if sd.nda_bw_utilization > 0.0 {
            gain_sum += pd.nda_bw_utilization / sd.nda_bw_utilization;
            n += 1.0;
        }
    }
    println!(
        "\nTakeaway 2: bank partitioning increases row-buffer locality and \
         substantially improves NDA performance (paper: 1.5-2x for DOT). \
         Measured mean DOT utilization gain: {:.2}x.",
        gain_sum / n
    );
}
