//! **Fig. 11** — Concurrent access to different memory regions: shared vs
//! partitioned banks, for the read-intensive DOT and write-intensive COPY
//! extremes, across mix0..mix8.
//!
//! Reported per mix: host IPC under each mode and NDA bandwidth
//! utilization (1.0 = idealized: every host-idle rank cycle). Expected
//! shape: partitioning substantially lifts NDA utilization (row-conflict
//! shielding), most visibly for DOT; COPY additionally depresses host IPC
//! via write turnarounds (addressed by Fig. 12's throttling).

use chopim_bench::{f3, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

struct Point {
    ipc: f64,
    util: f64,
}

fn run_point(mix: MixId, reserved: usize, op: Opcode) -> Point {
    let mut cfg = paper_cfg();
    cfg.mix = Some(mix);
    cfg.reserved_banks = reserved;
    // Fig. 11 isolates bank-conflict effects: the aggressive issue-if-idle
    // policy runs here; write throttling is evaluated in Fig. 12.
    cfg.policy = WriteIssuePolicy::IssueIfIdle;
    let mut sys = ChopimSystem::new(cfg);
    let (x, y) = vec_pair(&mut sys, 1 << 17);
    sys.run_relaunching(window(), |rt| match op {
        Opcode::Dot => {
            rt.launch_elementwise(Opcode::Dot, vec![], vec![x, y], None, LaunchOpts::default())
        }
        _ => rt.launch_elementwise(
            Opcode::Copy,
            vec![],
            vec![x],
            Some(y),
            LaunchOpts::default(),
        ),
    });
    let r = sys.report();
    Point { ipc: r.host_ipc, util: r.nda_bw_utilization }
}

fn main() {
    header(
        "Fig. 11: shared vs partitioned banks (host IPC / NDA BW utilization)",
        &[
            "mix",
            "Shared+DOT ipc",
            "Shared+DOT util",
            "Part+DOT ipc",
            "Part+DOT util",
            "Shared+COPY ipc",
            "Shared+COPY util",
            "Part+COPY ipc",
            "Part+COPY util",
        ],
    );
    let mut gain_sum = 0.0;
    let mut n = 0.0;
    for mix in MixId::ALL {
        let sd = run_point(mix, 0, Opcode::Dot);
        let pd = run_point(mix, 1, Opcode::Dot);
        let sc = run_point(mix, 0, Opcode::Copy);
        let pc = run_point(mix, 1, Opcode::Copy);
        row(&[
            mix.to_string(),
            f3(sd.ipc),
            f3(sd.util),
            f3(pd.ipc),
            f3(pd.util),
            f3(sc.ipc),
            f3(sc.util),
            f3(pc.ipc),
            f3(pc.util),
        ]);
        if sd.util > 0.0 {
            gain_sum += pd.util / sd.util;
            n += 1.0;
        }
    }
    println!(
        "\nTakeaway 2: bank partitioning increases row-buffer locality and \
         substantially improves NDA performance (paper: 1.5-2x for DOT). \
         Measured mean DOT utilization gain: {:.2}x.",
        gain_sum / n
    );
}
