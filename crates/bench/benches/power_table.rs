//! **§VII "Memory Power" (takeaway 7)** — power under concurrent access.
//!
//! The paper reports: ≤8 W theoretical host-only max, ~3.6 W measured on
//! the most memory-intensive mixes, ≤3.7 W NDA max, ≤7.3 W combined —
//! i.e. concurrent operation stays below the host-only theoretical
//! maximum. This harness reproduces each row from the Table II energy
//! constants and simulated event counts.

use chopim_bench::{f2, header, paper_spec, row, run_sweep};
use chopim_core::prelude::*;
use chopim_exp::prelude::*;

fn main() {
    // NDA-only maximum-intensity kernel: the average-gradient macro
    // stream (Fig. 8 shapes).
    let avg_gradient = Workload::MacroAxpyRows {
        rows: 64,
        d: 3072,
        rows_per_instr: 8,
        opts: LaunchOpts {
            granularity_lines: None,
            barrier_per_chunk: false,
        },
    };
    let scenarios: [(&str, Option<usize>, Workload); 3] = [
        ("host-only (mix0)", Some(0), Workload::HostOnly),
        ("NDA-only (avg-gradient)", None, avg_gradient),
        (
            "concurrent (mix0 + COPY)",
            Some(0),
            Workload::elementwise(Opcode::Copy, 1 << 17),
        ),
    ];
    let specs = SweepBuilder::new(paper_spec())
        .axis(
            "scenario",
            scenarios.map(|(l, m, w)| (l, (m, w))),
            |s, (mix, w)| {
                s.cfg.mix = mix.map(|i| MixId::new(i).unwrap());
                s.workload = w.clone();
            },
        )
        .build();
    let result = run_sweep("power_table", &specs);

    header(
        "Memory power under concurrent access (Table II energy constants)",
        &["scenario", "avg power (W)", "NDA share (W)"],
    );
    for p in result.iter() {
        row(&[
            p.spec.label.clone(),
            f2(p.result.energy.avg_power_w()),
            f2(p.result.energy.nda_power_w()),
        ]);
    }

    // Theoretical host-only maximum: both channels saturated.
    let peak_bursts_per_s = 2.0 * 1.2e9 / 4.0;
    let host_w = peak_bursts_per_s * 64.0 * 8.0 * 25.7e-12;
    let act_w = peak_bursts_per_s / 64.0 * 1.0e-9;
    row(&[
        "theoretical host-only max".into(),
        f2(host_w + act_w),
        f2(0.0),
    ]);

    println!(
        "\nTakeaway 7: operating multiple ranks for concurrent access does not \
         increase memory power significantly — NDA proximity (11.3 vs 25.7 pJ/b) \
         offsets the added bandwidth."
    );
}
