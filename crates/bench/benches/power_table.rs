//! **§VII "Memory Power" (takeaway 7)** — power under concurrent access.
//!
//! The paper reports: ≤8 W theoretical host-only max, ~3.6 W measured on
//! the most memory-intensive mixes, ≤3.7 W NDA max, ≤7.3 W combined —
//! i.e. concurrent operation stays below the host-only theoretical
//! maximum. This harness reproduces each row from the Table II energy
//! constants and simulated event counts.

use chopim_bench::{f2, header, paper_cfg, row, vec_pair, window};
use chopim_core::prelude::*;

fn main() {
    header(
        "Memory power under concurrent access (Table II energy constants)",
        &["scenario", "avg power (W)", "NDA share (W)"],
    );

    // Host-only, most memory-intensive mix.
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(0).unwrap()),
        ..paper_cfg()
    });
    sys.run(window());
    let r = sys.report();
    row(&["host-only (mix0)".into(), f2(r.energy.avg_power_w()), f2(r.energy.nda_power_w())]);

    // NDA-only, maximum-intensity kernel (average-gradient macro stream).
    let mut sys = ChopimSystem::new(paper_cfg());
    let d = 3072;
    let xs = sys.runtime.matrix(64, d);
    let a_pvt = sys.runtime.vector(d, Sharing::Private);
    let alphas = vec![0.01f32; 64];
    sys.run_relaunching(window(), |rt| {
        rt.launch_macro_axpy_rows(
            a_pvt,
            alphas.clone(),
            xs,
            8,
            LaunchOpts { granularity_lines: None, barrier_per_chunk: false },
        )
    });
    let r = sys.report();
    row(&["NDA-only (avg-gradient)".into(), f2(r.energy.avg_power_w()), f2(r.energy.nda_power_w())]);

    // Concurrent: mix0 host + write-intensive COPY on the NDAs.
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(0).unwrap()),
        ..paper_cfg()
    });
    let (x, y) = vec_pair(&mut sys, 1 << 17);
    sys.run_relaunching(window(), |rt| {
        rt.launch_elementwise(Opcode::Copy, vec![], vec![x], Some(y), LaunchOpts::default())
    });
    let r = sys.report();
    let combined = r.energy.avg_power_w();
    row(&["concurrent (mix0 + COPY)".into(), f2(combined), f2(r.energy.nda_power_w())]);

    // Theoretical host-only maximum: both channels saturated.
    let peak_bursts_per_s = 2.0 * 1.2e9 / 4.0;
    let host_w = peak_bursts_per_s * 64.0 * 8.0 * 25.7e-12;
    let act_w = peak_bursts_per_s / 64.0 * 1.0e-9;
    row(&["theoretical host-only max".into(), f2(host_w + act_w), f2(0.0)]);

    println!(
        "\nTakeaway 7: operating multiple ranks for concurrent access does not \
         increase memory power significantly — NDA proximity (11.3 vs 25.7 pJ/b) \
         offsets the added bandwidth."
    );
}
