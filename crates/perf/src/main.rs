//! `chopim-perf` — the simulation-throughput harness that seeds and gates
//! the perf trajectory.
//!
//! Runs the shared scenario matrix (`chopim_exp::perf_matrix`: host-only,
//! host-idle, NDA-only, co-located SVRG, co-located mix, rank-partitioned)
//! twice per point — once with the naive cycle-by-cycle loop
//! (`fast_forward = false`, the pre-event-horizon behavior) and once with
//! event-horizon fast-forwarding — verifies the two produce bit-identical
//! `SimReport`s, and emits `BENCH_chopim.json` with wall time and
//! simulated cycles-per-second for both loops. A final `warm_start` row
//! measures the snapshot-based warm-start sweep (one captured prefix
//! forked into every sweep point) against cold per-point prefix replay,
//! again asserting bit-identical reports.
//!
//! Usage:
//!
//! ```text
//! chopim-perf [--out BENCH_chopim.json] [--check BENCH_baseline.json]
//!             [--filter REGEX] [--verbose]
//! ```
//!
//! * `--filter REGEX` measures only the scenarios whose name matches the
//!   pattern (a small regex dialect: literals, `.`, `*`, and `^`/`$`
//!   anchors; unanchored patterns match any substring). The gate then
//!   only checks the measured rows — baseline rows outside the filter
//!   are skipped, not reported missing — so CI smoke jobs can gate a
//!   handful of representative scenarios without paying for the full
//!   matrix.
//! * `CHOPIM_BENCH_CYCLES` sets the measurement window (default 60 000).
//! * `CHOPIM_PERF_REPS` sets repetitions per loop (default 3); the
//!   minimum wall time wins, and naive/fast runs alternate so transient
//!   machine load hits both loops alike.
//! * `--check` gates on the fast/naive **speedup ratio** per scenario —
//!   both loops run in the same process, so the ratio transfers across
//!   machines, unlike absolute cycles/sec. A scenario whose speedup falls
//!   below 0.95x of the checked-in baseline's fails the gate: that is
//!   the signature of a lost fast path (or serial overhead smuggled into
//!   the engine), while mere runner slowness affects both loops alike.
//!   Windows must match (throughput and speedups both scale with the
//!   window).
//! * `--check` additionally enforces the fault plane's zero-overhead
//!   contract: with the default empty `FaultPlan`, every scenario's
//!   absolute fast-loop throughput must stay ≥ 0.98x of the baseline's
//!   `cps_fast` (hard on the machine that produced the baseline,
//!   advisory elsewhere). The `faulty_colocated_8ch` scenario runs with
//!   an *active* plan, so its row tracks what injection + recovery cost
//!   when actually firing.
//! * The wide 8- and 16-channel scenarios additionally run with a
//!   4-thread shard worker pool (`sim_threads = 4`); the harness asserts
//!   the parallel report is bit-identical to the serial one and records
//!   the parallel-vs-serial speedup. `--check` enforces a floor on that
//!   speedup scaled to the machine: ≥2x with 8+ hardware threads (hard
//!   failure), ≥1.2x advisory (warning only) with 4-7, skipped below 4,
//!   where the pool cannot physically win.

#![forbid(unsafe_code)]

use std::time::Instant;

use chopim_dram::perfcount;
use chopim_exp::{
    bench_window, perf_matrix, run_scenario, run_scenario_prefixed, ScenarioSpec, SweepRunner,
    Workload,
};

/// Serial-overhead floor for `--check`: each scenario's fast/naive
/// speedup must stay within this factor of the checked-in baseline's.
/// Both loops pay engine overheads (exchange, barriers) alike, so the
/// ratio is machine-transferable and a drop means the fast path lost
/// structure, not that the runner was slow.
const SERIAL_FLOOR_FACTOR: f64 = 0.95;

/// Absolute per-scenario speedup floors for `--check`. Since the indexed
/// scheduler and epoch memos moved most busy-path wins into the *shared*
/// tick path, the fast loop's structural edge on saturated scenarios is
/// small — the busy floors guard against the fast path falling *behind*
/// the naive loop (the class of bug BENCH_baseline.json once recorded as
/// a 0.951 colocated_mix speedup), while the idle/NDA floors keep the
/// event-horizon wins that fast-forwarding exists for.
const SPEEDUP_FLOORS: &[(&str, f64)] = &[
    ("host_only", 0.95),
    ("host_idle", 10.0),
    ("nda_only", 1.2),
    ("colocated_svrg", 0.95),
    ("colocated_mix", 0.95),
    ("rank_partitioned", 0.95),
    // The QoS fleet points: host-idle machines whose NDA plane is
    // saturated by streaming tenants. The headline claim is that the
    // indexed arbiter keeps per-launch cost O(active) — at 1000
    // sessions the fast loop must at minimum hold parity with the
    // naive loop (the pre-index rotating scan sank well below it), and
    // `--verbose` shows `sched_sessions_scanned` staying proportional
    // to launches, not tenants.
    ("multi_tenant_qos", 1.0),
    ("multi_tenant_1k", 1.0),
    // Forking 4 points from one captured prefix must beat replaying the
    // prefix per point; at the gate window the structural win is ~1.6x,
    // and snapshot codec cost eating it down to parity is the regression
    // this floor exists to catch.
    ("warm_start", 1.2),
];

/// Any scenario below this fast/naive ratio fails outright, named in the
/// floors table or not.
const ABSOLUTE_FLOOR: f64 = 0.95;

/// Zero-overhead floor for the fault plane: with the default (empty)
/// `FaultPlan`, every scenario's absolute fast-loop throughput must stay
/// within this factor of the checked-in baseline's `cps_fast`. The
/// fast/naive ratio cannot see a tax that hits both loops alike, so this
/// is the gate that catches fault-plane checks leaking onto the
/// faults-off hot path. Absolute cycles/sec only transfer on the machine
/// that produced the baseline, so the gate is enforced when the
/// machine's hardware-thread count matches the baseline's and advisory
/// (warning only) otherwise.
const FAULT_OVERHEAD_FLOOR: f64 = 0.98;

/// Worker threads for the parallel measurement of the wide scenarios.
const PAR_THREADS: usize = 4;

/// Scenarios measured with the shard worker pool as well.
const PAR_SCENARIOS: &[&str] = &[
    "wide_host_8ch",
    "wide_colocated_8ch",
    "wide_host_16ch",
    "wide_colocated_16ch",
];

/// How the parallel-vs-serial floor applies on this machine.
enum ParGate {
    /// Enough cores that the pool must win decisively: failing the
    /// floor fails the gate.
    Enforced(f64),
    /// Exactly as many cores as workers (small CI runners): the floor
    /// is advisory — measured and reported, but contention with the OS
    /// and the dispatcher makes a hard gate flaky, so a miss only
    /// warns.
    Advisory(f64),
    /// Too few cores to host the workers; the ratio is meaningless.
    Skip,
}

fn par_gate() -> ParGate {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 * PAR_THREADS {
        ParGate::Enforced(2.0)
    } else if cores >= PAR_THREADS {
        ParGate::Advisory(1.2)
    } else {
        ParGate::Skip
    }
}

struct Measurement {
    name: &'static str,
    cycles: u64,
    wall_ms_naive: f64,
    wall_ms_fast: f64,
    cps_naive: f64,
    cps_fast: f64,
    /// Fast loop on the `PAR_THREADS`-worker pool (wide scenarios only).
    wall_ms_par: Option<f64>,
    cps_par: Option<f64>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.cps_fast / self.cps_naive
    }

    /// Parallel-vs-serial throughput ratio (both on the fast loop).
    fn par_speedup(&self) -> Option<f64> {
        self.cps_par.map(|p| p / self.cps_fast)
    }
}

fn window() -> u64 {
    bench_window(60_000)
}

fn reps() -> usize {
    std::env::var("CHOPIM_PERF_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

fn measure(name: &'static str, spec: &ScenarioSpec) -> Measurement {
    let run = |ff: bool, threads: usize| {
        let mut s = spec.clone();
        s.cfg.fast_forward = ff;
        s.cfg.sim_threads = threads;
        let t0 = Instant::now();
        let report = run_scenario(&s);
        (t0.elapsed().as_secs_f64() * 1e3, report)
    };
    let measure_par = PAR_SCENARIOS.contains(&name);
    // Warm up allocator/caches on a short window so the first timed run
    // does not pay one-time process costs.
    {
        let mut s = spec.clone();
        s.window = (s.window / 10).clamp(1, 10_000);
        let _ = run_scenario(&s);
    }
    // Alternate the loops and keep the best time of each: transient
    // machine load then degrades both alike instead of skewing the ratio.
    let mut wall_ms_naive = f64::INFINITY;
    let mut wall_ms_fast = f64::INFINITY;
    let mut wall_ms_par = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..reps() {
        let (t_naive, naive) = run(false, 1);
        let (t_fast, fast) = run(true, 1);
        assert_eq!(
            naive, fast,
            "fast-forward diverged from the naive loop on `{name}`; \
             run `cargo test -p chopim-exp --test ff_lockstep`"
        );
        if measure_par {
            let (t_par, par) = run(true, PAR_THREADS);
            assert_eq!(
                fast, par,
                "{PAR_THREADS}-thread execution diverged from serial on `{name}`; \
                 run `cargo test -p chopim-exp --test shard_lockstep`"
            );
            wall_ms_par = wall_ms_par.min(t_par);
        }
        wall_ms_naive = wall_ms_naive.min(t_naive);
        wall_ms_fast = wall_ms_fast.min(t_fast);
        cycles = naive.cycles;
    }
    Measurement {
        name,
        cycles,
        wall_ms_naive,
        wall_ms_fast,
        cps_naive: cycles as f64 / (wall_ms_naive / 1e3),
        cps_fast: cycles as f64 / (wall_ms_fast / 1e3),
        wall_ms_par: measure_par.then_some(wall_ms_par),
        cps_par: measure_par.then(|| cycles as f64 / (wall_ms_par / 1e3)),
    }
}

/// The warm-start benchmark: one base machine simulated for a prefix,
/// snapshotted, and forked into these sweep points (workload varies; the
/// semantic machine configuration and seed stay fixed, as
/// [`SweepRunner::run_warm_start`] requires). The base is the matrix's
/// `host_only` machine — a busy host mix, so the shared prefix has real
/// simulation cost to amortize (the default idle machine fast-forwards
/// its prefix almost for free, which would measure only snapshot codec
/// overhead).
fn warm_start_specs(window: u64) -> (ScenarioSpec, Vec<ScenarioSpec>) {
    let base = perf_matrix(window)
        .into_iter()
        .find(|(name, _)| *name == "host_only")
        .expect("host_only is always in the matrix")
        .1;
    let workloads = [
        Workload::HostOnly,
        Workload::Gemv {
            rows: 64,
            cols: 256,
        },
        Workload::Gemv {
            rows: 128,
            cols: 256,
        },
        Workload::Gemv {
            rows: 64,
            cols: 512,
        },
    ];
    let specs = workloads
        .into_iter()
        .map(|w| {
            let mut s = base.clone();
            s.workload = w;
            s
        })
        .collect();
    (base, specs)
}

/// Measure the snapshot/restore warm-start path against cold per-point
/// prefix replay. "Naive" runs each sweep point from cycle 0 through a
/// shared prefix plus its window ([`run_scenario_prefixed`]); "fast"
/// simulates the prefix once, snapshots, and forks every point from the
/// image ([`SweepRunner::run_warm_start`]). Reports must be
/// bit-identical; the structural win is the `(points - 1) * prefix`
/// cycles the warm path never simulates.
fn measure_warm_start() -> Measurement {
    let w = window();
    let prefix = w;
    let runner = SweepRunner::serial();
    // Same warm-up rationale as `measure`.
    {
        let short = (w / 10).clamp(1, 10_000);
        let (base, specs) = warm_start_specs(short);
        let _ = runner.run_warm_start(&base, short, &specs);
    }
    let (base, specs) = warm_start_specs(w);
    let mut wall_ms_cold = f64::INFINITY;
    let mut wall_ms_warm = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..reps() {
        let t0 = Instant::now();
        let cold: Vec<_> = specs
            .iter()
            .map(|s| run_scenario_prefixed(s, prefix))
            .collect();
        let t_cold = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let warm = runner.run_warm_start(&base, prefix, &specs);
        let t_warm = t1.elapsed().as_secs_f64() * 1e3;
        for (point, cold_report) in warm.points.iter().zip(&cold) {
            assert_eq!(
                point.result, *cold_report,
                "warm-start diverged from cold prefix replay; \
                 run `cargo test -p chopim-exp --test snapshot_lockstep`"
            );
        }
        wall_ms_cold = wall_ms_cold.min(t_cold);
        wall_ms_warm = wall_ms_warm.min(t_warm);
        cycles = cold.iter().map(|r| r.cycles).sum();
    }
    Measurement {
        name: "warm_start",
        cycles,
        wall_ms_naive: wall_ms_cold,
        wall_ms_fast: wall_ms_warm,
        cps_naive: cycles as f64 / (wall_ms_cold / 1e3),
        cps_fast: cycles as f64 / (wall_ms_warm / 1e3),
        wall_ms_par: None,
        cps_par: None,
    }
}

/// With `--verbose` and a `perf-counters` build: run each loop once more
/// bracketed by counter reset/snapshot and print the per-phase simulator
/// costs — one table row per channel shard plus the front-end and a
/// total — so a throughput regression is attributable to a hot path
/// *and* a shard, and parallel runs attribute work correctly.
fn report_counters(name: &str, spec: &ScenarioSpec) {
    if !perfcount::ENABLED {
        eprintln!("  (build with --features perf-counters for per-phase counters on `{name}`)");
        return;
    }
    for (label, ff) in [("naive", false), ("fast", true)] {
        let mut s = spec.clone();
        s.cfg.fast_forward = ff;
        perfcount::reset();
        let _ = run_scenario(&s);
        let mut total = [0u64; perfcount::NUM_COUNTERS];
        for (scope, row) in perfcount::snapshot_scoped() {
            let who = if scope == 0 {
                "front-end".to_string()
            } else {
                format!("ch{}", scope - 1)
            };
            let cells: Vec<String> = perfcount::LABELS
                .iter()
                .zip(&row)
                .filter(|(_, v)| **v > 0)
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            eprintln!("  counters[{label:>5}][{who:>9}] {}", cells.join(" "));
            for (t, v) in total.iter_mut().zip(&row) {
                *t += v;
            }
        }
        let cells: Vec<String> = perfcount::LABELS
            .iter()
            .zip(&total)
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        eprintln!("  counters[{label:>5}][    total] {}", cells.join(" "));
    }
}

fn to_json(results: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"window_cycles\": {},\n", window()));
    // Parallel-speedup numbers are only meaningful relative to this:
    // a 1-thread container records the pool's pure overhead.
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \
             \"wall_ms_naive\": {:.3}, \"wall_ms_fast\": {:.3}, \
             \"cps_naive\": {:.0}, \"cps_fast\": {:.0}, \"speedup\": {:.3}",
            m.name,
            m.cycles,
            m.wall_ms_naive,
            m.wall_ms_fast,
            m.cps_naive,
            m.cps_fast,
            m.speedup()
        ));
        if let (Some(wall), Some(cps), Some(sp)) = (m.wall_ms_par, m.cps_par, m.par_speedup()) {
            out.push_str(&format!(
                ", \"wall_ms_par\": {wall:.3}, \"cps_par\": {cps:.0}, \"par_speedup\": {sp:.3}"
            ));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Match `text` against the `--filter` pattern: a small regex dialect
/// with literal characters, `.` (any char), `*` (zero or more of the
/// preceding atom), and `^`/`$` anchors. Unanchored patterns match any
/// substring, so `--filter multi_tenant` selects both fleet scenarios
/// while `--filter '^host_only$'` selects exactly one. Hand-rolled
/// because the workspace takes no external dependencies.
fn pattern_matches(pat: &str, text: &str) -> bool {
    let (pat, anchor_start) = match pat.strip_prefix('^') {
        Some(rest) => (rest, true),
        None => (pat, false),
    };
    let (pat, anchor_end) = match pat.strip_suffix('$') {
        Some(rest) => (rest, true),
        None => (pat, false),
    };
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = text.chars().collect();
    fn match_here(p: &[char], t: &[char], anchor_end: bool) -> bool {
        match p {
            [] => !anchor_end || t.is_empty(),
            [c, '*', rest @ ..] => {
                // Greedy-enough backtracking: try consuming 0.. chars.
                let mut i = 0;
                loop {
                    if match_here(rest, &t[i..], anchor_end) {
                        return true;
                    }
                    if i < t.len() && (*c == '.' || t[i] == *c) {
                        i += 1;
                    } else {
                        return false;
                    }
                }
            }
            [c, rest @ ..] => {
                !t.is_empty() && (*c == '.' || t[0] == *c) && match_here(rest, &t[1..], anchor_end)
            }
        }
    }
    if anchor_start {
        match_here(&p, &t, anchor_end)
    } else {
        (0..=t.len()).any(|i| match_here(&p, &t[i..], anchor_end))
    }
}

/// One scenario row parsed from a baseline file.
struct BaselineRow {
    name: String,
    speedup: f64,
    cps_fast: Option<f64>,
}

/// Extract `"speedup"`/`"cps_fast"` per `"name": "<scenario>"` from a
/// baseline file without a JSON dependency: the harness wrote the file,
/// so the layout (one scenario object per line) is known.
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(speedup) = field_num(line, "speedup") else {
            continue;
        };
        out.push(BaselineRow {
            name,
            speedup,
            cps_fast: field_num(line, "cps_fast"),
        });
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(results: &[Measurement], baseline_path: &str, filter: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    // Speedups scale with the window (fixed per-run costs amortize), so
    // comparing across windows is meaningless.
    if let Some(base_window) = text.lines().find_map(|l| field_num(l, "window_cycles")) {
        if base_window as u64 != window() {
            return Err(format!(
                "window mismatch: baseline was measured at {} cycles, this run at {} \
                 (set CHOPIM_BENCH_CYCLES={} to gate)",
                base_window as u64,
                window(),
                base_window as u64
            ));
        }
    }
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        return Err(format!("no scenarios parsed from {baseline_path}"));
    }
    // Absolute throughput only transfers on the machine that produced
    // the baseline; use the recorded hardware-thread count as the
    // same-machine signature.
    let same_machine = text
        .lines()
        .find_map(|l| field_num(l, "hardware_threads"))
        .is_some_and(|t| {
            t as usize
                == std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
        });
    let mut failures = Vec::new();
    for row in &baseline {
        let name = &row.name;
        let Some(m) = results.iter().find(|m| m.name == name) else {
            // Under `--filter` the run deliberately measured a subset;
            // baseline rows outside the filter are skipped, not missing.
            if filter.is_some_and(|f| !pattern_matches(f, name)) {
                continue;
            }
            failures.push(format!("scenario `{name}` missing from this run"));
            continue;
        };
        if m.speedup() < row.speedup * SERIAL_FLOOR_FACTOR {
            failures.push(format!(
                "`{name}` regressed: speedup {:.2}x < {SERIAL_FLOOR_FACTOR} x baseline {:.2}x \
                 (serial-overhead floor)",
                m.speedup(),
                row.speedup,
            ));
        }
        if let Some(base_cps) = row.cps_fast {
            if m.cps_fast < base_cps * FAULT_OVERHEAD_FLOOR {
                let msg = format!(
                    "`{name}` throughput {:.0} c/s < {FAULT_OVERHEAD_FLOOR} x baseline {:.0} c/s \
                     (fault-plane zero-overhead floor)",
                    m.cps_fast, base_cps,
                );
                if same_machine {
                    failures.push(msg);
                } else {
                    eprintln!("perf gate: WARNING {msg} (different machine; advisory)");
                }
            }
        }
    }
    // Parallel-vs-serial floor on the wide scenarios, scaled to the
    // machine (the worker pool cannot win on a machine without cores).
    match par_gate() {
        ParGate::Enforced(floor) => {
            for m in results {
                let Some(sp) = m.par_speedup() else { continue };
                if sp < floor {
                    failures.push(format!(
                        "`{}` parallel speedup {:.2}x < {:.2}x floor \
                         ({PAR_THREADS} threads; sharded engine must beat serial here)",
                        m.name, sp, floor
                    ));
                }
            }
        }
        ParGate::Advisory(floor) => {
            for m in results {
                let Some(sp) = m.par_speedup() else { continue };
                if sp < floor {
                    eprintln!(
                        "perf gate: WARNING `{}` parallel speedup {:.2}x < {:.2}x \
                         advisory floor (machine has only ~{PAR_THREADS} hardware threads)",
                        m.name, sp, floor
                    );
                }
            }
        }
        ParGate::Skip => eprintln!(
            "perf gate: skipping parallel-speedup floor \
             (machine has < {PAR_THREADS} hardware threads)"
        ),
    }
    // Per-scenario absolute floors (independent of the baseline file).
    for m in results {
        let floor = SPEEDUP_FLOORS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|&(_, f)| f)
            .unwrap_or(ABSOLUTE_FLOOR)
            .max(ABSOLUTE_FLOOR);
        if m.speedup() < floor {
            failures.push(format!(
                "`{}` below floor: speedup {:.2}x < {:.2}x (fast loop must not lose its edge)",
                m.name,
                m.speedup(),
                floor
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_chopim.json".to_string();
    let mut baseline: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                baseline = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            "--filter" => {
                filter = Some(args.get(i + 1).expect("--filter needs a pattern").clone());
                i += 2;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: chopim-perf [--out FILE] [--check BASELINE] \
                     [--filter REGEX] [--verbose]"
                );
                std::process::exit(2);
            }
        }
    }
    let selected = |name: &str| filter.as_deref().is_none_or(|f| pattern_matches(f, name));

    let matrix = perf_matrix(window());
    if !matrix.iter().any(|(name, _)| selected(name)) && !selected("warm_start") {
        eprintln!(
            "--filter `{}` matches no scenario; the matrix has: {} warm_start",
            filter.as_deref().unwrap_or(""),
            matrix.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    }

    let mut results: Vec<Measurement> = matrix
        .iter()
        .filter(|(name, _)| selected(name))
        .map(|(name, spec)| {
            let m = measure(name, spec);
            eprintln!(
                "{:<18} {:>9} cycles  naive {:>8.1} ms ({:>10.0} c/s)  fast {:>8.1} ms ({:>10.0} c/s)  speedup {:.2}x",
                m.name, m.cycles, m.wall_ms_naive, m.cps_naive, m.wall_ms_fast, m.cps_fast,
                m.speedup()
            );
            if let (Some(wall), Some(cps), Some(sp)) = (m.wall_ms_par, m.cps_par, m.par_speedup()) {
                eprintln!(
                    "{:<18} {:>9} cycles  {PAR_THREADS}-thread pool {:>8.1} ms ({:>10.0} c/s)  parallel speedup {:.2}x",
                    "", "", wall, cps, sp
                );
            }
            if verbose {
                report_counters(name, spec);
            }
            m
        })
        .collect();

    if selected("warm_start") {
        let m = measure_warm_start();
        eprintln!(
            "{:<18} {:>9} cycles  cold  {:>8.1} ms ({:>10.0} c/s)  warm {:>8.1} ms ({:>10.0} c/s)  speedup {:.2}x",
            m.name, m.cycles, m.wall_ms_naive, m.cps_naive, m.wall_ms_fast, m.cps_fast,
            m.speedup()
        );
        results.push(m);
    }

    std::fs::write(&out_path, to_json(&results)).expect("write BENCH json");
    eprintln!("wrote {out_path}");

    if let Some(path) = baseline {
        match check(&results, &path, filter.as_deref()) {
            Ok(()) => eprintln!(
                "perf gate: OK (speedups >= {SERIAL_FLOOR_FACTOR} x {path} and above floors)"
            ),
            Err(msg) => {
                eprintln!("perf gate FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::pattern_matches;

    #[test]
    fn filter_dialect() {
        assert!(pattern_matches("multi_tenant", "multi_tenant_1k"));
        assert!(pattern_matches("tenant", "multi_tenant_qos"));
        assert!(pattern_matches("^host_only$", "host_only"));
        assert!(!pattern_matches("^host_only$", "colocated_host_only"));
        assert!(!pattern_matches("^only", "host_only"));
        assert!(pattern_matches("only$", "host_only"));
        assert!(pattern_matches("h.st", "host_idle"));
        assert!(pattern_matches("^w.*16ch$", "wide_host_16ch"));
        assert!(!pattern_matches("^w.*16ch$", "wide_host_8ch"));
        assert!(pattern_matches("", "anything"));
        assert!(pattern_matches("a*", "bbb"));
        assert!(!pattern_matches("zz*", "bbb"));
    }
}
