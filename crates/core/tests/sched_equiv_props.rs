//! Indexed-scheduler equivalence properties.
//!
//! `HostMc` maintains incremental per-(rank,bank) indexes (occupancy,
//! open-row demand) and epoch-keyed timing memos so its per-cycle cost
//! scales with state changes. These properties re-implement the original
//! naive full-scan FR-FCFS/FCFS decision procedure — straight from the
//! public device-model API, with no indexes or memos — and assert that
//! over randomized push/issue/pop sequences the indexed controller issues
//! *exactly* the same command stream, under both page policies and both
//! scheduler kinds. The index invariants themselves are recounted from
//! scratch along the way.

use chopim_core::sched::{HostMc, HostTransaction, PagePolicy, SchedulerKind, TxMeta};
use chopim_dram::{Command, DramAddress, DramSystem, Issuer, TimingParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The naive scheduler oracle: arrival-ordered queues, full scans, no
/// indexes, no memos. Mirrors the pre-index `HostMc` decision procedure.
struct Oracle {
    read_q: Vec<HostTransaction>,
    write_q: Vec<HostTransaction>,
    drain: bool,
    scheduler: SchedulerKind,
    page_policy: PagePolicy,
}

impl Oracle {
    fn new(scheduler: SchedulerKind, page_policy: PagePolicy) -> Self {
        Self {
            read_q: Vec::new(),
            write_q: Vec::new(),
            drain: false,
            scheduler,
            page_policy,
        }
    }

    fn push(&mut self, tx: HostTransaction) {
        if matches!(tx.meta, TxMeta::CoreWrite) {
            self.write_q.push(tx);
        } else {
            self.read_q.push(tx);
        }
    }

    /// The command the naive controller would issue at `now` (and the
    /// queue+index of a completing column command).
    fn expected(&mut self, mem: &DramSystem, now: u64) -> Option<(Command, Option<(bool, usize)>)> {
        // Closed-page eager precharge, scanning both queues per bank.
        if self.page_policy == PagePolicy::Closed {
            let cfg = mem.config();
            for rank in 0..cfg.ranks_per_channel {
                for bg in 0..cfg.bankgroups {
                    for bk in 0..cfg.banks_per_group {
                        let Some(open) = mem.channel(0).bank(rank, bg, bk).open_row() else {
                            continue;
                        };
                        let wanted = self.read_q.iter().chain(self.write_q.iter()).any(|t| {
                            t.addr.rank == rank
                                && t.addr.bankgroup == bg
                                && t.addr.bank == bk
                                && t.addr.row == open
                        });
                        if wanted {
                            continue;
                        }
                        let cmd = Command::pre(rank, bg, bk);
                        if mem.can_issue(0, &cmd, Issuer::Host, now) {
                            return Some((cmd, None));
                        }
                    }
                }
            }
        }
        // Write-drain hysteresis.
        if self.write_q.len() >= 28 {
            self.drain = true;
        } else if self.write_q.len() <= 8 {
            self.drain = false;
        }
        let serve_writes = self.drain || self.read_q.is_empty();
        let first = if serve_writes && !self.write_q.is_empty() {
            self.schedule(mem, now, true)
        } else {
            self.schedule(mem, now, false)
        };
        match first {
            Some(r) => Some(r),
            None if serve_writes && !self.read_q.is_empty() => self.schedule(mem, now, false),
            None => None,
        }
    }

    fn schedule(
        &self,
        mem: &DramSystem,
        now: u64,
        writes: bool,
    ) -> Option<(Command, Option<(bool, usize)>)> {
        let q = if writes { &self.write_q } else { &self.read_q };
        if q.is_empty() {
            return None;
        }
        let horizon = match self.scheduler {
            SchedulerKind::FrFcfs => q.len(),
            SchedulerKind::Fcfs => 1,
        };
        // Pass 1: oldest ready row hit.
        for (i, tx) in q.iter().take(horizon).enumerate() {
            let a = &tx.addr;
            let bank = mem.channel(0).bank(a.rank, a.bankgroup, a.bank);
            if bank.is_row_hit(a.row) {
                let cmd = if tx.is_write {
                    Command::wr(a.rank, a.bankgroup, a.bank, a.row, a.col)
                } else {
                    Command::rd(a.rank, a.bankgroup, a.bank, a.row, a.col)
                };
                if mem.can_issue(0, &cmd, Issuer::Host, now) {
                    return Some((cmd, Some((writes, i))));
                }
            }
        }
        // Pass 2: oldest transaction, ACT a closed bank or PRE a dead row
        // (full-scan keep-open guard over the served queue's horizon).
        for tx in q.iter().take(horizon) {
            let a = &tx.addr;
            let bank = mem.channel(0).bank(a.rank, a.bankgroup, a.bank);
            let cmd = match bank.open_row() {
                None => Command::act(a.rank, a.bankgroup, a.bank, a.row),
                Some(open) if open != a.row => {
                    let keep = q.iter().take(horizon).any(|t| {
                        t.addr.rank == a.rank
                            && t.addr.bankgroup == a.bankgroup
                            && t.addr.bank == a.bank
                            && mem
                                .channel(0)
                                .bank(a.rank, a.bankgroup, a.bank)
                                .is_row_hit(t.addr.row)
                    });
                    if keep {
                        continue;
                    }
                    Command::pre(a.rank, a.bankgroup, a.bank)
                }
                Some(_) => continue,
            };
            if mem.can_issue(0, &cmd, Issuer::Host, now) {
                return Some((cmd, None));
            }
        }
        None
    }
}

fn rand_tx(rng: &mut StdRng, cfg: &chopim_dram::DramConfig, now: u64) -> HostTransaction {
    let is_write = rng.gen_bool(0.4);
    let meta = if is_write {
        if rng.gen_bool(0.1) {
            TxMeta::Launch {
                launch: rng.gen_range(0..100),
            }
        } else {
            TxMeta::CoreWrite
        }
    } else {
        TxMeta::CoreRead {
            core: 0,
            req: rng.gen_range(0..1000),
        }
    };
    HostTransaction {
        addr: DramAddress {
            channel: 0,
            rank: rng.gen_range(0..cfg.ranks_per_channel),
            bankgroup: rng.gen_range(0..2),
            bank: rng.gen_range(0..2),
            row: rng.gen_range(0..4),
            col: rng.gen_range(0..4),
        },
        is_write,
        meta,
        arrival: now,
    }
}

fn run_case(seed: u64, scheduler: SchedulerKind, page_policy: PagePolicy, cycles: u64) {
    let cfg = chopim_dram::DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    let mut mem = DramSystem::new(cfg.clone());
    let mut mc = HostMc::new(
        cfg.ranks_per_channel,
        cfg.bankgroups,
        cfg.banks_per_group,
        cfg.timing.refi,
    );
    mc.set_scheduler(scheduler);
    mc.set_page_policy(page_policy);
    let mut oracle = Oracle::new(scheduler, page_policy);
    let mut rng = StdRng::seed_from_u64(seed);

    for now in 0..cycles {
        // Random arrivals (respecting the same admission the MC applies).
        for _ in 0..rng.gen_range(0..3u32) {
            let tx = rand_tx(&mut rng, &cfg, now);
            if mc.try_push(tx) {
                oracle.push(tx);
            }
        }
        // Cross-check the cheap cached predicates against full scans.
        assert_eq!(
            mc.oldest_read_rank(),
            oracle
                .read_q
                .iter()
                .find(|t| !t.is_write)
                .map(|t| t.addr.rank),
            "oldest-read predictor diverged at {now}"
        );

        let expected = oracle.expected(&mem, now);
        let actual = mc.tick(mem.channel_mut(0), now);
        match (&expected, &actual) {
            (None, None) => {}
            (Some((cmd, completes)), Some(iss)) => {
                assert_eq!(*cmd, iss.cmd, "command diverged at cycle {now}");
                match (completes, iss.completed) {
                    (None, None) => {}
                    (Some((writes, i)), Some(tx)) => {
                        let q = if *writes {
                            &mut oracle.write_q
                        } else {
                            &mut oracle.read_q
                        };
                        let o = q.remove(*i);
                        assert_eq!(
                            (o.addr, o.is_write, o.arrival),
                            (tx.addr, tx.is_write, tx.arrival),
                            "completed a different transaction at {now}"
                        );
                    }
                    other => panic!("completion mismatch at {now}: {other:?}"),
                }
            }
            other => panic!("decision diverged at cycle {now}: {other:?}"),
        }
        if now % 64 == 0 {
            mc.assert_index_invariants();
        }
    }
    mc.assert_index_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// FR-FCFS + open page (the paper's configuration).
    #[test]
    fn frfcfs_open_matches_naive(seed in 0u64..1_000_000) {
        run_case(seed, SchedulerKind::FrFcfs, PagePolicy::Open, 400);
    }

    /// FR-FCFS + closed page (exercises `eager_close` + demand maps).
    #[test]
    fn frfcfs_closed_matches_naive(seed in 0u64..1_000_000) {
        run_case(seed, SchedulerKind::FrFcfs, PagePolicy::Closed, 400);
    }

    /// Strict FCFS + open page (horizon-1 scheduling).
    #[test]
    fn fcfs_open_matches_naive(seed in 0u64..1_000_000) {
        run_case(seed, SchedulerKind::Fcfs, PagePolicy::Open, 400);
    }

    /// Strict FCFS + closed page.
    #[test]
    fn fcfs_closed_matches_naive(seed in 0u64..1_000_000) {
        run_case(seed, SchedulerKind::Fcfs, PagePolicy::Closed, 400);
    }
}
