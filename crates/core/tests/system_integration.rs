//! End-to-end behavioral tests of the integrated Chopim machine: the
//! qualitative claims of the paper's takeaways, checked on small windows.

use chopim_core::prelude::*;
use chopim_dram::TimingChecker;

fn base_cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

fn vec_pair(sys: &mut ChopimSystem, len: usize) -> (VecId, VecId) {
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    let data: Vec<f32> = (0..len).map(|i| (i % 97) as f32 * 0.25).collect();
    sys.runtime.write_vector(x, &data);
    (x, y)
}

#[test]
fn host_only_ipc_tracks_mix_intensity() {
    let mut ipc = Vec::new();
    for mix in [1usize, 8] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(mix).unwrap()),
            ..base_cfg()
        });
        sys.run(120_000);
        ipc.push(sys.report().host_ipc);
    }
    assert!(
        ipc[1] > 2.0 * ipc[0],
        "light mix8 should far outrun heavy mix1: {ipc:?}"
    );
    assert!(ipc[0] > 0.3, "heavy mix must still make progress: {ipc:?}");
}

#[test]
fn nda_captures_idle_bandwidth_without_host() {
    let mut sys = ChopimSystem::new(base_cfg());
    let (x, y) = vec_pair(&mut sys, 1 << 16);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let cycles = sys.drive(op, 3_000_000);
    assert!(
        sys.runtime.op_done(op),
        "copy must finish (ran {cycles} cycles)"
    );
    let r = sys.report();
    assert!(
        r.nda_bw_utilization > 0.5,
        "idle machine: NDAs should capture most idle bandwidth, got {}",
        r.nda_bw_utilization
    );
    assert_eq!(sys.runtime.read_vector(y), sys.runtime.read_vector(x));
}

#[test]
fn dot_reduction_result_is_exact() {
    let mut sys = ChopimSystem::new(base_cfg());
    let (x, y) = vec_pair(&mut sys, 4096);
    let data_y: Vec<f32> = (0..4096).map(|i| ((i % 13) as f32) - 6.0).collect();
    sys.runtime.write_vector(y, &data_y);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![x, y], None)
        .submit();
    sys.drive(op, 2_000_000);
    let expect: f32 = sys
        .runtime
        .read_vector(x)
        .iter()
        .zip(sys.runtime.read_vector(y))
        .map(|(a, b)| a * b)
        .sum();
    assert_eq!(sys.runtime.op_result(op), Some(expect));
}

#[test]
fn concurrent_copy_with_host_keeps_fsm_in_sync_and_timing_legal() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(1).unwrap()),
        ..base_cfg()
    });
    sys.enable_mem_trace();
    let (x, y) = vec_pair(&mut sys, 1 << 15);
    let sess = sys.runtime.default_session();
    sys.spawn_stream(sess, move |rt, s| {
        s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
            .submit()
    });
    sys.run(150_000);
    assert!(
        sys.fsm_in_sync(),
        "host-side shadow FSMs must track the NDAs"
    );
    let r = sys.report();
    assert!(r.host_ipc > 0.0);
    assert!(r.dram.reads_nda > 0, "NDA made progress under host load");
    // Every command in the trace satisfies the independent JEDEC checker.
    let trace = sys.take_mem_trace();
    assert!(trace.len() > 10_000, "trace too small: {}", trace.len());
    let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    for ch in 0..cfg.channels {
        let mut checker = TimingChecker::new(&cfg);
        for (c, at, cmd, issuer) in trace.iter().filter(|e| e.0 == ch) {
            assert_eq!(*c, ch);
            checker
                .step(*at, cmd, *issuer)
                .unwrap_or_else(|e| panic!("channel {ch}: {e}"));
        }
        assert!(checker.commands_checked() > 0);
    }
}

#[test]
fn bank_partitioning_shields_nda_from_host_row_conflicts() {
    // Takeaway 2: partitioning boosts NDA throughput for read-intensive
    // ops under a memory-intensive host mix.
    let mut util = Vec::new();
    for reserved in [0usize, 1] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(1).unwrap()),
            reserved_banks: reserved,
            ..base_cfg()
        });
        let (x, y) = vec_pair(&mut sys, 1 << 16);
        let sess = sys.runtime.default_session();
        let stream = sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Dot, vec![], vec![x, y], None)
                .submit()
        });
        sys.run(250_000);
        assert!(
            sys.stream_completions(stream) > 0,
            "DOT must complete at least once"
        );
        util.push(sys.report().nda_bw_utilization);
    }
    assert!(
        util[1] > 1.1 * util[0],
        "partitioned DOT should beat shared banks: shared={} partitioned={}",
        util[0],
        util[1]
    );
}

#[test]
fn write_throttling_protects_host_reads() {
    // Takeaway 3: with the write-intensive COPY, next-rank prediction
    // recovers host IPC relative to unthrottled issue.
    let mut ipc = Vec::new();
    for policy in [
        WriteIssuePolicy::IssueIfIdle,
        WriteIssuePolicy::NextRankPredict,
    ] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(1).unwrap()),
            policy,
            ..base_cfg()
        });
        let (x, y) = vec_pair(&mut sys, 1 << 16);
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
                .submit()
        });
        sys.run(250_000);
        ipc.push(sys.report().host_ipc);
    }
    assert!(
        ipc[1] > ipc[0],
        "next-rank prediction should protect host reads: issue_if_idle={} predict={}",
        ipc[0],
        ipc[1]
    );
}

#[test]
fn coarse_grain_operations_beat_fine_grain() {
    // Takeaway 1 (Fig. 10): tiny per-instruction vector widths choke on
    // launch traffic; coarse widths recover bandwidth.
    let mut util = Vec::new();
    for granularity in [Some(8u64), Some(2048)] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(1).unwrap()),
            ..base_cfg()
        });
        let (x, _) = vec_pair(&mut sys, 1 << 16);
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Nrm2, vec![], vec![x], None)
                .opts(LaunchOpts {
                    granularity_lines: granularity,
                    barrier_per_chunk: false,
                })
                .submit()
        });
        sys.run(200_000);
        util.push(sys.report().nda_bw_utilization);
    }
    assert!(
        util[1] > 1.5 * util[0],
        "coarse ops should deliver much more NDA bandwidth: fine={} coarse={}",
        util[0],
        util[1]
    );
}

#[test]
fn rank_partition_mode_runs_and_reports() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(1).unwrap()),
        reserved_banks: 0,
        rank_partition: true,
        ..base_cfg()
    });
    let (x, y) = vec_pair(&mut sys, 1 << 14);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    sys.drive(op, 3_000_000);
    assert!(sys.runtime.op_done(op));
    let r = sys.report();
    // Hosts map onto the lower ranks only; NDAs own the upper ranks.
    assert!(r.host_ipc > 0.0);
    assert!(r.dram.reads_nda > 0);
    assert_eq!(sys.runtime.read_vector(y), sys.runtime.read_vector(x));
}

#[test]
fn gemv_runs_and_matches_reference() {
    let mut sys = ChopimSystem::new(base_cfg());
    let (rows, cols) = (64, 256);
    let a = sys.runtime.matrix(rows, cols);
    let x = sys.runtime.vector(cols, Sharing::Shared);
    let y = sys.runtime.vector(rows, Sharing::Shared);
    let a_data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
    let x_data: Vec<f32> = (0..cols).map(|i| ((i % 5) as f32) * 0.5).collect();
    sys.runtime.write_matrix(a, &a_data);
    sys.runtime.write_vector(x, &x_data);
    let sess = sys.runtime.default_session();
    let op = sess.gemv(&mut sys.runtime, y, a, x).submit();
    sys.drive(op, 3_000_000);
    assert!(sys.runtime.op_done(op));
    for r in 0..rows {
        let expect: f32 = (0..cols).map(|c| a_data[r * cols + c] * x_data[c]).sum();
        assert_eq!(sys.runtime.read_vector(y)[r], expect, "row {r}");
    }
}

#[test]
fn macro_axpy_rows_matches_reference_and_reduce() {
    let mut sys = ChopimSystem::new(base_cfg());
    let (n, d) = (24, 128);
    let x = sys.runtime.matrix(n, d);
    let a_pvt = sys.runtime.vector(d, Sharing::Private);
    let a = sys.runtime.vector(d, Sharing::Shared);
    let x_data: Vec<f32> = (0..n * d).map(|i| ((i % 11) as f32) - 5.0).collect();
    sys.runtime.write_matrix(x, &x_data);
    let alphas: Vec<f32> = (0..n).map(|i| (i as f32) * 0.1 - 1.0).collect();
    let sess = sys.runtime.default_session();
    let op = sess
        .axpy_rows(&mut sys.runtime, a_pvt, alphas.clone(), x, 4)
        .no_barrier()
        .submit();
    sys.drive(op, 6_000_000);
    assert!(sys.runtime.op_done(op));
    sys.runtime.host_reduce(a, a_pvt);
    for j in 0..d {
        let expect: f32 = (0..n).map(|i| alphas[i] * x_data[i * d + j]).sum();
        let got = sys.runtime.read_vector(a)[j];
        assert!((got - expect).abs() < 1e-3, "elem {j}: {got} vs {expect}");
    }
}

#[test]
fn refresh_on_configuration_also_runs_cleanly() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii(), // refresh enabled
        mix: Some(MixId::new(4).unwrap()),
        ..ChopimConfig::default()
    });
    let (x, y) = vec_pair(&mut sys, 1 << 14);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    sys.drive(op, 3_000_000);
    assert!(sys.runtime.op_done(op));
    let r = sys.report();
    assert!(r.dram.refreshes > 0, "refresh must have happened");
    assert!(sys.fsm_in_sync());
}

#[test]
fn packetized_interface_costs_host_latency_but_works() {
    // Paper §VIII: packetized DRAM suffers 2-4x longer latency than a
    // DDR-based protocol; Chopim's mechanisms work under both interfaces.
    let mut lat = Vec::new();
    let mut ipc = Vec::new();
    for pkt in [0u32, 40] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(4).unwrap()),
            packetized_latency: pkt,
            ..base_cfg()
        });
        let (x, y) = vec_pair(&mut sys, 1 << 14);
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
                .submit()
        });
        sys.run(150_000);
        let r = sys.report();
        assert!(r.host_ipc > 0.0);
        assert!(r.dram.reads_nda > 0, "NDAs still run under pkt={pkt}");
        assert!(sys.fsm_in_sync());
        lat.push(r.avg_read_latency);
        ipc.push(r.host_ipc);
        if pkt > 0 {
            assert_eq!(sys.runtime.read_vector(y), sys.runtime.read_vector(x));
        }
    }
    // The controller-side latency grows by the ingress delay (the return
    // path is paid at fill delivery), and the memory-bound host slows.
    assert!(
        lat[1] > lat[0] + 10.0,
        "packetization must add visible queueing latency: {lat:?}"
    );
    assert!(
        ipc[1] < ipc[0],
        "a memory-bound mix must lose IPC to packetization: {ipc:?}"
    );
}
