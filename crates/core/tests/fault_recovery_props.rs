//! Recovery liveness properties: under any fault plan that leaves at
//! least one healthy NDA rank, every submitted op must reach exactly
//! one terminal [`OpStatus`] — no lost ops, no livelock — and the
//! retry backoff must never exceed its configured cap.

use chopim_core::prelude::*;
use proptest::prelude::*;

fn faulted_sys(plan: FaultPlan, retry_limit: u32, backoff: u64, cap: u64) -> ChopimSystem {
    ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        faults: plan,
        retry_limit,
        retry_backoff: backoff,
        retry_backoff_cap: cap,
        instr_timeout: 8_000,
        ..ChopimConfig::default()
    })
}

/// Submit a small op graph on `sys`: a chain of elementwise ops plus a
/// couple of explicit `.after()` edges, some with deadlines, one with a
/// host fallback. Returns every handle.
fn submit_graph(sys: &mut ChopimSystem, n: usize, with_deadline: bool) -> Vec<OpHandle> {
    let len = 1 << 12;
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    let data: Vec<f32> = (0..len).map(|i| (i % 17) as f32 - 8.0).collect();
    sys.runtime.write_vector(x, &data);
    sys.runtime.write_vector(y, &data);
    let sess = sys.runtime.default_session();
    let mut handles = Vec::new();
    for i in 0..n {
        let mut b = sess
            .elementwise(&mut sys.runtime, Opcode::Axpy, vec![0.5], vec![x], Some(y))
            .opts(LaunchOpts {
                granularity_lines: Some(8),
                barrier_per_chunk: i % 2 == 0,
            });
        if let Some(&dep) = handles.get(i.wrapping_sub(2)) {
            b = b.after(dep);
        }
        if with_deadline && i % 3 == 0 {
            b = b.deadline(40_000_000);
        }
        if i == n - 1 {
            b = b.fallback_host();
        }
        handles.push(b.submit());
    }
    handles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random fault seeds and periods (every class enabled, one rank
    /// dead mid-run, three survivors): all ops terminal, backoff capped.
    #[test]
    fn prop_all_ops_terminal_under_faults(
        seed in 0u64..1_000,
        transient in 30u64..400,
        hang in 30u64..400,
        drop in 30u64..400,
        delay in 30u64..400,
        death_nda in 0u32..4,
        n_ops in 3usize..8,
        with_deadline in any::<bool>(),
    ) {
        let plan = FaultPlan {
            seed,
            dram_bit_flip_period: 200,
            uncorrectable_pct: 10,
            nda_transient_period: transient,
            nda_hang_period: hang,
            nda_hang_cycles: 150,
            completion_drop_period: drop,
            completion_delay_period: delay,
            completion_delay_cycles: 64,
            rank_death_cycle: 5_000,
            rank_death_nda: death_nda,
        };
        let cap = 2_048;
        let mut sys = faulted_sys(plan, 4, 64, cap);
        let handles = submit_graph(&mut sys, n_ops, with_deadline);
        sys.drive(Waitable::all_of(handles.iter().copied()), 60_000_000);
        for (i, &h) in handles.iter().enumerate() {
            prop_assert!(sys.runtime.op_done(h), "op {i} never reached a terminal state");
            prop_assert!(sys.runtime.op_status(h).is_some(), "op {i} done without a status");
        }
        let r = sys.report();
        prop_assert!(
            r.faults.max_retry_backoff <= cap,
            "backoff {} exceeded cap {cap}",
            r.faults.max_retry_backoff
        );
        // Terminal-state accounting must agree with the per-op statuses.
        let failed = handles.iter().filter(|&&h| {
            sys.runtime.op_status(h).is_some_and(OpStatus::is_failure)
        }).count() as u64;
        prop_assert_eq!(
            failed,
            r.faults.ops_failed + r.faults.ops_timed_out + r.faults.ops_dep_failed,
            "per-op failure statuses disagree with the report counters"
        );
    }

    /// A rank death alone (no other fault class): work re-shards onto
    /// the survivors and every op still completes successfully.
    #[test]
    fn prop_rank_death_reshards(
        seed in 0u64..1_000,
        death_nda in 0u32..4,
        n_ops in 2usize..6,
    ) {
        let plan = FaultPlan {
            seed,
            rank_death_cycle: 3_000,
            rank_death_nda: death_nda,
            ..FaultPlan::NONE
        };
        let mut sys = faulted_sys(plan, 4, 64, 2_048);
        let handles = submit_graph(&mut sys, n_ops, false);
        sys.drive(Waitable::all_of(handles.iter().copied()), 60_000_000);
        for (i, &h) in handles.iter().enumerate() {
            prop_assert!(
                sys.runtime.op_status(h) == Some(OpStatus::Completed),
                "op {i} should complete on the surviving ranks, got {:?}",
                sys.runtime.op_status(h)
            );
        }
        let r = sys.report();
        prop_assert_eq!(r.faults.rank_deaths, 1);
        prop_assert!(!sys.runtime.nda_alive(death_nda as usize));
    }
}

/// A hopeless op (every completion a transient failure) exhausts its
/// retry budget: `Failed` without a fallback, `Completed` via the host
/// with one, and downstream `.after()` edges cascade to `DepFailed`.
#[test]
fn retry_exhaustion_fallback_and_cascade() {
    let plan = FaultPlan {
        seed: 1,
        nda_transient_period: 1, // every retirement faults
        ..FaultPlan::NONE
    };
    let mut sys = faulted_sys(plan, 2, 32, 256);
    let len = 1 << 10;
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; len]);
    let sess = sys.runtime.default_session();
    let doomed = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let dependent = sess
        .elementwise(&mut sys.runtime, Opcode::Scal, vec![2.0], vec![], Some(y))
        .after(doomed)
        .unordered()
        .submit();
    let saved = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .fallback_host()
        .submit();
    sys.drive(Waitable::all_of([doomed, dependent, saved]), 40_000_000);
    assert_eq!(sys.runtime.op_status(doomed), Some(OpStatus::Failed));
    assert_eq!(sys.runtime.op_status(dependent), Some(OpStatus::DepFailed));
    assert_eq!(sys.runtime.op_status(saved), Some(OpStatus::Completed));
    let r = sys.report();
    assert!(r.faults.ops_failed >= 1);
    assert!(r.faults.ops_dep_failed >= 1);
    assert_eq!(r.faults.host_fallbacks, 1);
    // Submitting behind an already-failed dependency aborts immediately.
    let late = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .after(doomed)
        .unordered()
        .submit();
    assert_eq!(sys.runtime.op_status(late), Some(OpStatus::DepFailed));
}

/// A deadline shorter than the op can possibly meet times it out even
/// on a fault-free machine (the deadline machinery must not depend on
/// the fault plane being active), and a generous deadline is harmless.
#[test]
fn deadlines_work_without_faults() {
    let mut sys = faulted_sys(FaultPlan::NONE, 3, 64, 4_096);
    let len = 1 << 12;
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; len]);
    let sess = sys.runtime.default_session();
    let tight = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .deadline(10)
        .submit();
    let loose = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .deadline(40_000_000)
        .submit();
    sys.drive(Waitable::all_of([tight, loose]), 40_000_000);
    assert_eq!(sys.runtime.op_status(tight), Some(OpStatus::TimedOut));
    assert_eq!(sys.runtime.op_status(loose), Some(OpStatus::Completed));
    let r = sys.report();
    assert_eq!(r.faults.ops_timed_out, 1);
    // Everything else in the fault report stays zero on an empty plan.
    assert_eq!(r.faults.transient_faults, 0);
    assert_eq!(r.faults.instr_retries, 0);
    assert_eq!(r.dram.ecc_corrected, 0);
}
