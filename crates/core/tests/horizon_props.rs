//! Property tests of the per-shard computed horizons that drive the
//! sharded engine's barrier skipping.
//!
//! The front-end lets a shard skip a window barrier when the shard's
//! cached horizon ([`quiet_until`]) reaches past the window — so the
//! whole scheme is sound only if a horizon claim is *conservative*: a
//! shard claiming "no activity before cycle `h`" must never produce a
//! cross-shard message stamped earlier than `h` when simply run
//! forward. This suite drives real machines (random host mixes, NDA
//! streams, both host schedulers, random seeds) to a random mid-stream
//! point, asks every shard for its horizon, then runs the shards ahead
//! in isolation and checks every message they emit against the claim.
//!
//! The thread-count and fixed-window lockstep suites
//! (`chopim-exp/tests/shard_lockstep.rs`) prove the *end-to-end*
//! schedule is unchanged by skipping; this suite pins the local
//! invariant that makes those hold, in a form that fails with the
//! offending shard and cycle when a future horizon term goes stale.

use chopim_core::prelude::*;
use proptest::prelude::*;

/// Check every shard's horizon claim against the messages it actually
/// emits over the next `span` cycles with no new front-end input.
fn assert_conservative(sys: &mut ChopimSystem, span: u64) {
    for (ch, (claim, first_msg)) in sys
        .probe_shard_horizon_conservatism(span)
        .into_iter()
        .enumerate()
    {
        if let Some(t) = first_msg {
            assert!(
                claim <= t,
                "shard {ch} claimed quiet until {claim} but emitted a message stamped {t}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Host-only traffic: random SPEC mixes on both schedulers. The MC
    /// is the only horizon term; fills are the observable messages.
    #[test]
    fn prop_horizon_conservative_host_traffic(
        mix in 0usize..9,
        fr_fcfs in any::<bool>(),
        seed in 1u64..200,
        warm in 2_000u64..20_000,
        span in 500u64..4_000,
    ) {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(mix).unwrap()),
            scheduler: if fr_fcfs { SchedulerKind::FrFcfs } else { SchedulerKind::Fcfs },
            seed,
            ..ChopimConfig::default()
        });
        sys.run(warm);
        assert_conservative(&mut sys, span);
    }

    /// Co-located traffic: a host mix against an NDA elementwise stream,
    /// so launch deliveries, FSM retirement and completion messages all
    /// feed the horizon terms.
    #[test]
    fn prop_horizon_conservative_colocated(
        mix in 0usize..9,
        fr_fcfs in any::<bool>(),
        seed in 1u64..200,
        len_pow in 12u32..16,
        warm in 2_000u64..20_000,
        span in 500u64..4_000,
    ) {
        let mut sys = ChopimSystem::new(ChopimConfig {
            mix: Some(MixId::new(mix).unwrap()),
            scheduler: if fr_fcfs { SchedulerKind::FrFcfs } else { SchedulerKind::Fcfs },
            seed,
            ..ChopimConfig::default()
        });
        let len = 1usize << len_pow;
        let x = sys.runtime.vector(len, Sharing::Shared);
        let y = sys.runtime.vector(len, Sharing::Shared);
        sys.runtime.write_vector(x, &vec![1.5; len]);
        let sess = sys.runtime.default_session();
        let _op = sess
            .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
            .submit();
        sys.run(warm);
        assert_conservative(&mut sys, span);
    }

    /// Refresh-only machine (no cores, no NDA work): the horizon is
    /// driven purely by refresh timers — the farthest-leaping case.
    #[test]
    fn prop_horizon_conservative_idle(
        seed in 1u64..50,
        warm in 1_000u64..30_000,
        span in 1_000u64..10_000,
    ) {
        let mut sys = ChopimSystem::new(ChopimConfig {
            seed,
            ..ChopimConfig::default()
        });
        sys.run(warm);
        assert_conservative(&mut sys, span);
    }
}
