//! Edge-case integration tests: backpressure, refresh interplay,
//! quiescence, and report stability.

use chopim_core::prelude::*;
use chopim_dram::TimingChecker;

fn cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

#[test]
fn tiny_nda_queue_applies_backpressure_without_deadlock() {
    // Queue depth 1 forces the launch pipeline to stall-and-go; every
    // instruction must still complete, in order.
    let mut sys = ChopimSystem::new(ChopimConfig {
        nda_queue_cap: 1,
        ..cfg()
    });
    let x = sys.runtime.vector(1 << 14, Sharing::Shared);
    let y = sys.runtime.vector(1 << 14, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![3.0; 1 << 14]);
    let op = sys.runtime.launch_elementwise(
        Opcode::Copy,
        vec![],
        vec![x],
        Some(y),
        LaunchOpts {
            granularity_lines: Some(64),
            barrier_per_chunk: false,
        },
    );
    let cycles = sys.run_until_op(op, 30_000_000);
    assert!(sys.runtime.op_done(op), "stalled after {cycles} cycles");
    assert_eq!(sys.runtime.read_vector(y)[77], 3.0);
    assert!(sys.fsm_in_sync());
}

#[test]
fn refresh_and_nda_traffic_interleave_legally() {
    // Refresh enabled + concurrent NDA COPY + host mix: the trace must
    // still pass the independent checker, including tRFC blackouts.
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii(), // refresh on
        mix: Some(MixId::new(5).unwrap()),
        ..ChopimConfig::default()
    });
    sys.enable_mem_trace();
    let x = sys.runtime.vector(1 << 14, Sharing::Shared);
    let y = sys.runtime.vector(1 << 14, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 14]);
    sys.run_relaunching(60_000, |rt| {
        rt.launch_elementwise(
            Opcode::Copy,
            vec![],
            vec![x],
            Some(y),
            LaunchOpts::default(),
        )
    });
    let r = sys.report();
    assert!(
        r.dram.refreshes > 10,
        "expected periodic refresh, got {}",
        r.dram.refreshes
    );
    assert!(r.dram.reads_nda > 0);
    let trace = sys.take_mem_trace();
    let dcfg = DramConfig::table_ii();
    for ch in 0..dcfg.channels {
        let mut checker = TimingChecker::new(&dcfg);
        for (c, at, cmd, issuer) in trace.iter().filter(|e| e.0 == ch) {
            let _ = c;
            checker
                .step(*at, cmd, *issuer)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn run_until_quiescent_drains_everything() {
    let mut sys = ChopimSystem::new(cfg());
    let x = sys.runtime.vector(1 << 13, Sharing::Shared);
    let y = sys.runtime.vector(1 << 13, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![2.5; 1 << 13]);
    // Three ops queued back to back.
    let _ = sys.runtime.launch_elementwise(
        Opcode::Copy,
        vec![],
        vec![x],
        Some(y),
        LaunchOpts::default(),
    );
    let _ = sys.runtime.launch_elementwise(
        Opcode::Scal,
        vec![2.0],
        vec![],
        Some(y),
        LaunchOpts::default(),
    );
    let d = sys.runtime.launch_elementwise(
        Opcode::Dot,
        vec![],
        vec![y, y],
        None,
        LaunchOpts::default(),
    );
    let used = sys.run_until_quiescent(50_000_000);
    assert!(used < 50_000_000, "did not quiesce");
    assert!(sys.runtime.quiescent());
    let expect = 25.0f32 * (1 << 13) as f32;
    assert_eq!(sys.runtime.op_result(d), Some(expect));
}

#[test]
fn reports_are_monotone_across_windows() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(6).unwrap()),
        ..cfg()
    });
    sys.run(40_000);
    let r1 = sys.report();
    sys.run(40_000);
    let r2 = sys.report();
    assert!(r2.cycles == 2 * r1.cycles);
    assert!(r2.dram.reads_host > r1.dram.reads_host);
    assert!(r2.cpu_cycles > r1.cpu_cycles);
    // IPC is a rate: must stay within sane bounds across windows.
    assert!(r2.host_ipc > 0.0 && r2.host_ipc < 8.0 * 4.0);
}

#[test]
fn zero_host_zero_nda_machine_is_stable() {
    let mut sys = ChopimSystem::new(cfg());
    sys.run(10_000);
    let r = sys.report();
    assert_eq!(r.dram.reads_host + r.dram.reads_nda, 0);
    assert_eq!(r.host_ipc, 0.0);
    assert_eq!(r.nda_bw_utilization, 0.0);
    assert!(sys.fsm_in_sync());
}

#[test]
fn eight_rank_geometry_full_stack() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii()
            .with_ranks(8)
            .with_timing(TimingParams::ddr4_2400_no_refresh()),
        mix: Some(MixId::new(7).unwrap()),
        nda_queue_cap: 32,
        ..ChopimConfig::default()
    });
    assert_eq!(sys.runtime.nda_ranks().len(), 16, "2 ch x 8 rk = 16 NDAs");
    let x = sys.runtime.vector(1 << 15, Sharing::Shared);
    let y = sys.runtime.vector(1 << 15, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 15]);
    let op = sys.runtime.launch_elementwise(
        Opcode::Copy,
        vec![],
        vec![x],
        Some(y),
        LaunchOpts::default(),
    );
    sys.run_until_op(op, 30_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(sys.runtime.read_vector(y)[1 << 14], 1.0);
    assert!(sys.fsm_in_sync());
}
