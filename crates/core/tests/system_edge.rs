//! Edge-case integration tests: backpressure, refresh interplay,
//! quiescence, and report stability.

use chopim_core::prelude::*;
use chopim_dram::TimingChecker;

fn cfg() -> ChopimConfig {
    ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    }
}

#[test]
fn tiny_nda_queue_applies_backpressure_without_deadlock() {
    // Queue depth 1 forces the launch pipeline to stall-and-go; every
    // instruction must still complete, in order.
    let mut sys = ChopimSystem::new(ChopimConfig {
        nda_queue_cap: 1,
        ..cfg()
    });
    let x = sys.runtime.vector(1 << 14, Sharing::Shared);
    let y = sys.runtime.vector(1 << 14, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![3.0; 1 << 14]);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .granularity_lines(64)
        .no_barrier()
        .submit();
    let cycles = sys.drive(op, 30_000_000);
    assert!(sys.runtime.op_done(op), "stalled after {cycles} cycles");
    assert_eq!(sys.runtime.read_vector(y)[77], 3.0);
    assert!(sys.fsm_in_sync());
}

#[test]
fn refresh_and_nda_traffic_interleave_legally() {
    // Refresh enabled + concurrent NDA COPY + host mix: the trace must
    // still pass the independent checker, including tRFC blackouts.
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii(), // refresh on
        mix: Some(MixId::new(5).unwrap()),
        ..ChopimConfig::default()
    });
    sys.enable_mem_trace();
    let x = sys.runtime.vector(1 << 14, Sharing::Shared);
    let y = sys.runtime.vector(1 << 14, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 14]);
    let sess = sys.runtime.default_session();
    sys.spawn_stream(sess, move |rt, s| {
        s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
            .submit()
    });
    sys.run(60_000);
    let r = sys.report();
    assert!(
        r.dram.refreshes > 10,
        "expected periodic refresh, got {}",
        r.dram.refreshes
    );
    assert!(r.dram.reads_nda > 0);
    let trace = sys.take_mem_trace();
    let dcfg = DramConfig::table_ii();
    for ch in 0..dcfg.channels {
        let mut checker = TimingChecker::new(&dcfg);
        for (c, at, cmd, issuer) in trace.iter().filter(|e| e.0 == ch) {
            let _ = c;
            checker
                .step(*at, cmd, *issuer)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn run_until_quiescent_drains_everything() {
    let mut sys = ChopimSystem::new(cfg());
    let x = sys.runtime.vector(1 << 13, Sharing::Shared);
    let y = sys.runtime.vector(1 << 13, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![2.5; 1 << 13]);
    // Three ops queued back to back (implicit program order).
    let sess = sys.runtime.default_session();
    let _ = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let _ = sess
        .elementwise(&mut sys.runtime, Opcode::Scal, vec![2.0], vec![], Some(y))
        .submit();
    let d = sess
        .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
        .submit();
    let used = sys.drive(Waitable::Quiescent, 50_000_000);
    assert!(used < 50_000_000, "did not quiesce");
    assert!(sys.runtime.quiescent());
    let expect = 25.0f32 * (1 << 13) as f32;
    assert_eq!(sys.runtime.op_result(d), Some(expect));
}

#[test]
fn reports_are_monotone_across_windows() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(6).unwrap()),
        ..cfg()
    });
    sys.run(40_000);
    let r1 = sys.report();
    sys.run(40_000);
    let r2 = sys.report();
    assert!(r2.cycles == 2 * r1.cycles);
    assert!(r2.dram.reads_host > r1.dram.reads_host);
    assert!(r2.cpu_cycles > r1.cpu_cycles);
    // IPC is a rate: must stay within sane bounds across windows.
    assert!(r2.host_ipc > 0.0 && r2.host_ipc < 8.0 * 4.0);
}

#[test]
fn zero_host_zero_nda_machine_is_stable() {
    let mut sys = ChopimSystem::new(cfg());
    sys.run(10_000);
    let r = sys.report();
    assert_eq!(r.dram.reads_host + r.dram.reads_nda, 0);
    assert_eq!(r.host_ipc, 0.0);
    assert_eq!(r.nda_bw_utilization, 0.0);
    assert!(sys.fsm_in_sync());
}

#[test]
fn eight_rank_geometry_full_stack() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii()
            .with_ranks(8)
            .with_timing(TimingParams::ddr4_2400_no_refresh()),
        mix: Some(MixId::new(7).unwrap()),
        nda_queue_cap: 32,
        ..ChopimConfig::default()
    });
    assert_eq!(sys.runtime.nda_ranks().len(), 16, "2 ch x 8 rk = 16 NDAs");
    let x = sys.runtime.vector(1 << 15, Sharing::Shared);
    let y = sys.runtime.vector(1 << 15, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 15]);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    sys.drive(op, 30_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(sys.runtime.read_vector(y)[1 << 14], 1.0);
    assert!(sys.fsm_in_sync());
}

#[test]
fn cross_session_dependency_orders_execution() {
    // Session B's op is gated on session A's via an explicit DAG edge:
    // it must not stage until A's op has retired, and the functional
    // result must reflect the order.
    let mut sys = ChopimSystem::new(cfg());
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let x = sys.runtime.vector(1 << 12, Sharing::Shared);
    let y = sys.runtime.vector(1 << 12, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.5; 1 << 12]);
    let a = sa
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    let b = sb
        .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
        .after(a)
        .submit();
    sys.drive(Waitable::all_of([a, b]), 20_000_000);
    assert!(sys.runtime.op_done(a) && sys.runtime.op_done(b));
    assert!(
        sys.runtime.op_first_staged_at(b).expect("b staged")
            >= sys.runtime.op_finished_at(a).expect("a finished"),
        "dependent op staged before its parent retired"
    );
    let expect = 1.5f32 * 1.5 * (1 << 12) as f32;
    assert_eq!(sys.runtime.op_result(b), Some(expect));
}

#[test]
fn two_streams_share_the_machine_fairly() {
    // Two identical tenants streaming concurrently must both make
    // progress (no starvation) and end up with similar completion
    // counts under round-robin arbitration.
    let mut sys = ChopimSystem::new(cfg());
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let xa = sys.runtime.vector(1 << 13, Sharing::Shared);
    let ya = sys.runtime.vector(1 << 13, Sharing::Shared);
    let xb = sys.runtime.vector(1 << 13, Sharing::Shared);
    let yb = sys.runtime.vector(1 << 13, Sharing::Shared);
    let st_a = sys.spawn_stream(sa, move |rt, s| {
        s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![xa], Some(ya))
            .submit()
    });
    let st_b = sys.spawn_stream(sb, move |rt, s| {
        s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![xb], Some(yb))
            .submit()
    });
    sys.run(200_000);
    let (a, b) = (sys.stream_completions(st_a), sys.stream_completions(st_b));
    assert!(a > 0 && b > 0, "both tenants must progress: {a} vs {b}");
    assert!(
        a.max(b) <= 3 * a.min(b),
        "identical tenants should complete similar work: {a} vs {b}"
    );
    assert!(sys.fsm_in_sync());
}

#[test]
fn stopped_stream_lets_machine_quiesce() {
    let mut sys = ChopimSystem::new(cfg());
    let sess = sys.runtime.default_session();
    let x = sys.runtime.vector(1 << 12, Sharing::Shared);
    let y = sys.runtime.vector(1 << 12, Sharing::Shared);
    let id = sys.spawn_stream(sess, move |rt, s| {
        s.elementwise(rt, Opcode::Copy, vec![], vec![x], Some(y))
            .submit()
    });
    sys.run(50_000);
    let n = sys.stop_stream(id);
    assert!(n > 0, "stream must have completed ops");
    let used = sys.drive(Waitable::Quiescent, 10_000_000);
    assert!(used < 10_000_000, "in-flight op must drain after stop");
    assert!(sys.runtime.quiescent());
    assert_eq!(sys.stream_completions(id), n, "no relaunches after stop");
}

/// The deprecated single-tenant entry points must keep working (they are
/// thin shims over sessions, the DAG stager, and `drive`).
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_work() {
    let mut sys = ChopimSystem::new(cfg());
    let x = sys.runtime.vector(1 << 12, Sharing::Shared);
    let y = sys.runtime.vector(1 << 12, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![2.0; 1 << 12]);
    let op = sys.runtime.launch_elementwise(
        Opcode::Copy,
        vec![],
        vec![x],
        Some(y),
        LaunchOpts::default(),
    );
    sys.run_until_op(op, 10_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(sys.runtime.read_vector(y)[7], 2.0);

    let n = sys.run_relaunching(30_000, |rt| {
        rt.launch_elementwise(
            Opcode::Scal,
            vec![1.0],
            vec![],
            Some(y),
            LaunchOpts::default(),
        )
    });
    assert!(n > 0, "relaunching shim must complete ops");
    let used = sys.run_until_quiescent(10_000_000);
    assert!(used < 10_000_000);
    assert!(sys.runtime.quiescent());
}

#[test]
fn realignment_copy_inherits_dag_edges() {
    // An unordered op with a cross-session parent and a color-mismatched
    // input: the runtime-inserted realignment copy must inherit the
    // `.after()` edge, or it would read the input before the parent
    // writes it. The functional result proves the order.
    use chopim_mapping::color::Color;
    let mut sys = ChopimSystem::new(cfg());
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let n = 1 << 12;
    let src = sys.runtime.vector_colored(n, Sharing::Shared, Color(1));
    let y = sys.runtime.vector_colored(n, Sharing::Shared, Color(1));
    let out = sys.runtime.vector_colored(n, Sharing::Shared, Color(5));
    let big_x = sys.runtime.vector(1 << 17, Sharing::Shared);
    let big_y = sys.runtime.vector(1 << 17, Sharing::Shared);
    sys.runtime.write_vector(src, &vec![4.0; n]);
    // Parent (session A) writes y — late, behind a long predecessor, so
    // a prematurely-staged copy in session B would finish long before
    // it. Child (session B) reads y into a different-colored output,
    // gated only by the explicit edge.
    let _slow = sa
        .elementwise(
            &mut sys.runtime,
            Opcode::Copy,
            vec![],
            vec![big_x],
            Some(big_y),
        )
        .submit();
    let parent = sa
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![src], Some(y))
        .submit();
    let child = sb
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![y], Some(out))
        .after(parent)
        .unordered()
        .submit();
    sys.drive(Waitable::all_of([parent, child]), 50_000_000);
    assert!(sys.runtime.op_done(child));
    assert_eq!(sys.runtime.realignment_copies, 1, "copy was inserted");
    assert_eq!(
        sys.runtime.read_vector(out)[123],
        4.0,
        "realignment copy must run after the cross-session parent"
    );
}
