//! Property tests of the session/op-graph scheduler through the full
//! simulated machine: DAG edges must gate staging (no child instruction
//! launches before its parent retires), results must be exact regardless
//! of graph shape, and fair-share arbitration must never starve a ready
//! session — across both host schedulers and random seeds.

use chopim_core::prelude::*;
use proptest::prelude::*;

fn sys_with(scheduler: SchedulerKind, seed: u64) -> ChopimSystem {
    ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        mix: MixId::new(4),
        scheduler,
        seed,
        ..ChopimConfig::default()
    })
}

fn scheduler_of(pick: bool) -> SchedulerKind {
    if pick {
        SchedulerKind::Fcfs
    } else {
        SchedulerKind::FrFcfs
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random op graphs across two sessions: every op is an AXPY into its
    /// own output vector, with random explicit `.after()` edges onto
    /// earlier ops (including cross-session ones) and random `unordered`
    /// flags. Whatever the graph shape, scheduler, or seed: the machine
    /// quiesces, and no op's first launch is staged before every one of
    /// its declared parents has retired.
    #[test]
    fn prop_dag_respects_dependencies(
        seed in 0u64..1000,
        fcfs in any::<bool>(),
        shape in prop::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 4..10),
    ) {
        let mut sys = sys_with(scheduler_of(fcfs), seed);
        let sa = sys.runtime.default_session();
        let sb = sys.runtime.create_session();
        let src = sys.runtime.vector(2048, Sharing::Shared);
        sys.runtime.write_vector(src, &vec![1.0; 2048]);

        let mut handles: Vec<OpHandle> = Vec::new();
        for (i, &(to_b, unordered, dep_near)) in shape.iter().enumerate() {
            let sess = if to_b { sb } else { sa };
            let out = sys.runtime.vector(2048, Sharing::Shared);
            let mut b = sess
                .elementwise(&mut sys.runtime, Opcode::Axpy, vec![0.5], vec![src], Some(out))
                .granularity_lines(64);
            // Random explicit edges onto earlier ops: the immediately
            // preceding one and/or one further back (cross-session edges
            // arise whenever the parent went to the other session).
            if let Some(&prev) = handles.last() {
                if dep_near {
                    b = b.after(prev);
                }
            }
            if i >= 2 {
                b = b.after(handles[i / 2]);
            }
            if unordered {
                b = b.unordered();
            }
            handles.push(b.submit());
        }

        let used = sys.drive(Waitable::Quiescent, 400_000_000);
        prop_assert!(used < 400_000_000, "graph did not quiesce");
        prop_assert!(sys.runtime.quiescent());

        // Reconstruct the declared edges the same way they were built.
        for (i, &(_, _, dep_near)) in shape.iter().enumerate() {
            let child = handles[i];
            let mut parents = Vec::new();
            if i >= 1 && dep_near {
                parents.push(handles[i - 1]);
            }
            if i >= 2 {
                parents.push(handles[i / 2]);
            }
            let staged = sys.runtime.op_first_staged_at(child).expect("staged");
            for p in parents {
                let retired = sys.runtime.op_finished_at(p).expect("parent finished");
                prop_assert!(
                    staged >= retired,
                    "op {i} staged at {staged} before parent retired at {retired}"
                );
            }
        }
    }

    /// Two sessions streaming identical workloads concurrently: the
    /// round-robin arbiter must keep both progressing (no starvation)
    /// with comparable completion counts, under both schedulers.
    #[test]
    fn prop_fair_share_never_starves(
        seed in 0u64..1000,
        fcfs in any::<bool>(),
    ) {
        let mut sys = sys_with(scheduler_of(fcfs), seed);
        let sa = sys.runtime.default_session();
        let sb = sys.runtime.create_session();
        let xa = sys.runtime.vector(1 << 13, Sharing::Shared);
        let ya = sys.runtime.vector(1 << 13, Sharing::Shared);
        let xb = sys.runtime.vector(1 << 13, Sharing::Shared);
        let yb = sys.runtime.vector(1 << 13, Sharing::Shared);
        let st_a = sys.spawn_stream(sa, move |rt, s| {
            s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![xa], Some(ya))
                .submit()
        });
        let st_b = sys.spawn_stream(sb, move |rt, s| {
            s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![xb], Some(yb))
                .submit()
        });
        sys.run(150_000);
        let (a, b) = (sys.stream_completions(st_a), sys.stream_completions(st_b));
        prop_assert!(a > 0 && b > 0, "a ready session was starved: {} vs {}", a, b);
        prop_assert!(
            a.max(b) <= 3 * a.min(b),
            "identical tenants diverged too far: {} vs {}",
            a,
            b
        );
        prop_assert!(sys.fsm_in_sync());
    }
}

/// A parent three ops back in the *other* session, with everything else
/// unordered: the only thing serializing the child is the DAG edge.
#[test]
fn cross_session_edge_is_the_only_gate() {
    let mut sys = sys_with(SchedulerKind::FrFcfs, 1);
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    let x = sys.runtime.vector(4096, Sharing::Shared);
    let y = sys.runtime.vector(4096, Sharing::Shared);
    let z = sys.runtime.vector(4096, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![3.0; 4096]);
    let parent = sa
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();
    // Session B: an independent op, then the gated child (unordered, so
    // B's program order imposes nothing — only the edge holds it).
    let other = sb
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(z))
        .submit();
    let child = sb
        .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
        .after(parent)
        .unordered()
        .submit();
    sys.drive(Waitable::all_of([parent, other, child]), 50_000_000);
    assert!(sys.runtime.op_done(child));
    assert!(
        sys.runtime.op_first_staged_at(child).unwrap()
            >= sys.runtime.op_finished_at(parent).unwrap()
    );
    assert_eq!(sys.runtime.op_result(child), Some(9.0 * 4096.0));
}
