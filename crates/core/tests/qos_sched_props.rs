//! Property tests of the QoS-class arbiter and the batched submission
//! executor through the full simulated machine.
//!
//! The indexed scheduler's central claim — that the ready-index pick is
//! always the pick a naive scan over *all* sessions would make — is
//! enforced inside `Runtime::next_launches` itself: in debug builds
//! every staged pick is re-derived by a full-scan oracle
//! (`debug_assert_eq!`) whenever the machine has ≤ 64 sessions. Every
//! randomized case in this suite therefore pins the O(active) index
//! against the O(sessions) reference scan on top of the properties it
//! asserts explicitly:
//!
//! * DAG edges still gate staging under mixed QoS classes;
//! * weighted batch tenants receive launch shares proportional to their
//!   weights (within a bound), and nobody starves — not even a weight-1
//!   tenant against a weight-1024 one;
//! * latency-sensitive tenants wait no longer for their first launch
//!   than the batch tenants they preempt;
//! * the whole QoS schedule is bit-identical across serial, 2- and
//!   4-thread engines, the naive and fast-forward loops, and the
//!   fixed-window oracle;
//! * executor admission control: in-flight caps admit, the bounded
//!   queue parks in FIFO order, overflow rejects deterministically with
//!   `QueueFull`, and rejection leaves the session able to resubmit.

use chopim_core::prelude::*;
use proptest::prelude::*;

fn sys_with(scheduler: SchedulerKind, seed: u64) -> ChopimSystem {
    ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        mix: MixId::new(4),
        scheduler,
        seed,
        ..ChopimConfig::default()
    })
}

fn scheduler_of(pick: bool) -> SchedulerKind {
    if pick {
        SchedulerKind::Fcfs
    } else {
        SchedulerKind::FrFcfs
    }
}

/// A machine whose per-rank NDA queues are shallow enough that every
/// launch slot is contended: with credits this scarce the weighted
/// arbiter — not queue drain order — decides who advances, which is
/// the regime the fairness properties are about.
fn contended_sys(scheduler: SchedulerKind, seed: u64) -> ChopimSystem {
    ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        scheduler,
        seed,
        nda_queue_cap: 1,
        ..ChopimConfig::default()
    })
}

fn class_of(tag: u8) -> QosClass {
    match tag % 4 {
        0 => QosClass::LatencySensitive,
        1 => QosClass::Batch { weight: 1 },
        2 => QosClass::Batch { weight: 4 },
        _ => QosClass::Batch { weight: 16 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random op graphs across three sessions with random QoS classes:
    /// whatever the class mix, graph shape, scheduler, or seed, the
    /// machine quiesces and no op's first launch is staged before every
    /// declared parent has retired. (And, per the debug oracle, every
    /// arbitration pick along the way equals the full-scan pick.)
    #[test]
    fn prop_qos_dag_respects_dependencies(
        seed in 0u64..1000,
        fcfs in any::<bool>(),
        classes in prop::collection::vec(any::<u8>(), 3),
        shape in prop::collection::vec((0u8..3, any::<bool>(), any::<bool>()), 4..10),
    ) {
        let mut sys = sys_with(scheduler_of(fcfs), seed);
        let s0 = sys.runtime.default_session();
        let s1 = sys.runtime.create_session();
        let s2 = sys.runtime.create_session();
        let sessions = [s0, s1, s2];
        for (s, &tag) in sessions.iter().zip(&classes) {
            sys.runtime.set_qos(*s, class_of(tag));
        }
        let src = sys.runtime.vector(2048, Sharing::Shared);
        sys.runtime.write_vector(src, &vec![1.0; 2048]);

        let mut handles: Vec<OpHandle> = Vec::new();
        for (i, &(which, unordered, dep_near)) in shape.iter().enumerate() {
            let sess = sessions[which as usize % sessions.len()];
            let out = sys.runtime.vector(2048, Sharing::Shared);
            let mut b = sess
                .elementwise(&mut sys.runtime, Opcode::Axpy, vec![0.5], vec![src], Some(out))
                .granularity_lines(64);
            if let Some(&prev) = handles.last() {
                if dep_near {
                    b = b.after(prev);
                }
            }
            if i >= 2 {
                b = b.after(handles[i / 2]);
            }
            if unordered {
                b = b.unordered();
            }
            handles.push(b.submit());
        }

        let used = sys.drive(Waitable::Quiescent, 400_000_000);
        prop_assert!(used < 400_000_000, "graph did not quiesce");
        prop_assert!(sys.runtime.quiescent());

        for (i, &(_, _, dep_near)) in shape.iter().enumerate() {
            let child = handles[i];
            let mut parents = Vec::new();
            if i >= 1 && dep_near {
                parents.push(handles[i - 1]);
            }
            if i >= 2 {
                parents.push(handles[i / 2]);
            }
            let staged = sys.runtime.op_first_staged_at(child).expect("staged");
            for p in parents {
                let retired = sys.runtime.op_finished_at(p).expect("parent finished");
                prop_assert!(
                    staged >= retired,
                    "op {i} staged at {staged} before parent retired at {retired}"
                );
            }
        }
    }

    /// Two backlogged batch tenants streaming the identical chunked
    /// workload with weights `1` and `w`: the deficit scheduler must
    /// hand the heavier tenant a proportionally larger launch share.
    /// Completions normalized by weight must agree within a factor of
    /// 2.5, and the light tenant must never starve.
    #[test]
    fn prop_weighted_fairness_within_bound(
        seed in 0u64..1000,
        fcfs in any::<bool>(),
        wsel in 0u8..3,
    ) {
        let w = [2u32, 4, 8][wsel as usize];
        let mut sys = contended_sys(scheduler_of(fcfs), seed);
        let sa = sys.runtime.default_session();
        let sb = sys.runtime.create_session();
        sys.runtime.set_qos(sa, QosClass::Batch { weight: 1 });
        sys.runtime.set_qos(sb, QosClass::Batch { weight: w });
        let xa = sys.runtime.vector(1 << 13, Sharing::Shared);
        let xb = sys.runtime.vector(1 << 13, Sharing::Shared);
        let st_a = sys.spawn_stream(sa, move |rt, s| {
            s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(xa))
                .granularity_lines(8)
                .no_barrier()
                .submit()
        });
        let st_b = sys.spawn_stream(sb, move |rt, s| {
            s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(xb))
                .granularity_lines(8)
                .no_barrier()
                .submit()
        });
        sys.run(200_000);
        let (a, b) = (sys.stream_completions(st_a), sys.stream_completions(st_b));
        prop_assert!(a > 0, "weight-1 tenant starved against weight-{w}: {a} vs {b}");
        prop_assert!(b > a, "weight-{w} tenant should outrun weight-1: {a} vs {b}");
        let (na, nb) = (a as f64, b as f64 / w as f64);
        prop_assert!(
            na.max(nb) <= 2.5 * na.min(nb),
            "weight-normalized completions diverged: {a} vs {b} (weight {w})"
        );
    }
}

/// The starvation limit case: a weight-1 tenant sharing the machine
/// with a weight-1024 one. The deficit charge keeps the light tenant's
/// virtual time finitely behind, so it must still complete work.
#[test]
fn extreme_weight_ratio_does_not_starve() {
    let mut sys = contended_sys(SchedulerKind::FrFcfs, 3);
    let sa = sys.runtime.default_session();
    let sb = sys.runtime.create_session();
    sys.runtime.set_qos(sa, QosClass::Batch { weight: 1 });
    sys.runtime.set_qos(sb, QosClass::Batch { weight: 1024 });
    let xa = sys.runtime.vector(1 << 13, Sharing::Shared);
    let xb = sys.runtime.vector(1 << 13, Sharing::Shared);
    let st_a = sys.spawn_stream(sa, move |rt, s| {
        s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(xa))
            .granularity_lines(8)
            .no_barrier()
            .submit()
    });
    let st_b = sys.spawn_stream(sb, move |rt, s| {
        s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(xb))
            .granularity_lines(8)
            .no_barrier()
            .submit()
    });
    sys.run(200_000);
    let (a, b) = (sys.stream_completions(st_a), sys.stream_completions(st_b));
    assert!(a > 0, "weight-1 tenant starved: {a} vs {b}");
    assert!(b > 0, "heavy tenant made no progress: {a} vs {b}");
}

/// A latency-sensitive tenant contending with three batch tenants: the
/// strict band priority must show up in the metering — the LS tenant's
/// mean launch wait may not exceed any batch tenant's, and batch
/// tenants must still progress (no starvation across bands, since ops
/// fully staged stop competing for the launch slot).
#[test]
fn latency_sensitive_waits_less_than_batch() {
    let mut sys = sys_with(SchedulerKind::FrFcfs, 5);
    let ls = sys.runtime.default_session();
    sys.runtime.set_qos(ls, QosClass::LatencySensitive);
    let x = sys.runtime.vector(1 << 13, Sharing::Shared);
    sys.spawn_stream(ls, move |rt, s| {
        s.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(x))
            .granularity_lines(8)
            .no_barrier()
            .submit()
    });
    for _ in 0..3 {
        let s = sys.runtime.create_session();
        sys.runtime.set_qos(s, QosClass::Batch { weight: 4 });
        let v = sys.runtime.vector(1 << 13, Sharing::Shared);
        sys.spawn_stream(s, move |rt, sess| {
            sess.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(v))
                .granularity_lines(8)
                .no_barrier()
                .submit()
        });
    }
    sys.run(200_000);
    let report = sys.report();
    assert_eq!(report.tenants.len(), 4);
    let mean_wait = |t: &TenantReport| t.launch_wait_cycles as f64 / t.ops_completed.max(1) as f64;
    let ls_t = &report.tenants[0];
    assert!(ls_t.ops_completed > 0, "LS tenant completed nothing");
    for batch in &report.tenants[1..] {
        assert!(
            batch.ops_completed > 0,
            "batch tenant {} starved by the LS band",
            batch.session
        );
        assert!(
            mean_wait(ls_t) <= mean_wait(batch),
            "LS mean launch wait {} exceeds batch tenant {}'s {}",
            mean_wait(ls_t),
            batch.session,
            mean_wait(batch)
        );
    }
}

/// Run a 12-tenant mixed-class streaming fleet on a 4-channel machine
/// under one engine mode and return the finalized report.
fn fleet_report(seed: u64, classes: &[u8], threads: usize, ff: bool, fixed: bool) -> SimReport {
    let mut cfg = ChopimConfig {
        dram: DramConfig::table_ii().with_channels(4),
        seed,
        ..ChopimConfig::default()
    };
    cfg.sim_threads = threads;
    cfg.fast_forward = ff;
    cfg.fixed_window = fixed;
    let mut sys = ChopimSystem::new(cfg);
    let n = 1 << 12;
    let vecs: Vec<VecId> = (0..6)
        .map(|_| sys.runtime.vector(n, Sharing::Shared))
        .collect();
    let data: Vec<f32> = (0..n).map(|i| (i % 51) as f32 * 0.1 - 2.0).collect();
    for &v in &vecs {
        sys.runtime.write_vector(v, &data);
    }
    for (t, &tag) in classes.iter().enumerate() {
        let s = if t == 0 {
            sys.runtime.default_session()
        } else {
            sys.runtime.create_session()
        };
        sys.runtime.set_qos(s, class_of(tag));
        let x = vecs[t % vecs.len()];
        sys.spawn_stream(s, move |rt, sess| {
            sess.elementwise(rt, Opcode::Scal, vec![0.99], vec![], Some(x))
                .submit()
        });
    }
    sys.run(20_000);
    sys.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The QoS schedule is an engine-mode invariant: serial, 2- and
    /// 4-thread workers, the naive loop, and the fixed-window oracle
    /// must all produce bit-identical reports (tenant metering
    /// included) for a random mixed-class fleet.
    #[test]
    fn prop_qos_schedule_is_engine_mode_invariant(
        seed in 0u64..1000,
        classes in prop::collection::vec(any::<u8>(), 12),
    ) {
        let oracle = fleet_report(seed, &classes, 1, true, false);
        prop_assert!(!oracle.tenants.is_empty());
        for (label, threads, ff, fixed) in [
            ("2-thread", 2usize, true, false),
            ("4-thread", 4, true, false),
            ("naive", 1, false, false),
            ("fixed-window", 1, true, true),
        ] {
            let got = fleet_report(seed, &classes, threads, ff, fixed);
            prop_assert_eq!(
                &oracle, &got,
                "{} engine diverged from the serial fast path (seed {})", label, seed
            );
        }
    }
}

/// Admission control end to end: a cap-1 session with a depth-2 queue
/// admits the first job, parks the next two in FIFO order, rejects the
/// fourth with `QueueFull`, drains the queue as ops retire, and meters
/// every step in `SimReport.tenants`.
#[test]
fn executor_cap_queue_reject_and_drain() {
    let mut sys = sys_with(SchedulerKind::FrFcfs, 9);
    let s = sys.runtime.create_session();
    sys.runtime.set_tenant_limits(
        s,
        TenantLimits {
            max_inflight_ops: 1,
            queue_depth: 2,
        },
    );
    let x = sys.runtime.vector(1 << 13, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; 1 << 13]);
    let job = || {
        let mut g = JobGraph::new();
        g.elementwise(Opcode::Scal, vec![0.5], vec![], Some(x));
        g
    };
    let t1 = sys.runtime.submit_job(s, job()).expect("admitted");
    let t2 = sys.runtime.submit_job(s, job()).expect("queued");
    let t3 = sys.runtime.submit_job(s, job()).expect("queued");
    assert!(sys.runtime.ticket_admitted(t1));
    assert!(!sys.runtime.ticket_admitted(t2) && !sys.runtime.ticket_admitted(t3));
    assert_eq!(
        sys.runtime.submit_job(s, job()),
        Err(SubmitError::QueueFull)
    );

    // Drive until t2 is admitted: FIFO means t3 must still be parked at
    // that instant (the cap re-admits exactly one job).
    let mut budget = 0u64;
    while !sys.runtime.ticket_admitted(t2) {
        sys.run(500);
        budget += 500;
        assert!(budget < 5_000_000, "queued job never admitted");
    }
    assert!(
        sys.runtime.ticket_done(t1),
        "cap-1: t2 admitted implies t1 retired"
    );
    assert!(
        !sys.runtime.ticket_admitted(t3),
        "FIFO admission violated: t3 admitted alongside t2"
    );

    // A rejected submit leaves the session fully functional: once the
    // queue has drained, the same graph is accepted.
    while !sys.runtime.ticket_done(t3) {
        sys.run(500);
        budget += 500;
        assert!(budget < 5_000_000, "queue never drained");
    }
    let t4 = sys
        .runtime
        .submit_job(s, job())
        .expect("resubmit after drain");
    while !sys.runtime.ticket_done(t4) {
        sys.run(500);
        budget += 500;
        assert!(budget < 5_000_000, "resubmitted job never finished");
    }
    sys.run(1_000);
    let report = sys.report();
    let meter = report
        .tenants
        .iter()
        .find(|t| t.session == 1)
        .expect("tenant meter");
    assert_eq!(meter.jobs_rejected, 1);
    assert_eq!(meter.ops_completed, 4);
    assert_eq!(meter.ops_submitted, 4);
    assert!(
        meter.admission_wait_cycles > 0,
        "queued jobs must accrue wait"
    );
}

/// With the default zero-depth queue, exceeding the in-flight cap is an
/// immediate deterministic reject — no silent queueing.
#[test]
fn executor_zero_depth_queue_rejects_immediately() {
    let mut sys = sys_with(SchedulerKind::FrFcfs, 11);
    let s = sys.runtime.create_session();
    sys.runtime.set_tenant_limits(
        s,
        TenantLimits {
            max_inflight_ops: 1,
            queue_depth: 0,
        },
    );
    let x = sys.runtime.vector(1 << 12, Sharing::Shared);
    let mut g = JobGraph::new();
    g.elementwise(Opcode::Scal, vec![2.0], vec![], Some(x));
    let t1 = sys.runtime.submit_job(s, g).expect("admitted");
    let mut g = JobGraph::new();
    g.elementwise(Opcode::Scal, vec![2.0], vec![], Some(x));
    assert_eq!(sys.runtime.submit_job(s, g), Err(SubmitError::QueueFull));
    let mut budget = 0u64;
    while !sys.runtime.ticket_done(t1) {
        sys.run(500);
        budget += 500;
        assert!(budget < 5_000_000, "admitted job never finished");
    }
}
