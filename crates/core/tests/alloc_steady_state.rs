//! Steady-state allocation audit of the sharded engine's message path.
//!
//! The flat-exchange overhaul (double-buffered ingress arenas, batch
//! merge queues, the dense launch slab, persistent pool slots) exists so
//! that a warmed-up engine moves cross-shard messages without touching
//! the allocator: every window swaps and refills buffers whose capacity
//! was established during warm-up. This test pins that property with a
//! counting `#[global_allocator]`: drive a host-traffic machine past
//! warm-up, then assert that further windows perform **zero**
//! allocations — any per-window `Vec` growth, heap sift, or hash-map
//! insert on the message path shows up as a nonzero delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use chopim_core::prelude::*;

/// System allocator wrapper that counts alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A memory-intensive host mix on the serial engine: every window moves
/// core transactions out and fills back across the shard boundary, and
/// after warm-up none of it may allocate.
#[test]
fn steady_state_message_path_is_allocation_free() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(2).unwrap()),
        sim_threads: 1,
        ..ChopimConfig::default()
    });
    // Warm-up: reach steady state — queue capacities, arena sizes, memo
    // tables and stats all stop growing well before this (the ingress
    // arena high-water keeps creeping past 60k cycles, so the warm-up
    // must cover the full periodic schedule once).
    sys.run(120_000);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    sys.run(120_000);
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "warmed-up engine allocated {delta} times in 60k cycles; \
         the message path must be allocation-free in steady state"
    );
}
