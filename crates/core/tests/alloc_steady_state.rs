//! Steady-state allocation audit of the sharded engine's message path.
//!
//! The flat-exchange overhaul (double-buffered ingress arenas, batch
//! merge queues, the dense launch slab, persistent pool slots) exists so
//! that a warmed-up engine moves cross-shard messages without touching
//! the allocator: every window swaps and refills buffers whose capacity
//! was established during warm-up. This test pins that property with a
//! counting `#[global_allocator]`: drive a host-traffic machine past
//! warm-up, then assert that further windows perform **zero**
//! allocations — any per-window `Vec` growth, heap sift, or hash-map
//! insert on the message path shows up as a nonzero delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use chopim_core::prelude::*;

/// The allocation counter is process-global, so the audited windows of
/// the two tests below must not overlap.
static AUDIT: Mutex<()> = Mutex::new(());

/// System allocator wrapper that counts alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A memory-intensive host mix on the serial engine: every window moves
/// core transactions out and fills back across the shard boundary, and
/// after warm-up none of it may allocate.
#[test]
fn steady_state_message_path_is_allocation_free() {
    let _audit = AUDIT.lock().unwrap();
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(2).unwrap()),
        sim_threads: 1,
        ..ChopimConfig::default()
    });
    // Warm-up: reach steady state — queue capacities, arena sizes, memo
    // tables and stats all stop growing well before this (the ingress
    // arena high-water keeps creeping past 60k cycles, so the warm-up
    // must cover the full periodic schedule once).
    sys.run(120_000);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    sys.run(120_000);
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "warmed-up engine allocated {delta} times in 60k cycles; \
         the message path must be allocation-free in steady state"
    );
}

/// A thousand resident tenants with mixed QoS classes, all mid-op: the
/// launch arbiter's hot loop — ready-heap pops and re-inserts, credit
/// waitlist parks and flushes, virtual-time charges, chunk-barrier
/// advances, instruction launches and completions — must run without
/// touching the allocator once the index structures reached their
/// high-water capacity during warm-up. Every op is long enough that
/// none retires inside the audited window (retirement finalizes
/// statistics, which legitimately allocates).
#[test]
fn thousand_tenant_scheduler_is_allocation_free() {
    let _audit = AUDIT.lock().unwrap();
    let mut sys = ChopimSystem::new(ChopimConfig {
        sim_threads: 1,
        ..ChopimConfig::default()
    });
    let n = 1 << 13;
    let vecs: Vec<VecId> = (0..16)
        .map(|_| sys.runtime.vector(n, Sharing::Shared))
        .collect();
    let data: Vec<f32> = (0..n).map(|i| (i % 31) as f32).collect();
    for &v in &vecs {
        sys.runtime.write_vector(v, &data);
    }
    for t in 0..1000usize {
        let s = if t == 0 {
            sys.runtime.default_session()
        } else {
            sys.runtime.create_session()
        };
        let class = match t % 32 {
            0 => QosClass::LatencySensitive,
            k => QosClass::Batch {
                weight: [1, 2, 4][k % 3],
            },
        };
        sys.runtime.set_qos(s, class);
        let x = vecs[t % vecs.len()];
        s.elementwise(&mut sys.runtime, Opcode::Scal, vec![0.99], vec![], Some(x))
            .granularity_lines(16)
            .submit();
    }
    // Warm-up: park/flush every waitlist, cycle every session through
    // the ready heaps, and reach the index high-water marks.
    sys.run(120_000);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    sys.run(120_000);
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert!(
        !sys.runtime.quiescent(),
        "ops retired inside the audit window; grow them so the \
         steady-state claim stays about the scheduler hot loop"
    );
    assert_eq!(
        delta, 0,
        "warmed-up 1000-tenant scheduler allocated {delta} times in \
         120k cycles; arbitration must be allocation-free in steady state"
    );
}
