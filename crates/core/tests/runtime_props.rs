//! Property tests of the runtime/API through the full simulated machine:
//! numerics must match host references for every op, length, granularity
//! and launch mode — the function/timing split must never corrupt values.

use chopim_core::prelude::*;
use proptest::prelude::*;

fn sys() -> ChopimSystem {
    ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        ..ChopimConfig::default()
    })
}

fn data(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u64 ^ salt) % 31) as f32 * 0.25 - 3.5)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// AXPBY through the machine equals the host reference for random
    /// shapes, scalars, granularities, and launch modes.
    #[test]
    fn prop_axpby_matches_reference(
        len in 64usize..3000,
        a in -4.0f32..4.0,
        b in -4.0f32..4.0,
        gran in prop::option::of(1u64..600),
        barrier in any::<bool>(),
    ) {
        let mut sys = sys();
        let x = sys.runtime.vector(len, Sharing::Shared);
        let y = sys.runtime.vector(len, Sharing::Shared);
        let z = sys.runtime.vector(len, Sharing::Shared);
        let xd = data(len, 1);
        let yd = data(len, 2);
        sys.runtime.write_vector(x, &xd);
        sys.runtime.write_vector(y, &yd);
        let sess = sys.runtime.default_session();
        let op = sess
            .elementwise(&mut sys.runtime, Opcode::Axpby, vec![a, b], vec![x, y], Some(z))
            .opts(LaunchOpts { granularity_lines: gran, barrier_per_chunk: barrier })
            .submit();
        let cycles = sys.drive(op, 80_000_000);
        prop_assert!(sys.runtime.op_done(op), "did not finish in {cycles}");
        for i in (0..len).step_by(41) {
            let expect = a * xd[i] + b * yd[i];
            prop_assert_eq!(sys.runtime.read_vector(z)[i], expect, "elem {}", i);
        }
    }

    /// DOT reduction equals the host reference exactly (same summation
    /// order), for any length and granularity.
    #[test]
    fn prop_dot_matches_reference(
        len in 64usize..4000,
        gran in prop::option::of(16u64..512),
    ) {
        let mut sys = sys();
        let x = sys.runtime.vector(len, Sharing::Shared);
        let y = sys.runtime.vector(len, Sharing::Shared);
        let xd = data(len, 3);
        let yd = data(len, 4);
        sys.runtime.write_vector(x, &xd);
        sys.runtime.write_vector(y, &yd);
        let sess = sys.runtime.default_session();
        let op = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![x, y], None)
            .opts(LaunchOpts { granularity_lines: gran, barrier_per_chunk: true })
            .submit();
        sys.drive(op, 80_000_000);
        prop_assert!(sys.runtime.op_done(op));
        let expect: f32 = xd.iter().zip(&yd).map(|(a, b)| a * b).sum();
        prop_assert_eq!(sys.runtime.op_result(op), Some(expect));
    }

    /// In-place ops (SCAL) preserve untouched prefix state and match the
    /// reference, under concurrent host traffic.
    #[test]
    fn prop_scal_in_place_under_host_load(
        len in 64usize..2000,
        alpha in -2.0f32..2.0,
        mix in 0usize..9,
    ) {
        let mut sys = ChopimSystem::new(ChopimConfig {
            dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
            mix: Some(MixId::new(mix).unwrap()),
            ..ChopimConfig::default()
        });
        let x = sys.runtime.vector(len, Sharing::Shared);
        let xd = data(len, 5);
        sys.runtime.write_vector(x, &xd);
        let sess = sys.runtime.default_session();
        let op = sess
            .elementwise(&mut sys.runtime, Opcode::Scal, vec![alpha], vec![], Some(x))
            .submit();
        sys.drive(op, 120_000_000);
        prop_assert!(sys.runtime.op_done(op));
        for i in (0..len).step_by(29) {
            prop_assert_eq!(sys.runtime.read_vector(x)[i], alpha * xd[i]);
        }
        prop_assert!(sys.fsm_in_sync());
    }

    /// Chained ops see each other's results (read-after-write across
    /// launches).
    #[test]
    fn prop_chained_ops_are_ordered(len in 128usize..1500) {
        let mut sys = sys();
        let x = sys.runtime.vector(len, Sharing::Shared);
        let y = sys.runtime.vector(len, Sharing::Shared);
        let xd = data(len, 8);
        sys.runtime.write_vector(x, &xd);
        // y = x; then y *= 2; then c = y . y
        // Submitted back-to-back: the session's program order (plus the
        // DAG stager) guarantees read-after-write across the chain, so a
        // single drive on the tail suffices.
        let sess = sys.runtime.default_session();
        let c1 = sess
            .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
            .submit();
        let c2 = sess
            .elementwise(&mut sys.runtime, Opcode::Scal, vec![2.0], vec![], Some(y))
            .after(c1)
            .submit();
        let c3 = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
            .after(c2)
            .submit();
        sys.drive(c3, 150_000_000);
        prop_assert!(sys.runtime.op_done(c3));
        let expect: f32 = xd.iter().map(|v| (2.0 * v) * (2.0 * v)).sum();
        prop_assert_eq!(sys.runtime.op_result(c3), Some(expect));
    }
}

/// Granularity must not change results, only timing.
#[test]
fn granularity_is_timing_only() {
    let len = 4096;
    let mut results = Vec::new();
    for gran in [None, Some(8u64), Some(128), Some(1024)] {
        let mut sys = sys();
        let x = sys.runtime.vector(len, Sharing::Shared);
        let y = sys.runtime.vector(len, Sharing::Shared);
        sys.runtime.write_vector(x, &data(len, 6));
        sys.runtime.write_vector(y, &data(len, 7));
        let sess = sys.runtime.default_session();
        let op = sess
            .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![x, y], None)
            .opts(LaunchOpts {
                granularity_lines: gran,
                barrier_per_chunk: false,
            })
            .submit();
        sys.drive(op, 80_000_000);
        results.push(sys.runtime.op_result(op).unwrap());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

/// Private arrays are truly per-NDA: clearing and reducing work for any
/// rank count.
#[test]
fn private_arrays_reduce_across_rank_counts() {
    for ranks in [2usize, 4] {
        let mut sys = ChopimSystem::new(ChopimConfig {
            dram: DramConfig::table_ii()
                .with_ranks(ranks)
                .with_timing(TimingParams::ddr4_2400_no_refresh()),
            ..ChopimConfig::default()
        });
        let d = 64;
        let x = sys.runtime.matrix(8, d);
        let xd = data(8 * d, 9);
        sys.runtime.write_matrix(x, &xd);
        let a_pvt = sys.runtime.vector(d, Sharing::Private);
        let a = sys.runtime.vector(d, Sharing::Shared);
        let alphas = vec![0.5f32; 8];
        let sess = sys.runtime.default_session();
        let op = sess
            .axpy_rows(&mut sys.runtime, a_pvt, alphas, x, 2)
            .no_barrier()
            .submit();
        sys.drive(op, 80_000_000);
        assert!(sys.runtime.op_done(op));
        sys.runtime.host_reduce(a, a_pvt);
        for j in (0..d).step_by(13) {
            let expect: f32 = (0..8).map(|i| 0.5 * xd[i * d + j]).sum();
            let got = sys.runtime.read_vector(a)[j];
            assert!(
                (got - expect).abs() < 1e-4,
                "ranks={ranks} j={j}: {got} vs {expect}"
            );
        }
        sys.runtime.clear_private(a_pvt);
        for r in 0..sys.runtime.nda_ranks().len() {
            assert!(sys.runtime.read_private(a_pvt, r).iter().all(|&v| v == 0.0));
        }
    }
}

/// Operands in different colors are realigned by runtime-inserted copies
/// (paper §V): the result is still exact and the copy is accounted.
#[test]
fn color_mismatch_inserts_realignment_copy() {
    let mut sys = sys();
    let len = 2048;
    let x = sys.runtime.vector_colored(len, Sharing::Shared, Color(1));
    let y = sys.runtime.vector_colored(len, Sharing::Shared, Color(5));
    let z = sys.runtime.vector_colored(len, Sharing::Shared, Color(5));
    assert_eq!(sys.runtime.color_of(x), Color(1));
    let xd = data(len, 21);
    let yd = data(len, 22);
    sys.runtime.write_vector(x, &xd);
    sys.runtime.write_vector(y, &yd);
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(
            &mut sys.runtime,
            Opcode::Axpby,
            vec![2.0, 1.0],
            vec![x, y],
            Some(z),
        )
        .submit();
    sys.drive(op, 100_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(
        sys.runtime.realignment_copies, 1,
        "x (color 1) must be copied into z's color 5"
    );
    for i in (0..len).step_by(37) {
        assert_eq!(
            sys.runtime.read_vector(z)[i],
            2.0 * xd[i] + yd[i],
            "elem {i}"
        );
    }
    // Same-colored operands need no copies.
    let op2 = sess
        .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, z], None)
        .submit();
    sys.drive(op2, 100_000_000);
    assert_eq!(
        sys.runtime.realignment_copies, 1,
        "no new copies for same color"
    );
}

/// Same-colored vectors share rank alignment: per-rank line counts agree
/// for every color.
#[test]
fn colored_vectors_are_rank_aligned() {
    let mut sys = sys();
    assert_eq!(sys.runtime.num_colors(), 8, "Table II: 8 colors");
    for c in 0..8u32 {
        let v = sys.runtime.vector_colored(4096, Sharing::Shared, Color(c));
        assert_eq!(sys.runtime.color_of(v), Color(c));
    }
}
