//! Malformed-input hardening of the CHSS snapshot reader:
//! [`ChopimSystem::resume`] fed truncated, bit-flipped, or random bytes
//! must return `Err`, never panic — including v2 images carrying live
//! fault/recovery state (completion status bytes, in-flight launch
//! records, per-op recovery fields).

use chopim_core::prelude::*;
use proptest::prelude::*;

fn cfg() -> ChopimConfig {
    ChopimConfig {
        mix: MixId::new(2),
        faults: FaultPlan::parse("seed=7,transient=90,drop=100,delay=80:64"),
        instr_timeout: 8_000,
        ..ChopimConfig::default()
    }
}

/// A v2 image with real in-flight state: the machine runs under an
/// active fault plan with launches in transit before capture.
fn good_image() -> Vec<u8> {
    let mut sys = ChopimSystem::new(cfg());
    let len = 1 << 12;
    let x = sys.runtime.vector(len, Sharing::Shared);
    let y = sys.runtime.vector(len, Sharing::Shared);
    sys.runtime.write_vector(x, &vec![1.0; len]);
    let sess = sys.runtime.default_session();
    let _op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .opts(LaunchOpts {
            granularity_lines: Some(4),
            barrier_per_chunk: false,
        })
        .deadline(1_000_000)
        .submit();
    sys.run(4_003);
    sys.snapshot().expect("mid-flight capture")
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random bytes are never a resumable image.
    #[test]
    fn prop_resume_rejects_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(ChopimSystem::resume(cfg(), &bytes).is_err());
    }

    /// Truncating a good image anywhere must error.
    #[test]
    fn prop_resume_rejects_truncation(cut in 0usize..usize::MAX) {
        let good = good_image();
        let cut = cut % good.len();
        prop_assert!(
            ChopimSystem::resume(cfg(), &good[..cut]).is_err(),
            "truncation at {cut}/{} accepted",
            good.len()
        );
    }

    /// Flipping any single bit must error (container CRC covers the
    /// whole payload).
    #[test]
    fn prop_resume_rejects_bitflips(site in any::<u64>()) {
        let mut bad = good_image();
        let byte = (mix(site) as usize) % bad.len();
        let bit = (mix(site ^ 0x5eed) % 8) as u32;
        bad[byte] ^= 1 << bit;
        prop_assert!(
            ChopimSystem::resume(cfg(), &bad).is_err(),
            "bit {bit} of byte {byte}/{} flipped and still accepted",
            bad.len()
        );
    }
}

/// The uncorrupted image still resumes and runs (guards the corruption
/// properties against a vacuously-broken capture).
#[test]
fn well_formed_image_still_resumes() {
    let image = good_image();
    let mut sys = ChopimSystem::resume(cfg(), &image).expect("clean image resumes");
    sys.run(2_000);
}
