//! Simulation metrics: the quantities the paper's figures plot.

use chopim_dram::{Cycle, DramStats, IdleHistogram};

use crate::energy::EnergyReport;

/// Metrics for one simulation window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// DRAM cycles simulated.
    pub cycles: Cycle,
    /// CPU cycles simulated.
    pub cpu_cycles: u64,
    /// Aggregate host IPC (sum over cores), the paper's host metric.
    pub host_ipc: f64,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Bytes moved by NDAs (rank-internal).
    pub nda_bytes: u64,
    /// NDA bandwidth in GB/s.
    pub nda_bw_gbs: f64,
    /// Host bandwidth in GB/s (all host-issued traffic incl. launches).
    pub host_bw_gbs: f64,
    /// Core-attributable bandwidth in GB/s (excludes NDA launch packets).
    pub core_bw_gbs: f64,
    /// Fraction of host-idle rank bandwidth the NDAs captured (the
    /// "NDA BW Utilization" axis of Figs. 10-13; 1.0 = idealized).
    pub nda_bw_utilization: f64,
    /// Idle-gap histogram per global rank (Fig. 2).
    pub idle_histograms: Vec<IdleHistogram>,
    /// Raw DRAM counters.
    pub dram: DramStats,
    /// Host row-buffer hit rate over column commands.
    pub host_row_hit_rate: f64,
    /// Mean host read latency (cycles, arrival to data).
    pub avg_read_latency: f64,
    /// Energy/power breakdown.
    pub energy: EnergyReport,
    /// NDA instructions completed.
    pub nda_instrs_completed: u64,
    /// Cycles NDA writes were held back by the issue policy, summed over
    /// rank controllers. Included here so the fast-forward lockstep tests
    /// verify the bulk stall accounting of skipped throttled windows.
    pub nda_write_throttle_stalls: u64,
    /// Fault-injection and recovery counters (all zero when the
    /// [`FaultPlan`](chopim_dram::FaultPlan) is empty). Part of the
    /// report's `PartialEq`, so the lockstep suites also pin the fault
    /// schedule and the recovery decisions bit-identically.
    pub faults: FaultReport,
    /// Per-tenant metering, one entry per session in session order
    /// (session 0 is the implicit default session). Part of the report's
    /// `PartialEq`: the lockstep suites pin admission decisions and the
    /// per-tenant stall/wait split bit-identically.
    pub tenants: Vec<TenantReport>,
}

/// Per-tenant (per-session) executor metering for one simulation window.
///
/// Cycle accounting splits an op's resident time at its first launch:
/// `cycles_resident = launch_wait_cycles + service_cycles` for completed
/// ops. Ops never staged by window end accrue only `launch_wait`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantReport {
    /// Session id this row meters.
    // chopim-lint: allow(snapshot) -- positional: tenant_reports re-stamps it from the vector index; decode_meter writes 0
    pub session: u32,
    /// Ops submitted (runtime-inserted realignment copies included).
    pub ops_submitted: u64,
    /// Ops that reached the `Completed` terminal state.
    pub ops_completed: u64,
    /// Ops that reached a non-`Completed` terminal state (failed, timed
    /// out, dep-failed — host fallbacks count as completed).
    pub ops_failed: u64,
    /// Job graphs refused with `QueueFull` (admission backpressure).
    pub jobs_rejected: u64,
    /// Cycles terminal ops spent live (submission to conclusion), summed.
    pub cycles_resident: u64,
    /// Cycles admitted job graphs spent queued behind the in-flight cap.
    pub admission_wait_cycles: u64,
    /// Cycles terminal ops waited from submission to first launch
    /// (arbitration + dependency + credit stalls).
    pub launch_wait_cycles: u64,
    /// Cycles terminal ops spent from first launch to conclusion.
    pub service_cycles: u64,
}

/// Injected-fault and recovery accounting for one simulation window.
///
/// The injection side (transient faults, hangs, dropped/delayed
/// completions, rank deaths) is summed over shards; the recovery side
/// (retries, timeouts, terminal op failures, quarantines, host
/// fallbacks) comes from the runtime. ECC corrected/uncorrectable
/// counts live in [`DramStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Transient NDA compute faults injected (failed completions).
    pub transient_faults: u64,
    /// NDA FSM hangs injected (completion deferred by the hang time).
    pub fsm_hangs: u64,
    /// Completion messages dropped in transit.
    pub completions_dropped: u64,
    /// Completion messages delayed in transit.
    pub completions_delayed: u64,
    /// Permanent rank deaths fired.
    pub rank_deaths: u64,
    /// Instruction launches retried after a failure or timeout.
    pub instr_retries: u64,
    /// In-flight instructions that hit the launch timeout.
    pub instr_timeouts: u64,
    /// Ops concluded `Failed` (retry budget exhausted, no host fallback).
    pub ops_failed: u64,
    /// Ops concluded `TimedOut` (per-op deadline expired).
    pub ops_timed_out: u64,
    /// Ops aborted `DepFailed` (a dependency concluded unsuccessfully).
    pub ops_dep_failed: u64,
    /// Ops re-executed on the host after exhausting their retry budget.
    pub host_fallbacks: u64,
    /// NDAs quarantined after a rank-death completion.
    pub ranks_quarantined: u64,
    /// Largest retry backoff applied (cycles) — bounded by the
    /// configured cap, which the recovery property suite asserts.
    pub max_retry_backoff: u64,
}

impl SimReport {
    /// Combined idle histogram over all ranks.
    pub fn idle_histogram_total(&self) -> IdleHistogram {
        let mut h = IdleHistogram::new();
        for r in &self.idle_histograms {
            h.merge(r);
        }
        h
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles            : {}", self.cycles)?;
        writeln!(f, "host IPC (agg)    : {:.3}", self.host_ipc)?;
        writeln!(f, "host BW           : {:.2} GB/s", self.host_bw_gbs)?;
        writeln!(f, "NDA BW            : {:.2} GB/s", self.nda_bw_gbs)?;
        writeln!(f, "NDA BW utilization: {:.3}", self.nda_bw_utilization)?;
        writeln!(f, "row hit rate      : {:.3}", self.host_row_hit_rate)?;
        writeln!(f, "avg read latency  : {:.1} cycles", self.avg_read_latency)?;
        writeln!(f, "turnarounds       : {}", self.dram.turnarounds)?;
        write!(f, "avg power         : {:.2} W", self.energy.avg_power_w())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let r = SimReport::default();
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn histogram_merge() {
        let mut a = IdleHistogram::new();
        a.record_busy(10);
        let mut b = IdleHistogram::new();
        b.record_gap(5);
        let r = SimReport {
            idle_histograms: vec![a, b],
            ..Default::default()
        };
        assert_eq!(r.idle_histogram_total().total(), 15);
    }
}
