//! The host-side per-channel memory controller: FR-FCFS scheduling \[70\]
//! with 32-entry read/write queues, open-page policy, write-drain
//! watermarks, and refresh management (Table II).
//!
//! ## Busy-path indexes and memos
//!
//! The controller is evaluated every DRAM cycle while the machine is
//! busy, so its per-cycle cost must scale with *state changes*, not with
//! `queue length x bank count`. Two structures make that true, both
//! updated incrementally and both invisible in behavior (the property
//! tests in `tests/sched_equiv_props.rs` assert the indexed decisions
//! equal a naive full-scan oracle):
//!
//! * **Queue indexes** (`QueueIndex`, one per queue): per-(rank,bank)
//!   occupancy counters and an open-row *demand map* counting queued
//!   transactions per `(bank, row)`. Updated on every push and pop.
//!   Invariants (checked by [`HostMc::assert_index_invariants`]):
//!   `occ[slot]` equals the number of queued transactions targeting flat
//!   bank `slot`; `demand[(slot, row)]` equals the number of queued
//!   transactions targeting exactly `(slot, row)`, with absent keys
//!   meaning zero. Together they answer "does anything still want this
//!   open row?" in O(1) (occupancy zero-test first, then one map probe)
//!   — the FR-FCFS precharge guard and `eager_close` used to rescan
//!   both queues per bank for this. The oldest-read predictor keeps a
//!   cache invalidated by the same push/pop hooks.
//!
//! * **Epoch memos** (per queued transaction): the planned next command
//!   and its `ready_at`, keyed on the target rank's
//!   [`state epoch`](chopim_dram::Rank::epoch). The device model bumps a
//!   rank's epoch exactly when its `plan_access`/`ready_at` answers may
//!   change, so a transaction on an untouched rank is judged from two
//!   integer compares instead of a full timing recomputation. The memo is
//!   also what makes [`next_event_cycle`](HostMc::next_event_cycle) cheap
//!   enough to call after every idle tick.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::perfcount::{self, Counter};
use chopim_dram::{
    Channel, Command, CommandKind, Cycle, DataReady, DramAddress, Issuer, CLOSED_ROW,
};

/// Transaction scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// First-ready, first-come-first-served \[70\] (the paper's scheduler).
    #[default]
    FrFcfs,
    /// Strict in-order FCFS (ablation baseline).
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open until a conflict (the paper's policy).
    #[default]
    Open,
    /// Eagerly close rows with no pending hits (ablation baseline).
    Closed,
}

/// Who a transaction belongs to (for completion routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxMeta {
    /// An LLC miss read; the fill goes back to `core` request `req`.
    CoreRead {
        /// Core index.
        core: usize,
        /// Core-local request id.
        req: u64,
    },
    /// A dirty writeback (posted; no completion routing).
    CoreWrite,
    /// An NDA launch-packet write to a rank's control registers.
    Launch {
        /// Launch id assigned by the system.
        launch: u64,
    },
}

/// One memory transaction queued at the controller.
#[derive(Debug, Clone, Copy)]
pub struct HostTransaction {
    /// Pre-mapped DRAM coordinate.
    pub addr: DramAddress,
    /// True for writes (including launch packets).
    pub is_write: bool,
    /// Completion routing.
    pub meta: TxMeta,
    /// Arrival cycle (for FCFS age and latency stats).
    pub arrival: Cycle,
}

/// The outcome of one scheduler tick.
#[derive(Debug, Clone, Copy)]
pub struct Issued {
    /// The command placed on the channel.
    pub cmd: Command,
    /// Data-burst interval for column commands.
    pub data: DataReady,
    /// The transaction completed by this command (column commands only).
    pub completed: Option<HostTransaction>,
}

/// Epoch sentinel marking a memo as never computed / stale.
const MEMO_INVALID: u64 = u64::MAX;

/// A queued transaction plus its epoch-keyed timing memo. The memo keeps
/// only the planned command *kind* — the full command is reconstructed
/// from the transaction on the rare issue path, keeping the entry small
/// for the per-cycle scans.
#[derive(Debug, Clone, Copy)]
struct QTx {
    tx: HostTransaction,
    /// Flat bank slot: `rank * banks_per_rank + bankgroup *
    /// banks_per_group + bank`.
    slot: u32,
    /// Rank epoch under which `memo_kind`/`memo_ready` are exact
    /// ([`MEMO_INVALID`] = must recompute).
    memo_epoch: u64,
    /// Planned next command kind (hit → RD/WR, conflict → PRE, closed →
    /// ACT).
    memo_kind: CommandKind,
    /// Earliest cycle the planned command satisfies every timing
    /// constraint.
    memo_ready: Cycle,
}

impl QTx {
    fn new(tx: HostTransaction, slot: u32) -> Self {
        Self {
            tx,
            slot,
            memo_epoch: MEMO_INVALID,
            memo_kind: CommandKind::Pre,
            memo_ready: 0,
        }
    }

    /// Refresh the memo if the target rank moved since it was computed
    /// (`epoch` is the rank's current epoch, hoisted by the caller).
    #[inline]
    fn ensure_memo_at(&mut self, ch: &Channel, epoch: u64) {
        if self.memo_epoch == epoch {
            perfcount::bump(Counter::SchedMemoHit);
            return;
        }
        perfcount::bump(Counter::SchedMemoMiss);
        let (kind, ready) = ch.plan_kind_and_ready(
            self.tx.addr.rank,
            self.tx.addr.bankgroup,
            self.tx.addr.bank,
            self.tx.addr.row,
            self.tx.is_write,
            Issuer::Host,
        );
        self.memo_kind = kind;
        self.memo_ready = ready;
        self.memo_epoch = epoch;
    }

    /// Refresh the memo, reading the rank epoch itself.
    #[inline]
    fn ensure_memo(&mut self, ch: &Channel) {
        self.ensure_memo_at(ch, ch.rank_epoch(self.tx.addr.rank));
    }

    /// Materialize the memoized plan as a full command.
    #[inline]
    fn memo_cmd(&self) -> Command {
        let a = &self.tx.addr;
        match self.memo_kind {
            CommandKind::Rd => Command::rd(a.rank, a.bankgroup, a.bank, a.row, a.col),
            CommandKind::Wr => Command::wr(a.rank, a.bankgroup, a.bank, a.row, a.col),
            CommandKind::Pre => Command::pre(a.rank, a.bankgroup, a.bank),
            _ => Command::act(a.rank, a.bankgroup, a.bank, a.row),
        }
    }
}

/// Encode a command kind as the snapshot byte tag (same order the DRAM
/// command codec uses).
fn kind_to_u8(k: CommandKind) -> u8 {
    match k {
        CommandKind::Act => 0,
        CommandKind::Pre => 1,
        CommandKind::PreAll => 2,
        CommandKind::Rd => 3,
        CommandKind::Wr => 4,
        CommandKind::RefAb => 5,
    }
}

fn kind_from_u8(v: u8) -> Result<CommandKind, CodecError> {
    Ok(match v {
        0 => CommandKind::Act,
        1 => CommandKind::Pre,
        2 => CommandKind::PreAll,
        3 => CommandKind::Rd,
        4 => CommandKind::Wr,
        5 => CommandKind::RefAb,
        _ => return Err(CodecError::Corrupt("command kind")),
    })
}

/// Serialize a queued host transaction (snapshot support; shared with
/// the shard inbox and front-end egress codecs).
#[cold]
pub(crate) fn encode_tx(tx: &HostTransaction, w: &mut ByteWriter) {
    w.varint(tx.addr.channel as u64);
    w.varint(tx.addr.rank as u64);
    w.varint(tx.addr.bankgroup as u64);
    w.varint(tx.addr.bank as u64);
    w.varint(u64::from(tx.addr.row));
    w.varint(u64::from(tx.addr.col));
    w.bool(tx.is_write);
    match tx.meta {
        TxMeta::CoreRead { core, req } => {
            w.u8(0);
            w.varint(core as u64);
            w.varint(req);
        }
        TxMeta::CoreWrite => w.u8(1),
        TxMeta::Launch { launch } => {
            w.u8(2);
            w.varint(launch);
        }
    }
    w.varint(tx.arrival);
}

/// Decode a transaction written by [`encode_tx`].
#[cold]
pub(crate) fn decode_tx(r: &mut ByteReader<'_>) -> Result<HostTransaction, CodecError> {
    let addr = DramAddress {
        channel: r.varint_usize()?,
        rank: r.varint_usize()?,
        bankgroup: r.varint_usize()?,
        bank: r.varint_usize()?,
        row: r.varint_u32()?,
        col: r.varint_u32()?,
    };
    let is_write = r.bool()?;
    let meta = match r.u8()? {
        0 => TxMeta::CoreRead {
            core: r.varint_usize()?,
            req: r.varint()?,
        },
        1 => TxMeta::CoreWrite,
        2 => TxMeta::Launch {
            launch: r.varint()?,
        },
        _ => return Err(CodecError::Corrupt("transaction meta tag")),
    };
    let arrival = r.varint()?;
    Ok(HostTransaction {
        addr,
        is_write,
        meta,
        arrival,
    })
}

/// Multiply-xor hasher for the demand map's already-mixed `u64` keys
/// (avoids SipHash on the per-push/pop hot path).
#[derive(Default)]
struct SlotRowHasher(u64);

impl Hasher for SlotRowHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 29);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

// chopim-lint: allow(determinism) -- keyed probes and len() only, never iterated; the custom hasher keeps lookups O(1) on the command-issue path
type DemandMap = HashMap<u64, u32, BuildHasherDefault<SlotRowHasher>>;

/// Incrementally maintained per-(rank,bank) aggregates for one queue.
#[derive(Debug, Clone, Default)]
struct QueueIndex {
    /// `(slot << 32) | row` → number of queued transactions to that row.
    demand: DemandMap,
    /// Queued transactions per flat bank slot — the zero test
    /// short-circuits the demand-map probe for banks nothing targets.
    occ: Vec<u32>,
}

impl QueueIndex {
    fn new(ranks: usize, banks_per_rank: usize, queue_cap: usize) -> Self {
        // Live entries never exceed the queue capacity (one key per
        // queued transaction), but push/pop churn leaves tombstones that
        // hashbrown periodically cleans up. Reserving 4x the live bound
        // keeps every such cleanup an in-place rehash — the map never
        // touches the allocator after construction.
        Self {
            demand: DemandMap::with_capacity_and_hasher(4 * queue_cap, Default::default()),
            occ: vec![0; ranks * banks_per_rank],
        }
    }

    #[inline]
    fn key(slot: u32, row: u32) -> u64 {
        (u64::from(slot) << 32) | u64::from(row)
    }

    #[inline]
    fn on_push(&mut self, slot: u32, row: u32) {
        *self.demand.entry(Self::key(slot, row)).or_insert(0) += 1;
        self.occ[slot as usize] += 1;
    }

    #[inline]
    fn on_pop(&mut self, slot: u32, row: u32) {
        match self.demand.entry(Self::key(slot, row)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => {
                unreachable!("pop of unindexed transaction")
            }
        }
        self.occ[slot as usize] -= 1;
    }

    /// True when some queued transaction targets exactly `(slot, row)`.
    /// The occupancy counter answers the common all-clear case without
    /// touching the map.
    #[inline]
    fn wants(&self, slot: u32, row: u32) -> bool {
        self.occ[slot as usize] > 0 && self.demand.contains_key(&Self::key(slot, row))
    }
}

/// Per-channel FR-FCFS host memory controller.
#[derive(Debug, Clone)]
pub struct HostMc {
    read_q: VecDeque<QTx>,
    write_q: VecDeque<QTx>,
    // chopim-lint: allow(snapshot) -- derived index; decode_state rebuilds demand/occ via on_push while re-queueing
    read_idx: QueueIndex,
    // chopim-lint: allow(snapshot) -- derived index; decode_state rebuilds demand/occ via on_push while re-queueing
    write_idx: QueueIndex,
    // chopim-lint: allow(snapshot) -- fixed queue capacity from construction; decode_state only bounds-checks against it
    read_cap: usize,
    // chopim-lint: allow(snapshot) -- fixed queue capacity from construction; decode_state only bounds-checks against it
    write_cap: usize,
    drain: bool,
    // chopim-lint: allow(snapshot) -- write-drain watermark fixed at construction from queue capacity
    drain_hi: usize,
    // chopim-lint: allow(snapshot) -- write-drain watermark fixed at construction from queue capacity
    drain_lo: usize,
    refresh_due: Vec<Cycle>,
    refresh_pending: Vec<bool>,
    // chopim-lint: allow(snapshot) -- geometry constant from construction; decode_state uses it to validate addresses
    banks_per_group: usize,
    // chopim-lint: allow(snapshot) -- geometry constant from construction; decode_state uses it to validate addresses
    banks_per_rank: usize,
    // chopim-lint: allow(snapshot) -- configuration applied by set_scheduler at shard build time
    scheduler: SchedulerKind,
    // chopim-lint: allow(snapshot) -- configuration applied by set_page_policy at shard build time
    page_policy: PagePolicy,
    /// Cached "rank of the oldest queued read" (`None` = recompute); the
    /// inner value is the predictor answer itself. Invalidated on every
    /// read-queue mutation.
    oldest_read: Cell<Option<Option<usize>>>,
    /// Cached wake-up from [`next_event_cycle`](Self::next_event_cycle):
    /// no command can issue before this cycle. Invalidated whenever the
    /// inputs change — a transaction arrives, any command issues, a
    /// refresh timer fires, or (by the caller) an NDA commands this
    /// channel.
    wake_hint: Option<Cycle>,
    /// Column commands issued.
    pub cols_issued: u64,
    /// ACTs issued on behalf of transactions (row misses).
    pub row_misses: u64,
    /// Sum of read latencies (arrival → data end), for averages.
    pub read_latency_sum: u64,
    /// Reads completed.
    pub reads_completed: u64,
}

impl HostMc {
    /// A controller with Table II queue sizes (32/32). The controller is
    /// channel-agnostic: it drives whatever [`Channel`] the caller hands
    /// to [`tick`](Self::tick) (in the sharded engine, the one its shard
    /// owns).
    pub fn new(ranks: usize, bankgroups: usize, banks_per_group: usize, refi: u32) -> Self {
        // Stagger refresh across ranks to avoid synchronized blackouts.
        let refresh_due = (0..ranks)
            .map(|r| {
                if refi == 0 {
                    Cycle::MAX
                } else {
                    Cycle::from(refi) * (r as u64 + 1) / ranks as u64
                }
            })
            .collect();
        let banks_per_rank = bankgroups * banks_per_group;
        Self {
            read_q: VecDeque::with_capacity(32),
            write_q: VecDeque::with_capacity(32),
            read_idx: QueueIndex::new(ranks, banks_per_rank, 32),
            write_idx: QueueIndex::new(ranks, banks_per_rank, 32),
            read_cap: 32,
            write_cap: 32,
            drain: false,
            drain_hi: 28,
            drain_lo: 8,
            refresh_due,
            refresh_pending: vec![false; ranks],
            banks_per_group,
            banks_per_rank,
            scheduler: SchedulerKind::FrFcfs,
            page_policy: PagePolicy::Open,
            oldest_read: Cell::new(Some(None)),
            wake_hint: None,
            cols_issued: 0,
            row_misses: 0,
            read_latency_sum: 0,
            reads_completed: 0,
        }
    }

    /// Override the write-drain watermarks (ablation studies).
    pub fn set_drain_watermarks(&mut self, hi: usize, lo: usize) {
        assert!(lo < hi && hi <= self.write_cap, "lo < hi <= capacity");
        self.drain_hi = hi;
        self.drain_lo = lo;
    }

    /// Select the scheduling discipline (ablation studies).
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.scheduler = kind;
    }

    /// Select the row-buffer policy (ablation studies).
    pub fn set_page_policy(&mut self, policy: PagePolicy) {
        self.page_policy = policy;
    }

    #[inline]
    fn slot_of(&self, a: &DramAddress) -> u32 {
        (a.rank * self.banks_per_rank + a.bankgroup * self.banks_per_group + a.bank) as u32
    }

    /// Queue a transaction.
    ///
    /// Launch packets and reads share the read queue (control writes are
    /// latency sensitive); core writebacks use the write queue. Returns
    /// `false` when the target queue is full.
    pub fn try_push(&mut self, tx: HostTransaction) -> bool {
        if !self.push_inner(tx) {
            return false;
        }
        self.wake_hint = None;
        true
    }

    /// [`try_push`](Self::try_push), but instead of dropping the cached
    /// wake-up it lowers it to the new transaction's own ready time — the
    /// only way one arrival can make the controller actionable earlier.
    /// (Deferred drain-flag latching stays exact: the flag can only
    /// matter on a cycle that issues, and the hint proves none can.)
    pub fn try_push_hinted(&mut self, tx: HostTransaction, ch: &Channel, now: Cycle) -> bool {
        if !self.push_inner(tx) {
            return false;
        }
        // Pre-fill the freshly pushed entry's memo: the push already
        // tells us the scheduler will need its plan, and the hint (when
        // live) needs its ready time anyway.
        let use_write_q = matches!(tx.meta, TxMeta::CoreWrite);
        let entry = if use_write_q {
            self.write_q.back_mut()
        } else {
            self.read_q.back_mut()
        }
        .expect("just pushed");
        entry.ensure_memo(ch);
        if let Some(h) = self.wake_hint {
            if h > now {
                let ready = entry.memo_ready.max(now);
                self.wake_hint = Some(h.min(ready));
            }
        }
        true
    }

    /// The shared admission rule: queue selection + capacity + enqueue +
    /// index maintenance.
    fn push_inner(&mut self, tx: HostTransaction) -> bool {
        let use_write_q = matches!(tx.meta, TxMeta::CoreWrite);
        let (q, idx, cap) = if use_write_q {
            (&mut self.write_q, &mut self.write_idx, self.write_cap)
        } else {
            (&mut self.read_q, &mut self.read_idx, self.read_cap)
        };
        if q.len() >= cap {
            return false;
        }
        let slot = (tx.addr.rank * self.banks_per_rank
            + tx.addr.bankgroup * self.banks_per_group
            + tx.addr.bank) as u32;
        idx.on_push(slot, tx.addr.row);
        q.push_back(QTx::new(tx, slot));
        if !use_write_q {
            self.oldest_read.set(None);
        }
        true
    }

    /// Remove entry `i` from a queue, maintaining the indexes.
    fn remove_at(&mut self, writes: bool, i: usize) -> HostTransaction {
        let (q, idx) = if writes {
            (&mut self.write_q, &mut self.write_idx)
        } else {
            (&mut self.read_q, &mut self.read_idx)
        };
        let e = q.remove(i).expect("index valid");
        idx.on_pop(e.slot, e.tx.addr.row);
        if !writes {
            self.oldest_read.set(None);
        }
        e.tx
    }

    /// Drop the cached wake-up because an NDA commanded this channel (its
    /// rank timing registers or bank state changed under us).
    pub fn invalidate_wake_hint(&mut self) {
        self.wake_hint = None;
    }

    /// The cached wake-up, if any. While `now < wake_hint` a whole
    /// [`tick`](Self::tick) is provably a no-op (nothing can issue, no
    /// refresh timer fires, no latched flag transitions — all of those
    /// invalidate the hint), so the caller may skip it.
    pub fn wake_hint(&self) -> Option<Cycle> {
        self.wake_hint
    }

    /// Occupancy of the read queue.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Occupancy of the write queue.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// True when both queues are empty.
    pub fn is_empty(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// The rank targeted by the oldest queued host *read* — the next-rank
    /// predictor's input (paper §III-B). Cached; recomputed only after a
    /// read-queue mutation.
    pub fn oldest_read_rank(&self) -> Option<usize> {
        if let Some(ans) = self.oldest_read.get() {
            return ans;
        }
        let ans = self
            .read_q
            .iter()
            .find(|e| !e.tx.is_write)
            .map(|e| e.tx.addr.rank);
        self.oldest_read.set(Some(ans));
        ans
    }

    /// Column commands that hit an already-open row (columns minus ACTs).
    pub fn row_hits(&self) -> u64 {
        self.cols_issued.saturating_sub(self.row_misses)
    }

    /// Validate every index invariant against a full queue recount
    /// (test/debug aid; O(queue x banks)).
    #[doc(hidden)]
    pub fn assert_index_invariants(&self) {
        for (q, idx) in [
            (&self.read_q, &self.read_idx),
            (&self.write_q, &self.write_idx),
        ] {
            let mut demand: BTreeMap<u64, u32> = BTreeMap::new();
            let mut occ = vec![0u32; idx.occ.len()];
            for e in q {
                let slot = self.slot_of(&e.tx.addr);
                assert_eq!(slot, e.slot, "stale slot");
                *demand
                    .entry(QueueIndex::key(slot, e.tx.addr.row))
                    .or_insert(0) += 1;
                occ[slot as usize] += 1;
            }
            assert_eq!(occ, idx.occ, "occupancy counters diverged");
            assert_eq!(demand.len(), idx.demand.len(), "demand key sets diverged");
            for (k, v) in &demand {
                assert_eq!(idx.demand.get(k), Some(v), "demand count diverged");
            }
        }
        if let Some(cached) = self.oldest_read.get() {
            let fresh = self
                .read_q
                .iter()
                .find(|e| !e.tx.is_write)
                .map(|e| e.tx.addr.rank);
            assert_eq!(cached, fresh, "oldest-read cache diverged");
        }
    }

    /// Dump queue entries with bank state and readiness (debugging aid).
    pub fn explain(&self, ch: &Channel, now: Cycle) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "drain={} refpend={:?} refdue={:?} now={now}",
            self.drain, self.refresh_pending, self.refresh_due
        );
        for (name, q) in [("R", &self.read_q), ("W", &self.write_q)] {
            for e in q.iter() {
                let tx = &e.tx;
                let (bg, bk) = (tx.addr.bankgroup, tx.addr.bank);
                let bank = ch.bank(tx.addr.rank, bg, bk);
                let cmd = if tx.is_write {
                    Command::wr(tx.addr.rank, bg, bk, tx.addr.row, tx.addr.col)
                } else {
                    Command::rd(tx.addr.rank, bg, bk, tx.addr.row, tx.addr.col)
                };
                let _ = writeln!(
                    out,
                    "{name} {} arrival={} open={:?} ready={:?}",
                    cmd,
                    tx.arrival,
                    bank.open_row(),
                    ch.ready_at(&cmd, Issuer::Host),
                );
            }
        }
        out
    }

    /// Conservative earliest cycle at or after `now` at which this
    /// controller could issue any command, assuming no new transactions
    /// arrive and no other agent touches the memory system first (either
    /// would be an event that re-computes horizons). Used by the
    /// event-horizon fast-forward; a too-early answer only costs a wasted
    /// wake-up, never correctness.
    pub fn next_event_cycle(&mut self, ch: &Channel, now: Cycle) -> Cycle {
        // The write-drain hysteresis flag latches once per executed tick;
        // if the queue length already crossed a watermark, the flag flips
        // on the very next tick and that transition must not be skipped.
        if (self.drain && self.write_q.len() <= self.drain_lo)
            || (!self.drain && self.write_q.len() >= self.drain_hi)
        {
            return now;
        }
        if let Some(h) = self.wake_hint {
            if h > now {
                return h;
            }
        }
        perfcount::bump(Counter::HorizonScans);
        let mut h = Cycle::MAX;
        // Refresh: an armed timer fires at its due cycle; a pending
        // refresh issues REF (or precharges toward it) when timing allows.
        if ch.config().timing.refresh_enabled() {
            for rank in 0..self.refresh_due.len() {
                if self.refresh_pending[rank] {
                    let cmd = if ch.all_banks_closed(rank) {
                        Command::ref_ab(rank)
                    } else {
                        Command::pre_all(rank)
                    };
                    if let Some(r) = ch.ready_at(&cmd, Issuer::Host) {
                        h = h.min(r);
                    }
                } else {
                    h = h.min(self.refresh_due[rank]);
                }
            }
        }
        // Closed-page policy: an open row with no queued hit is eagerly
        // precharged; any open bank is a conservative wake-up candidate.
        if self.page_policy == PagePolicy::Closed {
            for rank in 0..ch.config().ranks_per_channel {
                for (flat, &row) in ch.open_rows_of(rank).iter().enumerate() {
                    if row != CLOSED_ROW {
                        let cmd = Command::pre(
                            rank,
                            flat / self.banks_per_group,
                            flat % self.banks_per_group,
                        );
                        if let Some(r) = ch.ready_at(&cmd, Issuer::Host) {
                            h = h.min(r);
                        }
                    }
                }
            }
        }
        // Queued transactions: earliest cycle the next command of any
        // transaction satisfies timing (ranks preparing a refresh are
        // skipped by the scheduler until the refresh issues, which is an
        // event of its own).
        for e in self.read_q.iter_mut().chain(self.write_q.iter_mut()) {
            if self.refresh_pending[e.tx.addr.rank] {
                continue;
            }
            e.ensure_memo(ch);
            h = h.min(e.memo_ready);
            if h <= now {
                return now;
            }
        }
        let h = h.max(now);
        self.wake_hint = Some(h);
        h
    }

    /// One scheduler tick: issue at most one command on the channel.
    pub fn tick(&mut self, ch: &mut Channel, now: Cycle) -> Option<Issued> {
        let issued = self.tick_inner(ch, now);
        if issued.is_some() {
            // Any issued command changes timing/bank state.
            self.wake_hint = None;
        }
        issued
    }

    fn tick_inner(&mut self, ch: &mut Channel, now: Cycle) -> Option<Issued> {
        // 1. Refresh management.
        for rank in 0..self.refresh_due.len() {
            if now >= self.refresh_due[rank] && !self.refresh_pending[rank] {
                self.refresh_pending[rank] = true;
                // Pending refresh changes what the scheduler may do.
                self.wake_hint = None;
            }
        }
        for rank in 0..self.refresh_pending.len() {
            if !self.refresh_pending[rank] {
                continue;
            }
            let refi = Cycle::from(ch.config().timing.refi);
            if ch.all_banks_closed(rank) {
                let cmd = Command::ref_ab(rank);
                if ch.can_issue(&cmd, Issuer::Host, now) {
                    let data = ch.issue_prechecked(&cmd, Issuer::Host, now);
                    self.refresh_pending[rank] = false;
                    self.refresh_due[rank] += refi;
                    return Some(Issued {
                        cmd,
                        data,
                        completed: None,
                    });
                }
            } else {
                let cmd = Command::pre_all(rank);
                if ch.can_issue(&cmd, Issuer::Host, now) {
                    let data = ch.issue_prechecked(&cmd, Issuer::Host, now);
                    return Some(Issued {
                        cmd,
                        data,
                        completed: None,
                    });
                }
            }
            // Rank is blocked preparing refresh; don't schedule new work
            // to it below (handled by the skip in candidate passes).
        }

        // 1b. Closed-page policy: eagerly precharge host-opened rows with
        // no pending hit in either queue.
        if self.page_policy == PagePolicy::Closed {
            if let Some(iss) = self.eager_close(ch, now) {
                return Some(iss);
            }
        }

        // 2. Write-drain hysteresis.
        if self.write_q.len() >= self.drain_hi {
            self.drain = true;
        } else if self.write_q.len() <= self.drain_lo {
            self.drain = false;
        }
        let serve_writes = self.drain || self.read_q.is_empty();

        // 3. FR-FCFS over the selected queue.
        let result = if serve_writes && !self.write_q.is_empty() {
            self.schedule(ch, now, true)
        } else {
            self.schedule(ch, now, false)
        };
        // Opportunistic fallback: if the chosen queue couldn't issue and
        // the other has work, let it try (keeps the channel busy).
        match result {
            Some(r) => Some(r),
            None if serve_writes && !self.read_q.is_empty() => self.schedule(ch, now, false),
            None => None,
        }
    }

    /// Precharge one bank whose open row no queued transaction wants.
    /// The demand maps answer "is this row still wanted?" in O(1).
    fn eager_close(&mut self, ch: &mut Channel, now: Cycle) -> Option<Issued> {
        let ranks = ch.config().ranks_per_channel;
        for rank in 0..ranks {
            let mut found: Option<Command> = None;
            for (flat, &open) in ch.open_rows_of(rank).iter().enumerate() {
                if open == CLOSED_ROW {
                    continue;
                }
                let slot = (rank * self.banks_per_rank + flat) as u32;
                if self.read_idx.wants(slot, open) || self.write_idx.wants(slot, open) {
                    continue;
                }
                let cmd = Command::pre(
                    rank,
                    flat / self.banks_per_group,
                    flat % self.banks_per_group,
                );
                if ch.can_issue(&cmd, Issuer::Host, now) {
                    found = Some(cmd);
                    break;
                }
            }
            if let Some(cmd) = found {
                let data = ch.issue_prechecked(&cmd, Issuer::Host, now);
                return Some(Issued {
                    cmd,
                    data,
                    completed: None,
                });
            }
        }
        None
    }

    fn schedule(&mut self, ch: &mut Channel, now: Cycle, writes: bool) -> Option<Issued> {
        let q = if writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        if q.is_empty() {
            return None;
        }
        // Host commands share the external C/A bus: when it already
        // carried one this cycle nothing below can issue (identical to
        // the per-candidate `can_issue` answers, checked once).
        if ch.cmd_bus_busy(now) {
            return None;
        }
        perfcount::bump(Counter::SchedPasses);
        // One fused scan implements both FR-FCFS passes: a row *hit*
        // anywhere in the horizon beats a row command (ACT/PRE) earlier in
        // it, so the scan runs in age order remembering the first ready
        // row command and stops at the first ready hit. A transaction
        // whose memoized plan is a column command *is* a row hit, so each
        // entry costs two integer compares while its target rank is
        // unchanged. Strict FCFS only ever looks at the queue head.
        let horizon = match self.scheduler {
            SchedulerKind::FrFcfs => q.len(),
            SchedulerKind::Fcfs => 1,
        };
        let idx = if writes {
            &self.write_idx
        } else {
            &self.read_idx
        };
        let any_refresh = self.refresh_pending.iter().any(|&p| p);
        let mut hit_idx: Option<usize> = None;
        // First age-ordered ready row command (`is_act` distinguishes ACT
        // from PRE for the miss statistics). A conflicting row is only
        // precharged when no other transaction *in the served queue*
        // still hits it (the demand map answers that in O(1); considering
        // the other queue here can deadlock: reads would defer to a write
        // hit that is never served while reads are pending). Strict FCFS
        // sees only the queue head, which — being the conflicting
        // transaction itself — never holds its own row open.
        let mut row_pick: Option<(Command, bool)> = None;
        for (i, e) in q.iter_mut().take(horizon).enumerate() {
            perfcount::bump(Counter::SchedEntriesScanned);
            if any_refresh && self.refresh_pending[e.tx.addr.rank] {
                continue;
            }
            e.ensure_memo_at(ch, ch.rank_epoch(e.tx.addr.rank));
            match e.memo_kind {
                CommandKind::Rd | CommandKind::Wr => {
                    if e.memo_ready <= now {
                        hit_idx = Some(i);
                        break;
                    }
                }
                CommandKind::Act => {
                    if row_pick.is_none() && e.memo_ready <= now {
                        row_pick = Some((e.memo_cmd(), true));
                    }
                }
                CommandKind::Pre => {
                    if row_pick.is_none() && e.memo_ready <= now {
                        let open = ch
                            .bank(e.tx.addr.rank, e.tx.addr.bankgroup, e.tx.addr.bank)
                            .open_row()
                            .expect("conflict implies open row");
                        if !(self.scheduler == SchedulerKind::FrFcfs && idx.wants(e.slot, open)) {
                            row_pick = Some((e.memo_cmd(), false));
                        }
                    }
                }
                _ => unreachable!("plan is always ACT/PRE/RD/WR"),
            }
        }
        if let Some(i) = hit_idx {
            let cmd = q[i].memo_cmd();
            let tx = self.remove_at(writes, i);
            let data = ch.issue_prechecked(&cmd, Issuer::Host, now);
            self.cols_issued += 1;
            if !tx.is_write {
                self.reads_completed += 1;
                self.read_latency_sum += data.end.expect("read burst") - tx.arrival;
            }
            return Some(Issued {
                cmd,
                data,
                completed: Some(tx),
            });
        }
        if let Some((cmd, is_act)) = row_pick {
            let data = ch.issue_prechecked(&cmd, Issuer::Host, now);
            if is_act {
                self.row_misses += 1;
            }
            return Some(Issued {
                cmd,
                data,
                completed: None,
            });
        }
        None
    }

    // ---- snapshot codec -------------------------------------------------

    /// Serialize all mutable controller state (snapshot support).
    ///
    /// Queue entries carry their epoch memos verbatim: memos are a pure
    /// cache, but re-deriving them on resume would perturb the memo
    /// hit/miss perf counters, and keeping them costs a few bytes. The
    /// `slot` field and both [`QueueIndex`]es are derived data and are
    /// rebuilt on decode instead of stored.
    #[cold]
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        for q in [&self.read_q, &self.write_q] {
            w.varint(q.len() as u64);
            for e in q {
                encode_tx(&e.tx, w);
                w.u64(e.memo_epoch);
                w.u8(kind_to_u8(e.memo_kind));
                w.varint(e.memo_ready);
            }
        }
        w.bool(self.drain);
        w.cycle_slice(&self.refresh_due);
        for &p in &self.refresh_pending {
            w.bool(p);
        }
        match self.oldest_read.get() {
            None => w.u8(0),
            Some(None) => w.u8(1),
            Some(Some(rank)) => {
                w.u8(2);
                w.varint(rank as u64);
            }
        }
        w.opt_cycle(self.wake_hint);
        w.varint(self.cols_issued);
        w.varint(self.row_misses);
        w.varint(self.read_latency_sum);
        w.varint(self.reads_completed);
    }

    /// Overwrite this (freshly constructed) controller from bytes written
    /// by [`encode_state`](Self::encode_state), rebuilding both queue
    /// indexes and validating every address against this controller's
    /// geometry.
    #[cold]
    pub(crate) fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let ranks = self.refresh_pending.len();
        let banks_per_rank = self.banks_per_rank;
        let banks_per_group = self.banks_per_group;
        let bankgroups = banks_per_rank / banks_per_group;
        for writes in [false, true] {
            let (q, idx, cap) = if writes {
                (&mut self.write_q, &mut self.write_idx, self.write_cap)
            } else {
                (&mut self.read_q, &mut self.read_idx, self.read_cap)
            };
            q.clear();
            idx.demand.clear();
            idx.occ.fill(0);
            let n = r.varint_usize()?;
            if n > cap {
                return Err(CodecError::Corrupt("MC queue over capacity"));
            }
            for _ in 0..n {
                let tx = decode_tx(r)?;
                let a = &tx.addr;
                if a.rank >= ranks || a.bankgroup >= bankgroups || a.bank >= banks_per_group {
                    return Err(CodecError::Corrupt("MC transaction address out of range"));
                }
                if matches!(tx.meta, TxMeta::CoreWrite) != writes {
                    return Err(CodecError::Corrupt("transaction in wrong MC queue"));
                }
                let slot =
                    (a.rank * banks_per_rank + a.bankgroup * banks_per_group + a.bank) as u32;
                let mut e = QTx::new(tx, slot);
                e.memo_epoch = r.u64()?;
                e.memo_kind = kind_from_u8(r.u8()?)?;
                e.memo_ready = r.varint()?;
                idx.on_push(slot, a.row);
                q.push_back(e);
            }
        }
        self.drain = r.bool()?;
        let due = r.cycle_vec()?;
        if due.len() != ranks {
            return Err(CodecError::ConfigMismatch);
        }
        self.refresh_due = due;
        for p in self.refresh_pending.iter_mut() {
            *p = r.bool()?;
        }
        self.oldest_read.set(match r.u8()? {
            0 => None,
            1 => Some(None),
            2 => {
                let rank = r.varint_usize()?;
                if rank >= ranks {
                    return Err(CodecError::Corrupt("oldest-read rank out of range"));
                }
                Some(Some(rank))
            }
            _ => return Err(CodecError::Corrupt("oldest-read cache tag")),
        });
        self.wake_hint = r.opt_cycle()?;
        self.cols_issued = r.varint()?;
        self.row_misses = r.varint()?;
        self.read_latency_sum = r.varint()?;
        self.reads_completed = r.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopim_dram::{DramConfig, TimingParams};

    fn setup() -> (Channel, HostMc) {
        let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
        let mc = HostMc::new(
            cfg.ranks_per_channel,
            cfg.bankgroups,
            cfg.banks_per_group,
            cfg.timing.refi,
        );
        (Channel::new(&cfg), mc)
    }

    fn read_tx(
        rank: usize,
        bg: usize,
        bank: usize,
        row: u32,
        col: u32,
        at: Cycle,
    ) -> HostTransaction {
        HostTransaction {
            addr: DramAddress {
                channel: 0,
                rank,
                bankgroup: bg,
                bank,
                row,
                col,
            },
            is_write: false,
            meta: TxMeta::CoreRead { core: 0, req: 0 },
            arrival: at,
        }
    }

    fn write_tx(rank: usize, row: u32, col: u32, at: Cycle) -> HostTransaction {
        HostTransaction {
            addr: DramAddress {
                channel: 0,
                rank,
                bankgroup: 0,
                bank: 0,
                row,
                col,
            },
            is_write: true,
            meta: TxMeta::CoreWrite,
            arrival: at,
        }
    }

    /// Drive until `n` transactions complete or `max` cycles pass.
    fn run(ch: &mut Channel, mc: &mut HostMc, n: usize, max: Cycle) -> Vec<(Cycle, Command)> {
        let mut done = 0;
        let mut cmds = Vec::new();
        for now in 0..max {
            if let Some(iss) = mc.tick(ch, now) {
                cmds.push((now, iss.cmd));
                if iss.completed.is_some() {
                    done += 1;
                    if done == n {
                        break;
                    }
                }
            }
        }
        assert_eq!(done, n, "only {done}/{n} completed; cmds={}", cmds.len());
        cmds
    }

    #[test]
    fn row_hits_are_preferred() {
        let (mut ch, mut mc) = setup();
        // Two txs to row 5, one to row 9, same bank. FR-FCFS serves both
        // row-5 txs before touching row 9 even though row 9's arrived
        // between them.
        assert!(mc.try_push(read_tx(0, 0, 0, 5, 0, 0)));
        assert!(mc.try_push(read_tx(0, 0, 0, 9, 0, 1)));
        assert!(mc.try_push(read_tx(0, 0, 0, 5, 1, 2)));
        let cmds = run(&mut ch, &mut mc, 3, 1000);
        let cols: Vec<u32> = cmds
            .iter()
            .filter(|(_, c)| c.kind == CommandKind::Rd)
            .map(|(_, c)| c.row)
            .collect();
        assert_eq!(cols, vec![5, 5, 9]);
        assert_eq!(mc.row_hits(), 1, "second row-5 access is the hit");
        assert_eq!(mc.row_misses, 2);
        mc.assert_index_invariants();
    }

    #[test]
    fn write_drain_kicks_in_at_watermark() {
        let (mut ch, mut mc) = setup();
        // Fill write queue past the high watermark plus one read.
        for i in 0..30u32 {
            assert!(mc.try_push(write_tx(0, i / 16, i % 16, 0)));
        }
        assert!(mc.try_push(read_tx(1, 0, 0, 1, 0, 0)));
        let mut writes_done = 0;
        for now in 0..5000 {
            if let Some(iss) = mc.tick(&mut ch, now) {
                if let Some(tx) = iss.completed {
                    if tx.is_write {
                        writes_done += 1;
                    }
                }
            }
            if mc.write_queue_len() <= 8 {
                break;
            }
        }
        assert!(writes_done >= 30 - 8, "drained {writes_done}");
        mc.assert_index_invariants();
    }

    #[test]
    fn queue_capacity_enforced() {
        let (_, mut mc) = setup();
        for i in 0..32 {
            assert!(mc.try_push(read_tx(0, 0, 0, i, 0, 0)));
        }
        assert!(!mc.try_push(read_tx(0, 0, 0, 99, 0, 0)));
        // Write queue is separate.
        assert!(mc.try_push(write_tx(0, 0, 0, 0)));
        mc.assert_index_invariants();
    }

    #[test]
    fn oldest_read_rank_skips_launches_and_writes() {
        let (_, mut mc) = setup();
        let launch = HostTransaction {
            addr: DramAddress {
                channel: 0,
                rank: 0,
                ..Default::default()
            },
            is_write: true,
            meta: TxMeta::Launch { launch: 0 },
            arrival: 0,
        };
        assert!(mc.try_push(launch));
        assert_eq!(mc.oldest_read_rank(), None);
        assert!(mc.try_push(read_tx(1, 0, 0, 5, 0, 1)));
        assert_eq!(mc.oldest_read_rank(), Some(1));
        mc.assert_index_invariants();
    }

    #[test]
    fn refresh_is_scheduled_periodically() {
        let cfg = DramConfig::table_ii(); // refresh on
        let mut ch = Channel::new(&cfg);
        let mut mc = HostMc::new(
            cfg.ranks_per_channel,
            cfg.bankgroups,
            cfg.banks_per_group,
            cfg.timing.refi,
        );
        // Keep a stream of reads flowing while refreshes must interleave.
        let mut refreshes = 0;
        for now in 0..40_000u64 {
            if mc.read_queue_len() < 4 {
                let row = (now / 100) as u32 % 8;
                mc.try_push(read_tx(0, (now % 4) as usize, 0, row, 0, now));
            }
            if let Some(iss) = mc.tick(&mut ch, now) {
                if iss.cmd.kind == CommandKind::RefAb {
                    refreshes += 1;
                }
            }
        }
        // 40k cycles / tREFI 9360 ≈ 4 refreshes per rank x 2 ranks.
        assert!(refreshes >= 6, "only {refreshes} refreshes");
        assert!(ch.stats.ranks.iter().map(|r| r.refreshes).sum::<u64>() >= 6);
    }

    #[test]
    fn read_latency_accounting() {
        let (mut ch, mut mc) = setup();
        mc.try_push(read_tx(0, 0, 0, 5, 0, 0));
        run(&mut ch, &mut mc, 1, 200);
        assert_eq!(mc.reads_completed, 1);
        // ACT at 0, RD at tRCD=16, data end at 16+16+4=36.
        assert_eq!(mc.read_latency_sum, 36);
    }

    #[test]
    fn fcfs_serves_strictly_in_order() {
        let (mut ch, mut mc) = setup();
        mc.set_scheduler(SchedulerKind::Fcfs);
        // Row-hit reordering would serve the second row-5 access early;
        // FCFS must not.
        assert!(mc.try_push(read_tx(0, 0, 0, 5, 0, 0)));
        assert!(mc.try_push(read_tx(0, 0, 0, 9, 0, 1)));
        assert!(mc.try_push(read_tx(0, 0, 0, 5, 1, 2)));
        let cmds = run(&mut ch, &mut mc, 3, 2000);
        let rows: Vec<u32> = cmds
            .iter()
            .filter(|(_, c)| c.kind == CommandKind::Rd)
            .map(|(_, c)| c.row)
            .collect();
        assert_eq!(rows, vec![5, 9, 5], "FCFS must preserve arrival order");
    }

    #[test]
    fn closed_page_policy_precharges_idle_rows() {
        let (mut ch, mut mc) = setup();
        mc.set_page_policy(PagePolicy::Closed);
        mc.try_push(read_tx(0, 0, 0, 5, 0, 0));
        run(&mut ch, &mut mc, 1, 500);
        // With no pending work, the opened row gets closed eagerly.
        let mut closed = false;
        for now in 500..2000 {
            if let Some(iss) = mc.tick(&mut ch, now) {
                if iss.cmd.kind == CommandKind::Pre {
                    closed = true;
                    break;
                }
            }
        }
        assert!(closed, "closed-page policy must precharge the idle row");
        assert!(ch.all_banks_closed(0));
    }

    #[test]
    fn does_not_precharge_rows_with_pending_hits() {
        let (mut ch, mut mc) = setup();
        // Oldest wants row 9 (conflict with open row 5), but a younger tx
        // still wants row 5: the controller must not close row 5 first.
        mc.try_push(read_tx(0, 0, 0, 5, 0, 0));
        let cmds = run(&mut ch, &mut mc, 1, 200);
        assert_eq!(cmds.last().unwrap().1.kind, CommandKind::Rd);
        mc.try_push(read_tx(0, 0, 0, 9, 0, 10));
        mc.try_push(read_tx(0, 0, 0, 5, 3, 11));
        let cmds = run(&mut ch, &mut mc, 2, 1000);
        // The row-5 hit completes before any precharge of row 5.
        let first_pre = cmds.iter().position(|(_, c)| c.kind == CommandKind::Pre);
        let row5_rd = cmds
            .iter()
            .position(|(_, c)| c.kind == CommandKind::Rd && c.row == 5)
            .expect("row-5 read");
        if let Some(p) = first_pre {
            assert!(row5_rd < p, "hit should complete before precharge");
        }
    }
}
