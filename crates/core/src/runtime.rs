//! The Chopim runtime and API (paper §V, Fig. 8).
//!
//! The runtime owns array allocation (colored, system-row-granular, via
//! the OS model), splits API calls into per-rank coarse-grain NDA
//! instructions, tracks completion, and executes the numerics functionally
//! on the `f32` backing store when an operation completes (the
//! function/timing split documented in `DESIGN.md`).
//!
//! ## Sessions, handles, and the op graph
//!
//! Submission is organized around [`Session`]s — per-tenant submission
//! contexts with their own in-order op streams — and typed [`OpHandle`]s
//! returned by builder-style launch calls:
//!
//! ```ignore
//! let sess = sys.runtime.create_session();
//! let a = sess.elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
//!     .submit();
//! let b = sess.elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
//!     .after(a)          // explicit DAG edge (redundant here: same session)
//!     .submit();
//! sys.drive(b, 10_000_000);
//! ```
//!
//! Within a session, ops execute in submission order by default — the
//! paper's blocking semantics (§V): instruction *issue* is FIFO per rank
//! but completion is not, so overlapping dependent ops would break
//! read-after-write across launches. [`OpBuilder::unordered`] opts an op
//! out of program order so it is gated only by its explicit
//! [`OpBuilder::after`] edges, which may reference handles from *any*
//! session. Dependent ops stage only when every parent has retired.
//!
//! Across sessions, [`Runtime::next_launches`] arbitrates by QoS class
//! ([`QosClass`]): latency-sensitive sessions take strict priority, and
//! batch sessions share the remainder by weighted virtual time — integer
//! arithmetic only, so schedules stay bit-identical across engines and
//! snapshot/resume. Arbitration cost is O(active), not O(sessions):
//! sessions live in a ready index (per-band heaps plus per-NDA credit
//! waitlists and a retry wake heap) and are touched only when an event —
//! submit, dependency retirement, credit return, retry expiry, fault
//! quarantine, job admission — can actually change what they may stage.
//!
//! On top of direct submission sits a batched executor:
//! [`Runtime::submit_job`] accepts a declarative [`JobGraph`] under
//! per-tenant admission control ([`TenantLimits`]) and returns a
//! [`Ticket`]; per-tenant metering surfaces in `SimReport::tenants`.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::perfcount::{self, Counter};
use chopim_dram::DramConfig;
use chopim_mapping::color::{Color, ColoredAllocator, Region, SystemRow};
use chopim_mapping::{AddressMapper, PartitionedMapping};
use chopim_nda::isa::{NdaInstr, Opcode};
use chopim_nda::operand::OperandLayout;
use chopim_nda::pe;
use chopim_nda::snapshot::{decode_instr, decode_layout, encode_instr, encode_layout};

use crate::energy::PeActivity;
use crate::report::TenantReport;

/// Handle to a runtime-managed vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecId(pub(crate) usize);

/// Handle to a runtime-managed row-major matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatId(pub(crate) usize);

/// A per-tenant submission context.
///
/// Each session owns an ordered stream of operations; independent
/// sessions share the machine under fair-share arbitration (see the
/// module docs). Sessions are cheap `Copy` handles — create them with
/// [`Runtime::create_session`], or use [`Runtime::default_session`] for
/// single-tenant code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Session {
    id: u32,
}

/// Typed handle to a launched (possibly multi-instruction, multi-rank)
/// operation: the `(session, op)` pair completion routing carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpHandle {
    pub(crate) sess: u32,
    pub(crate) idx: u32,
}

impl OpHandle {
    /// The session this op was submitted to.
    pub fn session(self) -> Session {
        Session { id: self.sess }
    }
}

/// Deprecated name for [`OpHandle`] (ops used to be numbered globally;
/// they are now per-session handles).
#[deprecated(note = "use OpHandle")]
pub type OpId = OpHandle;

/// Terminal status of an operation. Every submitted op reaches exactly
/// one of these (the recovery property suite's no-lost-ops contract);
/// [`Runtime::op_status`] returns `None` while the op is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpStatus {
    /// The op finished and its results are visible (includes ops
    /// re-executed on the host via [`OpBuilder::fallback_host`]).
    Completed,
    /// The op exhausted its retry budget on a faulted machine and has
    /// no host fallback; results are undefined.
    Failed,
    /// The op's [`OpBuilder::deadline`] expired before it finished.
    TimedOut,
    /// A dependency (explicit [`OpBuilder::after`] edge) concluded
    /// unsuccessfully, so this op was aborted instead of waiting
    /// forever.
    DepFailed,
}

impl OpStatus {
    #[cold]
    fn encode(this: Option<OpStatus>) -> u8 {
        match this {
            None => 0,
            Some(OpStatus::Completed) => 1,
            Some(OpStatus::Failed) => 2,
            Some(OpStatus::TimedOut) => 3,
            Some(OpStatus::DepFailed) => 4,
        }
    }

    #[cold]
    fn decode(tag: u8) -> Result<Option<OpStatus>, CodecError> {
        Ok(match tag {
            0 => None,
            1 => Some(OpStatus::Completed),
            2 => Some(OpStatus::Failed),
            3 => Some(OpStatus::TimedOut),
            4 => Some(OpStatus::DepFailed),
            _ => return Err(CodecError::Corrupt("op status tag")),
        })
    }

    /// True for every terminal state except [`OpStatus::Completed`].
    pub fn is_failure(self) -> bool {
        self != OpStatus::Completed
    }
}

/// Runtime-side recovery accounting (folded into the report's
/// `FaultReport`).
#[derive(Debug, Clone, Default)]
pub(crate) struct RecoveryCounters {
    pub instr_retries: u64,
    pub instr_timeouts: u64,
    pub ops_failed: u64,
    pub ops_timed_out: u64,
    pub ops_dep_failed: u64,
    pub host_fallbacks: u64,
    pub ranks_quarantined: u64,
    pub max_retry_backoff: u64,
}

/// Serialize an op handle (snapshot support; shared with the shard and
/// system codecs).
#[cold]
pub(crate) fn encode_handle(h: OpHandle, w: &mut ByteWriter) {
    w.varint(u64::from(h.sess));
    w.varint(u64::from(h.idx));
}

/// Decode an op handle written by [`encode_handle`]. Bounds against the
/// session table are checked by the caller once all sessions exist
/// (handles may forward-reference).
#[cold]
pub(crate) fn decode_handle(r: &mut ByteReader<'_>) -> Result<OpHandle, CodecError> {
    Ok(OpHandle {
        sess: r.varint_u32()?,
        idx: r.varint_u32()?,
    })
}

#[cold]
fn encode_opcode(op: Opcode, w: &mut ByteWriter) {
    let idx = Opcode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("opcode in ALL");
    w.u8(idx as u8);
}

#[cold]
fn decode_opcode(r: &mut ByteReader<'_>) -> Result<Opcode, CodecError> {
    Opcode::ALL
        .get(r.u8()? as usize)
        .copied()
        .ok_or(CodecError::Corrupt("opcode"))
}

#[cold]
fn encode_f32s(vs: &[f32], w: &mut ByteWriter) {
    w.varint(vs.len() as u64);
    for &v in vs {
        w.f32(v);
    }
}

#[cold]
fn decode_f32s(r: &mut ByteReader<'_>) -> Result<Vec<f32>, CodecError> {
    let n = r.varint_usize()?;
    let mut vs = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        vs.push(r.f32()?);
    }
    Ok(vs)
}

/// How an array is distributed (paper Fig. 8: `nda::SHARED` vs
/// `nda::PRIVATE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Striped across all NDAs, colored for rank alignment.
    Shared,
    /// One full copy per NDA (e.g. the `a_pvt` accumulators of Fig. 8).
    Private,
}

/// Options controlling how an API call splits into NDA instructions.
#[derive(Debug, Clone, Copy)]
pub struct LaunchOpts {
    /// Cache blocks per NDA instruction per rank (`None` = one
    /// instruction covering the whole per-rank share). This is the
    /// coarse-grain knob of Fig. 10.
    pub granularity_lines: Option<u64>,
    /// Blocking semantics: wait for every rank to finish a chunk before
    /// launching the next (paper's default). `false` = asynchronous macro
    /// op launch.
    pub barrier_per_chunk: bool,
}

impl Default for LaunchOpts {
    fn default() -> Self {
        Self {
            granularity_lines: None,
            barrier_per_chunk: true,
        }
    }
}

/// QoS scheduling class of a session — the arbitration key of
/// [`Runtime::next_launches`] (see [`Runtime::set_qos`]).
///
/// Classes form two strict bands: every stageable `LatencySensitive`
/// session is served before any `Batch` session. Within a band sessions
/// are ordered by an integer virtual-time deficit scheduler — each
/// released launch charges the session `QUANTUM / weight`, so a weight-2
/// tenant is served twice as often as a weight-1 tenant under
/// contention. No floats, no wall-clock: schedules are bit-identical
/// across engines, thread counts, and snapshot/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosClass {
    /// Strict-priority band, round-robin among latency-sensitive peers.
    /// A saturating latency-sensitive tenant can starve batch traffic by
    /// design — cap its submission rate if that matters.
    LatencySensitive,
    /// Weighted fair share of whatever the latency-sensitive band
    /// leaves. The default class (weight 1) is plain fair round-robin.
    Batch {
        /// Relative share, clamped to `1..=1024`.
        weight: u32,
    },
}

impl Default for QosClass {
    fn default() -> Self {
        QosClass::Batch { weight: 1 }
    }
}

impl QosClass {
    /// Scheduler band: 0 = latency-sensitive, 1 = batch.
    fn band(self) -> usize {
        match self {
            QosClass::LatencySensitive => 0,
            QosClass::Batch { .. } => 1,
        }
    }

    fn weight(self) -> u64 {
        match self {
            QosClass::LatencySensitive => 1,
            QosClass::Batch { weight } => u64::from(weight.clamp(1, 1024)),
        }
    }

    #[cold]
    fn encode(self, w: &mut ByteWriter) {
        match self {
            QosClass::LatencySensitive => w.u8(0),
            QosClass::Batch { weight } => {
                w.u8(1);
                w.varint(u64::from(weight));
            }
        }
    }

    #[cold]
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => QosClass::LatencySensitive,
            1 => QosClass::Batch {
                weight: r.varint_u32()?,
            },
            _ => return Err(CodecError::Corrupt("qos class tag")),
        })
    }
}

/// Virtual-time charge per released launch at weight 1. Weights divide
/// this, so even the maximum weight (1024) still charges 1024 per launch
/// — virtual time strictly advances and no batch tenant can be starved
/// by a heavier batch peer.
const QUANTUM: u64 = 1 << 20;

/// Admission-control limits of one session (executor API; see
/// [`Runtime::set_tenant_limits`]). The defaults admit everything — the
/// pre-executor behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLimits {
    /// Maximum live (submitted, not yet terminal) ops, realignment
    /// copies included. A job graph that would exceed this is queued
    /// instead of admitted.
    pub max_inflight_ops: u32,
    /// Queued (accepted, not yet admitted) job graphs the session may
    /// hold; submitting past it fails with [`SubmitError::QueueFull`].
    pub queue_depth: u32,
}

impl Default for TenantLimits {
    fn default() -> Self {
        Self {
            max_inflight_ops: u32::MAX,
            queue_depth: 0,
        }
    }
}

/// Handle to a job graph accepted by [`Runtime::submit_job`]. Resolves
/// through [`Runtime::ticket_done`] once every op the graph produced
/// (realignment copies included) reached a terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    sess: u32,
    job: u32,
}

impl Ticket {
    /// The session the job was submitted to.
    pub fn session(self) -> Session {
        Session { id: self.sess }
    }
}

/// Why [`Runtime::submit_job`] refused a job graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session is at its in-flight cap and its job queue (bounded by
    /// [`TenantLimits::queue_depth`]) is full. Deterministic
    /// backpressure — resubmit after the queue drains.
    QueueFull,
}

/// What one node of a [`JobGraph`] launches. Mirrors the [`OpBuilder`]
/// call surface but is fully serializable, so queued jobs survive
/// snapshots.
#[derive(Debug, Clone)]
enum JobKind {
    Elementwise {
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    },
    Gemv {
        y: VecId,
        a: MatId,
        x: VecId,
    },
    AxpyRows {
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    },
}

#[derive(Debug, Clone)]
struct JobNode {
    kind: JobKind,
    opts: LaunchOpts,
    /// Intra-graph parents (indices of earlier nodes).
    parents: Vec<u32>,
    /// External parents (already-submitted ops, any session).
    after_ops: Vec<OpHandle>,
    ordered: bool,
}

/// A declarative batch of ops submitted as one unit through the
/// executor ([`Runtime::submit_job`]): nodes plus DAG edges, resolved
/// into real submissions at admission time. Building a graph performs no
/// runtime work, so graphs can be held in the bounded admission queue
/// and admitted later (queued graphs serialize into snapshots).
#[derive(Debug, Clone, Default)]
pub struct JobGraph {
    nodes: Vec<JobNode>,
}

impl JobGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (ops the graph submits, before realignment).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, kind: JobKind) -> usize {
        self.nodes.push(JobNode {
            kind,
            opts: LaunchOpts::default(),
            parents: Vec::new(),
            after_ops: Vec::new(),
            ordered: true,
        });
        self.nodes.len() - 1
    }

    /// Add an elementwise Table-I node; returns its node index.
    pub fn elementwise(
        &mut self,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    ) -> usize {
        self.push(JobKind::Elementwise {
            op,
            scalars,
            inputs,
            output,
        })
    }

    /// Add a `y = A x` node; returns its node index.
    pub fn gemv(&mut self, y: VecId, a: MatId, x: VecId) -> usize {
        self.push(JobKind::Gemv { y, a, x })
    }

    /// Add a `parallel_for` macro node; returns its node index.
    pub fn axpy_rows(
        &mut self,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    ) -> usize {
        self.push(JobKind::AxpyRows {
            a_pvt,
            alphas,
            x,
            samples_per_instr,
        })
    }

    /// DAG edge inside the graph: `node` waits for `parent`, an earlier
    /// node index of this graph.
    ///
    /// # Panics
    ///
    /// Panics unless `parent < node < len()`.
    pub fn after(&mut self, node: usize, parent: usize) -> &mut Self {
        assert!(
            parent < node && node < self.nodes.len(),
            "edge must point backward within the graph"
        );
        self.nodes[node].parents.push(parent as u32);
        self
    }

    /// DAG edge to an op submitted outside the graph.
    pub fn after_op(&mut self, node: usize, parent: OpHandle) -> &mut Self {
        self.nodes[node].after_ops.push(parent);
        self
    }

    /// Opt `node` out of session program order (gated by its edges
    /// alone).
    pub fn unordered(&mut self, node: usize) -> &mut Self {
        self.nodes[node].ordered = false;
        self
    }

    /// Replace `node`'s launch options.
    pub fn opts(&mut self, node: usize, opts: LaunchOpts) -> &mut Self {
        self.nodes[node].opts = opts;
        self
    }
}

/// One job accepted by the executor: still queued behind admission
/// control, or admitted as the session-op range `[base, end)`
/// (realignment copies included).
#[derive(Debug, Clone)]
enum JobState {
    Queued(JobGraph),
    Admitted { base: u32, end: u32 },
}

#[derive(Debug, Clone)]
struct JobRecord {
    state: JobState,
    enqueued_at: u64,
}

/// Where a session currently lives in the ready index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SchedState {
    /// Not indexed: nothing to stage, or every candidate is gated on an
    /// event (dep retirement, completion) that re-notifies the session.
    #[default]
    Untracked,
    /// In its band heap, exactly one live entry (keyed by `heap_stamp`;
    /// older entries are stale and dropped on pop).
    Ready,
    /// Waiting on a credit return (on a per-NDA waitlist) and/or a retry
    /// expiry (on the wake heap).
    Parked,
}

#[derive(Debug)]
struct ArrayData {
    backing: Vec<f32>,
    /// Per-NDA copies for `Sharing::Private`.
    private: Option<Vec<Vec<f32>>>,
    /// Rank-local traversal per NDA index.
    layouts: Vec<Arc<OperandLayout>>,
    /// Lines of payload per NDA rank.
    lines_per_rank: u64,
    /// Region backing the array (kept for ownership queries).
    region: Option<Region>,
    len: usize,
    shape: Option<(usize, usize)>,
    color: Color,
}

/// A queued instruction launch (becomes control-register writes on the
/// channel).
#[derive(Debug, Clone)]
pub struct PendingLaunch {
    /// Index into the system's NDA-rank list.
    pub nda_idx: usize,
    /// The instruction to deliver.
    pub instr: NdaInstr,
    /// Owning operation (the `(session, op)` tag completion routing
    /// carries back).
    pub op: OpHandle,
    /// Chunk index within the operation (for barriers).
    pub chunk: usize,
}

#[derive(Debug)]
enum OpKind {
    Elementwise {
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    },
    Gemv {
        y: VecId,
        a: MatId,
        x: VecId,
    },
    /// `parallel_for` macro op: per-sample `a_pvt += alpha_i * X[i]`.
    MacroAxpyRows {
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
    },
}

#[derive(Debug)]
struct OpState {
    kind: OpKind,
    pending: VecDeque<PendingLaunch>,
    total_instrs: u64,
    completed_instrs: u64,
    chunk_sizes: Vec<u32>,
    chunk_completed: Vec<u32>,
    released_chunks: usize,
    barrier: bool,
    result: Option<f32>,
    done: bool,
    /// Explicit DAG edges: launches are held until every parent op has
    /// retired (runtime-inserted realignment copies, paper §V, and
    /// user-declared [`OpBuilder::after`] edges — possibly cross-session).
    deps: Vec<OpHandle>,
    /// Default program-order semantics: also wait for every earlier op in
    /// the same session. `false` = gated by `deps` alone.
    ordered: bool,
    /// First instruction id of this op; instruction ids are contiguous
    /// per op, `n_ndas` per chunk, so `chunk = (id - base) / n_ndas`.
    instr_base: u64,
    /// Cycle at which the op's first launch was staged (DAG observability
    /// for the scheduling property tests).
    first_staged_at: Option<u64>,
    /// Cycle at which the op finished (set on the completing instruction).
    finished_at: Option<u64>,
    /// Terminal status (`None` while live; always `Some` once `done`
    /// under fault recovery).
    status: Option<OpStatus>,
    /// Instruction retries charged against this op's retry budget.
    retries: u32,
    /// Backoff hold: no launch of this op stages before this cycle
    /// (`0` = no hold). The system folds the earliest hold into its
    /// front-end horizon so expiry is cycle-exact on every engine.
    retry_after: u64,
    /// Absolute deadline armed by [`OpBuilder::deadline`].
    deadline_at: Option<u64>,
    /// Re-execute on the host instead of concluding `Failed` when the
    /// retry budget runs out ([`OpBuilder::fallback_host`]).
    fallback_host: bool,
    /// Cycle at which the op was submitted (tenant metering).
    submitted_at: u64,
    /// Reverse DAG edges: ops that listed this op in their `deps` while
    /// it was live. Drives targeted dep-retirement notification of the
    /// ready index and the failure cascade. Derived state — rebuilt on
    /// snapshot resume, never serialized.
    dependents: Vec<OpHandle>,
}

/// One session's submission state.
#[derive(Debug, Default)]
struct SessionState {
    ops: Vec<OpState>,
    /// Index of the first op that is not yet done. Launch gating and
    /// quiescence checks start here instead of rescanning the
    /// ever-growing op list every cycle.
    first_live: usize,
    /// Live (submitted, not finished) unordered ops. When zero, the
    /// staging scan can stop at the first blocked ordered op — the
    /// classic strict-order fast path.
    unordered_live: usize,
    /// QoS class (arbitration band and weight).
    qos: QosClass,
    /// Virtual-time tag of the deficit scheduler (monotone per band).
    vtime: u64,
    /// Ready-index membership.
    sched: SchedState,
    /// Validates this session's live band-heap entry; entries carrying
    /// an older stamp are stale and dropped on pop.
    heap_stamp: u32,
    /// Live (submitted, not terminal) ops — the admission-control gauge.
    live_ops: u32,
    /// Admission-control limits (executor API).
    limits: TenantLimits,
    /// Every job the executor accepted (the ticket table).
    jobs: Vec<JobRecord>,
    /// Indices into `jobs` still awaiting admission, FIFO.
    job_queue: VecDeque<u32>,
    /// Per-tenant metering, surfaced as `SimReport::tenants`.
    meter: TenantReport,
}

/// The Chopim runtime: arrays, colored allocation, sessions, op-graph
/// splitting/staging, and functional execution.
#[derive(Debug)]
pub struct Runtime {
    arrays: Vec<ArrayData>,
    sessions: Vec<SessionState>,
    /// Ready-session index: one min-heap per QoS band over
    /// `(vtime, session, stamp)`, lazily validated (see `SchedState`).
    // chopim-lint: allow(snapshot) -- derived scheduling index; decode_state rebuilds it from the restored op states
    ready: [BinaryHeap<Reverse<(u64, u32, u32)>>; 2],
    /// Per-band virtual clock: the floor for sessions (re)entering the
    /// band, so a long-idle tenant cannot monopolize on ancient credit.
    vnow: [u64; 2],
    /// Per-NDA waitlists of sessions parked on a credit return.
    // chopim-lint: allow(snapshot) -- derived wait index; decode_state rebuilds it from the restored dependency edges
    waitlists: Vec<Vec<u32>>,
    /// Retry-hold wake-ups: `(cycle, session)` min-heap (stale entries
    /// tolerated — only still-parked sessions get woken).
    // chopim-lint: allow(snapshot) -- derived wake index; decode_state rebuilds it from the restored deadlines
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    /// Sessions whose queued jobs may now fit, drained FIFO by
    /// `pre_stage` at the next executed cycle.
    admit_pending: VecDeque<u32>,
    /// Ops that reached a terminal state since the last drain — the
    /// completion-event feed stream resubmission pops instead of polling
    /// every stream every cycle.
    finished_ops: VecDeque<OpHandle>,
    next_instr: u64,
    /// Number of NDA ranks (one NDA per rank).
    // chopim-lint: allow(snapshot) -- construction-time constant from config; decode_state only validates counts against it
    n_ndas: usize,
    allocator: ColoredAllocator,
    // chopim-lint: allow(snapshot) -- configuration: resume rebuilds the Runtime from the same ChopimConfig before decoding state
    mapper: Arc<PartitionedMapping>,
    // chopim-lint: allow(snapshot) -- configuration: resume rebuilds the Runtime from the same ChopimConfig before decoding state
    cfg: DramConfig,
    /// NDA-rank list as `(channel, rank)` — all ranks in Chopim mode, the
    /// upper half in rank-partitioning mode.
    // chopim-lint: allow(snapshot) -- rank placement derived deterministically from config at construction
    nda_ranks: Vec<(usize, usize)>,
    /// Rank-partition mode: layouts synthesized on dedicated ranks.
    // chopim-lint: allow(snapshot) -- partitioning mode derived from config at construction
    rank_partition: bool,
    /// Ablation: walk operands in physical-address order (lines rotating
    /// across banks) instead of Chopim's contiguous-column layout walk.
    /// Collapses row locality exactly as Fig. 3's naive layout argument
    /// predicts.
    pub pa_order_walk: bool,
    rp_next_row: Vec<u32>,
    /// Accumulated PE activity (energy accounting).
    pub pe_activity: PeActivity,
    /// Analytic cycle cost of host-mediated steps (reduce/broadcast).
    pub host_comm_cycles: u64,
    /// Realignment copies the runtime inserted for color mismatches.
    pub realignment_copies: u64,
    default_color: Color,
    /// Fault recovery active (a non-empty `FaultPlan`): enables retry
    /// staging holds, inflight-record completion resolution, and
    /// quarantine redirection. `false` keeps every hot path on the
    /// exact pre-fault-plane instruction sequence.
    // chopim-lint: allow(snapshot) -- recovery policy set by configure_recovery from config at construction
    recovery: bool,
    /// Retry budget per op before concluding `Failed` / falling back.
    // chopim-lint: allow(snapshot) -- recovery policy set by configure_recovery from config at construction
    retry_limit: u32,
    /// Base retry backoff in cycles (doubles per retry).
    // chopim-lint: allow(snapshot) -- recovery policy set by configure_recovery from config at construction
    retry_backoff: u64,
    /// Upper bound on the exponential backoff.
    // chopim-lint: allow(snapshot) -- recovery policy set by configure_recovery from config at construction
    retry_backoff_cap: u64,
    /// Per-NDA liveness; quarantined NDAs receive no further launches.
    alive: Vec<bool>,
    /// Count of live ops with an armed deadline (gates the per-cycle
    /// deadline scan; zero keeps it free).
    // chopim-lint: allow(snapshot) -- derived timeout index; decode_state re-arms it from the restored in-flight ops
    armed_deadlines: u32,
    /// Front-end clock mirror (stamped by the system each cycle) so
    /// submission-time deadline arming sees the current cycle.
    pub(crate) clock: u64,
    pub(crate) counters: RecoveryCounters,
}

impl Runtime {
    /// Build a runtime over the shared mapper and OS allocator.
    pub fn new(
        cfg: DramConfig,
        mapper: Arc<PartitionedMapping>,
        allocator: ColoredAllocator,
        nda_ranks: Vec<(usize, usize)>,
        rank_partition: bool,
    ) -> Self {
        let n = nda_ranks.len();
        Self {
            arrays: Vec::new(),
            sessions: vec![SessionState::default()],
            ready: [BinaryHeap::new(), BinaryHeap::new()],
            vnow: [0; 2],
            waitlists: vec![Vec::new(); n],
            wake: BinaryHeap::new(),
            admit_pending: VecDeque::new(),
            finished_ops: VecDeque::new(),
            next_instr: 0,
            n_ndas: n,
            allocator,
            mapper,
            cfg,
            nda_ranks,
            rank_partition,
            pa_order_walk: false,
            rp_next_row: vec![0; n],
            pe_activity: PeActivity::default(),
            host_comm_cycles: 0,
            realignment_copies: 0,
            default_color: Color(0),
            recovery: false,
            retry_limit: 3,
            retry_backoff: 64,
            retry_backoff_cap: 4096,
            alive: vec![true; n],
            armed_deadlines: 0,
            clock: 0,
            counters: RecoveryCounters::default(),
        }
    }

    /// Configure the fault-recovery layer (called once by the system
    /// from its `ChopimConfig`). `active` mirrors "the fault plan is
    /// non-empty": when `false`, recovery stays fully dormant.
    pub(crate) fn configure_recovery(
        &mut self,
        active: bool,
        retry_limit: u32,
        retry_backoff: u64,
        retry_backoff_cap: u64,
    ) {
        self.recovery = active;
        self.retry_limit = retry_limit;
        self.retry_backoff = retry_backoff.max(1);
        self.retry_backoff_cap = retry_backoff_cap.max(self.retry_backoff);
    }

    /// Runtime-side recovery counters (report support).
    pub(crate) fn recovery_counters(&self) -> &RecoveryCounters {
        &self.counters
    }

    /// True while NDA `nda` has not been quarantined by a rank-death
    /// completion (see [`OpBuilder::fallback_host`] and `docs/FAULTS.md`).
    pub fn nda_alive(&self, nda: usize) -> bool {
        self.alive[nda]
    }

    /// Quarantine NDA `nda` permanently (rank-death completion):
    /// subsequent launches re-shard across surviving ranks. Idempotent.
    #[cold]
    pub(crate) fn quarantine(&mut self, nda: usize) {
        if self.alive[nda] {
            self.alive[nda] = false;
            self.counters.ranks_quarantined += 1;
            // Redirect targets changed: every credit-parked session must
            // re-classify against the survivor set.
            for n in 0..self.waitlists.len() {
                self.credit_returned(n);
            }
        }
    }

    /// The NDA `nda` launches should target: `nda` itself while alive,
    /// else the next surviving NDA (wrapping). With every NDA dead the
    /// original index is returned and the launch fails its retries out.
    fn redirect(alive: &[bool], nda: usize) -> usize {
        if alive[nda] {
            return nda;
        }
        Self::redirect_cold(alive, nda)
    }

    /// [`redirect`](Self::redirect) against the current quarantine set
    /// (system-side staging support).
    pub(crate) fn redirect_live(&self, nda: usize) -> usize {
        Self::redirect(&self.alive, nda)
    }

    #[cold]
    fn redirect_cold(alive: &[bool], nda: usize) -> usize {
        let n = alive.len();
        for k in 1..n {
            let c = (nda + k) % n;
            if alive[c] {
                return c;
            }
        }
        nda
    }

    /// The default (always-present) session, for single-tenant code.
    pub fn default_session(&self) -> Session {
        Session { id: 0 }
    }

    /// Create a fresh submission session (a tenant).
    pub fn create_session(&mut self) -> Session {
        self.sessions.push(SessionState::default());
        Session {
            id: (self.sessions.len() - 1) as u32,
        }
    }

    /// Number of sessions (including the default one).
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The NDA ranks as `(channel, rank)` pairs.
    pub fn nda_ranks(&self) -> &[(usize, usize)] {
        &self.nda_ranks
    }

    fn op(&self, h: OpHandle) -> &OpState {
        &self.sessions[h.sess as usize].ops[h.idx as usize]
    }

    fn op_mut(&mut self, h: OpHandle) -> &mut OpState {
        &mut self.sessions[h.sess as usize].ops[h.idx as usize]
    }

    /// Build per-NDA layouts for `lines` payload lines in a colored
    /// region.
    fn build_layouts(
        &mut self,
        lines: u64,
        color: Color,
    ) -> (Vec<Arc<OperandLayout>>, u64, Option<Region>) {
        let lpc = self.cfg.lines_per_row() as u64; // lines per chunk (128)
        let ranks = self.n_ndas as u64;
        let lines_per_rank = lines.div_ceil(ranks).div_ceil(lpc) * lpc;
        if self.rank_partition {
            // Dedicated ranks: synthesize bank-rotating layouts directly.
            let chunks = (lines_per_rank / lpc) as usize;
            let banks = self.cfg.banks_per_rank() as u16;
            let rows_needed = chunks.div_ceil(banks as usize) as u32;
            let mut layouts = Vec::with_capacity(self.n_ndas);
            for i in 0..self.n_ndas {
                let base = self.rp_next_row[i];
                self.rp_next_row[i] += rows_needed;
                layouts.push(OperandLayout::rotating(banks, base, chunks, lpc as u32));
            }
            return (layouts, lines_per_rank, None);
        }
        // Shared mode: allocate colored system rows and derive each rank's
        // chunk walk from the real mapping.
        let row_lines = self.cfg.system_row_bytes() / 64;
        let rows_needed = (lines_per_rank * ranks).div_ceil(row_lines) as usize;
        // With bank partitioning the shared pool is the reserved address
        // space; without it (reserved_banks = 0) NDA arrays live in
        // ordinary colored memory.
        let region = self
            .allocator
            .alloc_shared(color, rows_needed)
            .or_else(|| self.allocator.alloc_host_colored(color, rows_needed))
            .expect("memory exhausted for NDA operands");
        let mut chunk_lists: Vec<Vec<(u16, u32)>> = vec![Vec::new(); self.n_ndas];
        let bpg = self.cfg.banks_per_group;
        let rpc = self.cfg.ranks_per_channel;
        for sysrow in &region.rows {
            // Collect each rank's (bank, row) chunks for this system row.
            let mut seen: BTreeSet<(usize, u16, u32)> = BTreeSet::new();
            let base_pa = u64::from(sysrow.index) * self.cfg.system_row_bytes();
            for l in 0..row_lines {
                let d = self.mapper.map_pa(base_pa + l * 64);
                let g = d.channel * rpc + d.rank;
                let idx = self
                    .nda_ranks
                    .iter()
                    .position(|&(c, r)| (c, r) == (d.channel, d.rank));
                let Some(idx) = idx else { continue };
                let key = (g, d.flat_bank(bpg) as u16, d.row);
                if seen.insert(key) {
                    chunk_lists[idx].push((d.flat_bank(bpg) as u16, d.row));
                }
            }
        }
        // Chopim's layout lets the microcode stream contiguous columns of
        // one bank row per 1 KB-per-chip batch (Fig. 3/Fig. 9). The
        // `pa_order_walk` ablation instead rotates lines across all banks
        // of the rank (the walk a naive layout would force), destroying
        // row locality under host interference.
        let group = (row_lines / ranks / lpc).max(1) as u32;
        let layouts = chunk_lists
            .into_iter()
            .map(|c| {
                if self.pa_order_walk && (c.len() as u32).is_multiple_of(group) {
                    OperandLayout::with_interleave(c, lpc as u32, group)
                } else {
                    OperandLayout::new(c, lpc as u32)
                }
            })
            .collect();
        (layouts, lines_per_rank, Some(region))
    }

    /// Allocate a host-only footprint region of `rows` system rows,
    /// halving on exhaustion (small test pools).
    ///
    /// # Panics
    ///
    /// Panics when host memory is completely exhausted.
    pub fn alloc_host_region(&mut self, rows: usize) -> Region {
        let mut rows = rows.max(1);
        loop {
            if let Some(r) = self.allocator.alloc_host(rows) {
                return r;
            }
            rows /= 2;
            assert!(rows > 0, "host memory exhausted");
        }
    }

    /// Allocate a vector of `len` f32 elements in the default color.
    pub fn vector(&mut self, len: usize, sharing: Sharing) -> VecId {
        self.vector_colored(len, sharing, self.default_color)
    }

    /// Allocate a vector in an explicit shared-region color (paper §III-A:
    /// operands of one instruction must share a color; the runtime inserts
    /// realignment copies otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the color is out of range.
    pub fn vector_colored(&mut self, len: usize, sharing: Sharing, color: Color) -> VecId {
        assert!(len > 0, "empty vector");
        assert!(
            (color.0 as usize) < self.allocator.num_colors(),
            "color out of range"
        );
        let (layouts, lines_per_rank, region, private);
        match sharing {
            Sharing::Shared => {
                let total_lines = ((len * 4) as u64).div_ceil(64);
                let (l, lpr, r) = self.build_layouts(total_lines, color);
                layouts = l;
                lines_per_rank = lpr;
                region = r;
                private = None;
            }
            Sharing::Private => {
                // A full copy per NDA, each within its own rank share.
                let per_copy_lines = ((len * 4) as u64).div_ceil(64);
                let (l, lpr, r) = self.build_layouts(per_copy_lines * self.n_ndas as u64, color);
                layouts = l;
                lines_per_rank = lpr;
                region = r;
                private = Some(vec![vec![0.0; len]; self.n_ndas]);
            }
        }
        self.arrays.push(ArrayData {
            backing: vec![0.0; len],
            private,
            layouts,
            lines_per_rank,
            region,
            len,
            shape: None,
            color,
        });
        VecId(self.arrays.len() - 1)
    }

    /// The shared-region color of an array.
    pub fn color_of(&self, v: VecId) -> Color {
        self.arrays[v.0].color
    }

    /// Number of available colors (8 for Table II, paper §III-A).
    pub fn num_colors(&self) -> usize {
        self.allocator.num_colors()
    }

    /// Allocate a row-major `rows x cols` shared matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `cols` is a multiple of 16 (rows must be cache-line
    /// aligned so each line belongs to one sample).
    pub fn matrix(&mut self, rows: usize, cols: usize) -> MatId {
        assert!(
            cols.is_multiple_of(16),
            "cols must be a multiple of 16 (line-aligned rows)"
        );
        let total_lines = ((rows * cols * 4) as u64).div_ceil(64);
        let color = self.default_color;
        let (layouts, lines_per_rank, region) = self.build_layouts(total_lines, color);
        self.arrays.push(ArrayData {
            backing: vec![0.0; rows * cols],
            private: None,
            layouts,
            lines_per_rank,
            region,
            len: rows * cols,
            shape: Some((rows, cols)),
            color,
        });
        MatId(self.arrays.len() - 1)
    }

    /// Overwrite a vector's contents.
    pub fn write_vector(&mut self, v: VecId, data: &[f32]) {
        let a = &mut self.arrays[v.0];
        assert_eq!(a.len, data.len(), "length mismatch");
        a.backing.copy_from_slice(data);
    }

    /// Read a vector's contents.
    pub fn read_vector(&self, v: VecId) -> &[f32] {
        &self.arrays[v.0].backing
    }

    /// Read one NDA's private copy.
    pub fn read_private(&self, v: VecId, nda: usize) -> &[f32] {
        &self.arrays[v.0].private.as_ref().expect("private array")[nda]
    }

    /// Overwrite a matrix's contents (row-major).
    pub fn write_matrix(&mut self, m: MatId, data: &[f32]) {
        let a = &mut self.arrays[m.0];
        assert_eq!(a.len, data.len(), "length mismatch");
        a.backing.copy_from_slice(data);
    }

    /// Matrix contents (row-major).
    pub fn read_matrix(&self, m: MatId) -> &[f32] {
        &self.arrays[m.0].backing
    }

    fn vec_lines(&self, v: VecId) -> u64 {
        ((self.arrays[v.0].len * 4) as u64).div_ceil(64)
    }

    /// Per-rank payload lines of a shared vector.
    fn vec_lines_per_rank(&self, v: VecId) -> u64 {
        self.vec_lines(v).div_ceil(self.n_ndas as u64)
    }

    fn take_instr_ids(&mut self, count: u64) -> u64 {
        let base = self.next_instr;
        self.next_instr += count;
        base
    }

    /// Handle the next op submitted to `sess` will get.
    fn next_handle(&self, sess: Session) -> OpHandle {
        OpHandle {
            sess: sess.id,
            idx: self.sessions[sess.id as usize].ops.len() as u32,
        }
    }

    fn push_op(&mut self, sess: Session, mut op: OpState) -> OpHandle {
        // Submitting behind an already-failed dependency: abort now
        // rather than waiting on a parent that will never succeed.
        let failed_dep = self.recovery
            && op
                .deps
                .iter()
                .any(|&d| self.op(d).status.is_some_and(OpStatus::is_failure));
        let h = self.next_handle(sess);
        op.submitted_at = self.clock;
        // Reverse edges: live parents notify this op's session when they
        // retire (and the failure cascade walks straight to it).
        for k in 0..op.deps.len() {
            let d = op.deps[k];
            if !self.op(d).done {
                self.op_mut(d).dependents.push(h);
            }
        }
        let ss = &mut self.sessions[sess.id as usize];
        if !op.ordered {
            ss.unordered_live += 1;
        }
        if ss.live_ops == 0 {
            // Idle → busy arrival: catch the session's virtual time up
            // to the band clock so a long-idle tenant cannot cash in
            // service it never contended for. (Wakes from credit parks
            // keep their earned lead — see `ready_notify`.)
            ss.vtime = ss.vtime.max(self.vnow[ss.qos.band()]);
        }
        ss.live_ops += 1;
        ss.meter.ops_submitted += 1;
        ss.ops.push(op);
        self.ready_notify(sess.id as usize);
        if failed_dep {
            let now = self.clock;
            self.conclude_and_cascade(h, OpStatus::DepFailed, now);
        }
        h
    }

    /// Launch an elementwise Table-I operation on the default session.
    #[deprecated(note = "use Session::elementwise(...).submit()")]
    pub fn launch_elementwise(
        &mut self,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
    ) -> OpHandle {
        self.submit_elementwise(
            self.default_session(),
            op,
            scalars,
            inputs,
            output,
            opts,
            Vec::new(),
            true,
        )
    }

    /// Launch `y = A x` on the default session.
    #[deprecated(note = "use Session::gemv(...).submit()")]
    pub fn launch_gemv(&mut self, y: VecId, a: MatId, x: VecId, opts: LaunchOpts) -> OpHandle {
        self.submit_gemv(self.default_session(), y, a, x, opts, Vec::new(), true)
    }

    /// Launch the `parallel_for` macro op on the default session.
    #[deprecated(note = "use Session::axpy_rows(...).submit()")]
    pub fn launch_macro_axpy_rows(
        &mut self,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
        opts: LaunchOpts,
    ) -> OpHandle {
        self.submit_axpy_rows(
            self.default_session(),
            a_pvt,
            alphas,
            x,
            samples_per_instr,
            opts,
            Vec::new(),
            true,
        )
    }

    /// Split an elementwise op into per-rank instructions and queue it on
    /// `sess`, inserting realignment copies for color mismatches.
    ///
    /// `inputs` are read operands; `output` (if any) is the written
    /// operand (in-place ops pass the same id in both). All operands must
    /// be shared vectors of one length.
    #[allow(clippy::too_many_arguments)]
    fn submit_elementwise(
        &mut self,
        sess: Session,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
        mut deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        // Color check: all operands of one instruction must share a color
        // (paper §III-A). When inputs disagree with the base color, the
        // runtime inserts realignment copies into same-colored temporaries
        // and gates the main op on them via DAG edges (paper §V).
        let base_color = output
            .or_else(|| inputs.first().copied())
            .map(|v| self.arrays[v.0].color)
            .expect("needs operands");
        // The copies inherit the builder's own DAG edges: a copy reads
        // the mismatched input, so it must wait for the same parents the
        // main op was gated on (one of them may be the op producing that
        // input — in another session, or skipped-over by `unordered`).
        let inherited = deps.clone();
        let mut inputs = inputs;
        for v in inputs.iter_mut() {
            if self.arrays[v.0].color != base_color && self.arrays[v.0].private.is_none() {
                let len = self.arrays[v.0].len;
                let tmp = self.vector_colored(len, Sharing::Shared, base_color);
                self.realignment_copies += 1;
                let cp = self.submit_elementwise_inner(
                    sess,
                    Opcode::Copy,
                    vec![],
                    vec![*v],
                    Some(tmp),
                    LaunchOpts::default(),
                    inherited.clone(),
                    ordered,
                );
                deps.push(cp);
                *v = tmp;
            }
        }
        self.submit_elementwise_inner(sess, op, scalars, inputs, output, opts, deps, ordered)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_elementwise_inner(
        &mut self,
        sess: Session,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let probe = *inputs.first().or(output.as_ref()).expect("needs operands");
        let len = self.arrays[probe.0].len;
        for v in inputs.iter().chain(output.iter()) {
            assert_eq!(self.arrays[v.0].len, len, "operand length mismatch");
        }
        let per_rank = self.vec_lines_per_rank(probe);
        let g = opts.granularity_lines.unwrap_or(per_rank).max(1);
        let chunks = per_rank.div_ceil(g) as usize;
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(chunks as u64 * self.n_ndas as u64);
        let mut pending = VecDeque::new();
        let mut chunk_sizes = vec![0u32; chunks];
        // In-place read-modify-write ops stream their output operand in
        // as well (Table I: AXPY and SCAL update y/x in place).
        let rmw = matches!(op, Opcode::Axpy | Opcode::Scal);
        let mut id = instr_base;
        #[allow(clippy::needless_range_loop)]
        for chunk in 0..chunks {
            let start = chunk as u64 * g;
            let lines = g.min(per_rank - start);
            for nda in 0..self.n_ndas {
                let mut reads: Vec<_> = inputs
                    .iter()
                    .map(|v| (self.arrays[v.0].layouts[nda].clone(), start))
                    .collect();
                if rmw {
                    reads.extend(
                        output
                            .iter()
                            .map(|v| (self.arrays[v.0].layouts[nda].clone(), start)),
                    );
                }
                let writes: Vec<_> = output
                    .iter()
                    .map(|v| (self.arrays[v.0].layouts[nda].clone(), start))
                    .collect();
                let instr = NdaInstr::elementwise(op, lines, reads, writes, id);
                id += 1;
                pending.push_back(PendingLaunch {
                    nda_idx: nda,
                    instr,
                    op: handle,
                    chunk,
                });
                chunk_sizes[chunk] += 1;
            }
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::Elementwise {
                    op,
                    scalars,
                    inputs,
                    output,
                },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0; chunks],
                chunk_sizes,
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
                submitted_at: 0,
                dependents: Vec::new(),
            },
        )
    }

    /// Split `y = A x` into one instruction per rank and queue it on
    /// `sess` (A streams, x/y live in the scratchpad).
    #[allow(clippy::too_many_arguments)]
    fn submit_gemv(
        &mut self,
        sess: Session,
        y: VecId,
        a: MatId,
        x: VecId,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let (rows, cols) = self.arrays[a.0].shape.expect("matrix");
        assert_eq!(self.arrays[x.0].len, cols, "x length != cols");
        assert_eq!(self.arrays[y.0].len, rows, "y length != rows");
        let a_per_rank = self.arrays[a.0].lines_per_rank.min(
            ((rows * cols * 4) as u64)
                .div_ceil(64)
                .div_ceil(self.n_ndas as u64),
        );
        let x_per_rank = self.vec_lines_per_rank(x).max(1);
        let y_per_rank = self.vec_lines_per_rank(y).max(1);
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(self.n_ndas as u64);
        let mut pending = VecDeque::new();
        for nda in 0..self.n_ndas {
            let instr = NdaInstr::gemv(
                (self.arrays[a.0].layouts[nda].clone(), 0, a_per_rank),
                (self.arrays[x.0].layouts[nda].clone(), 0, x_per_rank),
                (self.arrays[y.0].layouts[nda].clone(), 0, y_per_rank),
                instr_base + nda as u64,
            );
            pending.push_back(PendingLaunch {
                nda_idx: nda,
                instr,
                op: handle,
                chunk: 0,
            });
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::Gemv { y, a, x },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0],
                chunk_sizes: vec![total as u32],
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
                submitted_at: 0,
                dependents: Vec::new(),
            },
        )
    }

    /// The `parallel_for` macro operation of Fig. 8: for each sample `i`,
    /// every NDA accumulates its local share of row `i` into its private
    /// copy of `a_pvt` (`a_pvt += alphas[i] * X[i]`).
    ///
    /// `samples_per_instr` batches consecutive samples into one NDA
    /// instruction — the paper's *macro NDA operation*, which amortizes
    /// launch packets over loop iterations (§V, load-imbalance
    /// optimization).
    #[allow(clippy::too_many_arguments)]
    fn submit_axpy_rows(
        &mut self,
        sess: Session,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let (rows, cols) = self.arrays[x.0].shape.expect("matrix");
        assert!(alphas.len() <= rows, "more alphas than rows");
        assert!(
            self.arrays[a_pvt.0].private.is_some(),
            "a_pvt must be PRIVATE"
        );
        assert_eq!(self.arrays[a_pvt.0].len, cols, "a_pvt length != cols");
        assert!(
            samples_per_instr > 0,
            "need at least one sample per instruction"
        );
        let row_lines = ((cols * 4) as u64).div_ceil(64);
        let row_lines_per_rank = row_lines.div_ceil(self.n_ndas as u64).max(1);
        let n = alphas.len();
        let k = samples_per_instr;
        let n_batches = n.div_ceil(k);
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(n_batches as u64 * self.n_ndas as u64);
        let mut pending = VecDeque::new();
        let mut chunk_sizes = vec![0u32; n_batches];
        let mut id = instr_base;
        #[allow(clippy::needless_range_loop)]
        for batch in 0..n_batches {
            let first = batch * k;
            let count = k.min(n - first) as u64;
            let start = first as u64 * row_lines_per_rank;
            let span = count * row_lines_per_rank;
            for nda in 0..self.n_ndas {
                let x_l = self.arrays[x.0].layouts[nda].clone();
                let a_l = self.arrays[a_pvt.0].layouts[nda].clone();
                // Timing walk: the rank-share span of rows
                // [first, first+count) in X, plus the private accumulator
                // (read-modify-write, wrapped within its padded layout).
                let x_start = start.min(x_layout_guard(&self.arrays[x.0], span));
                let a_span = span.min(a_l.lines());
                let instr = NdaInstr::elementwise(
                    Opcode::Axpy,
                    a_span.min(span).max(1),
                    vec![(x_l, x_start), (a_l.clone(), 0)],
                    vec![(a_l, 0)],
                    id,
                );
                id += 1;
                pending.push_back(PendingLaunch {
                    nda_idx: nda,
                    instr,
                    op: handle,
                    chunk: batch,
                });
                chunk_sizes[batch] += 1;
            }
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::MacroAxpyRows { a_pvt, alphas, x },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0; n_batches],
                chunk_sizes,
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
                submitted_at: 0,
                dependents: Vec::new(),
            },
        )
    }

    /// Oracle-only (the release launch loop uses the borrow-splitting
    /// [`deps_done_in`] instead).
    #[cfg(debug_assertions)]
    fn deps_done(&self, deps: &[OpHandle]) -> bool {
        deps.iter().all(|&d| self.op(d).done)
    }

    /// Enter session `s` into its band heap unless it is already there.
    /// Cheap and idempotent — called from every event that can make a
    /// session stageable. Premature entries are harmless: the next
    /// `next_launches` pop re-classifies (and re-parks) them without
    /// staging anything.
    ///
    /// Deliberately does **not** floor the session's virtual time to the
    /// band clock: a backlogged session woken from a credit park keeps
    /// the service lead its weight earned it (flooring here would reset
    /// weighted shares to round-robin every time credits run dry). The
    /// idle→busy floor lives at op arrival instead — see `push_op`.
    fn ready_notify(&mut self, s: usize) {
        let ss = &mut self.sessions[s];
        if ss.sched == SchedState::Ready {
            return;
        }
        let band = ss.qos.band();
        ss.sched = SchedState::Ready;
        ss.heap_stamp = ss.heap_stamp.wrapping_add(1);
        self.ready[band].push(Reverse((ss.vtime, s as u32, ss.heap_stamp)));
        perfcount::bump(Counter::ReadyIndexOps);
    }

    /// A credit for NDA `nda` returned to the front-end: wake every
    /// session parked on its waitlist. O(woken), not O(sessions); stale
    /// entries (sessions that moved on) are dropped here.
    pub(crate) fn credit_returned(&mut self, nda: usize) {
        if self.waitlists[nda].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.waitlists[nda]);
        for s in list.drain(..) {
            perfcount::bump(Counter::ReadyIndexOps);
            if self.sessions[s as usize].sched == SchedState::Parked {
                self.ready_notify(s as usize);
            }
        }
        // Hand the emptied buffer back so the hot path never reallocates.
        self.waitlists[nda] = list;
    }

    /// Per-executed-cycle index maintenance, run by the front-end just
    /// before staging: expire retry wake-ups and admit queued jobs that
    /// now fit. Both queues are empty on the steady-state path, so this
    /// costs two branch tests.
    pub(crate) fn pre_stage(&mut self, now: u64) {
        while let Some(&Reverse((t, s))) = self.wake.peek() {
            if t > now {
                break;
            }
            self.wake.pop();
            perfcount::bump(Counter::ReadyIndexOps);
            if self.sessions[s as usize].sched == SchedState::Parked {
                self.ready_notify(s as usize);
            }
        }
        while let Some(s) = self.admit_pending.pop_front() {
            self.drain_admissions(s as usize, now);
        }
    }

    /// True while job admissions are pending: the front-end horizon must
    /// not skip past the next executed cycle while they drain.
    pub(crate) fn has_pending_admissions(&self) -> bool {
        !self.admit_pending.is_empty()
    }

    /// Classify session `s` against real queue `space`: return its
    /// stageable candidate op if one exists; otherwise park the session
    /// on every blocking credit waitlist and/or the retry wake heap
    /// (the two gates whose opening is a timer or a credit return, not a
    /// notifying op event), or leave it untracked when every remaining
    /// gate (dep retirement, barrier advance, completion) re-notifies it
    /// anyway. Mirrors the `stage_candidate` scan exactly.
    fn classify_and_park(
        &mut self,
        s: usize,
        space: &impl Fn(usize) -> usize,
        now: u64,
    ) -> Option<usize> {
        let recovery = self.recovery;
        let mut wake_at = u64::MAX;
        let mut parked = false;
        let found = {
            let sessions = &self.sessions;
            let alive = &self.alive;
            let waitlists = &mut self.waitlists;
            let ss = &sessions[s];
            let mut prior_all_done = true;
            let mut found = None;
            for i in ss.first_live..ss.ops.len() {
                let op = &ss.ops[i];
                if op.done {
                    continue;
                }
                let order_ok = !op.ordered || prior_all_done;
                if order_ok && !op.pending.is_empty() && deps_done_in(sessions, &op.deps) {
                    let head = op.pending.front().expect("nonempty");
                    let barrier_ok = !op.barrier || head.chunk <= op.released_chunks;
                    if barrier_ok {
                        if op.retry_after > now {
                            // Expiry is a timer, not a notifying event:
                            // arm an explicit wake-up.
                            wake_at = wake_at.min(op.retry_after);
                            parked = true;
                        } else {
                            let target = if recovery {
                                Self::redirect(alive, head.nda_idx)
                            } else {
                                head.nda_idx
                            };
                            if space(target) > 0 {
                                found = Some(i);
                                break;
                            }
                            // Credit-blocked: only a return on this NDA
                            // (or a quarantine flush) opens it.
                            waitlists[target].push(s as u32);
                            perfcount::bump(Counter::ReadyIndexOps);
                            parked = true;
                        }
                    }
                }
                prior_all_done = false;
                if ss.unordered_live == 0 {
                    // Everything later is ordered behind this op: stop.
                    break;
                }
            }
            found
        };
        if found.is_some() {
            return found;
        }
        if parked {
            self.sessions[s].sched = SchedState::Parked;
            if wake_at != u64::MAX {
                self.wake.push(Reverse((wake_at, s as u32)));
                perfcount::bump(Counter::ReadyIndexOps);
            }
        } else {
            self.sessions[s].sched = SchedState::Untracked;
        }
        None
    }

    /// Debug oracle: the session `next_launches` must serve — the
    /// stageable session with the minimum `(band, vtime, id)` key, found
    /// by scanning *every* session the way the pre-index scheduler did.
    /// Continuously validates ready-index notification coverage in debug
    /// builds (gated to small machines; `qos_sched_props` leans on it).
    #[cfg(debug_assertions)]
    fn oracle_pick(&self, space: &impl Fn(usize) -> usize, now: u64) -> Option<usize> {
        let mut best: Option<((usize, u64, usize), usize)> = None;
        for s in 0..self.sessions.len() {
            if self.stage_candidate(s, space, now).is_none() {
                continue;
            }
            let ss = &self.sessions[s];
            let key = (ss.qos.band(), ss.vtime, s);
            if best.as_ref().is_none_or(|&(bk, _)| key < bk) {
                best = Some((key, s));
            }
        }
        best.map(|(_, s)| s)
    }

    /// The op in session `s` whose head launch is releasable right now
    /// (deps retired, program order satisfied, chunk barrier open, FSM
    /// queue space available), if any.
    ///
    /// The scan starts at the session's live watermark and — when the
    /// session has no live unordered ops — stops at the first blocked
    /// ordered op, which is the strict-order fast path: at most one op is
    /// examined per call for classic submission streams.
    ///
    /// Oracle-only: the release-build launch loop inlines this scan
    /// (borrow-split over the session table) in `next_launches`.
    #[cfg(debug_assertions)]
    fn stage_candidate(
        &self,
        s: usize,
        space: &impl Fn(usize) -> usize,
        now: u64,
    ) -> Option<usize> {
        let ss = &self.sessions[s];
        let mut prior_all_done = true;
        for i in ss.first_live..ss.ops.len() {
            let op = &ss.ops[i];
            if op.done {
                continue;
            }
            let order_ok = !op.ordered || prior_all_done;
            // `retry_after` is 0 (always open) outside fault recovery.
            if order_ok
                && op.retry_after <= now
                && !op.pending.is_empty()
                && self.deps_done(&op.deps)
            {
                let head = op.pending.front().expect("nonempty");
                let barrier_ok = !op.barrier || head.chunk <= op.released_chunks;
                let target = if self.recovery {
                    Self::redirect(&self.alive, head.nda_idx)
                } else {
                    head.nda_idx
                };
                if barrier_ok && space(target) > 0 {
                    return Some(i);
                }
            }
            prior_all_done = false;
            if ss.unordered_live == 0 {
                // Everything later is ordered behind this op: stop.
                break;
            }
        }
        None
    }

    /// Pop launches that are ready to go to the channel into `out`,
    /// arbitrating across sessions by QoS band and virtual time (see
    /// [`QosClass`]) and respecting DAG edges, program order, and chunk
    /// barriers. The system calls this each cycle with available FSM
    /// queue space per NDA and its (reused) staging queue — releasing a
    /// launch must not allocate on the steady-state path; `now` stamps
    /// first-launch staging for DAG observability.
    ///
    /// Cost is O(active): the pick pops the ready index instead of
    /// scanning sessions. Each pop either stages (and re-indexes the
    /// session), drops a stale entry, or re-parks a session that was
    /// woken optimistically — every pop is paid for by the event that
    /// inserted the entry, so the amortized per-window cost tracks event
    /// traffic, not tenant count. In debug builds a full-scan oracle
    /// cross-checks every pick on machines up to 64 sessions.
    pub fn next_launches(
        &mut self,
        space: impl Fn(usize) -> usize,
        max: usize,
        now: u64,
        out: &mut std::collections::VecDeque<PendingLaunch>,
    ) {
        #[cfg(debug_assertions)]
        let oracle = (self.sessions.len() <= 64).then(|| self.oracle_pick(&space, now));
        let start = out.len();
        let mut staged: Option<usize> = None;
        'bands: for band in 0..2 {
            while let Some(&Reverse((_, sess, stamp))) = self.ready[band].peek() {
                perfcount::bump(Counter::SchedSessionsScanned);
                perfcount::bump(Counter::ReadyIndexOps);
                self.ready[band].pop();
                let s = sess as usize;
                if self.sessions[s].sched != SchedState::Ready
                    || self.sessions[s].heap_stamp != stamp
                {
                    continue; // stale entry
                }
                self.sessions[s].sched = SchedState::Untracked; // entry consumed
                let Some(i) = self.classify_and_park(s, &space, now) else {
                    continue; // woken but blocked: classify re-parked it
                };
                // Serve this session: advance the band's virtual clock to
                // its tag and release up to `max` launches from the
                // candidate op.
                self.vnow[band] = self.vnow[band].max(self.sessions[s].vtime);
                let recovery = self.recovery;
                let mut released = 0u64;
                {
                    let alive = &self.alive;
                    let op = &mut self.sessions[s].ops[i];
                    if op.first_staged_at.is_none() {
                        op.first_staged_at = Some(now);
                    }
                    while out.len() - start < max {
                        let Some(head) = op.pending.front() else {
                            break;
                        };
                        if op.barrier && head.chunk > op.released_chunks {
                            break; // previous chunk not fully complete
                        }
                        let target = if recovery {
                            Self::redirect(alive, head.nda_idx)
                        } else {
                            head.nda_idx
                        };
                        if space(target) == 0 {
                            break;
                        }
                        let mut launch = op.pending.pop_front().expect("checked");
                        launch.nda_idx = target;
                        out.push_back(launch);
                        released += 1;
                    }
                }
                // Charge virtual time and re-index the session.
                let weight = self.sessions[s].qos.weight();
                self.sessions[s].vtime = self.sessions[s]
                    .vtime
                    .saturating_add(released * (QUANTUM / weight));
                if self.classify_and_park(s, &space, now).is_some() {
                    self.ready_notify(s);
                }
                staged = Some(s);
                break 'bands; // one op per call; candidates guarantee progress
            }
        }
        #[cfg(debug_assertions)]
        if let Some(oracle) = oracle {
            debug_assert_eq!(
                staged, oracle,
                "ready-index pick diverged from the full-scan oracle"
            );
        }
        let _ = staged;
    }

    /// True when a session sits in the ready index — the O(1)
    /// conservative gate the event-horizon fast-forward consults. It may
    /// answer `true` for a session that turns out to be blocked (the
    /// next executed tick's [`next_launches`](Self::next_launches) pop
    /// re-parks it, after which the answer is `false` again), but never
    /// `false` when a launch could stage: every event that creates
    /// stageability notifies the index. Extra executed cycles never
    /// change staging decisions — the lockstep suites pin this.
    pub fn launch_ready(&self, _space: impl Fn(usize) -> usize, _now: u64) -> bool {
        !self.ready[0].is_empty() || !self.ready[1].is_empty()
    }

    /// Record the completion of instruction `id` of op `h`, finalizing
    /// the op when it is the last one. Returns `true` if the op just
    /// finished. `id` must be the original (non-retried) instruction id;
    /// under fault recovery the system resolves completions through its
    /// in-flight records and calls
    /// `instr_completed_via` with the
    /// record's chunk instead (retried launches carry fresh ids).
    pub fn complete_instr(&mut self, h: OpHandle, id: u64, now: u64) -> bool {
        let n_ndas = self.n_ndas as u64;
        let op = self.op(h);
        debug_assert!(id >= op.instr_base && id - op.instr_base < op.total_instrs);
        let chunk = ((id - op.instr_base) / n_ndas) as usize;
        self.instr_completed_via(h, chunk, now)
    }

    /// Completion bookkeeping with the chunk resolved by the caller.
    /// Returns `true` if the op just finished; a completion for an op
    /// already concluded (timed out, failed) is ignored.
    pub(crate) fn instr_completed_via(&mut self, h: OpHandle, chunk: usize, now: u64) -> bool {
        let finished = {
            let op = self.op_mut(h);
            if op.done {
                return false; // late completion of a concluded op
            }
            op.completed_instrs += 1;
            op.chunk_completed[chunk] += 1;
            if op.chunk_completed[chunk] == op.chunk_sizes[chunk] && chunk == op.released_chunks {
                // Advance the barrier over all fully-completed chunks.
                while op.released_chunks < op.chunk_sizes.len()
                    && op.chunk_completed[op.released_chunks] == op.chunk_sizes[op.released_chunks]
                {
                    op.released_chunks += 1;
                }
            }
            op.completed_instrs == op.total_instrs
        };
        if finished {
            self.finalize(h);
            let ss = &mut self.sessions[h.sess as usize];
            let op = &mut ss.ops[h.idx as usize];
            op.finished_at = Some(now);
            op.status = Some(OpStatus::Completed);
            if op.deadline_at.is_some() {
                self.armed_deadlines -= 1;
            }
            let ss = &mut self.sessions[h.sess as usize];
            let op = &mut ss.ops[h.idx as usize];
            if !op.ordered {
                ss.unordered_live -= 1;
            }
            while ss.first_live < ss.ops.len() && ss.ops[ss.first_live].done {
                ss.first_live += 1;
            }
            self.on_op_terminal(h, now);
        } else {
            // A barrier may have advanced (or program order may still be
            // waiting on more completions): re-enter the session so the
            // next tick can stage its newly-open work.
            self.ready_notify(h.sess as usize);
        }
        finished
    }

    /// Terminal bookkeeping shared by the completion and conclusion
    /// paths: tenant metering, admission-control accounting, the
    /// finished-op event feed, and ready-index notification of the
    /// session and every registered dependent.
    fn on_op_terminal(&mut self, h: OpHandle, now: u64) {
        let s = h.sess as usize;
        {
            let ss = &mut self.sessions[s];
            let op = &ss.ops[h.idx as usize];
            let completed = op.status == Some(OpStatus::Completed);
            let submitted = op.submitted_at;
            let first_staged = op.first_staged_at;
            let m = &mut ss.meter;
            if completed {
                m.ops_completed += 1;
            } else {
                m.ops_failed += 1;
            }
            m.cycles_resident += now.saturating_sub(submitted);
            match first_staged {
                Some(fs) => {
                    m.launch_wait_cycles += fs.saturating_sub(submitted);
                    m.service_cycles += now.saturating_sub(fs);
                }
                None => m.launch_wait_cycles += now.saturating_sub(submitted),
            }
            ss.live_ops -= 1;
            if !ss.job_queue.is_empty() {
                self.admit_pending.push_back(h.sess);
            }
        }
        self.finished_ops.push_back(h);
        self.ready_notify(s);
        let n_dep = self.op(h).dependents.len();
        for k in 0..n_dep {
            let d = self.op(h).dependents[k];
            self.ready_notify(d.sess as usize);
        }
    }

    /// Pop the next op that reached a terminal state since the last
    /// drain (the completion-event feed behind stream resubmission).
    /// Pops in deterministic conclusion order.
    pub(crate) fn pop_finished(&mut self) -> Option<OpHandle> {
        self.finished_ops.pop_front()
    }

    /// Conclude op `h` with `status` outside the normal last-instruction
    /// path (fault recovery): abandon un-issued work, mark the op done
    /// (finalizing results first when `status` is `Completed`, i.e. a
    /// host fallback), and unblock program order. Idempotent on done ops.
    #[cold]
    fn conclude(&mut self, h: OpHandle, status: OpStatus, now: u64) {
        if self.op(h).done {
            return;
        }
        match status {
            OpStatus::Completed => self.finalize(h), // sets done
            OpStatus::Failed => self.counters.ops_failed += 1,
            OpStatus::TimedOut => self.counters.ops_timed_out += 1,
            OpStatus::DepFailed => self.counters.ops_dep_failed += 1,
        }
        if self.op(h).deadline_at.is_some() {
            self.armed_deadlines -= 1;
        }
        let ss = &mut self.sessions[h.sess as usize];
        let op = &mut ss.ops[h.idx as usize];
        op.done = true;
        op.status = Some(status);
        op.finished_at = Some(now);
        op.pending.clear();
        op.retry_after = 0;
        if !op.ordered {
            ss.unordered_live -= 1;
        }
        while ss.first_live < ss.ops.len() && ss.ops[ss.first_live].done {
            ss.first_live += 1;
        }
        self.on_op_terminal(h, now);
    }

    /// [`conclude`](Self::conclude), then propagate a failure along
    /// explicit DAG edges: every live op depending (transitively) on a
    /// failed op is aborted `DepFailed` rather than left waiting forever.
    /// Plain program order does NOT propagate — a terminal op, failed or
    /// not, unblocks its successors. The walk follows the reverse edges
    /// registered at submission, so its cost is the victim set, not the
    /// global op table.
    #[cold]
    pub(crate) fn conclude_and_cascade(&mut self, h: OpHandle, status: OpStatus, now: u64) {
        self.conclude(h, status, now);
        if status == OpStatus::Completed {
            return;
        }
        let mut work = vec![h];
        let mut victims = Vec::new();
        while let Some(f) = work.pop() {
            victims.clear();
            for &d in &self.op(f).dependents {
                if !self.op(d).done {
                    victims.push(d);
                }
            }
            for &v in &victims {
                self.conclude(v, OpStatus::DepFailed, now);
                work.push(v);
            }
        }
    }

    /// Handle a failed or timed-out in-flight launch: retry with
    /// bounded-exponential backoff while budget remains (the retried
    /// launch gets a FRESH instruction id and goes back to the head of
    /// the op's queue), otherwise conclude the op — re-executing on the
    /// host first when [`OpBuilder::fallback_host`] opted in.
    ///
    /// `rank_death` marks a launch rejected because its target rank died
    /// permanently. While a survivor exists the requeue is a *re-shard*,
    /// not a retry against a flaky machine: staging redirects it to a
    /// live rank, progress is certain, so it neither consumes the retry
    /// budget nor backs off (a death can reject a whole queue of
    /// launches at once, which would otherwise drain the budget of every
    /// op with work on that rank). With no survivors the normal budget
    /// applies, bounding the rejection loop.
    #[cold]
    pub(crate) fn instr_failed(&mut self, mut launch: PendingLaunch, now: u64, rank_death: bool) {
        let h = launch.op;
        if self.op(h).done {
            return; // op already concluded; drop the straggler
        }
        if rank_death && self.alive.iter().any(|&a| a) {
            self.counters.instr_retries += 1;
            let fresh = self.take_instr_ids(1);
            launch.instr.id = fresh;
            self.op_mut(h).pending.push_front(launch);
            self.ready_notify(h.sess as usize);
            return;
        }
        let retries = self.op(h).retries;
        if retries < self.retry_limit {
            let backoff = self
                .retry_backoff
                .checked_shl(retries)
                .unwrap_or(u64::MAX)
                .min(self.retry_backoff_cap);
            self.counters.max_retry_backoff = self.counters.max_retry_backoff.max(backoff);
            self.counters.instr_retries += 1;
            let fresh = self.take_instr_ids(1);
            launch.instr.id = fresh;
            let op = self.op_mut(h);
            op.retries += 1;
            op.retry_after = now + backoff;
            op.pending.push_front(launch);
            // The session re-parks itself onto the wake heap at the next
            // pop, which keeps the hold's expiry in the horizon.
            self.ready_notify(h.sess as usize);
        } else if self.op(h).fallback_host {
            self.counters.host_fallbacks += 1;
            self.conclude_and_cascade(h, OpStatus::Completed, now);
        } else {
            self.conclude_and_cascade(h, OpStatus::Failed, now);
        }
    }

    /// Expire per-op deadlines: every live op whose
    /// [`OpBuilder::deadline`] has passed concludes `TimedOut` (failure
    /// cascades along DAG edges). Free while no deadline is armed.
    pub(crate) fn check_deadlines(&mut self, now: u64) {
        if self.armed_deadlines == 0 {
            return;
        }
        self.check_deadlines_cold(now);
    }

    #[cold]
    fn check_deadlines_cold(&mut self, now: u64) {
        let mut expired = Vec::new();
        for (si, ss) in self.sessions.iter().enumerate() {
            for (oi, op) in ss.ops.iter().enumerate().skip(ss.first_live) {
                if !op.done && op.deadline_at.is_some_and(|d| d <= now) {
                    expired.push(OpHandle {
                        sess: si as u32,
                        idx: oi as u32,
                    });
                }
            }
        }
        for h in expired {
            self.conclude_and_cascade(h, OpStatus::TimedOut, now);
        }
    }

    /// Attach builder-level recovery options to a freshly submitted op.
    fn apply_recovery_opts(&mut self, h: OpHandle, deadline: Option<u64>, fallback_host: bool) {
        if deadline.is_none() && !fallback_host {
            return;
        }
        let now = self.clock;
        let op = self.op_mut(h);
        op.fallback_host = fallback_host;
        if let Some(cycles) = deadline {
            if !op.done {
                op.deadline_at = Some(now.saturating_add(cycles));
                self.armed_deadlines += 1;
            }
        }
    }

    /// Earliest future cycle at which recovery state changes on its own:
    /// a retry hold expiring or an armed deadline firing. The system
    /// folds this into its front-end horizon so fast-forwarding engines
    /// execute those cycles exactly. `None` when nothing is pending.
    pub(crate) fn next_recovery_wake(&self, now: u64) -> Option<u64> {
        let mut wake = u64::MAX;
        if self.armed_deadlines > 0 {
            for ss in &self.sessions {
                for op in &ss.ops[ss.first_live..] {
                    if !op.done {
                        if let Some(d) = op.deadline_at {
                            wake = wake.min(d);
                        }
                    }
                }
            }
        }
        // Retry holds live on the wake heap (a session whose hold is not
        // yet parked there is still Ready, which already pins the
        // horizon to `now` via `launch_ready`). Stale entries only make
        // the horizon conservative — they are drained by `pre_stage`.
        if let Some(&Reverse((t, _))) = self.wake.peek() {
            wake = wake.min(t);
        }
        (wake != u64::MAX).then(|| wake.max(now))
    }

    /// Functionally execute the finished op on the backing store.
    fn finalize(&mut self, h: OpHandle) {
        let kind = std::mem::replace(
            &mut self.op_mut(h).kind,
            OpKind::Elementwise {
                op: Opcode::Copy,
                scalars: vec![],
                inputs: vec![],
                output: None,
            },
        );
        match &kind {
            OpKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            } => {
                let input_data: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|v| self.arrays[v.0].backing.clone())
                    .collect();
                let input_refs: Vec<&[f32]> = input_data.iter().map(|v| v.as_slice()).collect();
                let stats = match output {
                    Some(o) => pe::execute(
                        *op,
                        scalars,
                        &input_refs,
                        Some(&mut self.arrays[o.0].backing),
                    ),
                    None => pe::execute(*op, scalars, &input_refs, None),
                };
                self.op_mut(h).result = stats.reduction;
                self.add_activity(stats);
            }
            OpKind::Gemv { y, a, x } => {
                let (rows, cols) = self.arrays[a.0].shape.expect("matrix");
                let a_data = self.arrays[a.0].backing.clone();
                let x_data = self.arrays[x.0].backing.clone();
                let stats =
                    pe::execute_gemv(&a_data, &x_data, &mut self.arrays[y.0].backing, rows, cols);
                self.add_activity(stats);
            }
            OpKind::MacroAxpyRows { a_pvt, alphas, x } => {
                let (_, cols) = self.arrays[x.0].shape.expect("matrix");
                let x_data = self.arrays[x.0].backing.clone();
                let owners = self.line_owners(*x, cols);
                let lines_per_row = cols / 16;
                let privates = self.arrays[a_pvt.0]
                    .private
                    .as_mut()
                    .expect("private array");
                let mut fmas = 0u64;
                for (i, &alpha) in alphas.iter().enumerate() {
                    let row = &x_data[i * cols..(i + 1) * cols];
                    for l in 0..lines_per_row {
                        let owner = owners[(i * lines_per_row + l) % owners.len()];
                        let dst = &mut privates[owner];
                        for e in 0..16 {
                            let j = l * 16 + e;
                            dst[j] += alpha * row[j];
                            fmas += 1;
                        }
                    }
                }
                self.pe_activity.fmas += fmas;
                self.pe_activity.buffer_accesses += fmas / 2;
            }
        }
        let op = self.op_mut(h);
        op.kind = kind;
        op.done = true;
    }

    /// Which NDA owns each cache line of a shared array (exact, via the
    /// mapping), cycled for timing-padded tails.
    fn line_owners(&self, m: MatId, _cols: usize) -> Vec<usize> {
        let a = &self.arrays[m.0];
        match &a.region {
            Some(region) => {
                let lines = ((a.len * 4) as u64).div_ceil(64);
                let rpc = self.cfg.ranks_per_channel;
                (0..lines)
                    .map(|l| {
                        let d = self.mapper.map_pa(region.pa_of(l * 64));
                        self.nda_ranks
                            .iter()
                            .position(|&(c, r)| (c, r) == (d.channel, d.rank))
                            .unwrap_or((d.channel * rpc + d.rank) % self.n_ndas)
                    })
                    .collect()
            }
            // Rank-partition mode: round-robin striping.
            None => (0..self.n_ndas).collect(),
        }
    }

    fn add_activity(&mut self, s: pe::ExecStats) {
        self.pe_activity.fmas += s.fmas;
        self.pe_activity.buffer_accesses += s.buffer_accesses;
        self.pe_activity.scratch_accesses += s.scratch_accesses;
    }

    /// True when the op reached a terminal state (results visible only
    /// when [`op_status`](Self::op_status) is `Completed`).
    pub fn op_done(&self, h: OpHandle) -> bool {
        self.op(h).done
    }

    /// Terminal status of op `h`, `None` while it is still live. Outside
    /// fault recovery every finished op reads `Some(Completed)`.
    pub fn op_status(&self, h: OpHandle) -> Option<OpStatus> {
        self.op(h).status
    }

    /// True when `h` names an existing session/op pair. Snapshot decode
    /// validates handles held outside the runtime (staged launches,
    /// in-flight completions, shard-side tags) through this.
    pub(crate) fn handle_in_range(&self, h: OpHandle) -> bool {
        self.sessions
            .get(h.sess as usize)
            .is_some_and(|s| (h.idx as usize) < s.ops.len())
    }

    /// Reduction result of a completed DOT/NRM2.
    pub fn op_result(&self, h: OpHandle) -> Option<f32> {
        self.op(h).result
    }

    /// Cycle at which the op completed.
    pub fn op_finished_at(&self, h: OpHandle) -> Option<u64> {
        self.op(h).finished_at
    }

    /// Cycle at which the op's first launch was staged toward the
    /// channel (`None` while it is still held by DAG edges, program
    /// order, or queue backpressure).
    pub fn op_first_staged_at(&self, h: OpHandle) -> Option<u64> {
        self.op(h).first_staged_at
    }

    /// Host-side reduction of a private array into a shared vector
    /// (`host::reduce` of Fig. 8): functional sum over NDA copies plus an
    /// analytic host-traffic cycle charge.
    pub fn host_reduce(&mut self, dst: VecId, src: VecId) {
        let len = self.arrays[dst.0].len;
        assert_eq!(self.arrays[src.0].len, len);
        let privates = self.arrays[src.0]
            .private
            .as_ref()
            .expect("private source")
            .clone();
        let out = &mut self.arrays[dst.0].backing;
        out.iter_mut().for_each(|v| *v = 0.0);
        for copy in &privates {
            for (o, v) in out.iter_mut().zip(copy) {
                *o += *v;
            }
        }
        // Host reads n_ndas copies and writes one: bytes / peak BW.
        let bytes = (len * 4 * (self.n_ndas + 1)) as f64;
        let bw = self.cfg.channel_bytes_per_cycle() * self.cfg.channels as f64;
        self.host_comm_cycles += (bytes / bw).ceil() as u64;
    }

    /// Zero every private copy of a private vector.
    pub fn clear_private(&mut self, v: VecId) {
        for copy in self.arrays[v.0].private.as_mut().expect("private array") {
            copy.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Host-side elementwise sigmoid (`host::sigmoid` of Fig. 8).
    pub fn host_sigmoid(&mut self, v: VecId) {
        for x in &mut self.arrays[v.0].backing {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        let bytes = (self.arrays[v.0].len * 8) as f64;
        let bw = self.cfg.channel_bytes_per_cycle() * self.cfg.channels as f64;
        self.host_comm_cycles += (bytes / bw).ceil() as u64;
    }

    /// Remaining queued launches across all sessions.
    pub fn pending_launches(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| s.ops.iter())
            .map(|o| o.pending.len())
            .sum()
    }

    /// Every op of `sess` completed and nothing pending (the
    /// session-quiescent [`Waitable`](crate::system::Waitable)).
    pub fn session_idle(&self, sess: Session) -> bool {
        let ss = &self.sessions[sess.id as usize];
        ss.ops[ss.first_live..].iter().all(|o| o.done)
    }

    /// All ops of every session completed and nothing pending.
    pub fn quiescent(&self) -> bool {
        self.sessions
            .iter()
            .all(|ss| ss.ops[ss.first_live..].iter().all(|o| o.done))
    }

    // ---- executor: QoS classes, admission, job queue --------------------

    /// Set `sess`'s QoS class. Takes effect at the next arbitration
    /// decision; the session keeps its virtual-time position, floored to
    /// the new band's clock so it cannot cash in credit accumulated in
    /// the other band.
    pub fn set_qos(&mut self, sess: Session, class: QosClass) {
        let s = sess.id as usize;
        let band = class.band();
        let vt = self.sessions[s].vtime.max(self.vnow[band]);
        let ss = &mut self.sessions[s];
        ss.qos = class;
        ss.vtime = vt;
        if ss.sched == SchedState::Ready {
            // Re-home the live heap entry into the new band; the old
            // entry's stamp goes stale and is dropped on pop.
            ss.heap_stamp = ss.heap_stamp.wrapping_add(1);
            let stamp = ss.heap_stamp;
            self.ready[band].push(Reverse((vt, s as u32, stamp)));
            perfcount::bump(Counter::ReadyIndexOps);
        }
    }

    /// The QoS class of `sess`.
    pub fn qos(&self, sess: Session) -> QosClass {
        self.sessions[sess.id as usize].qos
    }

    /// Set `sess`'s admission-control limits. Loosening the in-flight
    /// cap re-arms admission for already-queued jobs.
    pub fn set_tenant_limits(&mut self, sess: Session, limits: TenantLimits) {
        let s = sess.id as usize;
        self.sessions[s].limits = limits;
        if !self.sessions[s].job_queue.is_empty() {
            self.admit_pending.push_back(s as u32);
        }
    }

    /// The admission-control limits of `sess`.
    pub fn tenant_limits(&self, sess: Session) -> TenantLimits {
        self.sessions[sess.id as usize].limits
    }

    /// Submit a [`JobGraph`] through the executor's admission control.
    ///
    /// If the session's job queue is empty and the graph fits under its
    /// in-flight cap, the graph is admitted (ops submitted) immediately.
    /// Otherwise it is queued FIFO — admission resumes as the session's
    /// live ops retire — up to [`TenantLimits::queue_depth`] graphs;
    /// past that the submission is refused with
    /// [`SubmitError::QueueFull`]. Every decision depends only on
    /// runtime state, so it is bit-identical across engines and
    /// snapshot/resume.
    pub fn submit_job(&mut self, sess: Session, graph: JobGraph) -> Result<Ticket, SubmitError> {
        let s = sess.id as usize;
        let job = self.sessions[s].jobs.len() as u32;
        let nodes = graph.nodes.len() as u32;
        let enqueued_at = self.clock;
        let ss = &self.sessions[s];
        // Queued jobs admit strictly FIFO: a graph may not overtake the
        // queue even if it would fit right now.
        let fits = ss.job_queue.is_empty()
            && ss.live_ops.saturating_add(nodes) <= ss.limits.max_inflight_ops;
        if fits {
            self.sessions[s].jobs.push(JobRecord {
                state: JobState::Admitted { base: 0, end: 0 },
                enqueued_at,
            });
            let (base, end) = self.admit_graph(sess, graph);
            self.sessions[s].jobs[job as usize].state = JobState::Admitted { base, end };
            Ok(Ticket { sess: sess.id, job })
        } else if (ss.job_queue.len() as u32) < ss.limits.queue_depth {
            let ss = &mut self.sessions[s];
            ss.jobs.push(JobRecord {
                state: JobState::Queued(graph),
                enqueued_at,
            });
            ss.job_queue.push_back(job);
            Ok(Ticket { sess: sess.id, job })
        } else {
            self.sessions[s].meter.jobs_rejected += 1;
            Err(SubmitError::QueueFull)
        }
    }

    /// Resolve a graph's nodes into real submissions; returns the
    /// session-op range `[base, end)` they produced (realignment copies
    /// included — they land inside the range).
    fn admit_graph(&mut self, sess: Session, graph: JobGraph) -> (u32, u32) {
        let base = self.sessions[sess.id as usize].ops.len() as u32;
        let mut handles: Vec<OpHandle> = Vec::with_capacity(graph.nodes.len());
        for node in graph.nodes {
            let mut deps = node.after_ops;
            for &p in &node.parents {
                deps.push(handles[p as usize]);
            }
            let h = match node.kind {
                JobKind::Elementwise {
                    op,
                    scalars,
                    inputs,
                    output,
                } => self.submit_elementwise(
                    sess,
                    op,
                    scalars,
                    inputs,
                    output,
                    node.opts,
                    deps,
                    node.ordered,
                ),
                JobKind::Gemv { y, a, x } => {
                    self.submit_gemv(sess, y, a, x, node.opts, deps, node.ordered)
                }
                JobKind::AxpyRows {
                    a_pvt,
                    alphas,
                    x,
                    samples_per_instr,
                } => self.submit_axpy_rows(
                    sess,
                    a_pvt,
                    alphas,
                    x,
                    samples_per_instr,
                    node.opts,
                    deps,
                    node.ordered,
                ),
            };
            handles.push(h);
        }
        let end = self.sessions[sess.id as usize].ops.len() as u32;
        (base, end)
    }

    /// Admit queued jobs of session `s` FIFO while they fit under the
    /// in-flight cap. Off the steady-state path (sessions enter
    /// `admit_pending` only when they hold queued jobs).
    #[cold]
    fn drain_admissions(&mut self, s: usize, now: u64) {
        loop {
            let ss = &self.sessions[s];
            let Some(&job) = ss.job_queue.front() else {
                return;
            };
            let JobState::Queued(ref g) = ss.jobs[job as usize].state else {
                self.sessions[s].job_queue.pop_front();
                continue;
            };
            if ss.live_ops.saturating_add(g.nodes.len() as u32) > ss.limits.max_inflight_ops {
                return;
            }
            let ss = &mut self.sessions[s];
            ss.job_queue.pop_front();
            let rec = &mut ss.jobs[job as usize];
            let enqueued = rec.enqueued_at;
            let state = std::mem::replace(&mut rec.state, JobState::Admitted { base: 0, end: 0 });
            let JobState::Queued(graph) = state else {
                unreachable!("checked above")
            };
            ss.meter.admission_wait_cycles += now.saturating_sub(enqueued);
            let (base, end) = self.admit_graph(Session { id: s as u32 }, graph);
            self.sessions[s].jobs[job as usize].state = JobState::Admitted { base, end };
        }
    }

    /// True once `t`'s graph was admitted (left the job queue).
    pub fn ticket_admitted(&self, t: Ticket) -> bool {
        matches!(
            self.sessions[t.sess as usize].jobs[t.job as usize].state,
            JobState::Admitted { .. }
        )
    }

    /// True once every op `t`'s graph produced reached a terminal state.
    /// Queued (not yet admitted) tickets are never done.
    pub fn ticket_done(&self, t: Ticket) -> bool {
        let ss = &self.sessions[t.sess as usize];
        match ss.jobs[t.job as usize].state {
            JobState::Queued(_) => false,
            JobState::Admitted { base, end } => {
                ss.ops[base as usize..end as usize].iter().all(|o| o.done)
            }
        }
    }

    /// Per-tenant metering rows for `SimReport::tenants`, session order.
    pub(crate) fn tenant_reports(&self) -> Vec<TenantReport> {
        self.sessions
            .iter()
            .enumerate()
            .map(|(i, ss)| {
                let mut t = ss.meter.clone();
                t.session = i as u32;
                t
            })
            .collect()
    }

    // ---- snapshot codec -------------------------------------------------

    /// Serialize all mutable runtime state (snapshot support). Structural
    /// fields rebuilt by the constructor from the configuration (`n_ndas`,
    /// `mapper`, `cfg`, `nda_ranks`, `rank_partition`) are not stored.
    #[cold]
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.arrays.len() as u64);
        for a in &self.arrays {
            encode_f32s(&a.backing, w);
            match &a.private {
                None => w.bool(false),
                Some(copies) => {
                    w.bool(true);
                    w.varint(copies.len() as u64);
                    for c in copies {
                        encode_f32s(c, w);
                    }
                }
            }
            w.varint(a.layouts.len() as u64);
            for l in &a.layouts {
                encode_layout(l, w);
            }
            w.varint(a.lines_per_rank);
            match &a.region {
                None => w.bool(false),
                Some(rg) => {
                    w.bool(true);
                    w.varint(rg.rows.len() as u64);
                    for row in &rg.rows {
                        w.varint(u64::from(row.index));
                    }
                    w.varint(rg.row_bytes);
                    match rg.color {
                        None => w.bool(false),
                        Some(c) => {
                            w.bool(true);
                            w.varint(u64::from(c.0));
                        }
                    }
                }
            }
            w.varint(a.len as u64);
            match a.shape {
                None => w.bool(false),
                Some((rows, cols)) => {
                    w.bool(true);
                    w.varint(rows as u64);
                    w.varint(cols as u64);
                }
            }
            w.varint(u64::from(a.color.0));
        }
        w.varint(self.sessions.len() as u64);
        for ss in &self.sessions {
            w.varint(ss.ops.len() as u64);
            for op in &ss.ops {
                match &op.kind {
                    OpKind::Elementwise {
                        op: oc,
                        scalars,
                        inputs,
                        output,
                    } => {
                        w.u8(0);
                        encode_opcode(*oc, w);
                        encode_f32s(scalars, w);
                        w.varint(inputs.len() as u64);
                        for v in inputs {
                            w.varint(v.0 as u64);
                        }
                        match output {
                            None => w.bool(false),
                            Some(v) => {
                                w.bool(true);
                                w.varint(v.0 as u64);
                            }
                        }
                    }
                    OpKind::Gemv { y, a, x } => {
                        w.u8(1);
                        w.varint(y.0 as u64);
                        w.varint(a.0 as u64);
                        w.varint(x.0 as u64);
                    }
                    OpKind::MacroAxpyRows { a_pvt, alphas, x } => {
                        w.u8(2);
                        w.varint(a_pvt.0 as u64);
                        encode_f32s(alphas, w);
                        w.varint(x.0 as u64);
                    }
                }
                w.varint(op.pending.len() as u64);
                for p in &op.pending {
                    w.varint(p.nda_idx as u64);
                    encode_instr(&p.instr, w);
                    encode_handle(p.op, w);
                    w.varint(p.chunk as u64);
                }
                w.varint(op.total_instrs);
                w.varint(op.completed_instrs);
                w.u32_slice(&op.chunk_sizes);
                w.u32_slice(&op.chunk_completed);
                w.varint(op.released_chunks as u64);
                w.bool(op.barrier);
                match op.result {
                    None => w.bool(false),
                    Some(v) => {
                        w.bool(true);
                        w.f32(v);
                    }
                }
                w.bool(op.done);
                w.varint(op.deps.len() as u64);
                for &d in &op.deps {
                    encode_handle(d, w);
                }
                w.bool(op.ordered);
                w.varint(op.instr_base);
                w.opt_cycle(op.first_staged_at);
                w.opt_cycle(op.finished_at);
                w.u8(OpStatus::encode(op.status));
                w.varint(u64::from(op.retries));
                w.varint(op.retry_after);
                w.opt_cycle(op.deadline_at);
                w.bool(op.fallback_host);
                w.varint(op.submitted_at);
            }
            w.varint(ss.first_live as u64);
            w.varint(ss.unordered_live as u64);
            ss.qos.encode(w);
            w.varint(ss.vtime);
            w.varint(u64::from(ss.limits.max_inflight_ops));
            w.varint(u64::from(ss.limits.queue_depth));
            encode_meter(&ss.meter, w);
            w.varint(ss.jobs.len() as u64);
            for job in &ss.jobs {
                w.varint(job.enqueued_at);
                match &job.state {
                    JobState::Queued(g) => {
                        w.u8(0);
                        encode_job_graph(g, w);
                    }
                    JobState::Admitted { base, end } => {
                        w.u8(1);
                        w.varint(u64::from(*base));
                        w.varint(u64::from(*end));
                    }
                }
            }
            w.varint(ss.job_queue.len() as u64);
            for &j in &ss.job_queue {
                w.varint(u64::from(j));
            }
        }
        w.varint(self.vnow[0]);
        w.varint(self.vnow[1]);
        w.varint(self.admit_pending.len() as u64);
        for &s in &self.admit_pending {
            w.varint(u64::from(s));
        }
        w.varint(self.finished_ops.len() as u64);
        for &h in &self.finished_ops {
            encode_handle(h, w);
        }
        w.varint(self.next_instr);
        self.allocator.encode_state(w);
        w.u32_slice(&self.rp_next_row);
        w.bool(self.pa_order_walk);
        w.varint(self.pe_activity.fmas);
        w.varint(self.pe_activity.buffer_accesses);
        w.varint(self.pe_activity.scratch_accesses);
        w.varint(self.host_comm_cycles);
        w.varint(self.realignment_copies);
        w.varint(u64::from(self.default_color.0));
        for &a in &self.alive {
            w.bool(a);
        }
        w.varint(self.counters.instr_retries);
        w.varint(self.counters.instr_timeouts);
        w.varint(self.counters.ops_failed);
        w.varint(self.counters.ops_timed_out);
        w.varint(self.counters.ops_dep_failed);
        w.varint(self.counters.host_fallbacks);
        w.varint(self.counters.ranks_quarantined);
        w.varint(self.counters.max_retry_backoff);
        w.varint(self.clock);
    }

    /// Overwrite this (freshly constructed) runtime from bytes written by
    /// [`encode_state`](Self::encode_state), validating every handle and
    /// array reference against the decoded tables.
    #[cold]
    pub(crate) fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n_arrays = r.varint_usize()?;
        self.arrays.clear();
        self.arrays.reserve(n_arrays.min(r.remaining()));
        for _ in 0..n_arrays {
            let backing = decode_f32s(r)?;
            let private = if r.bool()? {
                let n = r.varint_usize()?;
                if n != self.n_ndas {
                    return Err(CodecError::Corrupt("private copy count"));
                }
                let mut copies = Vec::with_capacity(n);
                for _ in 0..n {
                    copies.push(decode_f32s(r)?);
                }
                Some(copies)
            } else {
                None
            };
            let n_layouts = r.varint_usize()?;
            if n_layouts != self.n_ndas {
                return Err(CodecError::Corrupt("layout count"));
            }
            let mut layouts = Vec::with_capacity(n_layouts);
            for _ in 0..n_layouts {
                layouts.push(decode_layout(r)?);
            }
            let lines_per_rank = r.varint()?;
            let region = if r.bool()? {
                let n = r.varint_usize()?;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(SystemRow {
                        index: r.varint_u32()?,
                    });
                }
                let row_bytes = r.varint()?;
                let color = if r.bool()? {
                    Some(Color(r.varint_u32()?))
                } else {
                    None
                };
                Some(Region {
                    rows,
                    row_bytes,
                    color,
                })
            } else {
                None
            };
            let len = r.varint_usize()?;
            let shape = if r.bool()? {
                Some((r.varint_usize()?, r.varint_usize()?))
            } else {
                None
            };
            let color = Color(r.varint_u32()?);
            self.arrays.push(ArrayData {
                backing,
                private,
                layouts,
                lines_per_rank,
                region,
                len,
                shape,
                color,
            });
        }
        let n_sessions = r.varint_usize()?;
        if n_sessions == 0 {
            return Err(CodecError::Corrupt("no sessions"));
        }
        self.sessions.clear();
        self.sessions.reserve(n_sessions.min(r.remaining()));
        for _ in 0..n_sessions {
            let n_ops = r.varint_usize()?;
            let mut ops = Vec::with_capacity(n_ops.min(r.remaining()));
            for _ in 0..n_ops {
                let kind = match r.u8()? {
                    0 => {
                        let oc = decode_opcode(r)?;
                        let scalars = decode_f32s(r)?;
                        let n_in = r.varint_usize()?;
                        let mut inputs = Vec::with_capacity(n_in.min(r.remaining()));
                        for _ in 0..n_in {
                            inputs.push(self.decode_vec_id(r)?);
                        }
                        let output = if r.bool()? {
                            Some(self.decode_vec_id(r)?)
                        } else {
                            None
                        };
                        OpKind::Elementwise {
                            op: oc,
                            scalars,
                            inputs,
                            output,
                        }
                    }
                    1 => OpKind::Gemv {
                        y: self.decode_vec_id(r)?,
                        a: self.decode_mat_id(r)?,
                        x: self.decode_vec_id(r)?,
                    },
                    2 => OpKind::MacroAxpyRows {
                        a_pvt: self.decode_vec_id(r)?,
                        alphas: decode_f32s(r)?,
                        x: self.decode_mat_id(r)?,
                    },
                    _ => return Err(CodecError::Corrupt("op kind tag")),
                };
                let n_pending = r.varint_usize()?;
                let mut pending = VecDeque::with_capacity(n_pending.min(r.remaining()));
                for _ in 0..n_pending {
                    let nda_idx = r.varint_usize()?;
                    if nda_idx >= self.n_ndas {
                        return Err(CodecError::Corrupt("pending NDA index"));
                    }
                    pending.push_back(PendingLaunch {
                        nda_idx,
                        instr: decode_instr(r)?,
                        op: decode_handle(r)?,
                        chunk: r.varint_usize()?,
                    });
                }
                let total_instrs = r.varint()?;
                let completed_instrs = r.varint()?;
                let chunk_sizes = r.u32_vec()?;
                let chunk_completed = r.u32_vec()?;
                if chunk_completed.len() != chunk_sizes.len() {
                    return Err(CodecError::Corrupt("chunk table length"));
                }
                let released_chunks = r.varint_usize()?;
                if released_chunks > chunk_sizes.len() {
                    return Err(CodecError::Corrupt("released chunks"));
                }
                let barrier = r.bool()?;
                let result = if r.bool()? { Some(r.f32()?) } else { None };
                let done = r.bool()?;
                let n_deps = r.varint_usize()?;
                let mut deps = Vec::with_capacity(n_deps.min(r.remaining()));
                for _ in 0..n_deps {
                    deps.push(decode_handle(r)?);
                }
                ops.push(OpState {
                    kind,
                    pending,
                    total_instrs,
                    completed_instrs,
                    chunk_sizes,
                    chunk_completed,
                    released_chunks,
                    barrier,
                    result,
                    done,
                    deps,
                    ordered: r.bool()?,
                    instr_base: r.varint()?,
                    first_staged_at: r.opt_cycle()?,
                    finished_at: r.opt_cycle()?,
                    status: OpStatus::decode(r.u8()?)?,
                    retries: r.varint_u32()?,
                    retry_after: r.varint()?,
                    deadline_at: r.opt_cycle()?,
                    fallback_host: r.bool()?,
                    submitted_at: r.varint()?,
                    dependents: Vec::new(),
                });
            }
            let first_live = r.varint_usize()?;
            let unordered_live = r.varint_usize()?;
            if first_live > ops.len() || unordered_live > ops.len() {
                return Err(CodecError::Corrupt("session watermarks"));
            }
            let qos = QosClass::decode(r)?;
            let vtime = r.varint()?;
            let limits = TenantLimits {
                max_inflight_ops: r.varint_u32()?,
                queue_depth: r.varint_u32()?,
            };
            let meter = decode_meter(r)?;
            let n_jobs = r.varint_usize()?;
            let mut jobs = Vec::with_capacity(n_jobs.min(r.remaining()));
            for _ in 0..n_jobs {
                let enqueued_at = r.varint()?;
                let state = match r.u8()? {
                    0 => JobState::Queued(self.decode_job_graph(r)?),
                    1 => {
                        let base = r.varint_u32()?;
                        let end = r.varint_u32()?;
                        if base > end || end as usize > ops.len() {
                            return Err(CodecError::Corrupt("admitted job range"));
                        }
                        JobState::Admitted { base, end }
                    }
                    _ => return Err(CodecError::Corrupt("job state tag")),
                };
                jobs.push(JobRecord { state, enqueued_at });
            }
            let n_queued = r.varint_usize()?;
            let mut job_queue = VecDeque::with_capacity(n_queued.min(r.remaining()));
            for _ in 0..n_queued {
                let j = r.varint_u32()?;
                if j as usize >= jobs.len() {
                    return Err(CodecError::Corrupt("job queue index"));
                }
                job_queue.push_back(j);
            }
            self.sessions.push(SessionState {
                ops,
                first_live,
                unordered_live,
                qos,
                vtime,
                sched: SchedState::Untracked,
                heap_stamp: 0,
                live_ops: 0,
                limits,
                jobs,
                job_queue,
                meter,
            });
        }
        // Handles may forward-reference sessions, so validate them only
        // now that the full table exists (queued job graphs carry
        // external-parent handles too).
        fn check_handle(sessions: &[SessionState], h: OpHandle) -> Result<(), CodecError> {
            let Some(target) = sessions.get(h.sess as usize) else {
                return Err(CodecError::Corrupt("handle session out of range"));
            };
            if h.idx as usize >= target.ops.len() {
                return Err(CodecError::Corrupt("handle op out of range"));
            }
            Ok(())
        }
        for ss in &self.sessions {
            for op in &ss.ops {
                for h in op.deps.iter().chain(op.pending.iter().map(|p| &p.op)) {
                    check_handle(&self.sessions, *h)?;
                }
            }
            for job in &ss.jobs {
                if let JobState::Queued(g) = &job.state {
                    for n in &g.nodes {
                        for &h in &n.after_ops {
                            check_handle(&self.sessions, h)?;
                        }
                    }
                }
            }
        }
        self.vnow[0] = r.varint()?;
        self.vnow[1] = r.varint()?;
        let n_admit = r.varint_usize()?;
        self.admit_pending.clear();
        for _ in 0..n_admit {
            let s = r.varint_u32()?;
            if s as usize >= self.sessions.len() {
                return Err(CodecError::Corrupt("admit-pending session"));
            }
            self.admit_pending.push_back(s);
        }
        let n_finished = r.varint_usize()?;
        self.finished_ops.clear();
        for _ in 0..n_finished {
            let h = decode_handle(r)?;
            let Some(target) = self.sessions.get(h.sess as usize) else {
                return Err(CodecError::Corrupt("finished-op session"));
            };
            if h.idx as usize >= target.ops.len() {
                return Err(CodecError::Corrupt("finished-op index"));
            }
            self.finished_ops.push_back(h);
        }
        self.next_instr = r.varint()?;
        self.allocator.decode_state(r)?;
        let rp = r.u32_vec()?;
        if rp.len() != self.n_ndas {
            return Err(CodecError::ConfigMismatch);
        }
        self.rp_next_row = rp;
        self.pa_order_walk = r.bool()?;
        self.pe_activity.fmas = r.varint()?;
        self.pe_activity.buffer_accesses = r.varint()?;
        self.pe_activity.scratch_accesses = r.varint()?;
        self.host_comm_cycles = r.varint()?;
        self.realignment_copies = r.varint()?;
        self.default_color = Color(r.varint_u32()?);
        for a in &mut self.alive {
            *a = r.bool()?;
        }
        self.counters.instr_retries = r.varint()?;
        self.counters.instr_timeouts = r.varint()?;
        self.counters.ops_failed = r.varint()?;
        self.counters.ops_timed_out = r.varint()?;
        self.counters.ops_dep_failed = r.varint()?;
        self.counters.host_fallbacks = r.varint()?;
        self.counters.ranks_quarantined = r.varint()?;
        self.counters.max_retry_backoff = r.varint()?;
        self.clock = r.varint()?;
        // `armed_deadlines` is derived state: recount live armed ops.
        self.armed_deadlines = 0;
        for ss in &self.sessions {
            for op in &ss.ops {
                if !op.done && op.deadline_at.is_some() {
                    self.armed_deadlines += 1;
                }
            }
        }
        // The ready index, reverse-dependency edges, and live-op gauges
        // are likewise derived — rebuild rather than serialize them.
        let mut dep_edges: Vec<(OpHandle, OpHandle)> = Vec::new();
        for (s, ss) in self.sessions.iter_mut().enumerate() {
            ss.live_ops = ss.ops.iter().filter(|o| !o.done).count() as u32;
            ss.sched = SchedState::Untracked;
            ss.heap_stamp = 0;
            for (i, op) in ss.ops.iter().enumerate() {
                if op.done {
                    continue;
                }
                let h = OpHandle {
                    sess: s as u32,
                    idx: i as u32,
                };
                for &d in &op.deps {
                    dep_edges.push((d, h));
                }
            }
        }
        for (d, h) in dep_edges {
            if !self.op(d).done {
                self.op_mut(d).dependents.push(h);
            }
        }
        self.ready[0].clear();
        self.ready[1].clear();
        self.wake.clear();
        for wl in &mut self.waitlists {
            wl.clear();
        }
        // Classify every session against infinite queue space: sessions
        // whose candidate is retry-held get exact wake-ups; the rest of
        // the stageable ones enter Ready. A Ready entry that proves
        // credit-blocked at the next real staging pass re-parks itself —
        // premature entries cost executed cycles, never events, so the
        // resumed report stays bit-identical.
        for s in 0..self.sessions.len() {
            if self
                .classify_and_park(s, &|_| usize::MAX, self.clock)
                .is_some()
            {
                self.ready_notify(s);
            }
        }
        Ok(())
    }

    #[cold]
    fn decode_vec_id(&self, r: &mut ByteReader<'_>) -> Result<VecId, CodecError> {
        let i = r.varint_usize()?;
        if i >= self.arrays.len() {
            return Err(CodecError::Corrupt("vector id out of range"));
        }
        Ok(VecId(i))
    }

    #[cold]
    fn decode_mat_id(&self, r: &mut ByteReader<'_>) -> Result<MatId, CodecError> {
        let i = r.varint_usize()?;
        if i >= self.arrays.len() {
            return Err(CodecError::Corrupt("matrix id out of range"));
        }
        Ok(MatId(i))
    }

    #[cold]
    fn decode_job_graph(&self, r: &mut ByteReader<'_>) -> Result<JobGraph, CodecError> {
        let n_nodes = r.varint_usize()?;
        let mut nodes = Vec::with_capacity(n_nodes.min(r.remaining()));
        for node in 0..n_nodes {
            let kind = match r.u8()? {
                0 => {
                    let op = decode_opcode(r)?;
                    let scalars = decode_f32s(r)?;
                    let n_in = r.varint_usize()?;
                    let mut inputs = Vec::with_capacity(n_in.min(r.remaining()));
                    for _ in 0..n_in {
                        inputs.push(self.decode_vec_id(r)?);
                    }
                    let output = if r.bool()? {
                        Some(self.decode_vec_id(r)?)
                    } else {
                        None
                    };
                    JobKind::Elementwise {
                        op,
                        scalars,
                        inputs,
                        output,
                    }
                }
                1 => JobKind::Gemv {
                    y: self.decode_vec_id(r)?,
                    a: self.decode_mat_id(r)?,
                    x: self.decode_vec_id(r)?,
                },
                2 => {
                    let a_pvt = self.decode_vec_id(r)?;
                    let alphas = decode_f32s(r)?;
                    let x = self.decode_mat_id(r)?;
                    let samples_per_instr = r.varint_usize()?;
                    if samples_per_instr == 0 {
                        return Err(CodecError::Corrupt("samples per instr"));
                    }
                    JobKind::AxpyRows {
                        a_pvt,
                        alphas,
                        x,
                        samples_per_instr,
                    }
                }
                _ => return Err(CodecError::Corrupt("job node kind tag")),
            };
            let opts = LaunchOpts {
                granularity_lines: if r.bool()? { Some(r.varint()?) } else { None },
                barrier_per_chunk: r.bool()?,
            };
            let n_parents = r.varint_usize()?;
            let mut parents = Vec::with_capacity(n_parents.min(r.remaining()));
            for _ in 0..n_parents {
                let p = r.varint_u32()?;
                if p as usize >= node {
                    return Err(CodecError::Corrupt("job node parent"));
                }
                parents.push(p);
            }
            let n_after = r.varint_usize()?;
            let mut after_ops = Vec::with_capacity(n_after.min(r.remaining()));
            for _ in 0..n_after {
                after_ops.push(decode_handle(r)?);
            }
            let ordered = r.bool()?;
            nodes.push(JobNode {
                kind,
                opts,
                parents,
                after_ops,
                ordered,
            });
        }
        Ok(JobGraph { nodes })
    }
}

#[cold]
fn encode_job_graph(g: &JobGraph, w: &mut ByteWriter) {
    w.varint(g.nodes.len() as u64);
    for n in &g.nodes {
        match &n.kind {
            JobKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            } => {
                w.u8(0);
                encode_opcode(*op, w);
                encode_f32s(scalars, w);
                w.varint(inputs.len() as u64);
                for v in inputs {
                    w.varint(v.0 as u64);
                }
                match output {
                    None => w.bool(false),
                    Some(v) => {
                        w.bool(true);
                        w.varint(v.0 as u64);
                    }
                }
            }
            JobKind::Gemv { y, a, x } => {
                w.u8(1);
                w.varint(y.0 as u64);
                w.varint(a.0 as u64);
                w.varint(x.0 as u64);
            }
            JobKind::AxpyRows {
                a_pvt,
                alphas,
                x,
                samples_per_instr,
            } => {
                w.u8(2);
                w.varint(a_pvt.0 as u64);
                encode_f32s(alphas, w);
                w.varint(x.0 as u64);
                w.varint(*samples_per_instr as u64);
            }
        }
        match n.opts.granularity_lines {
            None => w.bool(false),
            Some(g) => {
                w.bool(true);
                w.varint(g);
            }
        }
        w.bool(n.opts.barrier_per_chunk);
        w.varint(n.parents.len() as u64);
        for &p in &n.parents {
            w.varint(u64::from(p));
        }
        w.varint(n.after_ops.len() as u64);
        for &h in &n.after_ops {
            encode_handle(h, w);
        }
        w.bool(n.ordered);
    }
}

#[cold]
fn encode_meter(m: &TenantReport, w: &mut ByteWriter) {
    // `session` is positional (re-stamped by `tenant_reports`), not
    // serialized.
    w.varint(m.ops_submitted);
    w.varint(m.ops_completed);
    w.varint(m.ops_failed);
    w.varint(m.jobs_rejected);
    w.varint(m.cycles_resident);
    w.varint(m.admission_wait_cycles);
    w.varint(m.launch_wait_cycles);
    w.varint(m.service_cycles);
}

#[cold]
fn decode_meter(r: &mut ByteReader<'_>) -> Result<TenantReport, CodecError> {
    Ok(TenantReport {
        session: 0,
        ops_submitted: r.varint()?,
        ops_completed: r.varint()?,
        ops_failed: r.varint()?,
        jobs_rejected: r.varint()?,
        cycles_resident: r.varint()?,
        admission_wait_cycles: r.varint()?,
        launch_wait_cycles: r.varint()?,
        service_cycles: r.varint()?,
    })
}

/// `deps_done` over a borrowed session table (borrow-splitting helper
/// for [`Runtime::classify_and_park`]).
fn deps_done_in(sessions: &[SessionState], deps: &[OpHandle]) -> bool {
    deps.iter()
        .all(|&d| sessions[d.sess as usize].ops[d.idx as usize].done)
}

/// What a launch call builds (resolved at [`OpBuilder::submit`]).
enum BuildKind {
    Elementwise {
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    },
    Gemv {
        y: VecId,
        a: MatId,
        x: VecId,
    },
    AxpyRows {
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    },
}

/// Builder for one op submission: launch options, DAG edges, and ordering
/// mode, finished by [`submit`](OpBuilder::submit).
#[must_use = "an OpBuilder does nothing until .submit()"]
pub struct OpBuilder<'rt> {
    rt: &'rt mut Runtime,
    sess: Session,
    kind: BuildKind,
    opts: LaunchOpts,
    deps: Vec<OpHandle>,
    ordered: bool,
    deadline: Option<u64>,
    fallback_host: bool,
}

impl<'rt> OpBuilder<'rt> {
    fn new(rt: &'rt mut Runtime, sess: Session, kind: BuildKind) -> Self {
        Self {
            rt,
            sess,
            kind,
            opts: LaunchOpts::default(),
            deps: Vec::new(),
            ordered: true,
            deadline: None,
            fallback_host: false,
        }
    }

    /// Replace the launch options wholesale.
    pub fn opts(mut self, opts: LaunchOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Cache blocks per NDA instruction per rank (the Fig.-10 knob).
    pub fn granularity_lines(mut self, lines: u64) -> Self {
        self.opts.granularity_lines = Some(lines);
        self
    }

    /// Asynchronous macro launch: do not barrier between chunks.
    pub fn no_barrier(mut self) -> Self {
        self.opts.barrier_per_chunk = false;
        self
    }

    /// Add a DAG edge: this op's launches are held until `parent` has
    /// retired. `parent` may belong to any session.
    pub fn after(mut self, parent: OpHandle) -> Self {
        self.deps.push(parent);
        self
    }

    /// Opt out of session program order: gate this op on its
    /// [`after`](Self::after) edges alone, letting it overlap other ops
    /// of the same session.
    pub fn unordered(mut self) -> Self {
        self.ordered = false;
        self
    }

    /// Arm a per-op deadline: if the op has not finished `cycles` DRAM
    /// cycles after submission it concludes
    /// [`TimedOut`](OpStatus::TimedOut) (and the failure cascades along
    /// explicit DAG edges).
    pub fn deadline(mut self, cycles: u64) -> Self {
        self.deadline = Some(cycles);
        self
    }

    /// Graceful degradation opt-in: when the op exhausts its retry
    /// budget on a faulted machine, re-execute it on the host cores
    /// (concluding [`Completed`](OpStatus::Completed) with results
    /// visible) instead of concluding [`Failed`](OpStatus::Failed).
    pub fn fallback_host(mut self) -> Self {
        self.fallback_host = true;
        self
    }

    /// Queue the op and return its handle.
    pub fn submit(self) -> OpHandle {
        let OpBuilder {
            rt,
            sess,
            kind,
            opts,
            deps,
            ordered,
            deadline,
            fallback_host,
        } = self;
        let built = match kind {
            BuildKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            } => rt.submit_elementwise(sess, op, scalars, inputs, output, opts, deps, ordered),
            BuildKind::Gemv { y, a, x } => rt.submit_gemv(sess, y, a, x, opts, deps, ordered),
            BuildKind::AxpyRows {
                a_pvt,
                alphas,
                x,
                samples_per_instr,
            } => rt.submit_axpy_rows(
                sess,
                a_pvt,
                alphas,
                x,
                samples_per_instr,
                opts,
                deps,
                ordered,
            ),
        };
        rt.apply_recovery_opts(built, deadline, fallback_host);
        built
    }
}

impl Session {
    /// Build an elementwise Table-I operation. `inputs` are read
    /// operands; `output` (if any) is the written operand (in-place ops
    /// pass the same id in both).
    pub fn elementwise<'rt>(
        self,
        rt: &'rt mut Runtime,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    ) -> OpBuilder<'rt> {
        OpBuilder::new(
            rt,
            self,
            BuildKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            },
        )
    }

    /// Build `y = A x` (one instruction per rank; A streams, x/y live in
    /// the scratchpad).
    pub fn gemv<'rt>(self, rt: &'rt mut Runtime, y: VecId, a: MatId, x: VecId) -> OpBuilder<'rt> {
        OpBuilder::new(rt, self, BuildKind::Gemv { y, a, x })
    }

    /// Build the `parallel_for` macro op of Fig. 8: per-sample
    /// `a_pvt += alphas[i] * X[i]`, `samples_per_instr` samples batched
    /// per NDA instruction.
    pub fn axpy_rows<'rt>(
        self,
        rt: &'rt mut Runtime,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    ) -> OpBuilder<'rt> {
        OpBuilder::new(
            rt,
            self,
            BuildKind::AxpyRows {
                a_pvt,
                alphas,
                x,
                samples_per_instr,
            },
        )
    }
}

/// Clamp a start line so timing walks never run past a layout (padding
/// tails reuse the final span; functional results are exact regardless).
fn x_layout_guard(a: &ArrayData, span: u64) -> u64 {
    a.layouts[0].lines().saturating_sub(span)
}
