//! The Chopim runtime and API (paper §V, Fig. 8).
//!
//! The runtime owns array allocation (colored, system-row-granular, via
//! the OS model), splits API calls into per-rank coarse-grain NDA
//! instructions, tracks completion, and executes the numerics functionally
//! on the `f32` backing store when an operation completes (the
//! function/timing split documented in `DESIGN.md`).
//!
//! ## Sessions, handles, and the op graph
//!
//! Submission is organized around [`Session`]s — per-tenant submission
//! contexts with their own in-order op streams — and typed [`OpHandle`]s
//! returned by builder-style launch calls:
//!
//! ```ignore
//! let sess = sys.runtime.create_session();
//! let a = sess.elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
//!     .submit();
//! let b = sess.elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
//!     .after(a)          // explicit DAG edge (redundant here: same session)
//!     .submit();
//! sys.drive(b, 10_000_000);
//! ```
//!
//! Within a session, ops execute in submission order by default — the
//! paper's blocking semantics (§V): instruction *issue* is FIFO per rank
//! but completion is not, so overlapping dependent ops would break
//! read-after-write across launches. [`OpBuilder::unordered`] opts an op
//! out of program order so it is gated only by its explicit
//! [`OpBuilder::after`] edges, which may reference handles from *any*
//! session. Dependent ops stage only when every parent has retired.
//!
//! Across sessions, [`Runtime::next_launches`] arbitrates fairly: a
//! deterministic round-robin cursor rotates over sessions with a
//! releasable op, so no ready tenant is starved by another tenant's
//! backlog.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::DramConfig;
use chopim_mapping::color::{Color, ColoredAllocator, Region, SystemRow};
use chopim_mapping::{AddressMapper, PartitionedMapping};
use chopim_nda::isa::{NdaInstr, Opcode};
use chopim_nda::operand::OperandLayout;
use chopim_nda::pe;
use chopim_nda::snapshot::{decode_instr, decode_layout, encode_instr, encode_layout};

use crate::energy::PeActivity;

/// Handle to a runtime-managed vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecId(pub(crate) usize);

/// Handle to a runtime-managed row-major matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatId(pub(crate) usize);

/// A per-tenant submission context.
///
/// Each session owns an ordered stream of operations; independent
/// sessions share the machine under fair-share arbitration (see the
/// module docs). Sessions are cheap `Copy` handles — create them with
/// [`Runtime::create_session`], or use [`Runtime::default_session`] for
/// single-tenant code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Session {
    id: u32,
}

/// Typed handle to a launched (possibly multi-instruction, multi-rank)
/// operation: the `(session, op)` pair completion routing carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpHandle {
    pub(crate) sess: u32,
    pub(crate) idx: u32,
}

impl OpHandle {
    /// The session this op was submitted to.
    pub fn session(self) -> Session {
        Session { id: self.sess }
    }
}

/// Deprecated name for [`OpHandle`] (ops used to be numbered globally;
/// they are now per-session handles).
#[deprecated(note = "use OpHandle")]
pub type OpId = OpHandle;

/// Terminal status of an operation. Every submitted op reaches exactly
/// one of these (the recovery property suite's no-lost-ops contract);
/// [`Runtime::op_status`] returns `None` while the op is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpStatus {
    /// The op finished and its results are visible (includes ops
    /// re-executed on the host via [`OpBuilder::fallback_host`]).
    Completed,
    /// The op exhausted its retry budget on a faulted machine and has
    /// no host fallback; results are undefined.
    Failed,
    /// The op's [`OpBuilder::deadline`] expired before it finished.
    TimedOut,
    /// A dependency (explicit [`OpBuilder::after`] edge) concluded
    /// unsuccessfully, so this op was aborted instead of waiting
    /// forever.
    DepFailed,
}

impl OpStatus {
    fn encode(this: Option<OpStatus>) -> u8 {
        match this {
            None => 0,
            Some(OpStatus::Completed) => 1,
            Some(OpStatus::Failed) => 2,
            Some(OpStatus::TimedOut) => 3,
            Some(OpStatus::DepFailed) => 4,
        }
    }

    fn decode(tag: u8) -> Result<Option<OpStatus>, CodecError> {
        Ok(match tag {
            0 => None,
            1 => Some(OpStatus::Completed),
            2 => Some(OpStatus::Failed),
            3 => Some(OpStatus::TimedOut),
            4 => Some(OpStatus::DepFailed),
            _ => return Err(CodecError::Corrupt("op status tag")),
        })
    }

    /// True for every terminal state except [`OpStatus::Completed`].
    pub fn is_failure(self) -> bool {
        self != OpStatus::Completed
    }
}

/// Runtime-side recovery accounting (folded into the report's
/// `FaultReport`).
#[derive(Debug, Clone, Default)]
pub(crate) struct RecoveryCounters {
    pub instr_retries: u64,
    pub instr_timeouts: u64,
    pub ops_failed: u64,
    pub ops_timed_out: u64,
    pub ops_dep_failed: u64,
    pub host_fallbacks: u64,
    pub ranks_quarantined: u64,
    pub max_retry_backoff: u64,
}

/// Serialize an op handle (snapshot support; shared with the shard and
/// system codecs).
#[cold]
pub(crate) fn encode_handle(h: OpHandle, w: &mut ByteWriter) {
    w.varint(u64::from(h.sess));
    w.varint(u64::from(h.idx));
}

/// Decode an op handle written by [`encode_handle`]. Bounds against the
/// session table are checked by the caller once all sessions exist
/// (handles may forward-reference).
#[cold]
pub(crate) fn decode_handle(r: &mut ByteReader<'_>) -> Result<OpHandle, CodecError> {
    Ok(OpHandle {
        sess: r.varint_u32()?,
        idx: r.varint_u32()?,
    })
}

fn encode_opcode(op: Opcode, w: &mut ByteWriter) {
    let idx = Opcode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("opcode in ALL");
    w.u8(idx as u8);
}

fn decode_opcode(r: &mut ByteReader<'_>) -> Result<Opcode, CodecError> {
    Opcode::ALL
        .get(r.u8()? as usize)
        .copied()
        .ok_or(CodecError::Corrupt("opcode"))
}

fn encode_f32s(vs: &[f32], w: &mut ByteWriter) {
    w.varint(vs.len() as u64);
    for &v in vs {
        w.f32(v);
    }
}

fn decode_f32s(r: &mut ByteReader<'_>) -> Result<Vec<f32>, CodecError> {
    let n = r.varint_usize()?;
    let mut vs = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        vs.push(r.f32()?);
    }
    Ok(vs)
}

/// How an array is distributed (paper Fig. 8: `nda::SHARED` vs
/// `nda::PRIVATE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Striped across all NDAs, colored for rank alignment.
    Shared,
    /// One full copy per NDA (e.g. the `a_pvt` accumulators of Fig. 8).
    Private,
}

/// Options controlling how an API call splits into NDA instructions.
#[derive(Debug, Clone, Copy)]
pub struct LaunchOpts {
    /// Cache blocks per NDA instruction per rank (`None` = one
    /// instruction covering the whole per-rank share). This is the
    /// coarse-grain knob of Fig. 10.
    pub granularity_lines: Option<u64>,
    /// Blocking semantics: wait for every rank to finish a chunk before
    /// launching the next (paper's default). `false` = asynchronous macro
    /// op launch.
    pub barrier_per_chunk: bool,
}

impl Default for LaunchOpts {
    fn default() -> Self {
        Self {
            granularity_lines: None,
            barrier_per_chunk: true,
        }
    }
}

#[derive(Debug)]
struct ArrayData {
    backing: Vec<f32>,
    /// Per-NDA copies for `Sharing::Private`.
    private: Option<Vec<Vec<f32>>>,
    /// Rank-local traversal per NDA index.
    layouts: Vec<Arc<OperandLayout>>,
    /// Lines of payload per NDA rank.
    lines_per_rank: u64,
    /// Region backing the array (kept for ownership queries).
    region: Option<Region>,
    len: usize,
    shape: Option<(usize, usize)>,
    color: Color,
}

/// A queued instruction launch (becomes control-register writes on the
/// channel).
#[derive(Debug, Clone)]
pub struct PendingLaunch {
    /// Index into the system's NDA-rank list.
    pub nda_idx: usize,
    /// The instruction to deliver.
    pub instr: NdaInstr,
    /// Owning operation (the `(session, op)` tag completion routing
    /// carries back).
    pub op: OpHandle,
    /// Chunk index within the operation (for barriers).
    pub chunk: usize,
}

#[derive(Debug)]
enum OpKind {
    Elementwise {
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    },
    Gemv {
        y: VecId,
        a: MatId,
        x: VecId,
    },
    /// `parallel_for` macro op: per-sample `a_pvt += alpha_i * X[i]`.
    MacroAxpyRows {
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
    },
}

#[derive(Debug)]
struct OpState {
    kind: OpKind,
    pending: VecDeque<PendingLaunch>,
    total_instrs: u64,
    completed_instrs: u64,
    chunk_sizes: Vec<u32>,
    chunk_completed: Vec<u32>,
    released_chunks: usize,
    barrier: bool,
    result: Option<f32>,
    done: bool,
    /// Explicit DAG edges: launches are held until every parent op has
    /// retired (runtime-inserted realignment copies, paper §V, and
    /// user-declared [`OpBuilder::after`] edges — possibly cross-session).
    deps: Vec<OpHandle>,
    /// Default program-order semantics: also wait for every earlier op in
    /// the same session. `false` = gated by `deps` alone.
    ordered: bool,
    /// First instruction id of this op; instruction ids are contiguous
    /// per op, `n_ndas` per chunk, so `chunk = (id - base) / n_ndas`.
    instr_base: u64,
    /// Cycle at which the op's first launch was staged (DAG observability
    /// for the scheduling property tests).
    first_staged_at: Option<u64>,
    /// Cycle at which the op finished (set on the completing instruction).
    finished_at: Option<u64>,
    /// Terminal status (`None` while live; always `Some` once `done`
    /// under fault recovery).
    status: Option<OpStatus>,
    /// Instruction retries charged against this op's retry budget.
    retries: u32,
    /// Backoff hold: no launch of this op stages before this cycle
    /// (`0` = no hold). The system folds the earliest hold into its
    /// front-end horizon so expiry is cycle-exact on every engine.
    retry_after: u64,
    /// Absolute deadline armed by [`OpBuilder::deadline`].
    deadline_at: Option<u64>,
    /// Re-execute on the host instead of concluding `Failed` when the
    /// retry budget runs out ([`OpBuilder::fallback_host`]).
    fallback_host: bool,
}

/// One session's submission state.
#[derive(Debug, Default)]
struct SessionState {
    ops: Vec<OpState>,
    /// Index of the first op that is not yet done. Launch gating and
    /// quiescence checks start here instead of rescanning the
    /// ever-growing op list every cycle.
    first_live: usize,
    /// Live (submitted, not finished) unordered ops. When zero, the
    /// staging scan can stop at the first blocked ordered op — the
    /// classic strict-order fast path.
    unordered_live: usize,
}

/// The Chopim runtime: arrays, colored allocation, sessions, op-graph
/// splitting/staging, and functional execution.
#[derive(Debug)]
pub struct Runtime {
    arrays: Vec<ArrayData>,
    sessions: Vec<SessionState>,
    /// Fair-share round-robin cursor over sessions: the session after the
    /// one that last released a launch gets first claim next time.
    rr_cursor: usize,
    next_instr: u64,
    /// Number of NDA ranks (one NDA per rank).
    n_ndas: usize,
    allocator: ColoredAllocator,
    mapper: Arc<PartitionedMapping>,
    cfg: DramConfig,
    /// NDA-rank list as `(channel, rank)` — all ranks in Chopim mode, the
    /// upper half in rank-partitioning mode.
    nda_ranks: Vec<(usize, usize)>,
    /// Rank-partition mode: layouts synthesized on dedicated ranks.
    rank_partition: bool,
    /// Ablation: walk operands in physical-address order (lines rotating
    /// across banks) instead of Chopim's contiguous-column layout walk.
    /// Collapses row locality exactly as Fig. 3's naive layout argument
    /// predicts.
    pub pa_order_walk: bool,
    rp_next_row: Vec<u32>,
    /// Accumulated PE activity (energy accounting).
    pub pe_activity: PeActivity,
    /// Analytic cycle cost of host-mediated steps (reduce/broadcast).
    pub host_comm_cycles: u64,
    /// Realignment copies the runtime inserted for color mismatches.
    pub realignment_copies: u64,
    default_color: Color,
    /// Fault recovery active (a non-empty `FaultPlan`): enables retry
    /// staging holds, inflight-record completion resolution, and
    /// quarantine redirection. `false` keeps every hot path on the
    /// exact pre-fault-plane instruction sequence.
    recovery: bool,
    /// Retry budget per op before concluding `Failed` / falling back.
    retry_limit: u32,
    /// Base retry backoff in cycles (doubles per retry).
    retry_backoff: u64,
    /// Upper bound on the exponential backoff.
    retry_backoff_cap: u64,
    /// Per-NDA liveness; quarantined NDAs receive no further launches.
    alive: Vec<bool>,
    /// Count of live ops with an armed deadline (gates the per-cycle
    /// deadline scan; zero keeps it free).
    armed_deadlines: u32,
    /// Front-end clock mirror (stamped by the system each cycle) so
    /// submission-time deadline arming sees the current cycle.
    pub(crate) clock: u64,
    pub(crate) counters: RecoveryCounters,
}

impl Runtime {
    /// Build a runtime over the shared mapper and OS allocator.
    pub fn new(
        cfg: DramConfig,
        mapper: Arc<PartitionedMapping>,
        allocator: ColoredAllocator,
        nda_ranks: Vec<(usize, usize)>,
        rank_partition: bool,
    ) -> Self {
        let n = nda_ranks.len();
        Self {
            arrays: Vec::new(),
            sessions: vec![SessionState::default()],
            rr_cursor: 0,
            next_instr: 0,
            n_ndas: n,
            allocator,
            mapper,
            cfg,
            nda_ranks,
            rank_partition,
            pa_order_walk: false,
            rp_next_row: vec![0; n],
            pe_activity: PeActivity::default(),
            host_comm_cycles: 0,
            realignment_copies: 0,
            default_color: Color(0),
            recovery: false,
            retry_limit: 3,
            retry_backoff: 64,
            retry_backoff_cap: 4096,
            alive: vec![true; n],
            armed_deadlines: 0,
            clock: 0,
            counters: RecoveryCounters::default(),
        }
    }

    /// Configure the fault-recovery layer (called once by the system
    /// from its `ChopimConfig`). `active` mirrors "the fault plan is
    /// non-empty": when `false`, recovery stays fully dormant.
    pub(crate) fn configure_recovery(
        &mut self,
        active: bool,
        retry_limit: u32,
        retry_backoff: u64,
        retry_backoff_cap: u64,
    ) {
        self.recovery = active;
        self.retry_limit = retry_limit;
        self.retry_backoff = retry_backoff.max(1);
        self.retry_backoff_cap = retry_backoff_cap.max(self.retry_backoff);
    }

    /// Runtime-side recovery counters (report support).
    pub(crate) fn recovery_counters(&self) -> &RecoveryCounters {
        &self.counters
    }

    /// True while NDA `nda` has not been quarantined by a rank-death
    /// completion (see [`OpBuilder::fallback_host`] and `docs/FAULTS.md`).
    pub fn nda_alive(&self, nda: usize) -> bool {
        self.alive[nda]
    }

    /// Quarantine NDA `nda` permanently (rank-death completion):
    /// subsequent launches re-shard across surviving ranks. Idempotent.
    #[cold]
    pub(crate) fn quarantine(&mut self, nda: usize) {
        if self.alive[nda] {
            self.alive[nda] = false;
            self.counters.ranks_quarantined += 1;
        }
    }

    /// The NDA `nda` launches should target: `nda` itself while alive,
    /// else the next surviving NDA (wrapping). With every NDA dead the
    /// original index is returned and the launch fails its retries out.
    fn redirect(alive: &[bool], nda: usize) -> usize {
        if alive[nda] {
            return nda;
        }
        Self::redirect_cold(alive, nda)
    }

    /// [`redirect`](Self::redirect) against the current quarantine set
    /// (system-side staging support).
    pub(crate) fn redirect_live(&self, nda: usize) -> usize {
        Self::redirect(&self.alive, nda)
    }

    #[cold]
    fn redirect_cold(alive: &[bool], nda: usize) -> usize {
        let n = alive.len();
        for k in 1..n {
            let c = (nda + k) % n;
            if alive[c] {
                return c;
            }
        }
        nda
    }

    /// The default (always-present) session, for single-tenant code.
    pub fn default_session(&self) -> Session {
        Session { id: 0 }
    }

    /// Create a fresh submission session (a tenant).
    pub fn create_session(&mut self) -> Session {
        self.sessions.push(SessionState::default());
        Session {
            id: (self.sessions.len() - 1) as u32,
        }
    }

    /// Number of sessions (including the default one).
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The NDA ranks as `(channel, rank)` pairs.
    pub fn nda_ranks(&self) -> &[(usize, usize)] {
        &self.nda_ranks
    }

    fn op(&self, h: OpHandle) -> &OpState {
        &self.sessions[h.sess as usize].ops[h.idx as usize]
    }

    fn op_mut(&mut self, h: OpHandle) -> &mut OpState {
        &mut self.sessions[h.sess as usize].ops[h.idx as usize]
    }

    /// Build per-NDA layouts for `lines` payload lines in a colored
    /// region.
    fn build_layouts(
        &mut self,
        lines: u64,
        color: Color,
    ) -> (Vec<Arc<OperandLayout>>, u64, Option<Region>) {
        let lpc = self.cfg.lines_per_row() as u64; // lines per chunk (128)
        let ranks = self.n_ndas as u64;
        let lines_per_rank = lines.div_ceil(ranks).div_ceil(lpc) * lpc;
        if self.rank_partition {
            // Dedicated ranks: synthesize bank-rotating layouts directly.
            let chunks = (lines_per_rank / lpc) as usize;
            let banks = self.cfg.banks_per_rank() as u16;
            let rows_needed = chunks.div_ceil(banks as usize) as u32;
            let mut layouts = Vec::with_capacity(self.n_ndas);
            for i in 0..self.n_ndas {
                let base = self.rp_next_row[i];
                self.rp_next_row[i] += rows_needed;
                layouts.push(OperandLayout::rotating(banks, base, chunks, lpc as u32));
            }
            return (layouts, lines_per_rank, None);
        }
        // Shared mode: allocate colored system rows and derive each rank's
        // chunk walk from the real mapping.
        let row_lines = self.cfg.system_row_bytes() / 64;
        let rows_needed = (lines_per_rank * ranks).div_ceil(row_lines) as usize;
        // With bank partitioning the shared pool is the reserved address
        // space; without it (reserved_banks = 0) NDA arrays live in
        // ordinary colored memory.
        let region = self
            .allocator
            .alloc_shared(color, rows_needed)
            .or_else(|| self.allocator.alloc_host_colored(color, rows_needed))
            .expect("memory exhausted for NDA operands");
        let mut chunk_lists: Vec<Vec<(u16, u32)>> = vec![Vec::new(); self.n_ndas];
        let bpg = self.cfg.banks_per_group;
        let rpc = self.cfg.ranks_per_channel;
        for sysrow in &region.rows {
            // Collect each rank's (bank, row) chunks for this system row.
            let mut seen: HashMap<(usize, u16, u32), ()> = HashMap::new();
            let base_pa = u64::from(sysrow.index) * self.cfg.system_row_bytes();
            for l in 0..row_lines {
                let d = self.mapper.map_pa(base_pa + l * 64);
                let g = d.channel * rpc + d.rank;
                let idx = self
                    .nda_ranks
                    .iter()
                    .position(|&(c, r)| (c, r) == (d.channel, d.rank));
                let Some(idx) = idx else { continue };
                let key = (g, d.flat_bank(bpg) as u16, d.row);
                if seen.insert(key, ()).is_none() {
                    chunk_lists[idx].push((d.flat_bank(bpg) as u16, d.row));
                }
            }
        }
        // Chopim's layout lets the microcode stream contiguous columns of
        // one bank row per 1 KB-per-chip batch (Fig. 3/Fig. 9). The
        // `pa_order_walk` ablation instead rotates lines across all banks
        // of the rank (the walk a naive layout would force), destroying
        // row locality under host interference.
        let group = (row_lines / ranks / lpc).max(1) as u32;
        let layouts = chunk_lists
            .into_iter()
            .map(|c| {
                if self.pa_order_walk && (c.len() as u32).is_multiple_of(group) {
                    OperandLayout::with_interleave(c, lpc as u32, group)
                } else {
                    OperandLayout::new(c, lpc as u32)
                }
            })
            .collect();
        (layouts, lines_per_rank, Some(region))
    }

    /// Allocate a host-only footprint region of `rows` system rows,
    /// halving on exhaustion (small test pools).
    ///
    /// # Panics
    ///
    /// Panics when host memory is completely exhausted.
    pub fn alloc_host_region(&mut self, rows: usize) -> Region {
        let mut rows = rows.max(1);
        loop {
            if let Some(r) = self.allocator.alloc_host(rows) {
                return r;
            }
            rows /= 2;
            assert!(rows > 0, "host memory exhausted");
        }
    }

    /// Allocate a vector of `len` f32 elements in the default color.
    pub fn vector(&mut self, len: usize, sharing: Sharing) -> VecId {
        self.vector_colored(len, sharing, self.default_color)
    }

    /// Allocate a vector in an explicit shared-region color (paper §III-A:
    /// operands of one instruction must share a color; the runtime inserts
    /// realignment copies otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the color is out of range.
    pub fn vector_colored(&mut self, len: usize, sharing: Sharing, color: Color) -> VecId {
        assert!(len > 0, "empty vector");
        assert!(
            (color.0 as usize) < self.allocator.num_colors(),
            "color out of range"
        );
        let (layouts, lines_per_rank, region, private);
        match sharing {
            Sharing::Shared => {
                let total_lines = ((len * 4) as u64).div_ceil(64);
                let (l, lpr, r) = self.build_layouts(total_lines, color);
                layouts = l;
                lines_per_rank = lpr;
                region = r;
                private = None;
            }
            Sharing::Private => {
                // A full copy per NDA, each within its own rank share.
                let per_copy_lines = ((len * 4) as u64).div_ceil(64);
                let (l, lpr, r) = self.build_layouts(per_copy_lines * self.n_ndas as u64, color);
                layouts = l;
                lines_per_rank = lpr;
                region = r;
                private = Some(vec![vec![0.0; len]; self.n_ndas]);
            }
        }
        self.arrays.push(ArrayData {
            backing: vec![0.0; len],
            private,
            layouts,
            lines_per_rank,
            region,
            len,
            shape: None,
            color,
        });
        VecId(self.arrays.len() - 1)
    }

    /// The shared-region color of an array.
    pub fn color_of(&self, v: VecId) -> Color {
        self.arrays[v.0].color
    }

    /// Number of available colors (8 for Table II, paper §III-A).
    pub fn num_colors(&self) -> usize {
        self.allocator.num_colors()
    }

    /// Allocate a row-major `rows x cols` shared matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `cols` is a multiple of 16 (rows must be cache-line
    /// aligned so each line belongs to one sample).
    pub fn matrix(&mut self, rows: usize, cols: usize) -> MatId {
        assert!(
            cols.is_multiple_of(16),
            "cols must be a multiple of 16 (line-aligned rows)"
        );
        let total_lines = ((rows * cols * 4) as u64).div_ceil(64);
        let color = self.default_color;
        let (layouts, lines_per_rank, region) = self.build_layouts(total_lines, color);
        self.arrays.push(ArrayData {
            backing: vec![0.0; rows * cols],
            private: None,
            layouts,
            lines_per_rank,
            region,
            len: rows * cols,
            shape: Some((rows, cols)),
            color,
        });
        MatId(self.arrays.len() - 1)
    }

    /// Overwrite a vector's contents.
    pub fn write_vector(&mut self, v: VecId, data: &[f32]) {
        let a = &mut self.arrays[v.0];
        assert_eq!(a.len, data.len(), "length mismatch");
        a.backing.copy_from_slice(data);
    }

    /// Read a vector's contents.
    pub fn read_vector(&self, v: VecId) -> &[f32] {
        &self.arrays[v.0].backing
    }

    /// Read one NDA's private copy.
    pub fn read_private(&self, v: VecId, nda: usize) -> &[f32] {
        &self.arrays[v.0].private.as_ref().expect("private array")[nda]
    }

    /// Overwrite a matrix's contents (row-major).
    pub fn write_matrix(&mut self, m: MatId, data: &[f32]) {
        let a = &mut self.arrays[m.0];
        assert_eq!(a.len, data.len(), "length mismatch");
        a.backing.copy_from_slice(data);
    }

    /// Matrix contents (row-major).
    pub fn read_matrix(&self, m: MatId) -> &[f32] {
        &self.arrays[m.0].backing
    }

    fn vec_lines(&self, v: VecId) -> u64 {
        ((self.arrays[v.0].len * 4) as u64).div_ceil(64)
    }

    /// Per-rank payload lines of a shared vector.
    fn vec_lines_per_rank(&self, v: VecId) -> u64 {
        self.vec_lines(v).div_ceil(self.n_ndas as u64)
    }

    fn take_instr_ids(&mut self, count: u64) -> u64 {
        let base = self.next_instr;
        self.next_instr += count;
        base
    }

    /// Handle the next op submitted to `sess` will get.
    fn next_handle(&self, sess: Session) -> OpHandle {
        OpHandle {
            sess: sess.id,
            idx: self.sessions[sess.id as usize].ops.len() as u32,
        }
    }

    fn push_op(&mut self, sess: Session, op: OpState) -> OpHandle {
        // Submitting behind an already-failed dependency: abort now
        // rather than waiting on a parent that will never succeed.
        let failed_dep = self.recovery
            && op
                .deps
                .iter()
                .any(|&d| self.op(d).status.is_some_and(OpStatus::is_failure));
        let h = self.next_handle(sess);
        let ss = &mut self.sessions[sess.id as usize];
        if !op.ordered {
            ss.unordered_live += 1;
        }
        ss.ops.push(op);
        if failed_dep {
            let now = self.clock;
            self.conclude_and_cascade(h, OpStatus::DepFailed, now);
        }
        h
    }

    /// Launch an elementwise Table-I operation on the default session.
    #[deprecated(note = "use Session::elementwise(...).submit()")]
    pub fn launch_elementwise(
        &mut self,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
    ) -> OpHandle {
        self.submit_elementwise(
            self.default_session(),
            op,
            scalars,
            inputs,
            output,
            opts,
            Vec::new(),
            true,
        )
    }

    /// Launch `y = A x` on the default session.
    #[deprecated(note = "use Session::gemv(...).submit()")]
    pub fn launch_gemv(&mut self, y: VecId, a: MatId, x: VecId, opts: LaunchOpts) -> OpHandle {
        self.submit_gemv(self.default_session(), y, a, x, opts, Vec::new(), true)
    }

    /// Launch the `parallel_for` macro op on the default session.
    #[deprecated(note = "use Session::axpy_rows(...).submit()")]
    pub fn launch_macro_axpy_rows(
        &mut self,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
        opts: LaunchOpts,
    ) -> OpHandle {
        self.submit_axpy_rows(
            self.default_session(),
            a_pvt,
            alphas,
            x,
            samples_per_instr,
            opts,
            Vec::new(),
            true,
        )
    }

    /// Split an elementwise op into per-rank instructions and queue it on
    /// `sess`, inserting realignment copies for color mismatches.
    ///
    /// `inputs` are read operands; `output` (if any) is the written
    /// operand (in-place ops pass the same id in both). All operands must
    /// be shared vectors of one length.
    #[allow(clippy::too_many_arguments)]
    fn submit_elementwise(
        &mut self,
        sess: Session,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
        mut deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        // Color check: all operands of one instruction must share a color
        // (paper §III-A). When inputs disagree with the base color, the
        // runtime inserts realignment copies into same-colored temporaries
        // and gates the main op on them via DAG edges (paper §V).
        let base_color = output
            .or_else(|| inputs.first().copied())
            .map(|v| self.arrays[v.0].color)
            .expect("needs operands");
        // The copies inherit the builder's own DAG edges: a copy reads
        // the mismatched input, so it must wait for the same parents the
        // main op was gated on (one of them may be the op producing that
        // input — in another session, or skipped-over by `unordered`).
        let inherited = deps.clone();
        let mut inputs = inputs;
        for v in inputs.iter_mut() {
            if self.arrays[v.0].color != base_color && self.arrays[v.0].private.is_none() {
                let len = self.arrays[v.0].len;
                let tmp = self.vector_colored(len, Sharing::Shared, base_color);
                self.realignment_copies += 1;
                let cp = self.submit_elementwise_inner(
                    sess,
                    Opcode::Copy,
                    vec![],
                    vec![*v],
                    Some(tmp),
                    LaunchOpts::default(),
                    inherited.clone(),
                    ordered,
                );
                deps.push(cp);
                *v = tmp;
            }
        }
        self.submit_elementwise_inner(sess, op, scalars, inputs, output, opts, deps, ordered)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_elementwise_inner(
        &mut self,
        sess: Session,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let probe = *inputs.first().or(output.as_ref()).expect("needs operands");
        let len = self.arrays[probe.0].len;
        for v in inputs.iter().chain(output.iter()) {
            assert_eq!(self.arrays[v.0].len, len, "operand length mismatch");
        }
        let per_rank = self.vec_lines_per_rank(probe);
        let g = opts.granularity_lines.unwrap_or(per_rank).max(1);
        let chunks = per_rank.div_ceil(g) as usize;
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(chunks as u64 * self.n_ndas as u64);
        let mut pending = VecDeque::new();
        let mut chunk_sizes = vec![0u32; chunks];
        // In-place read-modify-write ops stream their output operand in
        // as well (Table I: AXPY and SCAL update y/x in place).
        let rmw = matches!(op, Opcode::Axpy | Opcode::Scal);
        let mut id = instr_base;
        #[allow(clippy::needless_range_loop)]
        for chunk in 0..chunks {
            let start = chunk as u64 * g;
            let lines = g.min(per_rank - start);
            for nda in 0..self.n_ndas {
                let mut reads: Vec<_> = inputs
                    .iter()
                    .map(|v| (self.arrays[v.0].layouts[nda].clone(), start))
                    .collect();
                if rmw {
                    reads.extend(
                        output
                            .iter()
                            .map(|v| (self.arrays[v.0].layouts[nda].clone(), start)),
                    );
                }
                let writes: Vec<_> = output
                    .iter()
                    .map(|v| (self.arrays[v.0].layouts[nda].clone(), start))
                    .collect();
                let instr = NdaInstr::elementwise(op, lines, reads, writes, id);
                id += 1;
                pending.push_back(PendingLaunch {
                    nda_idx: nda,
                    instr,
                    op: handle,
                    chunk,
                });
                chunk_sizes[chunk] += 1;
            }
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::Elementwise {
                    op,
                    scalars,
                    inputs,
                    output,
                },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0; chunks],
                chunk_sizes,
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
            },
        )
    }

    /// Split `y = A x` into one instruction per rank and queue it on
    /// `sess` (A streams, x/y live in the scratchpad).
    #[allow(clippy::too_many_arguments)]
    fn submit_gemv(
        &mut self,
        sess: Session,
        y: VecId,
        a: MatId,
        x: VecId,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let (rows, cols) = self.arrays[a.0].shape.expect("matrix");
        assert_eq!(self.arrays[x.0].len, cols, "x length != cols");
        assert_eq!(self.arrays[y.0].len, rows, "y length != rows");
        let a_per_rank = self.arrays[a.0].lines_per_rank.min(
            ((rows * cols * 4) as u64)
                .div_ceil(64)
                .div_ceil(self.n_ndas as u64),
        );
        let x_per_rank = self.vec_lines_per_rank(x).max(1);
        let y_per_rank = self.vec_lines_per_rank(y).max(1);
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(self.n_ndas as u64);
        let mut pending = VecDeque::new();
        for nda in 0..self.n_ndas {
            let instr = NdaInstr::gemv(
                (self.arrays[a.0].layouts[nda].clone(), 0, a_per_rank),
                (self.arrays[x.0].layouts[nda].clone(), 0, x_per_rank),
                (self.arrays[y.0].layouts[nda].clone(), 0, y_per_rank),
                instr_base + nda as u64,
            );
            pending.push_back(PendingLaunch {
                nda_idx: nda,
                instr,
                op: handle,
                chunk: 0,
            });
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::Gemv { y, a, x },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0],
                chunk_sizes: vec![total as u32],
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
            },
        )
    }

    /// The `parallel_for` macro operation of Fig. 8: for each sample `i`,
    /// every NDA accumulates its local share of row `i` into its private
    /// copy of `a_pvt` (`a_pvt += alphas[i] * X[i]`).
    ///
    /// `samples_per_instr` batches consecutive samples into one NDA
    /// instruction — the paper's *macro NDA operation*, which amortizes
    /// launch packets over loop iterations (§V, load-imbalance
    /// optimization).
    #[allow(clippy::too_many_arguments)]
    fn submit_axpy_rows(
        &mut self,
        sess: Session,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
        opts: LaunchOpts,
        deps: Vec<OpHandle>,
        ordered: bool,
    ) -> OpHandle {
        let (rows, cols) = self.arrays[x.0].shape.expect("matrix");
        assert!(alphas.len() <= rows, "more alphas than rows");
        assert!(
            self.arrays[a_pvt.0].private.is_some(),
            "a_pvt must be PRIVATE"
        );
        assert_eq!(self.arrays[a_pvt.0].len, cols, "a_pvt length != cols");
        assert!(
            samples_per_instr > 0,
            "need at least one sample per instruction"
        );
        let row_lines = ((cols * 4) as u64).div_ceil(64);
        let row_lines_per_rank = row_lines.div_ceil(self.n_ndas as u64).max(1);
        let n = alphas.len();
        let k = samples_per_instr;
        let n_batches = n.div_ceil(k);
        let handle = self.next_handle(sess);
        let instr_base = self.take_instr_ids(n_batches as u64 * self.n_ndas as u64);
        let mut pending = VecDeque::new();
        let mut chunk_sizes = vec![0u32; n_batches];
        let mut id = instr_base;
        #[allow(clippy::needless_range_loop)]
        for batch in 0..n_batches {
            let first = batch * k;
            let count = k.min(n - first) as u64;
            let start = first as u64 * row_lines_per_rank;
            let span = count * row_lines_per_rank;
            for nda in 0..self.n_ndas {
                let x_l = self.arrays[x.0].layouts[nda].clone();
                let a_l = self.arrays[a_pvt.0].layouts[nda].clone();
                // Timing walk: the rank-share span of rows
                // [first, first+count) in X, plus the private accumulator
                // (read-modify-write, wrapped within its padded layout).
                let x_start = start.min(x_layout_guard(&self.arrays[x.0], span));
                let a_span = span.min(a_l.lines());
                let instr = NdaInstr::elementwise(
                    Opcode::Axpy,
                    a_span.min(span).max(1),
                    vec![(x_l, x_start), (a_l.clone(), 0)],
                    vec![(a_l, 0)],
                    id,
                );
                id += 1;
                pending.push_back(PendingLaunch {
                    nda_idx: nda,
                    instr,
                    op: handle,
                    chunk: batch,
                });
                chunk_sizes[batch] += 1;
            }
        }
        let total = pending.len() as u64;
        self.push_op(
            sess,
            OpState {
                kind: OpKind::MacroAxpyRows { a_pvt, alphas, x },
                pending,
                total_instrs: total,
                completed_instrs: 0,
                chunk_completed: vec![0; n_batches],
                chunk_sizes,
                released_chunks: 0,
                barrier: opts.barrier_per_chunk,
                result: None,
                done: false,
                deps,
                ordered,
                instr_base,
                first_staged_at: None,
                finished_at: None,
                status: None,
                retries: 0,
                retry_after: 0,
                deadline_at: None,
                fallback_host: false,
            },
        )
    }

    fn deps_done(&self, deps: &[OpHandle]) -> bool {
        deps.iter().all(|&d| self.op(d).done)
    }

    /// The op in session `s` whose head launch is releasable right now
    /// (deps retired, program order satisfied, chunk barrier open, FSM
    /// queue space available), if any.
    ///
    /// The scan starts at the session's live watermark and — when the
    /// session has no live unordered ops — stops at the first blocked
    /// ordered op, which is the strict-order fast path: at most one op is
    /// examined per call for classic submission streams.
    fn stage_candidate(
        &self,
        s: usize,
        space: &impl Fn(usize) -> usize,
        now: u64,
    ) -> Option<usize> {
        let ss = &self.sessions[s];
        let mut prior_all_done = true;
        for i in ss.first_live..ss.ops.len() {
            let op = &ss.ops[i];
            if op.done {
                continue;
            }
            let order_ok = !op.ordered || prior_all_done;
            // `retry_after` is 0 (always open) outside fault recovery.
            if order_ok
                && op.retry_after <= now
                && !op.pending.is_empty()
                && self.deps_done(&op.deps)
            {
                let head = op.pending.front().expect("nonempty");
                let barrier_ok = !op.barrier || head.chunk <= op.released_chunks;
                let target = if self.recovery {
                    Self::redirect(&self.alive, head.nda_idx)
                } else {
                    head.nda_idx
                };
                if barrier_ok && space(target) > 0 {
                    return Some(i);
                }
            }
            prior_all_done = false;
            if ss.unordered_live == 0 {
                // Everything later is ordered behind this op: stop.
                break;
            }
        }
        None
    }

    /// Pop launches that are ready to go to the channel into `out`,
    /// arbitrating fairly across sessions (round-robin from the rotating
    /// cursor) and respecting DAG edges, program order, and chunk
    /// barriers. The system calls this each cycle with available FSM
    /// queue space per NDA and its (reused) staging queue — releasing a
    /// launch must not allocate on the steady-state path; `now` stamps
    /// first-launch staging for DAG observability.
    pub fn next_launches(
        &mut self,
        space: impl Fn(usize) -> usize,
        max: usize,
        now: u64,
        out: &mut std::collections::VecDeque<PendingLaunch>,
    ) {
        let start = out.len();
        let n = self.sessions.len();
        for k in 0..n {
            let s = (self.rr_cursor + k) % n;
            let Some(i) = self.stage_candidate(s, &space, now) else {
                continue;
            };
            let recovery = self.recovery;
            let alive = &self.alive;
            let op = &mut self.sessions[s].ops[i];
            if op.first_staged_at.is_none() {
                op.first_staged_at = Some(now);
            }
            while out.len() - start < max {
                let Some(head) = op.pending.front() else {
                    break;
                };
                if op.barrier && head.chunk > op.released_chunks {
                    break; // previous chunk not fully complete
                }
                let target = if recovery {
                    Self::redirect(alive, head.nda_idx)
                } else {
                    head.nda_idx
                };
                if space(target) == 0 {
                    break;
                }
                let mut launch = op.pending.pop_front().expect("checked");
                launch.nda_idx = target;
                out.push_back(launch);
            }
            // Fair share: the next session gets first claim next cycle.
            self.rr_cursor = (s + 1) % n;
            break; // one op per call; candidates guarantee progress
        }
    }

    /// True when [`next_launches`](Self::next_launches) would release at
    /// least one launch — the same gating logic, evaluated without
    /// mutating anything. The event-horizon fast-forward consults this:
    /// all of its inputs (op completion flags, DAG edges, chunk barriers,
    /// queue space) only change inside executed ticks, so a `false`
    /// answer stays `false` across skipped cycles — except retry holds,
    /// whose expiry cycles the system folds into its horizon via
    /// `next_recovery_wake`.
    pub fn launch_ready(&self, space: impl Fn(usize) -> usize, now: u64) -> bool {
        (0..self.sessions.len()).any(|s| self.stage_candidate(s, &space, now).is_some())
    }

    /// Record the completion of instruction `id` of op `h`, finalizing
    /// the op when it is the last one. Returns `true` if the op just
    /// finished. `id` must be the original (non-retried) instruction id;
    /// under fault recovery the system resolves completions through its
    /// in-flight records and calls
    /// `instr_completed_via` with the
    /// record's chunk instead (retried launches carry fresh ids).
    pub fn complete_instr(&mut self, h: OpHandle, id: u64, now: u64) -> bool {
        let n_ndas = self.n_ndas as u64;
        let op = self.op(h);
        debug_assert!(id >= op.instr_base && id - op.instr_base < op.total_instrs);
        let chunk = ((id - op.instr_base) / n_ndas) as usize;
        self.instr_completed_via(h, chunk, now)
    }

    /// Completion bookkeeping with the chunk resolved by the caller.
    /// Returns `true` if the op just finished; a completion for an op
    /// already concluded (timed out, failed) is ignored.
    pub(crate) fn instr_completed_via(&mut self, h: OpHandle, chunk: usize, now: u64) -> bool {
        let finished = {
            let op = self.op_mut(h);
            if op.done {
                return false; // late completion of a concluded op
            }
            op.completed_instrs += 1;
            op.chunk_completed[chunk] += 1;
            if op.chunk_completed[chunk] == op.chunk_sizes[chunk] && chunk == op.released_chunks {
                // Advance the barrier over all fully-completed chunks.
                while op.released_chunks < op.chunk_sizes.len()
                    && op.chunk_completed[op.released_chunks] == op.chunk_sizes[op.released_chunks]
                {
                    op.released_chunks += 1;
                }
            }
            op.completed_instrs == op.total_instrs
        };
        if finished {
            self.finalize(h);
            let ss = &mut self.sessions[h.sess as usize];
            let op = &mut ss.ops[h.idx as usize];
            op.finished_at = Some(now);
            op.status = Some(OpStatus::Completed);
            if op.deadline_at.is_some() {
                self.armed_deadlines -= 1;
            }
            let ss = &mut self.sessions[h.sess as usize];
            let op = &mut ss.ops[h.idx as usize];
            if !op.ordered {
                ss.unordered_live -= 1;
            }
            while ss.first_live < ss.ops.len() && ss.ops[ss.first_live].done {
                ss.first_live += 1;
            }
        }
        finished
    }

    /// Conclude op `h` with `status` outside the normal last-instruction
    /// path (fault recovery): abandon un-issued work, mark the op done
    /// (finalizing results first when `status` is `Completed`, i.e. a
    /// host fallback), and unblock program order. Idempotent on done ops.
    #[cold]
    fn conclude(&mut self, h: OpHandle, status: OpStatus, now: u64) {
        if self.op(h).done {
            return;
        }
        match status {
            OpStatus::Completed => self.finalize(h), // sets done
            OpStatus::Failed => self.counters.ops_failed += 1,
            OpStatus::TimedOut => self.counters.ops_timed_out += 1,
            OpStatus::DepFailed => self.counters.ops_dep_failed += 1,
        }
        if self.op(h).deadline_at.is_some() {
            self.armed_deadlines -= 1;
        }
        let ss = &mut self.sessions[h.sess as usize];
        let op = &mut ss.ops[h.idx as usize];
        op.done = true;
        op.status = Some(status);
        op.finished_at = Some(now);
        op.pending.clear();
        op.retry_after = 0;
        if !op.ordered {
            ss.unordered_live -= 1;
        }
        while ss.first_live < ss.ops.len() && ss.ops[ss.first_live].done {
            ss.first_live += 1;
        }
    }

    /// [`conclude`](Self::conclude), then propagate a failure along
    /// explicit DAG edges: every live op depending (transitively) on a
    /// failed op is aborted `DepFailed` rather than left waiting forever.
    /// Plain program order does NOT propagate — a terminal op, failed or
    /// not, unblocks its successors.
    #[cold]
    pub(crate) fn conclude_and_cascade(&mut self, h: OpHandle, status: OpStatus, now: u64) {
        self.conclude(h, status, now);
        if status == OpStatus::Completed {
            return;
        }
        let mut work = vec![h];
        let mut victims = Vec::new();
        while let Some(f) = work.pop() {
            victims.clear();
            for (si, ss) in self.sessions.iter().enumerate() {
                for (oi, op) in ss.ops.iter().enumerate().skip(ss.first_live) {
                    if !op.done && op.deps.contains(&f) {
                        victims.push(OpHandle {
                            sess: si as u32,
                            idx: oi as u32,
                        });
                    }
                }
            }
            for &v in &victims {
                self.conclude(v, OpStatus::DepFailed, now);
                work.push(v);
            }
        }
    }

    /// Handle a failed or timed-out in-flight launch: retry with
    /// bounded-exponential backoff while budget remains (the retried
    /// launch gets a FRESH instruction id and goes back to the head of
    /// the op's queue), otherwise conclude the op — re-executing on the
    /// host first when [`OpBuilder::fallback_host`] opted in.
    ///
    /// `rank_death` marks a launch rejected because its target rank died
    /// permanently. While a survivor exists the requeue is a *re-shard*,
    /// not a retry against a flaky machine: staging redirects it to a
    /// live rank, progress is certain, so it neither consumes the retry
    /// budget nor backs off (a death can reject a whole queue of
    /// launches at once, which would otherwise drain the budget of every
    /// op with work on that rank). With no survivors the normal budget
    /// applies, bounding the rejection loop.
    #[cold]
    pub(crate) fn instr_failed(&mut self, mut launch: PendingLaunch, now: u64, rank_death: bool) {
        let h = launch.op;
        if self.op(h).done {
            return; // op already concluded; drop the straggler
        }
        if rank_death && self.alive.iter().any(|&a| a) {
            self.counters.instr_retries += 1;
            let fresh = self.take_instr_ids(1);
            launch.instr.id = fresh;
            self.op_mut(h).pending.push_front(launch);
            return;
        }
        let retries = self.op(h).retries;
        if retries < self.retry_limit {
            let backoff = self
                .retry_backoff
                .checked_shl(retries)
                .unwrap_or(u64::MAX)
                .min(self.retry_backoff_cap);
            self.counters.max_retry_backoff = self.counters.max_retry_backoff.max(backoff);
            self.counters.instr_retries += 1;
            let fresh = self.take_instr_ids(1);
            launch.instr.id = fresh;
            let op = self.op_mut(h);
            op.retries += 1;
            op.retry_after = now + backoff;
            op.pending.push_front(launch);
        } else if self.op(h).fallback_host {
            self.counters.host_fallbacks += 1;
            self.conclude_and_cascade(h, OpStatus::Completed, now);
        } else {
            self.conclude_and_cascade(h, OpStatus::Failed, now);
        }
    }

    /// Expire per-op deadlines: every live op whose
    /// [`OpBuilder::deadline`] has passed concludes `TimedOut` (failure
    /// cascades along DAG edges). Free while no deadline is armed.
    pub(crate) fn check_deadlines(&mut self, now: u64) {
        if self.armed_deadlines == 0 {
            return;
        }
        self.check_deadlines_cold(now);
    }

    #[cold]
    fn check_deadlines_cold(&mut self, now: u64) {
        let mut expired = Vec::new();
        for (si, ss) in self.sessions.iter().enumerate() {
            for (oi, op) in ss.ops.iter().enumerate().skip(ss.first_live) {
                if !op.done && op.deadline_at.is_some_and(|d| d <= now) {
                    expired.push(OpHandle {
                        sess: si as u32,
                        idx: oi as u32,
                    });
                }
            }
        }
        for h in expired {
            self.conclude_and_cascade(h, OpStatus::TimedOut, now);
        }
    }

    /// Attach builder-level recovery options to a freshly submitted op.
    fn apply_recovery_opts(&mut self, h: OpHandle, deadline: Option<u64>, fallback_host: bool) {
        if deadline.is_none() && !fallback_host {
            return;
        }
        let now = self.clock;
        let op = self.op_mut(h);
        op.fallback_host = fallback_host;
        if let Some(cycles) = deadline {
            if !op.done {
                op.deadline_at = Some(now.saturating_add(cycles));
                self.armed_deadlines += 1;
            }
        }
    }

    /// Earliest future cycle at which recovery state changes on its own:
    /// a retry hold expiring or an armed deadline firing. The system
    /// folds this into its front-end horizon so fast-forwarding engines
    /// execute those cycles exactly. `None` when nothing is pending.
    pub(crate) fn next_recovery_wake(&self, now: u64) -> Option<u64> {
        if !self.recovery && self.armed_deadlines == 0 {
            return None;
        }
        let mut wake = u64::MAX;
        for ss in &self.sessions {
            for op in &ss.ops[ss.first_live..] {
                if op.done {
                    continue;
                }
                if let Some(d) = op.deadline_at {
                    wake = wake.min(d);
                }
                if op.retry_after > now && !op.pending.is_empty() {
                    wake = wake.min(op.retry_after);
                }
            }
        }
        (wake != u64::MAX).then(|| wake.max(now))
    }

    /// Functionally execute the finished op on the backing store.
    fn finalize(&mut self, h: OpHandle) {
        let kind = std::mem::replace(
            &mut self.op_mut(h).kind,
            OpKind::Elementwise {
                op: Opcode::Copy,
                scalars: vec![],
                inputs: vec![],
                output: None,
            },
        );
        match &kind {
            OpKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            } => {
                let input_data: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|v| self.arrays[v.0].backing.clone())
                    .collect();
                let input_refs: Vec<&[f32]> = input_data.iter().map(|v| v.as_slice()).collect();
                let stats = match output {
                    Some(o) => pe::execute(
                        *op,
                        scalars,
                        &input_refs,
                        Some(&mut self.arrays[o.0].backing),
                    ),
                    None => pe::execute(*op, scalars, &input_refs, None),
                };
                self.op_mut(h).result = stats.reduction;
                self.add_activity(stats);
            }
            OpKind::Gemv { y, a, x } => {
                let (rows, cols) = self.arrays[a.0].shape.expect("matrix");
                let a_data = self.arrays[a.0].backing.clone();
                let x_data = self.arrays[x.0].backing.clone();
                let stats =
                    pe::execute_gemv(&a_data, &x_data, &mut self.arrays[y.0].backing, rows, cols);
                self.add_activity(stats);
            }
            OpKind::MacroAxpyRows { a_pvt, alphas, x } => {
                let (_, cols) = self.arrays[x.0].shape.expect("matrix");
                let x_data = self.arrays[x.0].backing.clone();
                let owners = self.line_owners(*x, cols);
                let lines_per_row = cols / 16;
                let privates = self.arrays[a_pvt.0]
                    .private
                    .as_mut()
                    .expect("private array");
                let mut fmas = 0u64;
                for (i, &alpha) in alphas.iter().enumerate() {
                    let row = &x_data[i * cols..(i + 1) * cols];
                    for l in 0..lines_per_row {
                        let owner = owners[(i * lines_per_row + l) % owners.len()];
                        let dst = &mut privates[owner];
                        for e in 0..16 {
                            let j = l * 16 + e;
                            dst[j] += alpha * row[j];
                            fmas += 1;
                        }
                    }
                }
                self.pe_activity.fmas += fmas;
                self.pe_activity.buffer_accesses += fmas / 2;
            }
        }
        let op = self.op_mut(h);
        op.kind = kind;
        op.done = true;
    }

    /// Which NDA owns each cache line of a shared array (exact, via the
    /// mapping), cycled for timing-padded tails.
    fn line_owners(&self, m: MatId, _cols: usize) -> Vec<usize> {
        let a = &self.arrays[m.0];
        match &a.region {
            Some(region) => {
                let lines = ((a.len * 4) as u64).div_ceil(64);
                let rpc = self.cfg.ranks_per_channel;
                (0..lines)
                    .map(|l| {
                        let d = self.mapper.map_pa(region.pa_of(l * 64));
                        self.nda_ranks
                            .iter()
                            .position(|&(c, r)| (c, r) == (d.channel, d.rank))
                            .unwrap_or((d.channel * rpc + d.rank) % self.n_ndas)
                    })
                    .collect()
            }
            // Rank-partition mode: round-robin striping.
            None => (0..self.n_ndas).collect(),
        }
    }

    fn add_activity(&mut self, s: pe::ExecStats) {
        self.pe_activity.fmas += s.fmas;
        self.pe_activity.buffer_accesses += s.buffer_accesses;
        self.pe_activity.scratch_accesses += s.scratch_accesses;
    }

    /// True when the op reached a terminal state (results visible only
    /// when [`op_status`](Self::op_status) is `Completed`).
    pub fn op_done(&self, h: OpHandle) -> bool {
        self.op(h).done
    }

    /// Terminal status of op `h`, `None` while it is still live. Outside
    /// fault recovery every finished op reads `Some(Completed)`.
    pub fn op_status(&self, h: OpHandle) -> Option<OpStatus> {
        self.op(h).status
    }

    /// True when `h` names an existing session/op pair. Snapshot decode
    /// validates handles held outside the runtime (staged launches,
    /// in-flight completions, shard-side tags) through this.
    pub(crate) fn handle_in_range(&self, h: OpHandle) -> bool {
        self.sessions
            .get(h.sess as usize)
            .is_some_and(|s| (h.idx as usize) < s.ops.len())
    }

    /// Reduction result of a completed DOT/NRM2.
    pub fn op_result(&self, h: OpHandle) -> Option<f32> {
        self.op(h).result
    }

    /// Cycle at which the op completed.
    pub fn op_finished_at(&self, h: OpHandle) -> Option<u64> {
        self.op(h).finished_at
    }

    /// Cycle at which the op's first launch was staged toward the
    /// channel (`None` while it is still held by DAG edges, program
    /// order, or queue backpressure).
    pub fn op_first_staged_at(&self, h: OpHandle) -> Option<u64> {
        self.op(h).first_staged_at
    }

    /// Host-side reduction of a private array into a shared vector
    /// (`host::reduce` of Fig. 8): functional sum over NDA copies plus an
    /// analytic host-traffic cycle charge.
    pub fn host_reduce(&mut self, dst: VecId, src: VecId) {
        let len = self.arrays[dst.0].len;
        assert_eq!(self.arrays[src.0].len, len);
        let privates = self.arrays[src.0]
            .private
            .as_ref()
            .expect("private source")
            .clone();
        let out = &mut self.arrays[dst.0].backing;
        out.iter_mut().for_each(|v| *v = 0.0);
        for copy in &privates {
            for (o, v) in out.iter_mut().zip(copy) {
                *o += *v;
            }
        }
        // Host reads n_ndas copies and writes one: bytes / peak BW.
        let bytes = (len * 4 * (self.n_ndas + 1)) as f64;
        let bw = self.cfg.channel_bytes_per_cycle() * self.cfg.channels as f64;
        self.host_comm_cycles += (bytes / bw).ceil() as u64;
    }

    /// Zero every private copy of a private vector.
    pub fn clear_private(&mut self, v: VecId) {
        for copy in self.arrays[v.0].private.as_mut().expect("private array") {
            copy.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Host-side elementwise sigmoid (`host::sigmoid` of Fig. 8).
    pub fn host_sigmoid(&mut self, v: VecId) {
        for x in &mut self.arrays[v.0].backing {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        let bytes = (self.arrays[v.0].len * 8) as f64;
        let bw = self.cfg.channel_bytes_per_cycle() * self.cfg.channels as f64;
        self.host_comm_cycles += (bytes / bw).ceil() as u64;
    }

    /// Remaining queued launches across all sessions.
    pub fn pending_launches(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| s.ops.iter())
            .map(|o| o.pending.len())
            .sum()
    }

    /// Every op of `sess` completed and nothing pending (the
    /// session-quiescent [`Waitable`](crate::system::Waitable)).
    pub fn session_idle(&self, sess: Session) -> bool {
        let ss = &self.sessions[sess.id as usize];
        ss.ops[ss.first_live..].iter().all(|o| o.done)
    }

    /// All ops of every session completed and nothing pending.
    pub fn quiescent(&self) -> bool {
        self.sessions
            .iter()
            .all(|ss| ss.ops[ss.first_live..].iter().all(|o| o.done))
    }

    // ---- snapshot codec -------------------------------------------------

    /// Serialize all mutable runtime state (snapshot support). Structural
    /// fields rebuilt by the constructor from the configuration (`n_ndas`,
    /// `mapper`, `cfg`, `nda_ranks`, `rank_partition`) are not stored.
    #[cold]
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.arrays.len() as u64);
        for a in &self.arrays {
            encode_f32s(&a.backing, w);
            match &a.private {
                None => w.bool(false),
                Some(copies) => {
                    w.bool(true);
                    w.varint(copies.len() as u64);
                    for c in copies {
                        encode_f32s(c, w);
                    }
                }
            }
            w.varint(a.layouts.len() as u64);
            for l in &a.layouts {
                encode_layout(l, w);
            }
            w.varint(a.lines_per_rank);
            match &a.region {
                None => w.bool(false),
                Some(rg) => {
                    w.bool(true);
                    w.varint(rg.rows.len() as u64);
                    for row in &rg.rows {
                        w.varint(u64::from(row.index));
                    }
                    w.varint(rg.row_bytes);
                    match rg.color {
                        None => w.bool(false),
                        Some(c) => {
                            w.bool(true);
                            w.varint(u64::from(c.0));
                        }
                    }
                }
            }
            w.varint(a.len as u64);
            match a.shape {
                None => w.bool(false),
                Some((rows, cols)) => {
                    w.bool(true);
                    w.varint(rows as u64);
                    w.varint(cols as u64);
                }
            }
            w.varint(u64::from(a.color.0));
        }
        w.varint(self.sessions.len() as u64);
        for ss in &self.sessions {
            w.varint(ss.ops.len() as u64);
            for op in &ss.ops {
                match &op.kind {
                    OpKind::Elementwise {
                        op: oc,
                        scalars,
                        inputs,
                        output,
                    } => {
                        w.u8(0);
                        encode_opcode(*oc, w);
                        encode_f32s(scalars, w);
                        w.varint(inputs.len() as u64);
                        for v in inputs {
                            w.varint(v.0 as u64);
                        }
                        match output {
                            None => w.bool(false),
                            Some(v) => {
                                w.bool(true);
                                w.varint(v.0 as u64);
                            }
                        }
                    }
                    OpKind::Gemv { y, a, x } => {
                        w.u8(1);
                        w.varint(y.0 as u64);
                        w.varint(a.0 as u64);
                        w.varint(x.0 as u64);
                    }
                    OpKind::MacroAxpyRows { a_pvt, alphas, x } => {
                        w.u8(2);
                        w.varint(a_pvt.0 as u64);
                        encode_f32s(alphas, w);
                        w.varint(x.0 as u64);
                    }
                }
                w.varint(op.pending.len() as u64);
                for p in &op.pending {
                    w.varint(p.nda_idx as u64);
                    encode_instr(&p.instr, w);
                    encode_handle(p.op, w);
                    w.varint(p.chunk as u64);
                }
                w.varint(op.total_instrs);
                w.varint(op.completed_instrs);
                w.u32_slice(&op.chunk_sizes);
                w.u32_slice(&op.chunk_completed);
                w.varint(op.released_chunks as u64);
                w.bool(op.barrier);
                match op.result {
                    None => w.bool(false),
                    Some(v) => {
                        w.bool(true);
                        w.f32(v);
                    }
                }
                w.bool(op.done);
                w.varint(op.deps.len() as u64);
                for &d in &op.deps {
                    encode_handle(d, w);
                }
                w.bool(op.ordered);
                w.varint(op.instr_base);
                w.opt_cycle(op.first_staged_at);
                w.opt_cycle(op.finished_at);
                w.u8(OpStatus::encode(op.status));
                w.varint(u64::from(op.retries));
                w.varint(op.retry_after);
                w.opt_cycle(op.deadline_at);
                w.bool(op.fallback_host);
            }
            w.varint(ss.first_live as u64);
            w.varint(ss.unordered_live as u64);
        }
        w.varint(self.rr_cursor as u64);
        w.varint(self.next_instr);
        self.allocator.encode_state(w);
        w.u32_slice(&self.rp_next_row);
        w.bool(self.pa_order_walk);
        w.varint(self.pe_activity.fmas);
        w.varint(self.pe_activity.buffer_accesses);
        w.varint(self.pe_activity.scratch_accesses);
        w.varint(self.host_comm_cycles);
        w.varint(self.realignment_copies);
        w.varint(u64::from(self.default_color.0));
        for &a in &self.alive {
            w.bool(a);
        }
        w.varint(self.counters.instr_retries);
        w.varint(self.counters.instr_timeouts);
        w.varint(self.counters.ops_failed);
        w.varint(self.counters.ops_timed_out);
        w.varint(self.counters.ops_dep_failed);
        w.varint(self.counters.host_fallbacks);
        w.varint(self.counters.ranks_quarantined);
        w.varint(self.counters.max_retry_backoff);
        w.varint(self.clock);
    }

    /// Overwrite this (freshly constructed) runtime from bytes written by
    /// [`encode_state`](Self::encode_state), validating every handle and
    /// array reference against the decoded tables.
    #[cold]
    pub(crate) fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n_arrays = r.varint_usize()?;
        self.arrays.clear();
        self.arrays.reserve(n_arrays.min(r.remaining()));
        for _ in 0..n_arrays {
            let backing = decode_f32s(r)?;
            let private = if r.bool()? {
                let n = r.varint_usize()?;
                if n != self.n_ndas {
                    return Err(CodecError::Corrupt("private copy count"));
                }
                let mut copies = Vec::with_capacity(n);
                for _ in 0..n {
                    copies.push(decode_f32s(r)?);
                }
                Some(copies)
            } else {
                None
            };
            let n_layouts = r.varint_usize()?;
            if n_layouts != self.n_ndas {
                return Err(CodecError::Corrupt("layout count"));
            }
            let mut layouts = Vec::with_capacity(n_layouts);
            for _ in 0..n_layouts {
                layouts.push(decode_layout(r)?);
            }
            let lines_per_rank = r.varint()?;
            let region = if r.bool()? {
                let n = r.varint_usize()?;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(SystemRow {
                        index: r.varint_u32()?,
                    });
                }
                let row_bytes = r.varint()?;
                let color = if r.bool()? {
                    Some(Color(r.varint_u32()?))
                } else {
                    None
                };
                Some(Region {
                    rows,
                    row_bytes,
                    color,
                })
            } else {
                None
            };
            let len = r.varint_usize()?;
            let shape = if r.bool()? {
                Some((r.varint_usize()?, r.varint_usize()?))
            } else {
                None
            };
            let color = Color(r.varint_u32()?);
            self.arrays.push(ArrayData {
                backing,
                private,
                layouts,
                lines_per_rank,
                region,
                len,
                shape,
                color,
            });
        }
        let n_sessions = r.varint_usize()?;
        if n_sessions == 0 {
            return Err(CodecError::Corrupt("no sessions"));
        }
        self.sessions.clear();
        self.sessions.reserve(n_sessions.min(r.remaining()));
        for _ in 0..n_sessions {
            let n_ops = r.varint_usize()?;
            let mut ops = Vec::with_capacity(n_ops.min(r.remaining()));
            for _ in 0..n_ops {
                let kind = match r.u8()? {
                    0 => {
                        let oc = decode_opcode(r)?;
                        let scalars = decode_f32s(r)?;
                        let n_in = r.varint_usize()?;
                        let mut inputs = Vec::with_capacity(n_in.min(r.remaining()));
                        for _ in 0..n_in {
                            inputs.push(self.decode_vec_id(r)?);
                        }
                        let output = if r.bool()? {
                            Some(self.decode_vec_id(r)?)
                        } else {
                            None
                        };
                        OpKind::Elementwise {
                            op: oc,
                            scalars,
                            inputs,
                            output,
                        }
                    }
                    1 => OpKind::Gemv {
                        y: self.decode_vec_id(r)?,
                        a: self.decode_mat_id(r)?,
                        x: self.decode_vec_id(r)?,
                    },
                    2 => OpKind::MacroAxpyRows {
                        a_pvt: self.decode_vec_id(r)?,
                        alphas: decode_f32s(r)?,
                        x: self.decode_mat_id(r)?,
                    },
                    _ => return Err(CodecError::Corrupt("op kind tag")),
                };
                let n_pending = r.varint_usize()?;
                let mut pending = VecDeque::with_capacity(n_pending.min(r.remaining()));
                for _ in 0..n_pending {
                    let nda_idx = r.varint_usize()?;
                    if nda_idx >= self.n_ndas {
                        return Err(CodecError::Corrupt("pending NDA index"));
                    }
                    pending.push_back(PendingLaunch {
                        nda_idx,
                        instr: decode_instr(r)?,
                        op: decode_handle(r)?,
                        chunk: r.varint_usize()?,
                    });
                }
                let total_instrs = r.varint()?;
                let completed_instrs = r.varint()?;
                let chunk_sizes = r.u32_vec()?;
                let chunk_completed = r.u32_vec()?;
                if chunk_completed.len() != chunk_sizes.len() {
                    return Err(CodecError::Corrupt("chunk table length"));
                }
                let released_chunks = r.varint_usize()?;
                if released_chunks > chunk_sizes.len() {
                    return Err(CodecError::Corrupt("released chunks"));
                }
                let barrier = r.bool()?;
                let result = if r.bool()? { Some(r.f32()?) } else { None };
                let done = r.bool()?;
                let n_deps = r.varint_usize()?;
                let mut deps = Vec::with_capacity(n_deps.min(r.remaining()));
                for _ in 0..n_deps {
                    deps.push(decode_handle(r)?);
                }
                ops.push(OpState {
                    kind,
                    pending,
                    total_instrs,
                    completed_instrs,
                    chunk_sizes,
                    chunk_completed,
                    released_chunks,
                    barrier,
                    result,
                    done,
                    deps,
                    ordered: r.bool()?,
                    instr_base: r.varint()?,
                    first_staged_at: r.opt_cycle()?,
                    finished_at: r.opt_cycle()?,
                    status: OpStatus::decode(r.u8()?)?,
                    retries: r.varint_u32()?,
                    retry_after: r.varint()?,
                    deadline_at: r.opt_cycle()?,
                    fallback_host: r.bool()?,
                });
            }
            let first_live = r.varint_usize()?;
            let unordered_live = r.varint_usize()?;
            if first_live > ops.len() || unordered_live > ops.len() {
                return Err(CodecError::Corrupt("session watermarks"));
            }
            self.sessions.push(SessionState {
                ops,
                first_live,
                unordered_live,
            });
        }
        // Handles may forward-reference sessions, so validate them only
        // now that the full table exists.
        for ss in &self.sessions {
            for op in &ss.ops {
                for h in op.deps.iter().chain(op.pending.iter().map(|p| &p.op)) {
                    let Some(target) = self.sessions.get(h.sess as usize) else {
                        return Err(CodecError::Corrupt("handle session out of range"));
                    };
                    if h.idx as usize >= target.ops.len() {
                        return Err(CodecError::Corrupt("handle op out of range"));
                    }
                }
            }
        }
        self.rr_cursor = r.varint_usize()?;
        if self.rr_cursor >= self.sessions.len() {
            return Err(CodecError::Corrupt("round-robin cursor"));
        }
        self.next_instr = r.varint()?;
        self.allocator.decode_state(r)?;
        let rp = r.u32_vec()?;
        if rp.len() != self.n_ndas {
            return Err(CodecError::ConfigMismatch);
        }
        self.rp_next_row = rp;
        self.pa_order_walk = r.bool()?;
        self.pe_activity.fmas = r.varint()?;
        self.pe_activity.buffer_accesses = r.varint()?;
        self.pe_activity.scratch_accesses = r.varint()?;
        self.host_comm_cycles = r.varint()?;
        self.realignment_copies = r.varint()?;
        self.default_color = Color(r.varint_u32()?);
        for a in &mut self.alive {
            *a = r.bool()?;
        }
        self.counters.instr_retries = r.varint()?;
        self.counters.instr_timeouts = r.varint()?;
        self.counters.ops_failed = r.varint()?;
        self.counters.ops_timed_out = r.varint()?;
        self.counters.ops_dep_failed = r.varint()?;
        self.counters.host_fallbacks = r.varint()?;
        self.counters.ranks_quarantined = r.varint()?;
        self.counters.max_retry_backoff = r.varint()?;
        self.clock = r.varint()?;
        // `armed_deadlines` is derived state: recount live armed ops.
        self.armed_deadlines = 0;
        for ss in &self.sessions {
            for op in &ss.ops {
                if !op.done && op.deadline_at.is_some() {
                    self.armed_deadlines += 1;
                }
            }
        }
        Ok(())
    }

    fn decode_vec_id(&self, r: &mut ByteReader<'_>) -> Result<VecId, CodecError> {
        let i = r.varint_usize()?;
        if i >= self.arrays.len() {
            return Err(CodecError::Corrupt("vector id out of range"));
        }
        Ok(VecId(i))
    }

    fn decode_mat_id(&self, r: &mut ByteReader<'_>) -> Result<MatId, CodecError> {
        let i = r.varint_usize()?;
        if i >= self.arrays.len() {
            return Err(CodecError::Corrupt("matrix id out of range"));
        }
        Ok(MatId(i))
    }
}

/// What a launch call builds (resolved at [`OpBuilder::submit`]).
enum BuildKind {
    Elementwise {
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    },
    Gemv {
        y: VecId,
        a: MatId,
        x: VecId,
    },
    AxpyRows {
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    },
}

/// Builder for one op submission: launch options, DAG edges, and ordering
/// mode, finished by [`submit`](OpBuilder::submit).
#[must_use = "an OpBuilder does nothing until .submit()"]
pub struct OpBuilder<'rt> {
    rt: &'rt mut Runtime,
    sess: Session,
    kind: BuildKind,
    opts: LaunchOpts,
    deps: Vec<OpHandle>,
    ordered: bool,
    deadline: Option<u64>,
    fallback_host: bool,
}

impl<'rt> OpBuilder<'rt> {
    fn new(rt: &'rt mut Runtime, sess: Session, kind: BuildKind) -> Self {
        Self {
            rt,
            sess,
            kind,
            opts: LaunchOpts::default(),
            deps: Vec::new(),
            ordered: true,
            deadline: None,
            fallback_host: false,
        }
    }

    /// Replace the launch options wholesale.
    pub fn opts(mut self, opts: LaunchOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Cache blocks per NDA instruction per rank (the Fig.-10 knob).
    pub fn granularity_lines(mut self, lines: u64) -> Self {
        self.opts.granularity_lines = Some(lines);
        self
    }

    /// Asynchronous macro launch: do not barrier between chunks.
    pub fn no_barrier(mut self) -> Self {
        self.opts.barrier_per_chunk = false;
        self
    }

    /// Add a DAG edge: this op's launches are held until `parent` has
    /// retired. `parent` may belong to any session.
    pub fn after(mut self, parent: OpHandle) -> Self {
        self.deps.push(parent);
        self
    }

    /// Opt out of session program order: gate this op on its
    /// [`after`](Self::after) edges alone, letting it overlap other ops
    /// of the same session.
    pub fn unordered(mut self) -> Self {
        self.ordered = false;
        self
    }

    /// Arm a per-op deadline: if the op has not finished `cycles` DRAM
    /// cycles after submission it concludes
    /// [`TimedOut`](OpStatus::TimedOut) (and the failure cascades along
    /// explicit DAG edges).
    pub fn deadline(mut self, cycles: u64) -> Self {
        self.deadline = Some(cycles);
        self
    }

    /// Graceful degradation opt-in: when the op exhausts its retry
    /// budget on a faulted machine, re-execute it on the host cores
    /// (concluding [`Completed`](OpStatus::Completed) with results
    /// visible) instead of concluding [`Failed`](OpStatus::Failed).
    pub fn fallback_host(mut self) -> Self {
        self.fallback_host = true;
        self
    }

    /// Queue the op and return its handle.
    pub fn submit(self) -> OpHandle {
        let OpBuilder {
            rt,
            sess,
            kind,
            opts,
            deps,
            ordered,
            deadline,
            fallback_host,
        } = self;
        let built = match kind {
            BuildKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            } => rt.submit_elementwise(sess, op, scalars, inputs, output, opts, deps, ordered),
            BuildKind::Gemv { y, a, x } => rt.submit_gemv(sess, y, a, x, opts, deps, ordered),
            BuildKind::AxpyRows {
                a_pvt,
                alphas,
                x,
                samples_per_instr,
            } => rt.submit_axpy_rows(
                sess,
                a_pvt,
                alphas,
                x,
                samples_per_instr,
                opts,
                deps,
                ordered,
            ),
        };
        rt.apply_recovery_opts(built, deadline, fallback_host);
        built
    }
}

impl Session {
    /// Build an elementwise Table-I operation. `inputs` are read
    /// operands; `output` (if any) is the written operand (in-place ops
    /// pass the same id in both).
    pub fn elementwise<'rt>(
        self,
        rt: &'rt mut Runtime,
        op: Opcode,
        scalars: Vec<f32>,
        inputs: Vec<VecId>,
        output: Option<VecId>,
    ) -> OpBuilder<'rt> {
        OpBuilder::new(
            rt,
            self,
            BuildKind::Elementwise {
                op,
                scalars,
                inputs,
                output,
            },
        )
    }

    /// Build `y = A x` (one instruction per rank; A streams, x/y live in
    /// the scratchpad).
    pub fn gemv<'rt>(self, rt: &'rt mut Runtime, y: VecId, a: MatId, x: VecId) -> OpBuilder<'rt> {
        OpBuilder::new(rt, self, BuildKind::Gemv { y, a, x })
    }

    /// Build the `parallel_for` macro op of Fig. 8: per-sample
    /// `a_pvt += alphas[i] * X[i]`, `samples_per_instr` samples batched
    /// per NDA instruction.
    pub fn axpy_rows<'rt>(
        self,
        rt: &'rt mut Runtime,
        a_pvt: VecId,
        alphas: Vec<f32>,
        x: MatId,
        samples_per_instr: usize,
    ) -> OpBuilder<'rt> {
        OpBuilder::new(
            rt,
            self,
            BuildKind::AxpyRows {
                a_pvt,
                alphas,
                x,
                samples_per_instr,
            },
        )
    }
}

/// Clamp a start line so timing walks never run past a layout (padding
/// tails reuse the final span; functional results are exact regardless).
fn x_layout_guard(a: &ArrayData, span: u64) -> u64 {
    a.layouts[0].lines().saturating_sub(span)
}
