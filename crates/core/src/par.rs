//! A small persistent worker pool that ticks [`ChannelShard`]s in
//! parallel.
//!
//! The sharded engine dispatches one job per lookahead window: "run every
//! shard to cycle `T`". Shards are moved into the pool's shared slots;
//! the dispatching thread and the workers claim them via an index cursor,
//! run them to the target, and put them back. The dispatcher **works too**
//! — a pool of `sim_threads` uses `sim_threads - 1` spawned workers plus
//! the calling thread — so a window never waits on a thread wake-up to
//! make progress, and an oversubscribed machine degrades gracefully
//! toward serial execution instead of thrashing.
//!
//! Determinism needs no care here — shards share no mutable state and
//! each carries its own RNG — so the only job of this module is cheap
//! dispatch. Workers spin briefly before parking on a condvar: windows
//! are tens of simulated cycles (microseconds of work), so on a busy
//! multicore machine the next job usually arrives while a worker still
//! spins.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use chopim_dram::{perfcount, Cycle};

use crate::shard::ChannelShard;

struct State {
    /// Monotonic job counter; workers watch it for new dispatches.
    job: u64,
    /// Shard slots for the current job (`None` = claimed).
    slots: Vec<Option<ChannelShard>>,
    /// Target cycle of the current job.
    target: Cycle,
    /// Next unclaimed slot index.
    next: usize,
    /// Shards not yet returned for the current job.
    remaining: usize,
    /// First panic raised by a shard this job (re-raised by the
    /// dispatcher so a divergence assertion surfaces instead of
    /// deadlocking the barrier).
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
    /// Lock-free mirror of `state.job` for the workers' spin phase.
    job_hint: AtomicU64,
}

/// The worker pool. Created once per [`crate::ChopimSystem`] when
/// `sim_threads > 1`; dropped (and joined) with it.
pub(crate) struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

/// Run one shard to `target` with its perf-counter scope set. A panic
/// inside the shard (an FSM-divergence assertion, a queue overflow) is
/// captured and handed back so the dispatcher can re-raise it — letting
/// it unwind a worker thread would leave the barrier waiting forever.
fn run_shard(mut shard: ChannelShard, target: Cycle) -> Result<ChannelShard, Box<dyn Any + Send>> {
    let prev = perfcount::set_scope(1 + shard.channel_idx());
    let r = catch_unwind(AssertUnwindSafe(|| {
        shard.run_to(target);
        shard
    }));
    perfcount::set_scope(prev);
    r
}

impl ShardPool {
    /// A pool of `threads` total executors: `threads - 1` spawned
    /// workers plus the dispatching thread itself.
    pub(crate) fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: 0,
                slots: Vec::new(),
                target: 0,
                next: 0,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            job_hint: AtomicU64::new(0),
        });
        let handles = (0..threads.saturating_sub(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    /// Run every shard to `target` on the pool; blocks until all are
    /// back. Drains the caller's vector into the pool's persistent slot
    /// buffer for the window and refills it with every shard in its
    /// original position — steady state moves shards, never allocates
    /// (both vectors keep their capacity across windows). Shards already
    /// at `target` (horizon-skipped ones) cost one no-op claim.
    pub(crate) fn run(&self, shards: &mut Vec<ChannelShard>, target: Cycle) {
        let n = shards.len();
        if n == 0 {
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            debug_assert!(st.slots.is_empty(), "pool re-entered mid-window");
            st.slots.extend(shards.drain(..).map(Some));
            st.target = target;
            st.next = 0;
            st.remaining = n;
            st.job += 1;
            self.shared.job_hint.store(st.job, Ordering::Release);
            self.shared.work.notify_all();
        }
        // The dispatcher claims and runs shards like any worker, then
        // waits only for stragglers still held by other threads.
        let mut st = self.shared.state.lock().expect("pool lock");
        loop {
            if st.next < st.slots.len() {
                let idx = st.next;
                st.next += 1;
                let shard = st.slots[idx].take().expect("unclaimed slot");
                drop(st);
                let outcome = run_shard(shard, target);
                st = self.shared.state.lock().expect("pool lock");
                match outcome {
                    Ok(shard) => st.slots[idx] = Some(shard),
                    Err(p) => {
                        st.panic.get_or_insert(p);
                    }
                };
                st.remaining -= 1;
            } else if st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool wait");
            } else {
                break;
            }
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
        shards.extend(
            st.slots
                .drain(..)
                .map(|s| s.expect("worker returned shard")),
        );
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker(shared: &Shared) {
    let mut seen_job = 0u64;
    loop {
        // Spin briefly for the next job before parking: on a busy
        // multicore machine the next window dispatches within the spin
        // budget; anywhere else the condvar takes over quickly.
        let mut spins = 0u32;
        while shared.job_hint.load(Ordering::Acquire) == seen_job && spins < 512 {
            std::hint::spin_loop();
            spins += 1;
        }
        let mut st = shared.state.lock().expect("pool lock");
        loop {
            if st.shutdown {
                return;
            }
            if st.next < st.slots.len() {
                break;
            }
            seen_job = st.job;
            st = shared.work.wait(st).expect("pool wait");
        }
        let target = st.target;
        while st.next < st.slots.len() {
            let idx = st.next;
            st.next += 1;
            let shard = st.slots[idx].take().expect("unclaimed slot");
            drop(st);
            let outcome = run_shard(shard, target);
            st = shared.state.lock().expect("pool lock");
            match outcome {
                Ok(shard) => st.slots[idx] = Some(shard),
                Err(p) => {
                    st.panic.get_or_insert(p);
                }
            };
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.done.notify_all();
            }
        }
        drop(st);
    }
}
