//! The Table-II energy/power model.
//!
//! The paper consumes CACTI-6.5/3DD/IO outputs as per-event constants; we
//! use those published constants directly (see `DESIGN.md` substitutions):
//! activate 1.0 nJ, PE read/write 11.3 pJ/b, host read/write 25.7 pJ/b,
//! PE FMA 20 pJ, PE buffer 20 pJ/access dynamic + 11 mW leakage (scratchpad
//! identical).

use chopim_dram::{Cycle, DramStats};

/// Per-event energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per row activation (J).
    pub act_j: f64,
    /// NDA-side DRAM access energy per bit (J).
    pub pe_bit_j: f64,
    /// Host-side DRAM access energy per bit (J).
    pub host_bit_j: f64,
    /// Energy per FMA (J).
    pub fma_j: f64,
    /// PE buffer/scratchpad dynamic energy per 8-byte access (J).
    pub buffer_access_j: f64,
    /// PE buffer leakage power (W) — scratchpad assumed identical.
    pub buffer_leak_w: f64,
    /// DRAM bus clock (Hz), to convert cycles to seconds.
    pub clock_hz: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            act_j: 1.0e-9,
            pe_bit_j: 11.3e-12,
            host_bit_j: 25.7e-12,
            fma_j: 20.0e-12,
            buffer_access_j: 20.0e-12,
            buffer_leak_w: 11.0e-3,
            clock_hz: 1.2e9,
        }
    }
}

/// Aggregated PE compute activity (summed over all PEs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeActivity {
    /// Total FMAs executed.
    pub fmas: u64,
    /// Total 8-byte buffer accesses.
    pub buffer_accesses: u64,
    /// Total 8-byte scratchpad accesses.
    pub scratch_accesses: u64,
}

/// An energy/power breakdown for one simulation window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Row-activation energy (J).
    pub act_j: f64,
    /// Host data-transfer energy (J).
    pub host_access_j: f64,
    /// NDA data-transfer energy (J).
    pub nda_access_j: f64,
    /// PE compute (FMA) energy (J).
    pub pe_compute_j: f64,
    /// PE buffer + scratchpad dynamic energy (J).
    pub buffer_j: f64,
    /// PE buffer + scratchpad leakage energy (J).
    pub leakage_j: f64,
    /// Wall-clock seconds of the window.
    pub seconds: f64,
}

impl EnergyReport {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.act_j
            + self.host_access_j
            + self.nda_access_j
            + self.pe_compute_j
            + self.buffer_j
            + self.leakage_j
    }

    /// Average power over the window (W).
    pub fn avg_power_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.seconds
        }
    }

    /// Average power of the NDA-attributed components only (W).
    pub fn nda_power_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            (self.nda_access_j + self.pe_compute_j + self.buffer_j + self.leakage_j) / self.seconds
        }
    }
}

/// Compute the energy report for a window of `cycles` DRAM cycles.
///
/// `line_bytes` is the burst size (64 B); `n_pes` the number of PEs in the
/// system (chips × total ranks) for leakage.
pub fn compute(
    params: &EnergyParams,
    dram: &DramStats,
    pe: &PeActivity,
    cycles: Cycle,
    line_bytes: usize,
    n_pes: usize,
) -> EnergyReport {
    let bits_per_burst = (line_bytes * 8) as f64;
    let seconds = cycles as f64 / params.clock_hz;
    EnergyReport {
        act_j: dram.acts as f64 * params.act_j,
        host_access_j: (dram.reads_host + dram.writes_host) as f64
            * bits_per_burst
            * params.host_bit_j,
        nda_access_j: (dram.reads_nda + dram.writes_nda) as f64 * bits_per_burst * params.pe_bit_j,
        pe_compute_j: pe.fmas as f64 * params.fma_j,
        buffer_j: (pe.buffer_accesses + pe.scratch_accesses) as f64 * params.buffer_access_j,
        // Buffer + scratchpad leakage, per PE.
        leakage_j: 2.0 * params.buffer_leak_w * n_pes as f64 * seconds,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_bits_cost_more_than_nda_bits() {
        let p = EnergyParams::default();
        assert!(
            p.host_bit_j > p.pe_bit_j,
            "NDA proximity must save transfer energy"
        );
    }

    #[test]
    fn report_adds_up() {
        let p = EnergyParams::default();
        let dram = DramStats {
            acts: 1000,
            reads_host: 5000,
            writes_host: 1000,
            reads_nda: 8000,
            writes_nda: 2000,
            ..Default::default()
        };
        let pe = PeActivity {
            fmas: 100_000,
            buffer_accesses: 50_000,
            scratch_accesses: 100,
        };
        let r = compute(&p, &dram, &pe, 1_200_000, 64, 32);
        assert!((r.seconds - 1e-3).abs() < 1e-12);
        let explicit =
            r.act_j + r.host_access_j + r.nda_access_j + r.pe_compute_j + r.buffer_j + r.leakage_j;
        assert!((r.total_j() - explicit).abs() < 1e-18);
        assert!(r.avg_power_w() > 0.0);
        assert!(r.nda_power_w() < r.avg_power_w());
    }

    #[test]
    fn host_only_window_has_zero_nda_dynamic_energy() {
        let p = EnergyParams::default();
        let dram = DramStats {
            acts: 10,
            reads_host: 100,
            ..Default::default()
        };
        let r = compute(&p, &dram, &PeActivity::default(), 1_200, 64, 32);
        assert_eq!(r.nda_access_j, 0.0);
        assert_eq!(r.pe_compute_j, 0.0);
        assert!(r.leakage_j > 0.0, "leakage accrues regardless");
    }

    #[test]
    fn idle_memory_max_power_sanity() {
        // Fully-busy host channel: 2 channels x 16 B/cycle at 25.7 pJ/b
        // plus activations lands in the paper's single-digit-watt range.
        let p = EnergyParams::default();
        let cycles: u64 = 1_200_000; // 1 ms
        let bursts = cycles / 4 * 2; // both channels saturated
        let dram = DramStats {
            acts: (bursts / 64).max(1),
            reads_host: bursts,
            ..Default::default()
        };
        let r = compute(&p, &dram, &PeActivity::default(), cycles, 64, 32);
        let w = r.avg_power_w();
        assert!(
            (1.0..20.0).contains(&w),
            "host-max power {w} W out of plausible range"
        );
    }
}
