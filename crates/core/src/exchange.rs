//! Flat, allocation-free cross-shard message containers.
//!
//! The sharded engine exchanges three message streams at every window
//! barrier: front-end → shard ingress (transactions and launches), and
//! shard → front-end fills and completions. The original engine used a
//! `VecDeque` inbox extended from per-channel outbox queues plus two
//! `BinaryHeap`s fed one message at a time — every window allocated, and
//! every fill/completion paid a heap sift.
//!
//! This module replaces both with steady-state-allocation-free
//! structures built on two observations:
//!
//! * **Exchange only happens at barriers.** Between barriers the
//!   front-end only *pops* fills/completions and the shard only *pops*
//!   ingress. A container that absorbs a batch at the barrier and then
//!   serves ordered pops needs one sort per barrier, not one sift per
//!   message.
//! * **Producers refill the same buffers every window.** Handing a full
//!   buffer over and handing an empty one back is a swap, not a copy —
//!   the classic double-buffer. Capacity sticks to whichever side is
//!   currently filling, so after warm-up nothing reallocates.
//!
//! [`FlatFifo`] is the ingress side: a contiguous buffer with a consumed
//! head, absorbed from the producer's flat outbox by swap when empty.
//! [`MergeQueue`] is the fill/completion side: per-shard runs are
//! appended raw and one `sort_unstable` at [`seal`](MergeQueue::seal)
//! reproduces exactly the `BinaryHeap` min-pop order (ascending on the
//! full tuple), because no pushes happen between barriers.

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::perfcount::{self, Counter};
use chopim_dram::Cycle;
use chopim_nda::isa::NdaInstr;
use chopim_nda::snapshot::{decode_instr, encode_instr};

use crate::sched::{decode_tx, encode_tx, HostTransaction};

// The shared cross-boundary vocabulary, re-exported so shard-side code
// names `exchange` (the typed message layer) rather than the front-end
// `runtime` module. This module is the one place both sides' types meet.
pub use crate::runtime::OpHandle;
pub(crate) use crate::runtime::{decode_handle, encode_handle};

/// A message from the front-end to a shard, delivered at its stamp.
#[derive(Debug)]
pub(crate) enum ShardInbound {
    /// A memory transaction bound for the host MC queues. Waits for MC
    /// queue space at the head of the FIFO (head-of-line, preserving
    /// order).
    Tx(HostTransaction),
    /// The payload side-band of a launch: registers the in-flight record
    /// before the launch's control-register writes (which follow in the
    /// same FIFO) start completing. Never waits for MC space.
    Launch {
        /// Launch id shared with the write transactions' `TxMeta`.
        id: u64,
        /// Target NDA, shard-local index.
        nda_local: usize,
        /// The instruction delivered when every write completes.
        instr: NdaInstr,
        /// Control-register writes carrying this launch.
        writes: u32,
        /// Owning `(session, op)`: stamped back onto the instruction's
        /// completion message so the front-end routes it straight to the
        /// right tenant's op without a global lookup.
        tag: OpHandle,
    },
}

/// Outbound fill completion: `(deliver_at, core, request id)`.
pub(crate) type FillMsg = (Cycle, usize, u64);
/// Outbound instruction completion:
/// `(deliver_at, instr id, global NDA, (session, op), status)`.
pub(crate) type CompletionMsg = (Cycle, u64, usize, OpHandle, u8);

/// [`CompletionMsg`] status: the instruction retired successfully.
pub(crate) const COMPLETION_OK: u8 = 0;
/// [`CompletionMsg`] status: the instruction failed (transient compute
/// fault, poisoned operand, or queue overflow under fault recovery).
pub(crate) const COMPLETION_FAILED: u8 = 1;
/// [`CompletionMsg`] status: the target rank died permanently; the
/// front-end quarantines it and re-shards onto survivors.
pub(crate) const COMPLETION_RANK_DEAD: u8 = 2;

impl ShardInbound {
    #[cold]
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        match self {
            ShardInbound::Tx(tx) => {
                w.u8(0);
                encode_tx(tx, w);
            }
            ShardInbound::Launch {
                id,
                nda_local,
                instr,
                writes,
                tag,
            } => {
                w.u8(1);
                w.varint(*id);
                w.varint(*nda_local as u64);
                encode_instr(instr, w);
                w.varint(u64::from(*writes));
                encode_handle(*tag, w);
            }
        }
    }

    #[cold]
    pub(crate) fn decode(r: &mut ByteReader<'_>, n_ndas: usize) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => ShardInbound::Tx(decode_tx(r)?),
            1 => {
                let id = r.varint()?;
                let nda_local = r.varint_usize()?;
                if nda_local >= n_ndas {
                    return Err(CodecError::Corrupt("launch NDA index out of range"));
                }
                ShardInbound::Launch {
                    id,
                    nda_local,
                    instr: decode_instr(r)?,
                    writes: r.varint_u32()?,
                    tag: decode_handle(r)?,
                }
            }
            _ => return Err(CodecError::Corrupt("shard inbound tag")),
        })
    }
}

/// A contiguous FIFO: a flat buffer plus a consumed-prefix index.
///
/// Pops advance `head` instead of shifting elements; the consumed prefix
/// is reclaimed for free whenever the queue drains (the common case — a
/// shard normally drains its ingress within the window it arrives).
#[derive(Debug)]
pub struct FlatFifo<T> {
    buf: Vec<T>,
    head: usize,
    /// Largest live length ever held (arena sizing telemetry).
    high_water: usize,
}

impl<T> Default for FlatFifo<T> {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            high_water: 0,
        }
    }
}

impl<T> FlatFifo<T> {
    /// Unconsumed elements.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The next element to pop, if any.
    pub fn front(&self) -> Option<&T> {
        self.buf.get(self.head)
    }

    /// Mutable access to the next element to pop, if any.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.buf.get_mut(self.head)
    }

    /// The unconsumed elements in pop order (snapshot support: the
    /// consumed prefix is dead state, so only this region is captured).
    pub fn live(&self) -> &[T] {
        &self.buf[self.head..]
    }

    /// Rebuild a FIFO from a captured live region and high-water mark
    /// (snapshot support; the consumed prefix is not restored).
    pub fn restore(items: Vec<T>, high_water: usize) -> Self {
        let high_water = high_water.max(items.len());
        Self {
            buf: items,
            head: 0,
            high_water,
        }
    }

    /// Consume the front element, returning a reference to it (the
    /// element stays in the buffer until the next drain-compaction).
    pub fn pop_front(&mut self) -> Option<&T> {
        let item = self.buf.get(self.head)?;
        self.head += 1;
        Some(item)
    }

    /// Take the producer's batch: swap buffers when this side is empty
    /// (the zero-copy double-buffer handoff — the producer keeps our
    /// drained buffer, capacity and all, for the next window), append
    /// otherwise. The producer's vector is empty afterwards either way.
    pub fn absorb(&mut self, from: &mut Vec<T>) {
        if from.is_empty() {
            return;
        }
        if self.is_empty() {
            self.buf.clear();
            self.head = 0;
            std::mem::swap(&mut self.buf, from);
        } else {
            self.buf.append(from);
        }
        self.high_water = self.high_water.max(self.len());
    }

    /// Largest live length ever held.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// A merge queue: absorbs unsorted runs at barriers, serves ascending
/// pops between them.
///
/// With pushes confined to barriers, sorting the unconsumed region once
/// per [`seal`](Self::seal) yields exactly the pop sequence a
/// `BinaryHeap` of `Reverse<T>` would produce — ascending on `T`'s full
/// `Ord` — without per-push sifting or per-pop `Reverse` wrapping.
/// `sort_unstable` is safe here because the engine's message tuples are
/// unique (request/instruction ids disambiguate equal cycles).
#[derive(Debug)]
pub struct MergeQueue<T> {
    buf: Vec<T>,
    head: usize,
    /// Unsorted elements appended since the last seal.
    dirty: bool,
}

impl<T: Ord> Default for MergeQueue<T> {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            dirty: false,
        }
    }
}

impl<T: Ord> MergeQueue<T> {
    /// Unconsumed elements.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed elements in buffer order (snapshot support). Only
    /// meaningful together with [`is_dirty`](Self::is_dirty): a sealed
    /// queue's live region is already in pop order.
    pub fn live(&self) -> &[T] {
        &self.buf[self.head..]
    }

    /// True while absorbed runs have not been sealed into pop order.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rebuild a queue from a captured live region and dirty flag
    /// (snapshot support).
    pub fn restore(items: Vec<T>, dirty: bool) -> Self {
        Self {
            buf: items,
            head: 0,
            dirty,
        }
    }

    /// Append a producer's run, leaving it empty (capacity retained).
    /// The queue is unordered until the next [`seal`](Self::seal).
    pub fn absorb_run(&mut self, run: &mut Vec<T>) {
        if run.is_empty() {
            return;
        }
        self.dirty = true;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
            std::mem::swap(&mut self.buf, run);
        } else {
            self.buf.append(run);
        }
    }

    /// Restore pop order after a batch of absorbs: compact the consumed
    /// prefix and sort the live region in place.
    pub fn seal(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.sort_unstable();
        perfcount::hi(Counter::ArenaHighWater, self.buf.len() as u64);
    }

    /// Smallest unconsumed element. Must be sealed.
    pub fn peek(&self) -> Option<&T> {
        debug_assert!(!self.dirty, "peek on an unsealed MergeQueue");
        self.buf.get(self.head)
    }

    /// Pop the smallest unconsumed element. Must be sealed.
    pub fn pop(&mut self) -> Option<&T> {
        debug_assert!(!self.dirty, "pop on an unsealed MergeQueue");
        let item = self.buf.get(self.head)?;
        self.head += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_fifo_fifo_order_and_swap() {
        let mut q: FlatFifo<u32> = FlatFifo::default();
        let mut out = vec![1, 2, 3];
        q.absorb(&mut out);
        assert!(out.is_empty());
        assert_eq!(q.len(), 3);
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop_front(), Some(&1));
        // Non-empty absorb appends in order.
        out.extend([4, 5]);
        q.absorb(&mut out);
        assert_eq!(q.len(), 4);
        for want in 2..=5 {
            assert_eq!(q.pop_front(), Some(&want));
        }
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 4);
        // Empty-side absorb swaps: the producer gets a buffer back.
        out.extend([7]);
        q.absorb(&mut out);
        assert!(out.capacity() >= 1);
        assert_eq!(q.pop_front(), Some(&7));
    }

    #[test]
    fn flat_fifo_steady_state_does_not_allocate() {
        let mut q: FlatFifo<u64> = FlatFifo::default();
        let mut out: Vec<u64> = Vec::new();
        // Warm up until both sides hold a buffer, then check the buffer
        // pointers only ever swap between the two sides.
        for round in 0..2u64 {
            out.extend(round..round + 8);
            q.absorb(&mut out);
            while q.pop_front().is_some() {}
        }
        let mut ptrs = [q.buf.as_ptr(), out.as_ptr()];
        ptrs.sort();
        for round in 0..100u64 {
            out.extend(round..round + 8);
            q.absorb(&mut out);
            while q.pop_front().is_some() {}
            let mut now = [q.buf.as_ptr(), out.as_ptr()];
            now.sort();
            assert_eq!(now, ptrs, "double-buffer swap reallocated");
        }
    }

    #[test]
    fn merge_queue_matches_heap_pop_order() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let runs: Vec<Vec<(u64, u32)>> = vec![
            vec![(5, 1), (5, 0), (9, 2)],
            vec![(3, 7), (12, 1)],
            vec![],
            vec![(5, 3), (4, 4)],
        ];
        let mut heap = BinaryHeap::new();
        let mut mq: MergeQueue<(u64, u32)> = MergeQueue::default();
        for run in &runs {
            for &m in run {
                heap.push(Reverse(m));
            }
            let mut run = run.clone();
            mq.absorb_run(&mut run);
        }
        mq.seal();
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(mq.pop(), Some(&want));
        }
        assert_eq!(mq.pop(), None);
    }

    #[test]
    fn merge_queue_interleaved_barriers() {
        let mut mq: MergeQueue<u64> = MergeQueue::default();
        let mut run = vec![4, 2];
        mq.absorb_run(&mut run);
        mq.seal();
        assert_eq!(mq.pop(), Some(&2));
        // A later barrier merges behind the consumed prefix.
        run.extend([1, 3]);
        mq.absorb_run(&mut run);
        mq.seal();
        for want in [1u64, 3, 4] {
            assert_eq!(mq.pop(), Some(&want));
        }
        assert_eq!(mq.len(), 0);
    }
}
