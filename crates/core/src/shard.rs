//! One channel's simulation shard: the unit of parallelism of the
//! channel-sharded engine.
//!
//! A [`ChannelShard`] owns everything that lives behind one memory
//! channel — the [`Channel`] device state, the host-side [`HostMc`], the
//! per-rank [`NdaRankController`]s with their host-side shadow FSMs, the
//! in-flight launch records, and the shard's half of every cross-boundary
//! queue. Nothing inside a shard ever references another shard or the
//! front-end: all traffic in and out is typed, cycle-stamped messages
//! ([`ShardInbound`] arriving, fill/completion messages leaving), which is
//! what makes the conservative-lookahead parallel executor deterministic —
//! a shard ticking cycles `[T, T+W)` can only observe messages stamped
//! before `T+W`, all of which were produced before the window began.
//!
//! The shard also owns its slice of the event-horizon fast-forward state:
//! within a window it skips provably idle stretches exactly as the
//! monolithic engine did globally (same horizon rules, same bulk stall
//! accounting, same periodic replicated-FSM checks), so
//! `fast_forward = false` remains the naive cycle-by-cycle reference and
//! the lockstep suites keep their bit-identity contract.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use chopim_dram::codec::{ByteReader, ByteWriter, CodecError};
use chopim_dram::fault::{stream, FaultPlan};
use chopim_dram::stats::ChannelStats;
use chopim_dram::{Channel, CommandKind, Cycle, DramConfig};
use chopim_nda::controller::{NdaRankController, NdaTickResult};
use chopim_nda::fsm::NdaFsm;
use chopim_nda::isa::NdaInstr;
use chopim_nda::snapshot::{decode_instr, encode_instr};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exchange::{
    decode_handle, encode_handle, CompletionMsg, FillMsg, FlatFifo, OpHandle, ShardInbound,
    COMPLETION_FAILED, COMPLETION_OK, COMPLETION_RANK_DEAD,
};
use crate::policy::WriteIssuePolicy;
use crate::sched::{HostMc, Issued, PagePolicy, SchedulerKind, TxMeta};

/// The configuration slice a shard needs (copied at construction so the
/// shard is self-contained and `Send`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardParams {
    /// NDA write-issue policy.
    pub policy: WriteIssuePolicy,
    /// Event-horizon fast-forwarding within windows (off = naive loop).
    pub fast_forward: bool,
    /// Periodic replicated-FSM equality assertions.
    pub verify_fsm: bool,
    /// Packetized return-path serialization added to fill delivery.
    pub packetized_latency: Cycle,
    /// NDA completion → host-visible delivery latency (the status-poll
    /// pipeline depth; also the shard→front-end lookahead floor).
    pub completion_latency: Cycle,
    /// Record launch deliveries and completions into the shard's event
    /// logs (trace capture; the DRAM command stream is recorded by the
    /// channel's own trace buffer).
    pub record_events: bool,
    /// Deterministic fault-injection plan (empty = zero overhead).
    pub faults: FaultPlan,
}

/// Per-shard fault-injection state: the event counters the counter-based
/// fault streams draw on, per-NDA poison/death flags, and the injected
/// fault counters surfaced through `FaultReport`. Every mutation sits
/// behind the single `active` test, so an empty plan costs one branch
/// per event and nothing else.
#[derive(Debug)]
struct FaultState {
    /// `!plan.is_empty()` — the one branch the zero-overhead path pays.
    active: bool,
    /// Shard-local index of the rank the plan kills, when it lives here.
    death_local: Option<usize>,
    death_processed: bool,
    /// Column reads performed on this channel (bit-flip stream key).
    col_reads: u64,
    /// NDA instructions retired (transient/hang stream key).
    instrs_retired: u64,
    /// Completion messages sent (drop/delay stream key).
    completions_sent: u64,
    /// Per-NDA: an uncorrectable read poisons the next retirement.
    poisoned: Vec<bool>,
    /// Per-NDA: permanently dead (launches fail immediately).
    dead: Vec<bool>,
    transient_faults: u64,
    fsm_hangs: u64,
    completions_dropped: u64,
    completions_delayed: u64,
    rank_deaths: u64,
}

impl FaultState {
    /// Draw the bit-flip/ECC streams for one column read. An
    /// uncorrectable flip on an NDA read poisons `poison`'s next
    /// retirement; host reads are counted only.
    #[cold]
    fn col_read(
        &mut self,
        plan: &FaultPlan,
        channel_idx: usize,
        stats: &mut ChannelStats,
        poison: Option<usize>,
    ) {
        let ch = channel_idx as u64;
        let n = self.col_reads;
        self.col_reads += 1;
        if plan.fires(plan.dram_bit_flip_period, ch, stream::BIT_FLIP, n) {
            if plan.uncorrectable(ch, n) {
                stats.ecc_uncorrectable += 1;
                if let Some(i) = poison {
                    self.poisoned[i] = true;
                }
            } else {
                stats.ecc_corrected += 1;
            }
        }
    }

    /// Draw the transient/hang/drop/delay streams for one retirement.
    /// Returns `false` when the completion message is dropped in
    /// transit; otherwise `deliver`/`status` carry any injected delay
    /// and failure.
    #[cold]
    fn retire(
        &mut self,
        plan: &FaultPlan,
        channel_idx: usize,
        nda: usize,
        deliver: &mut Cycle,
        status: &mut u8,
    ) -> bool {
        let ch = channel_idx as u64;
        let n = self.instrs_retired;
        self.instrs_retired += 1;
        if self.poisoned[nda] {
            self.poisoned[nda] = false;
            *status = COMPLETION_FAILED;
        } else if plan.fires(plan.nda_transient_period, ch, stream::TRANSIENT, n) {
            self.transient_faults += 1;
            *status = COMPLETION_FAILED;
        }
        if plan.fires(plan.nda_hang_period, ch, stream::HANG, n) {
            self.fsm_hangs += 1;
            *deliver += plan.nda_hang_cycles;
        }
        let m = self.completions_sent;
        self.completions_sent += 1;
        if plan.fires(plan.completion_drop_period, ch, stream::DROP, m) {
            self.completions_dropped += 1;
            return false;
        }
        if plan.fires(plan.completion_delay_period, ch, stream::DELAY, m) {
            self.completions_delayed += 1;
            *deliver += plan.completion_delay_cycles;
        }
        true
    }
}

#[derive(Debug)]
struct LaunchInFlight {
    instr: NdaInstr,
    nda_local: usize,
    writes_remaining: u32,
    tag: OpHandle,
}

/// Dense sliding map over in-flight launch records.
///
/// Launch ids are assigned by the front-end from one global counter and
/// delivered per shard in FIFO order, so the ids a shard sees are
/// **strictly increasing** — a ring of `Option` slots indexed by
/// `id - base` replaces the old `HashMap` with O(1) array accesses. Ids
/// belonging to other channels leave `None` gaps; the base slides past
/// the consumed-and-gap prefix on every removal, so the live span is
/// bounded by the launch-in-flight window, not the id space.
#[derive(Debug, Default)]
struct LaunchSlab {
    base: u64,
    slots: VecDeque<Option<LaunchInFlight>>,
}

impl LaunchSlab {
    fn insert(&mut self, id: u64, lf: LaunchInFlight) {
        if self.slots.is_empty() {
            // Re-anchor so cross-channel id gaps cost nothing while the
            // shard has no launches in flight.
            self.base = id;
        }
        debug_assert!(
            id >= self.base + self.slots.len() as u64,
            "launch ids must arrive strictly increasing"
        );
        while (self.slots.len() as u64) < id - self.base {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(lf));
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut LaunchInFlight> {
        let idx = id.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    fn remove(&mut self, id: u64) -> Option<LaunchInFlight> {
        let idx = id.checked_sub(self.base)? as usize;
        let lf = self.slots.get_mut(idx)?.take();
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        lf
    }
}

/// One channel's shard. See the module docs.
pub(crate) struct ChannelShard {
    channel_idx: usize,
    pub(crate) channel: Channel,
    pub(crate) mc: HostMc,
    pub(crate) ndas: Vec<NdaRankController>,
    pub(crate) shadows: Vec<NdaFsm>,
    /// Set when a launch was delivered this cycle, forcing a full
    /// controller evaluation even if it looked idle or blocked.
    nda_poke: Vec<bool>,
    /// Shard-local NDA index per rank (`None` = rank has no NDA, e.g.
    /// host-only ranks never occur but rank-partitioning asymmetries do).
    // chopim-lint: allow(snapshot) -- static shard topology computed by build from the nda_ranks config
    local_of_rank: Vec<Option<usize>>,
    /// Global NDA index per shard-local NDA (stamps completion messages).
    // chopim-lint: allow(snapshot) -- static shard topology computed by build from the nda_ranks config
    global_idx: Vec<usize>,
    launches: LaunchSlab,
    /// `(instr id, (session, op))` of every instruction delivered to a
    /// rank FSM and not yet retired, bucketed per shard-local NDA: the
    /// completion-routing tag stamped onto outbound completion messages.
    /// Instruction ids are *not* monotonic per shard (fair-share
    /// arbitration interleaves ops) and the FSM retires out of launch
    /// order (buffered-write drain), so each bucket is a small unordered
    /// vector scanned linearly — bounded by the FSM queue depth.
    completion_tags: Vec<Vec<(u64, OpHandle)>>,
    launch_events: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Cross-boundary ingress FIFO: a flat arena the front-end's egress
    /// buffer is swapped into at barriers (see [`crate::exchange`]).
    pub(crate) inbox: FlatFifo<(Cycle, ShardInbound)>,
    /// Outbound fill completions produced this window.
    pub(crate) fills_out: Vec<FillMsg>,
    /// Outbound instruction completions produced this window.
    pub(crate) completions_out: Vec<CompletionMsg>,
    /// Captured launch deliveries `(cycle, shard-local NDA, instr id)`
    /// when `params.record_events` (trace capture; not snapshot state).
    // chopim-lint: allow(snapshot) -- diagnostic event log (record_events); capture sessions never span a snapshot
    pub(crate) launch_log: Vec<(Cycle, u32, u64)>,
    /// Captured instruction retirements `(cycle, instr id)` when
    /// `params.record_events` (trace capture; not snapshot state).
    // chopim-lint: allow(snapshot) -- diagnostic event log (record_events); capture sessions never span a snapshot
    pub(crate) completion_log: Vec<(Cycle, u64)>,
    /// Per-shard policy RNG: seeded from `(seed, channel)` so the draw
    /// stream is independent of every other shard — the precondition for
    /// ticking shards on a worker pool without perturbing stochastic
    /// write throttling.
    policy_rng: StdRng,
    /// Fault-injection counters and flags (see [`FaultState`]).
    fault: FaultState,
    // chopim-lint: allow(snapshot) -- ShardParams config copy; resume reconstructs every shard from the same config
    params: ShardParams,
    pub(crate) now: Cycle,
    /// Cached event horizon: the shard state as of the last executed
    /// cycle provably generates no activity before this cycle (new inbox
    /// messages can still arrive earlier — the front-end checks the
    /// inbox stamp separately). Invalidated (set to `now`) by every
    /// executed cycle; refreshed by [`horizon`](Self::horizon). The
    /// computed-horizon barrier skip reads it via
    /// [`quiet_until`](Self::quiet_until).
    quiet_until: Cycle,
    ticks_executed: u64,
    cycles_skipped: u64,
    ff_streak: u32,
    ff_backoff: u32,
    /// Wake-hint computation throttle for a saturated MC (see the
    /// monolithic engine's `mc_hint_backoff`; per-shard now).
    hint_backoff: u32,
    hint_penalty: u32,
}

impl ChannelShard {
    /// Start (or stop) recording launch deliveries and completions into
    /// the shard's trace logs (see [`ShardParams::record_events`]).
    pub(crate) fn set_record_events(&mut self, on: bool) {
        self.params.record_events = on;
    }

    /// True when every op handle the shard holds (launch slab, FSM
    /// completion tags, undelivered inbox launches) satisfies `ok`
    /// (snapshot decode validates restored handles through this).
    #[cold]
    pub(crate) fn handles_ok(&self, ok: &dyn Fn(OpHandle) -> bool) -> bool {
        self.launches.slots.iter().flatten().all(|lf| ok(lf.tag))
            && self
                .completion_tags
                .iter()
                .flatten()
                .all(|&(_, tag)| ok(tag))
            && self.inbox.live().iter().all(|(_, item)| match item {
                ShardInbound::Launch { tag, .. } => ok(*tag),
                ShardInbound::Tx(_) => true,
            })
    }

    /// Build the shard for `channel_idx`, owning `ndas` (paired with
    /// their global indexes, in rank order) behind `channel`.
    /// Build the shard for channel `channel_idx` from configuration
    /// alone: the channel device, its host MC (scheduler and page
    /// policy applied), and the rank controllers for every NDA rank
    /// living on this channel. Constructing the shard-internal parts
    /// here keeps `HostMc`/`NdaRankController` out of the front-end's
    /// vocabulary — the front-end hands over config, not machinery.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        channel_idx: usize,
        dram: &DramConfig,
        scheduler: SchedulerKind,
        page_policy: PagePolicy,
        nda_ranks: &[(usize, usize)],
        nda_queue_cap: usize,
        seed: u64,
        params: ShardParams,
    ) -> Self {
        let mut mc = HostMc::new(
            dram.ranks_per_channel,
            dram.bankgroups,
            dram.banks_per_group,
            dram.timing.refi,
        );
        mc.set_scheduler(scheduler);
        mc.set_page_policy(page_policy);
        let ndas: Vec<(usize, NdaRankController)> = nda_ranks
            .iter()
            .enumerate()
            .filter(|&(_, &(ch, _))| ch == channel_idx)
            .map(|(g, &(ch, r))| {
                (
                    g,
                    NdaRankController::new(ch, r, dram.banks_per_group, nda_queue_cap),
                )
            })
            .collect();
        Self::new(
            channel_idx,
            Channel::new(dram),
            mc,
            ndas,
            nda_queue_cap,
            seed,
            params,
        )
    }

    fn new(
        channel_idx: usize,
        channel: Channel,
        mc: HostMc,
        ndas: Vec<(usize, NdaRankController)>,
        queue_cap: usize,
        seed: u64,
        params: ShardParams,
    ) -> Self {
        let ranks = channel.config().ranks_per_channel;
        let mut local_of_rank = vec![None; ranks];
        let mut global_idx = Vec::with_capacity(ndas.len());
        let mut ctls = Vec::with_capacity(ndas.len());
        for (local, (gidx, ctl)) in ndas.into_iter().enumerate() {
            local_of_rank[ctl.rank()] = Some(local);
            global_idx.push(gidx);
            ctls.push(ctl);
        }
        let n = ctls.len();
        let plan = params.faults;
        let death_local = if plan.rank_death_cycle > 0 {
            global_idx
                .iter()
                .position(|&g| g == plan.rank_death_nda as usize)
        } else {
            None
        };
        let fault = FaultState {
            active: !plan.is_empty(),
            death_local,
            death_processed: false,
            col_reads: 0,
            instrs_retired: 0,
            completions_sent: 0,
            poisoned: vec![false; n],
            dead: vec![false; n],
            transient_faults: 0,
            fsm_hangs: 0,
            completions_dropped: 0,
            completions_delayed: 0,
            rank_deaths: 0,
        };
        Self {
            channel_idx,
            channel,
            mc,
            shadows: (0..n).map(|_| NdaFsm::new(queue_cap)).collect(),
            ndas: ctls,
            nda_poke: vec![false; n],
            local_of_rank,
            global_idx,
            launches: LaunchSlab::default(),
            completion_tags: (0..n).map(|_| Vec::new()).collect(),
            launch_events: BinaryHeap::new(),
            inbox: FlatFifo::default(),
            fills_out: Vec::new(),
            completions_out: Vec::new(),
            launch_log: Vec::new(),
            completion_log: Vec::new(),
            policy_rng: StdRng::seed_from_u64(
                (seed ^ 0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((channel_idx as u64).wrapping_mul(0xa24b_aed4_963e_e407)),
            ),
            fault,
            params,
            now: 0,
            quiet_until: 0,
            ticks_executed: 0,
            cycles_skipped: 0,
            ff_streak: 0,
            ff_backoff: 0,
            hint_backoff: 0,
            hint_penalty: 0,
        }
    }

    /// The channel index this shard simulates.
    pub(crate) fn channel_idx(&self) -> usize {
        self.channel_idx
    }

    /// Shard-local NDA index of `rank`.
    ///
    /// # Panics
    ///
    /// Panics when the rank has no NDA (launches only target NDA ranks).
    pub(crate) fn local_of(&self, rank: usize) -> usize {
        self.local_of_rank[rank].expect("rank has an NDA")
    }

    /// `(ticks executed, cycles skipped)` diagnostics for this shard.
    pub(crate) fn tick_stats(&self) -> (u64, u64) {
        (self.ticks_executed, self.cycles_skipped)
    }

    /// True while every host-side shadow FSM matches its rank's FSM.
    pub(crate) fn fsm_in_sync(&self) -> bool {
        self.ndas
            .iter()
            .zip(&self.shadows)
            .all(|(n, s)| n.fsm().fingerprint() == s.fingerprint())
    }

    /// The cached horizon from the shard's last self-inspection: no
    /// shard-internal event fires strictly before this cycle. The
    /// front-end combines it with the inbox's first stamp to decide
    /// whether the shard may skip a window barrier outright.
    pub(crate) fn quiet_until(&self) -> Cycle {
        self.quiet_until
    }

    /// Earliest-actionable stamp waiting in the ingress FIFO (head of
    /// line: later messages cannot act before the front one).
    pub(crate) fn inbox_first_stamp(&self) -> Option<Cycle> {
        self.inbox.front().map(|&(t, _)| t)
    }

    /// Ingress-arena high-water mark (sizing telemetry).
    pub(crate) fn inbox_high_water(&self) -> usize {
        self.inbox.high_water()
    }

    /// Run the shard up to (exclusive) `target`, fast-forwarding idle
    /// stretches when enabled. Messages produced land in the outboxes;
    /// the caller exchanges them at the window barrier.
    pub(crate) fn run_to(&mut self, target: Cycle) {
        while self.now < target {
            self.tick_cycle();
            self.now += 1;
            // An executed cycle may have scheduled arbitrarily early new
            // events; any previously computed horizon is stale.
            self.quiet_until = self.now;
            self.maybe_skip(target);
        }
    }

    /// One shard cycle at `self.now`: launch deliveries, ingress pops,
    /// the host MC, then the rank NDA controllers — the same intra-cycle
    /// order the monolithic engine used for one channel.
    fn tick_cycle(&mut self) {
        let now = self.now;
        self.ticks_executed += 1;

        // 0. Permanent rank death fires at its planned cycle. The
        // horizon folds the death cycle in, so every engine variant
        // (naive, fast-forwarding, any thread count) executes this tick
        // at exactly the same cycle.
        if self.fault.active && !self.fault.death_processed {
            if let Some(local) = self.fault.death_local {
                if now >= self.params.faults.rank_death_cycle {
                    self.process_rank_death(local, now);
                }
            }
        }

        // 1. Launch deliveries whose control writes completed.
        while let Some(&Reverse((t, id))) = self.launch_events.peek() {
            if t > now {
                break;
            }
            self.launch_events.pop();
            let lf = self.launches.get_mut(id).expect("launch record");
            lf.writes_remaining -= 1;
            if lf.writes_remaining == 0 {
                let lf = self.launches.remove(id).expect("present");
                if self.fault.active && self.fault.dead[lf.nda_local] {
                    // Delivery to a dead rank: fail the instruction
                    // immediately so the front-end can re-shard it.
                    self.completions_out.push((
                        now + self.params.completion_latency,
                        lf.instr.id,
                        self.global_idx[lf.nda_local],
                        lf.tag,
                        COMPLETION_RANK_DEAD,
                    ));
                    continue;
                }
                if self.params.record_events {
                    self.launch_log
                        .push((now, lf.nda_local as u32, lf.instr.id));
                }
                self.nda_poke[lf.nda_local] = true;
                match self.ndas[lf.nda_local].launch(lf.instr.clone()) {
                    Ok(()) => {
                        self.completion_tags[lf.nda_local].push((lf.instr.id, lf.tag));
                        self.shadows[lf.nda_local]
                            .launch(lf.instr)
                            .unwrap_or_else(|_| panic!("shadow queue overflow"));
                    }
                    // Under fault recovery, optimistic credit return on
                    // timeout makes queue overflow reachable: fail the
                    // launch gracefully (the runtime retries it) instead
                    // of bringing the machine down.
                    Err(_) if self.fault.active => {
                        self.completions_out.push((
                            now + self.params.completion_latency,
                            lf.instr.id,
                            self.global_idx[lf.nda_local],
                            lf.tag,
                            COMPLETION_FAILED,
                        ));
                    }
                    Err(_) => panic!("NDA queue overflow"),
                }
            }
        }

        // 2. Ingress: deliver due messages into the MC, head-of-line.
        while let Some((t, item)) = self.inbox.front_mut() {
            if *t > now {
                break;
            }
            match item {
                ShardInbound::Launch {
                    id,
                    nda_local,
                    instr,
                    writes,
                    tag,
                } => {
                    self.launches.insert(
                        *id,
                        LaunchInFlight {
                            instr: instr.clone(),
                            nda_local: *nda_local,
                            writes_remaining: *writes,
                            tag: *tag,
                        },
                    );
                    self.inbox.pop_front();
                }
                ShardInbound::Tx(tx) => {
                    if self.mc.try_push_hinted(*tx, &self.channel, now) {
                        self.inbox.pop_front();
                    } else {
                        // MC full: retry next cycle (keeps order).
                        *t = now + 1;
                        break;
                    }
                }
            }
        }

        // 3. Host memory controller (priority on the channel).
        self.mc_cycle(now);

        // 4. NDA controllers (one per rank, independent command paths).
        self.nda_cycle(now);

        // 5. Replicated-FSM equality check.
        if self.params.verify_fsm && now.is_multiple_of(1024) {
            assert!(
                self.fsm_in_sync(),
                "replicated FSMs diverged at cycle {now} (channel {})",
                self.channel_idx
            );
        }
    }

    /// Kill shard-local NDA `local` at `now`: every instruction it holds
    /// (queued, running, or awaiting write-drain) fails with
    /// [`COMPLETION_RANK_DEAD`] so the front-end quarantines the rank
    /// and re-shards the work; the FSM and its shadow are aborted
    /// identically so the replicated-FSM fingerprints stay equal.
    #[cold]
    fn process_rank_death(&mut self, local: usize, now: Cycle) {
        self.fault.death_processed = true;
        self.fault.dead[local] = true;
        self.fault.rank_deaths += 1;
        self.nda_poke[local] = false;
        let gidx = self.global_idx[local];
        let latency = self.params.completion_latency;
        for (id, tag) in self.completion_tags[local].drain(..) {
            self.completions_out
                .push((now + latency, id, gidx, tag, COMPLETION_RANK_DEAD));
        }
        self.ndas[local].abort_all();
        self.shadows[local].abort_all();
    }

    fn mc_cycle(&mut self, now: Cycle) {
        // In fast-forward mode a valid wake-up hint proves the whole
        // controller tick is a no-op; the naive loop evaluates every
        // cycle (reference behavior).
        if self.params.fast_forward {
            if let Some(h) = self.mc.wake_hint() {
                if now < h {
                    return;
                }
            }
        }
        let issued = self.mc.tick(&mut self.channel, now);
        if issued.is_none() && self.params.fast_forward {
            // Idle tick: compute and cache the wake-up so the following
            // no-op ticks are skipped outright — unless this channel's
            // recent hints all expired immediately (a saturated
            // controller is ready again within a cycle or two), in which
            // case back off before scanning again.
            if self.hint_backoff > 0 {
                self.hint_backoff -= 1;
            } else {
                let h = self.mc.next_event_cycle(&self.channel, now);
                if h <= now + 1 {
                    let p = (self.hint_penalty * 2).clamp(2, 32);
                    self.hint_penalty = p;
                    self.hint_backoff = p;
                } else {
                    self.hint_penalty = 0;
                }
            }
        }
        if let Some(iss) = issued {
            if self.fault.active && iss.cmd.kind == CommandKind::Rd {
                // Host column read: draw the bit-flip/ECC streams
                // (host-side uncorrectable errors are counted only).
                self.fault.col_read(
                    &self.params.faults,
                    self.channel_idx,
                    &mut self.channel.stats,
                    None,
                );
            }
            // A host *row* command (ACT/PRE/PREA/REF) changed its target
            // rank's bank state: the rank's NDA plan may have changed
            // shape and become ready *earlier*, so its cached wake-up
            // must be re-derived. Column commands only push timing
            // registers forward — they can delay the NDA but never make
            // it ready sooner, so the (conservative) hint stays sound.
            if !matches!(iss.cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                if let Some(local) = self.local_of_rank[iss.cmd.rank] {
                    self.ndas[local].invalidate_hint();
                }
            }
            if let Issued {
                data,
                completed: Some(tx),
                ..
            } = iss
            {
                match tx.meta {
                    TxMeta::CoreRead { core, req } => {
                        // Packetized responses pay the return-path
                        // serialization latency too.
                        let ready = data.end.expect("read") + self.params.packetized_latency;
                        self.fills_out.push((ready, core, req));
                    }
                    TxMeta::Launch { launch } => {
                        self.launch_events
                            .push(Reverse((data.end.expect("write"), launch)));
                    }
                    TxMeta::CoreWrite => {}
                }
            }
        }
    }

    fn nda_cycle(&mut self, now: Cycle) {
        // The write-throttle decision is passed lazily so policy coins
        // are drawn only for actual write attempts — which also makes
        // idle and timing-blocked cycles RNG-free, a precondition for
        // skipping them in fast-forward mode.
        let Self {
            channel_idx,
            ndas,
            nda_poke,
            shadows,
            mc,
            channel,
            policy_rng,
            fault,
            params,
            completions_out,
            completion_tags,
            completion_log,
            global_idx,
            ..
        } = self;
        for i in 0..ndas.len() {
            // In fast-forward mode, offer the controller a cycle only
            // when it could act: skip idle FSMs (until a launch pokes
            // them) and timing-blocked ones inside their cached wake-up
            // window. Both skips are exact — the controller would
            // evaluate to the same state without side effects. The naive
            // loop evaluates every controller every cycle, preserving
            // the reference behavior the lockstep tests compare against.
            if params.fast_forward && !nda_poke[i] {
                match ndas[i].desired_access() {
                    None => continue,
                    Some(_) => {
                        if let Some(h) = ndas[i].ready_hint() {
                            if now < h {
                                continue;
                            }
                        }
                    }
                }
            }
            let poked = nda_poke[i];
            nda_poke[i] = false;
            let rank = ndas[i].rank();
            let oldest = mc.oldest_read_rank();
            let policy = params.policy;
            let rng = &mut *policy_rng;
            let result = ndas[i].tick(channel, now, || policy.allow_write(oldest, rank, rng));
            if fault.active {
                if let NdaTickResult::Issued(cmd) = result {
                    if cmd.kind == CommandKind::Rd {
                        // NDA column read: an uncorrectable bit-flip
                        // poisons this NDA's next retirement.
                        fault.col_read(&params.faults, *channel_idx, &mut channel.stats, Some(i));
                    }
                }
            }
            if let NdaTickResult::Issued(cmd) = result {
                // An NDA *row* command changed bank state under the host
                // scheduler: a queued transaction's plan may now be
                // ready earlier than the cached wake-up assumed. NDA
                // column commands only move timing registers forward
                // (pure delay), so the host hint stays sound.
                if !matches!(cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                    mc.invalidate_wake_hint();
                }
            }
            // Mirror onto the host-side shadow FSM. The controller
            // re-derives its desired access (normalizing FSM state)
            // exactly on launch-poke cycles and after column grants; the
            // shadow performs the same `next_access` calls at the same
            // points — anything more frequent is redundant, anything
            // less would let the fingerprints drift.
            if poked {
                let _ = shadows[i].next_access();
            }
            if let NdaTickResult::Issued(cmd) = result {
                if matches!(cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                    let acc = shadows[i]
                        .next_access()
                        .expect("shadow must want an access too");
                    debug_assert_eq!(
                        (acc.write, acc.row, acc.col),
                        (cmd.kind == CommandKind::Wr, cmd.row, cmd.col),
                        "shadow diverged from NDA controller"
                    );
                    shadows[i].commit(acc);
                    let _ = shadows[i].next_access();
                }
            }
            // Completions (both sides pop identically). The host learns
            // of each one `completion_latency` cycles later — the
            // status-poll pipeline that also bounds the parallel
            // executor's lookahead window.
            while let Some(id) = ndas[i].fsm_mut().pop_completed() {
                let sid = shadows[i].pop_completed();
                debug_assert_eq!(sid, Some(id));
                if params.record_events {
                    completion_log.push((now, id));
                }
                // Retirement is out of launch order (buffered-write
                // drain), so scan the NDA's small tag bucket.
                let tags = &mut completion_tags[i];
                let at = tags
                    .iter()
                    .position(|&(tid, _)| tid == id)
                    .expect("tagged instruction");
                let (_, tag) = tags.swap_remove(at);
                let mut deliver = now + params.completion_latency;
                let mut status = COMPLETION_OK;
                if fault.active
                    && !fault.retire(&params.faults, *channel_idx, i, &mut deliver, &mut status)
                {
                    continue; // completion message dropped in transit
                }
                completions_out.push((deliver, id, global_idx[i], tag, status));
            }
        }
    }

    /// Earliest cycle at or after `self.now` (the first unexecuted
    /// cycle) at which any component of this shard could act, assuming
    /// no other agent touches it first. Conservative answers only waste
    /// a wake-up; no component may act strictly before its horizon.
    /// Also refreshes the [`quiet_until`](Self::quiet_until) cache.
    pub(crate) fn horizon(&mut self) -> Cycle {
        let h = self.horizon_inner();
        self.quiet_until = h;
        h
    }

    fn horizon_inner(&mut self) -> Cycle {
        let now = self.now;
        if self.nda_poke.iter().any(|&p| p) {
            return now;
        }
        let mut h = Cycle::MAX;
        // A pending rank death is a shard event: folding its cycle here
        // (and never skipping past it) is what guarantees every engine
        // variant executes the death tick at exactly the planned cycle.
        if self.fault.active && !self.fault.death_processed && self.fault.death_local.is_some() {
            let d = self.params.faults.rank_death_cycle;
            if d <= now {
                return now;
            }
            h = d;
        }
        if let Some(&Reverse((t, _))) = self.launch_events.peek() {
            h = h.min(t);
        }
        if let Some(&(t, _)) = self.inbox.front() {
            h = h.min(t);
        }
        if h <= now {
            return now;
        }
        h = h.min(self.mc.next_event_cycle(&self.channel, now));
        if h <= now {
            return now;
        }
        for nda in &self.ndas {
            let Some(acc) = nda.desired_access() else {
                continue;
            };
            // A valid timing hint covers writes too: the controller
            // short-circuits before any policy evaluation until then.
            if let Some(hint) = nda.ready_hint() {
                if hint > now {
                    h = h.min(hint);
                    continue;
                }
            }
            if acc.write {
                let oldest = self.mc.oldest_read_rank();
                match self
                    .params
                    .policy
                    .deterministic_decision(oldest, nda.rank())
                {
                    // Stochastic policies flip a coin per attempt: every
                    // cycle with a pending write must execute.
                    None => return now,
                    // Deterministically throttled: the decision can only
                    // change when the read queue does, which is an event.
                    Some(false) => continue,
                    Some(true) => {}
                }
            }
            h = h.min(nda.next_event_cycle(&self.channel, now));
            if h <= now {
                return now;
            }
        }
        h.max(now)
    }

    /// Leap from `self.now` to `target`, applying exactly the state
    /// changes the naive loop would have made over the provably idle
    /// stretch: deterministically throttled NDA writes accumulate their
    /// per-cycle stall counts, and the periodic FSM spot-check keeps its
    /// coverage. DRAM timing registers and the idle histograms are
    /// absolute-time state and need no per-cycle work.
    pub(crate) fn skip_to(&mut self, target: Cycle) {
        debug_assert!(target > self.now);
        self.cycles_skipped += target - self.now;
        for i in 0..self.ndas.len() {
            let Some(acc) = self.ndas[i].desired_access() else {
                continue;
            };
            if acc.write {
                let oldest = self.mc.oldest_read_rank();
                let decision = self
                    .params
                    .policy
                    .deterministic_decision(oldest, self.ndas[i].rank());
                if decision == Some(false) {
                    // The naive loop evaluates (and counts) the
                    // throttled attempt each cycle timing allows the
                    // write. The cached `ready_hint` is only a lower
                    // bound, so recompute the exact ready time.
                    let from = self.ndas[i].next_event_cycle(&self.channel, self.now);
                    self.ndas[i].write_throttle_stalls += target.saturating_sub(from);
                }
            }
        }
        if self.params.verify_fsm && self.now.next_multiple_of(1024) < target {
            assert!(
                self.fsm_in_sync(),
                "replicated FSMs diverged in [{}, {}) (channel {})",
                self.now,
                target,
                self.channel_idx
            );
        }
        self.now = target;
    }

    /// In fast-forward mode, leap to the shard's next event horizon
    /// (never past `limit`), with the same busy-streak backoff the
    /// monolithic engine used: executing a skippable cycle is always
    /// sound; only skipping a cycle with work would not be.
    fn maybe_skip(&mut self, limit: Cycle) {
        if !self.params.fast_forward || self.now >= limit {
            return;
        }
        if self.ff_backoff > 0 {
            self.ff_backoff -= 1;
            return;
        }
        let h = self.horizon().min(limit);
        if h > self.now {
            self.skip_to(h);
            self.ff_streak = 0;
        } else {
            self.ff_streak = (self.ff_streak + 1).min(6);
            self.ff_backoff = (1u32 << self.ff_streak) >> 1;
        }
    }

    // ---- snapshot codec -------------------------------------------------

    /// Serialize all mutable shard state (snapshot support). Structural
    /// fields derived from the configuration (`local_of_rank`,
    /// `global_idx`, `params`) and the trace logs are not stored; the
    /// fast-forward backoffs and the launch slab's `base` anchor *are*,
    /// verbatim, so a resumed shard replays the exact tick/skip sequence.
    #[cold]
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.channel_idx as u64);
        self.channel.encode_state(w);
        self.mc.encode_state(w);
        w.varint(self.ndas.len() as u64);
        for nda in &self.ndas {
            nda.encode_state(w);
        }
        for shadow in &self.shadows {
            shadow.encode_state(w);
        }
        for &p in &self.nda_poke {
            w.bool(p);
        }
        w.varint(self.launches.base);
        w.varint(self.launches.slots.len() as u64);
        for slot in &self.launches.slots {
            match slot {
                None => w.bool(false),
                Some(lf) => {
                    w.bool(true);
                    encode_instr(&lf.instr, w);
                    w.varint(lf.nda_local as u64);
                    w.varint(u64::from(lf.writes_remaining));
                    encode_handle(lf.tag, w);
                }
            }
        }
        for tags in &self.completion_tags {
            w.varint(tags.len() as u64);
            for &(id, tag) in tags {
                w.varint(id);
                encode_handle(tag, w);
            }
        }
        let mut events: Vec<(Cycle, u64)> =
            self.launch_events.iter().map(|&Reverse(e)| e).collect();
        events.sort_unstable();
        w.varint(events.len() as u64);
        for (t, id) in events {
            w.varint(t);
            w.varint(id);
        }
        w.varint(self.inbox.high_water() as u64);
        w.varint(self.inbox.len() as u64);
        for (t, item) in self.inbox.live() {
            w.varint(*t);
            item.encode(w);
        }
        w.varint(self.fills_out.len() as u64);
        for &(t, core, req) in &self.fills_out {
            w.varint(t);
            w.varint(core as u64);
            w.varint(req);
        }
        w.varint(self.completions_out.len() as u64);
        for &(t, id, gidx, tag, status) in &self.completions_out {
            w.varint(t);
            w.varint(id);
            w.varint(gidx as u64);
            encode_handle(tag, w);
            w.u8(status);
        }
        for s in self.policy_rng.state() {
            w.u64(s);
        }
        w.varint(self.now);
        w.varint(self.quiet_until);
        w.varint(self.ticks_executed);
        w.varint(self.cycles_skipped);
        w.varint(u64::from(self.ff_streak));
        w.varint(u64::from(self.ff_backoff));
        w.varint(u64::from(self.hint_backoff));
        w.varint(u64::from(self.hint_penalty));
        // v2: fault-plane state (counters are stream keys — restoring
        // them verbatim is what keeps resume-under-faults bit-identical).
        w.varint(self.fault.col_reads);
        w.varint(self.fault.instrs_retired);
        w.varint(self.fault.completions_sent);
        w.varint(self.fault.transient_faults);
        w.varint(self.fault.fsm_hangs);
        w.varint(self.fault.completions_dropped);
        w.varint(self.fault.completions_delayed);
        w.varint(self.fault.rank_deaths);
        for &p in &self.fault.poisoned {
            w.bool(p);
        }
        for &d in &self.fault.dead {
            w.bool(d);
        }
        w.bool(self.fault.death_processed);
    }

    /// Overwrite this (freshly constructed) shard from bytes written by
    /// [`encode_state`](Self::encode_state).
    #[cold]
    pub(crate) fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.varint_usize()? != self.channel_idx {
            return Err(CodecError::ConfigMismatch);
        }
        self.channel.decode_state(r)?;
        self.mc.decode_state(r)?;
        let n = self.ndas.len();
        if r.varint_usize()? != n {
            return Err(CodecError::ConfigMismatch);
        }
        for nda in self.ndas.iter_mut() {
            nda.decode_state(r)?;
        }
        for shadow in self.shadows.iter_mut() {
            shadow.decode_state(r)?;
        }
        for p in self.nda_poke.iter_mut() {
            *p = r.bool()?;
        }
        let base = r.varint()?;
        let n_slots = r.varint_usize()?;
        let mut slots = VecDeque::with_capacity(n_slots.min(r.remaining()));
        for _ in 0..n_slots {
            slots.push_back(if r.bool()? {
                let instr = decode_instr(r)?;
                let nda_local = r.varint_usize()?;
                if nda_local >= n {
                    return Err(CodecError::Corrupt("launch NDA index out of range"));
                }
                Some(LaunchInFlight {
                    instr,
                    nda_local,
                    writes_remaining: r.varint_u32()?,
                    tag: decode_handle(r)?,
                })
            } else {
                None
            });
        }
        self.launches = LaunchSlab { base, slots };
        for tags in self.completion_tags.iter_mut() {
            tags.clear();
            let k = r.varint_usize()?;
            tags.reserve(k.min(r.remaining()));
            for _ in 0..k {
                tags.push((r.varint()?, decode_handle(r)?));
            }
        }
        self.launch_events.clear();
        let k = r.varint_usize()?;
        for _ in 0..k {
            let t = r.varint()?;
            let id = r.varint()?;
            self.launch_events.push(Reverse((t, id)));
        }
        let high_water = r.varint_usize()?;
        let k = r.varint_usize()?;
        let mut items = Vec::with_capacity(k.min(r.remaining()));
        for _ in 0..k {
            let t = r.varint()?;
            items.push((t, ShardInbound::decode(r, n)?));
        }
        self.inbox = FlatFifo::restore(items, high_water);
        let k = r.varint_usize()?;
        self.fills_out.clear();
        self.fills_out.reserve(k.min(r.remaining()));
        for _ in 0..k {
            self.fills_out
                .push((r.varint()?, r.varint_usize()?, r.varint()?));
        }
        let k = r.varint_usize()?;
        self.completions_out.clear();
        self.completions_out.reserve(k.min(r.remaining()));
        for _ in 0..k {
            let entry = (
                r.varint()?,
                r.varint()?,
                r.varint_usize()?,
                decode_handle(r)?,
                r.u8()?,
            );
            if entry.4 > COMPLETION_RANK_DEAD {
                return Err(CodecError::Corrupt("completion status"));
            }
            self.completions_out.push(entry);
        }
        let mut rng_state = [0u64; 4];
        for s in rng_state.iter_mut() {
            *s = r.u64()?;
        }
        self.policy_rng = StdRng::from_state(rng_state);
        self.now = r.varint()?;
        self.quiet_until = r.varint()?;
        self.ticks_executed = r.varint()?;
        self.cycles_skipped = r.varint()?;
        self.ff_streak = r.varint_u32()?;
        self.ff_backoff = r.varint_u32()?;
        self.hint_backoff = r.varint_u32()?;
        self.hint_penalty = r.varint_u32()?;
        self.fault.col_reads = r.varint()?;
        self.fault.instrs_retired = r.varint()?;
        self.fault.completions_sent = r.varint()?;
        self.fault.transient_faults = r.varint()?;
        self.fault.fsm_hangs = r.varint()?;
        self.fault.completions_dropped = r.varint()?;
        self.fault.completions_delayed = r.varint()?;
        self.fault.rank_deaths = r.varint()?;
        for p in self.fault.poisoned.iter_mut() {
            *p = r.bool()?;
        }
        for d in self.fault.dead.iter_mut() {
            *d = r.bool()?;
        }
        self.fault.death_processed = r.bool()?;
        Ok(())
    }

    /// Fold this shard's injected-fault counters into `fr` (report
    /// support; ECC counts flow through the channel's `DramStats`).
    #[cold]
    pub(crate) fn add_fault_counts(&self, fr: &mut crate::report::FaultReport) {
        fr.transient_faults += self.fault.transient_faults;
        fr.fsm_hangs += self.fault.fsm_hangs;
        fr.completions_dropped += self.fault.completions_dropped;
        fr.completions_delayed += self.fault.completions_delayed;
        fr.rank_deaths += self.fault.rank_deaths;
    }
}
