//! The integrated Chopim system: multi-core host + FR-FCFS controllers on
//! one side of the channels, per-rank NDA controllers with host-side
//! shadow FSMs on the other, sharing the same DRAM devices cycle by cycle.
//!
//! Arbitration follows the paper (§III-B, §III-D):
//!
//! * host commands always take priority — NDA controllers only use cycles
//!   (and ranks) the host leaves free, enforced by the device model;
//! * NDA writes are gated by the configured [`WriteIssuePolicy`];
//! * every NDA launch travels over the channel as control-register write
//!   transactions issued by the host controller (the Fig.-10 launch cost);
//! * a shadow copy of every rank's NDA FSM lives host-side and is stepped
//!   from observable events only; [`ChopimSystem::fsm_in_sync`] asserts
//!   bit-equality, demonstrating the replicated-FSM mechanism.
//!
//! ## Channel-sharded engine
//!
//! The machine is split along its natural hardware boundary into a
//! **front-end** (the OoO cores, the runtime, launch staging, the
//! CPU-clock divider, and shared-LLC accounting) and one
//! `ChannelShard` per memory channel (the channel's device state, host
//! MC, per-rank NDA controllers + shadow FSMs, launch records, and
//! fast-forward state). All cross-boundary traffic is typed,
//! cycle-stamped messages over bounded queues:
//!
//! * **ingress** (front-end → shard): core memory transactions and
//!   launch control-writes, delivered `ingress_latency` (+
//!   `packetized_latency`) cycles after they are produced;
//! * **fills** (shard → front-end): read completions, delivered when the
//!   data burst ends (≥ tCL + burst cycles after issue);
//! * **completions** (shard → front-end): NDA instruction completions,
//!   delivered `completion_latency` cycles after the FSM retires them
//!   (the host's status-poll pipeline).
//!
//! Because every shard→front-end path has a minimum delivery latency,
//! the exchange happens on a fixed **barrier grid** of
//! `W = min(tCL + burst, completion_latency)` cycles: the front-end runs
//! a window first (its outbound messages can even be consumed the same
//! cycle, since shards run after it), then every shard runs the same
//! window independently — serially or on a worker pool
//! ([`ChopimConfig::sim_threads`]) — and the queues are exchanged at the
//! barrier. On top of the grid each shard computes a **per-shard
//! lookahead horizon** from its actual state (MC queues and wake hints,
//! NDA FSM readiness, refresh timers, pending launch deliveries,
//! undelivered inbox messages): a shard whose cached horizon clears the
//! next barrier — and whose inbox holds nothing due before it — skips
//! that barrier entirely, so a quiet channel costs one comparison per
//! window instead of a tick-and-exchange.
//! [`ChopimConfig::fixed_window`] (env `CHOPIM_FIXED_WINDOW=1`) disables
//! the skipping; that pure fixed-window schedule is the lockstep oracle
//! the ablation test compares computed horizons against. Shards never
//! observe each other mid-window and each carries
//! its own policy RNG, so the schedule is **deterministic by
//! construction**: any thread count produces bit-identical
//! [`SimReport`]s (enforced by `crates/exp/tests/shard_lockstep.rs`;
//! `crates/core/tests/horizon_props.rs` property-checks horizon
//! conservatism against the messages shards actually emit).
//! When every component is idle at a barrier, the engine additionally
//! leaps the whole machine to the global event horizon, preserving the
//! fast-forward throughput on idle-heavy scenarios.
//!
//! The exchange itself is allocation-free in steady state (pinned by
//! `crates/core/tests/alloc_steady_state.rs`): ingress rides
//! double-buffered flat arenas that swap instead of copying, and
//! shard→front-end fills/completions arrive as per-shard runs merged in
//! one sort pass (`MergeQueue` in the `exchange` module).

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use chopim_dram::codec::{fnv1a, read_framed, write_framed, ByteReader, ByteWriter, CodecError};
use chopim_dram::perfcount::{self, Counter};
use chopim_dram::trace::{encode_trace, TraceEvent};
use chopim_dram::{Channel, Cycle, DramConfig, DramStats, FaultPlan};
use chopim_host::{CoreConfig, MixId, OooCore, OooCoreState};
use chopim_mapping::color::{ColoredAllocator, Region};
use chopim_mapping::{presets, AddressMapper, PartitionedMapping};
use chopim_nda::snapshot::{decode_instr, encode_instr};

use crate::energy::{self, EnergyParams};
use crate::exchange::{MergeQueue, ShardInbound, COMPLETION_OK, COMPLETION_RANK_DEAD};
use crate::par::ShardPool;
use crate::policy::WriteIssuePolicy;
use crate::report::{FaultReport, SimReport};
use crate::runtime::{decode_handle, encode_handle, OpHandle, PendingLaunch, Runtime, Session};
use crate::sched::{HostTransaction, PagePolicy, SchedulerKind, TxMeta};
use crate::shard::{ChannelShard, ShardParams};

/// What [`ChopimSystem::drive`] waits for.
///
/// The four shapes cover every drive pattern the old bespoke entry
/// points (`run_until_op`, `run_until_quiescent`, per-client poll loops)
/// hand-rolled: one handle, an all-of set, one session draining, or the
/// whole machine draining.
#[derive(Debug, Clone)]
pub enum Waitable {
    /// One op has retired.
    Op(OpHandle),
    /// Every op in the set has retired.
    AllOf(Vec<OpHandle>),
    /// Every op submitted to the session has retired
    /// (session-quiescent).
    SessionIdle(Session),
    /// Every op of every session has retired (machine-quiescent). Note
    /// that active [streams](ChopimSystem::spawn_stream) relaunch on
    /// completion, so a machine with a live stream never quiesces.
    Quiescent,
}

impl Waitable {
    /// Wait for every handle in `ops`.
    pub fn all_of(ops: impl IntoIterator<Item = OpHandle>) -> Self {
        Waitable::AllOf(ops.into_iter().collect())
    }

    fn satisfied(&self, rt: &Runtime) -> bool {
        match self {
            Waitable::Op(h) => rt.op_done(*h),
            Waitable::AllOf(hs) => hs.iter().all(|&h| rt.op_done(h)),
            Waitable::SessionIdle(s) => rt.session_idle(*s),
            Waitable::Quiescent => rt.quiescent(),
        }
    }
}

impl From<OpHandle> for Waitable {
    fn from(h: OpHandle) -> Self {
        Waitable::Op(h)
    }
}

impl From<Vec<OpHandle>> for Waitable {
    fn from(hs: Vec<OpHandle>) -> Self {
        Waitable::AllOf(hs)
    }
}

impl From<Session> for Waitable {
    fn from(s: Session) -> Self {
        Waitable::SessionIdle(s)
    }
}

/// Handle to a resident op stream (see [`ChopimSystem::spawn_stream`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

/// A stream's op generator: submits the next op of a resident workload.
type StreamGen = Box<dyn FnMut(&mut Runtime, Session) -> OpHandle + Send>;

/// A resident relaunching workload: whenever its current op retires, the
/// generator submits the next one — the paper's §VI methodology of
/// keeping the NDA side busy for a whole measurement window, now
/// per-session so independent tenants can stream concurrently.
struct StreamState {
    sess: Session,
    cur: OpHandle,
    make: StreamGen,
    completions: u64,
    active: bool,
}

/// CPU cycles per DRAM cycle, as a rational (4 GHz / 1.2 GHz = 10/3).
const CPU_CLOCK_NUM: u32 = 10;
const CPU_CLOCK_DEN: u32 = 3;

/// Shared LLC miss-status registers (Table II: 48).
const LLC_MSHRS: usize = 48;

/// Per-channel ingress queue capacity (transactions in flight between
/// the front-end and a shard's MC).
const INGRESS_CAP: usize = 64;

/// `CHOPIM_SIM_THREADS`, defaulting to 1 (serial shard execution).
fn sim_threads_from_env() -> usize {
    std::env::var("CHOPIM_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// `CHOPIM_FIXED_WINDOW=1` forces the pre-horizon fixed-window barrier
/// schedule (the lockstep oracle); anything else keeps computed horizons.
fn fixed_window_from_env() -> bool {
    std::env::var("CHOPIM_FIXED_WINDOW").is_ok_and(|v| v == "1")
}

/// `CHOPIM_TRACE=<path>` enables event-trace capture and names the file
/// [`ChopimSystem::write_trace`] emits (see `docs/TRACE_FORMAT.md`).
#[cold]
fn trace_path_from_env() -> Option<PathBuf> {
    std::env::var_os("CHOPIM_TRACE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Top-level configuration.
#[derive(Debug, Clone)]
pub struct ChopimConfig {
    /// Memory geometry/timing (Table II defaults).
    pub dram: DramConfig,
    /// Banks per rank reserved for the shared/NDA region (paper: 1;
    /// 0 = fully shared banks).
    pub reserved_banks: usize,
    /// NDA write-issue policy.
    pub policy: WriteIssuePolicy,
    /// Host application mix (None = no host traffic).
    pub mix: Option<MixId>,
    /// Explicit per-core profiles, overriding `mix` (used by the ML time
    /// model to run an SVRG-shaped host alongside the NDAs).
    pub custom_profiles: Option<Vec<chopim_host::WorkloadProfile>>,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// RNG seed (cores, policy coins).
    pub seed: u64,
    /// Control-register write transactions per NDA instruction launch.
    pub launch_writes_per_instr: u32,
    /// Per-rank NDA instruction queue depth.
    pub nda_queue_cap: usize,
    /// Rank-partitioning baseline (Fig. 14): dedicate the upper half of
    /// each channel's ranks to NDAs and hide them from the host mapping.
    pub rank_partition: bool,
    /// Assert shadow-FSM equality while running (cheap; on by default).
    pub verify_fsm: bool,
    /// Ablation: NDA operands walked in physical-address order instead of
    /// Chopim's contiguous-column layout (see `Runtime::pa_order_walk`).
    pub nda_pa_order_walk: bool,
    /// Host transaction scheduling discipline (ablation).
    pub scheduler: SchedulerKind,
    /// Host row-buffer policy (ablation).
    pub page_policy: PagePolicy,
    /// Packetized memory interface (HMC-like): host requests pay an extra
    /// per-direction serialization latency of this many DRAM cycles, but
    /// the memory-side controller owns all scheduling so no replicated
    /// FSMs or host-side signaling are needed (paper §III intro, §VIII:
    /// packetized DRAM suffers 2-4x idle latency). `0` = traditional DDR.
    pub packetized_latency: u32,
    /// Event-horizon fast-forwarding: when a component is provably idle,
    /// leap its clock to the earliest cycle anything can happen instead
    /// of ticking through the gap — per shard within lookahead windows,
    /// and machine-wide at window barriers. Produces bit-identical
    /// [`SimReport`]s to the naive cycle-by-cycle loop (enforced by the
    /// `ff_lockstep` equivalence tests); disable to run the naive loop.
    pub fast_forward: bool,
    /// Front-end → memory-controller ingress pipeline depth in DRAM
    /// cycles (the on-chip interconnect between the LLC and the MCs).
    /// `0` = same-cycle delivery, the pre-sharding behavior.
    pub ingress_latency: u32,
    /// NDA completion → host-visible delivery latency in DRAM cycles
    /// (the host polls rank status registers; completion is not
    /// observable instantaneously). Also the shard → front-end lookahead
    /// floor: together with the read-fill latency it bounds the parallel
    /// executor's window. Must be ≥ 1.
    pub completion_latency: u32,
    /// Worker threads for shard execution. `1` (the default) runs every
    /// shard inline on the calling thread; `N > 1` ticks shards on a
    /// pool of `min(N, channels)` workers. Any value produces
    /// bit-identical [`SimReport`]s — the engine's schedule does not
    /// depend on the thread count. Defaults to `CHOPIM_SIM_THREADS`.
    pub sim_threads: usize,
    /// Disable per-shard computed horizons and execute every shard
    /// through every lookahead window (the pre-horizon engine). With
    /// computed horizons (the default), a shard whose cached event
    /// horizon and pending ingress both lie at or beyond the window
    /// barrier leaps the window without being dispatched at all. Both
    /// modes produce bit-identical [`SimReport`]s (the leap is the same
    /// provably-idle skip the in-window fast-forward performs), so this
    /// is the lockstep oracle, not a behavior switch; it only matters
    /// when `fast_forward` is on. Defaults to `CHOPIM_FIXED_WINDOW=1`.
    pub fixed_window: bool,
    /// When set, the machine records its event trace (DRAM commands,
    /// NDA launches, completions) from construction and encodes it to
    /// this file in the `docs/TRACE_FORMAT.md` binary format on the
    /// first [`ChopimSystem::report`] (or an explicit
    /// [`ChopimSystem::write_trace`]). Defaults to
    /// `CHOPIM_TRACE=<path>` (unset = no capture). Like the engine-mode
    /// knobs, this never affects simulated behavior.
    pub trace_path: Option<PathBuf>,
    /// Deterministic fault-injection plan (`docs/FAULTS.md`). The
    /// default, [`FaultPlan::NONE`], injects nothing and keeps every
    /// hot path byte-identical to the pre-fault-plane engine; a
    /// non-empty plan also activates the runtime's recovery layer
    /// (retries, in-flight timeouts, quarantine). Defaults to
    /// `CHOPIM_FAULTS=<spec>` (unset = empty).
    pub faults: FaultPlan,
    /// Instruction retries per op before it concludes `Failed` (or
    /// falls back to the host). Only read while `faults` is non-empty.
    pub retry_limit: u32,
    /// Base retry backoff in DRAM cycles; doubles per retry of the op.
    pub retry_backoff: u64,
    /// Upper bound on the exponential retry backoff, in DRAM cycles.
    pub retry_backoff_cap: u64,
    /// In-flight launch timeout in DRAM cycles: a launch whose
    /// completion has not arrived this long after egress is treated as
    /// lost (credit reclaimed, retry scheduled). `0` picks an
    /// automatic value comfortably above the longest injected delay.
    /// Only read while `faults` is non-empty.
    pub instr_timeout: u64,
}

impl Default for ChopimConfig {
    fn default() -> Self {
        Self {
            dram: DramConfig::table_ii(),
            reserved_banks: 1,
            policy: WriteIssuePolicy::NextRankPredict,
            mix: None,
            custom_profiles: None,
            core: CoreConfig::default(),
            seed: 1,
            launch_writes_per_instr: 2,
            nda_queue_cap: 16,
            rank_partition: false,
            verify_fsm: true,
            nda_pa_order_walk: false,
            scheduler: SchedulerKind::default(),
            page_policy: PagePolicy::default(),
            packetized_latency: 0,
            fast_forward: true,
            ingress_latency: 0,
            // Matches the read-fill floor (tCL + burst = 20 for Table
            // II timing), so it costs no lookahead.
            completion_latency: 20,
            sim_threads: sim_threads_from_env(),
            fixed_window: fixed_window_from_env(),
            trace_path: trace_path_from_env(),
            faults: FaultPlan::from_env(),
            retry_limit: 3,
            retry_backoff: 64,
            retry_backoff_cap: 4096,
            instr_timeout: 0,
        }
    }
}

impl ChopimConfig {
    /// The conservative-lookahead window: shards and the front-end may
    /// run this many cycles independently because no shard→front-end
    /// message can be delivered sooner after it is produced (read fills
    /// take ≥ tCL + burst cycles; completions take `completion_latency`).
    fn lookahead(&self) -> Cycle {
        let fill = Cycle::from(self.dram.timing.cl) + Cycle::from(self.dram.timing.bl);
        fill.min(Cycle::from(self.completion_latency.max(1))).max(1)
    }

    /// The in-flight launch timeout actually applied: the configured
    /// value, or (when 0) an automatic bound comfortably above the
    /// longest injected completion delay plus the delivery latency.
    fn effective_instr_timeout(&self) -> Cycle {
        if self.instr_timeout > 0 {
            return self.instr_timeout;
        }
        50_000
            .max(self.faults.completion_delay_cycles.saturating_mul(4))
            .max(self.faults.nda_hang_cycles.saturating_mul(4))
    }
}

/// One launch the front-end egressed and has not yet seen conclude
/// (fault recovery only): the completion resolves through this record —
/// retried launches carry fresh instruction ids, so the record, not id
/// arithmetic, recovers the op chunk — and if no completion arrives by
/// `deadline` the launch is declared lost and retried.
struct InflightRec {
    deadline: Cycle,
    id: u64,
    launch: PendingLaunch,
}

/// The complete simulated machine.
pub struct ChopimSystem {
    /// The configuration the system was built with.
    pub cfg: ChopimConfig,
    // chopim-lint: allow(snapshot) -- rebuilt from cfg by resume before state decode
    mapper: Arc<PartitionedMapping>,
    cores: Vec<OooCore>,
    // chopim-lint: allow(snapshot) -- re-derived deterministically from cfg during resume reconstruction (same allocator walk, same seed)
    core_regions: Vec<Region>,
    /// One shard per channel; always synced to `self.now` between public
    /// calls.
    shards: Vec<ChannelShard>,
    // chopim-lint: allow(snapshot) -- thread-pool machinery rebuilt from cfg.sim_threads, carries no simulation state
    pool: Option<ShardPool>,
    /// The lookahead window length (cycles between shard barriers).
    // chopim-lint: allow(snapshot) -- derived from cfg.lookahead() at construction
    window: Cycle,
    /// `(channel, rank)` per global NDA index (mirrors
    /// `runtime.nda_ranks()`).
    // chopim-lint: allow(snapshot) -- rank placement derived from cfg; decode validates message indices against it
    nda_local: Vec<(usize, usize)>,
    /// The runtime/API (allocate arrays, launch ops).
    pub runtime: Runtime,
    now: Cycle,
    cpu_accum: u32,
    cpu_cycles: u64,
    llc_outstanding: usize,
    /// Read fills on their way back to the cores: `(at, core, req)`.
    /// Shard runs are absorbed at barriers and sealed into pop order
    /// with one sort (see [`crate::exchange`]).
    fills: MergeQueue<(Cycle, usize, u64)>,
    /// NDA completions on their way to the runtime:
    /// `(at, instr, nda, (session, op), status)`.
    completions: MergeQueue<(Cycle, u64, usize, OpHandle, u8)>,
    /// Resident relaunching workloads, pumped by the drive loop.
    // chopim-lint: allow(snapshot) -- resident stream closures are not serializable; snapshot requires quiescence and resume starts with none
    streams: Vec<StreamState>,
    /// In-flight op → stream index: completion routing for stream
    /// resubmission. The drive loop drains the runtime's finished-op
    /// feed through this map instead of polling every stream every
    /// cycle, so the pump is O(completions), not O(streams).
    // chopim-lint: allow(snapshot) -- completion-routing map for resident streams; empty in a quiescent snapshot
    stream_of: BTreeMap<OpHandle, u32>,
    /// Per-channel outboxes: flat buffers of messages produced this
    /// window, swapped into the shard inboxes at the barrier (the
    /// double-buffered arena — see [`crate::exchange`]).
    egress: Vec<Vec<(Cycle, ShardInbound)>>,
    /// Per-channel ingress occupancy as of the last *grid-aligned*
    /// barrier (the front-end's admission view; shards publish their
    /// drain progress only on the window grid, which keeps admission
    /// independent of how `run` calls are sliced).
    ingress_seen: Vec<usize>,
    /// Messages handed to shard inboxes at off-grid barriers since the
    /// last grid-aligned one — still counted against the ingress
    /// capacity until the next grid refresh folds them into
    /// `ingress_seen`.
    ingress_unseen: Vec<usize>,
    launch_stage: VecDeque<PendingLaunch>,
    /// Fault recovery active (`cfg.faults` non-empty): completions
    /// resolve through `inflight` records and timeouts fire. Cached so
    /// the empty-plan hot path costs one branch.
    // chopim-lint: allow(snapshot) -- derived from cfg.faults at construction
    recovery_active: bool,
    /// Effective in-flight launch timeout (cycles).
    // chopim-lint: allow(snapshot) -- derived from cfg.effective_instr_timeout() at construction
    instr_timeout: Cycle,
    /// In-flight launch records, deadline-ordered (egress order).
    inflight: VecDeque<InflightRec>,
    /// Per-NDA launch credits: queue capacity minus instructions sent
    /// and not yet known complete. A conservative (delayed) view of the
    /// rank FSM's queue space — the shard-side queue can never overflow.
    nda_credit: Vec<usize>,
    next_launch: u64,
    nda_instrs_completed: u64,
    /// Front-end cycles actually executed (diagnostics).
    ticks_executed: u64,
    /// Front-end cycles leapt over (diagnostics).
    cycles_skipped: u64,
    // chopim-lint: allow(snapshot) -- a resumed system is never finalized; decode keeps the constructor false
    finalized: bool,
    /// Whether [`write_trace`](Self::write_trace) already ran (capture
    /// drains on encode, so [`report`](Self::report) must not flush an
    /// empty second file over an explicit write).
    // chopim-lint: allow(snapshot) -- trace-capture bookkeeping, not machine state; resume starts unflushed
    trace_flushed: bool,
}

impl ChopimSystem {
    /// Build the machine.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (these are programmer inputs).
    pub fn new(cfg: ChopimConfig) -> Self {
        cfg.dram.validate().expect("invalid DRAM config");
        assert!(
            !(cfg.rank_partition && cfg.reserved_banks > 0),
            "rank partitioning and bank partitioning are alternative modes"
        );
        assert!(
            cfg.completion_latency >= 1,
            "completion_latency must be >= 1"
        );

        // Host mapping: full geometry in Chopim mode; the lower half of
        // each channel's ranks in rank-partitioning mode.
        let (host_geom, nda_ranks): (DramConfig, Vec<(usize, usize)>) = if cfg.rank_partition {
            let half = (cfg.dram.ranks_per_channel / 2).max(1);
            let geom = cfg.dram.clone().with_ranks(half);
            let ndas = (0..cfg.dram.channels)
                .flat_map(|c| (half..cfg.dram.ranks_per_channel).map(move |r| (c, r)))
                .collect();
            (geom, ndas)
        } else {
            let ndas = (0..cfg.dram.channels)
                .flat_map(|c| (0..cfg.dram.ranks_per_channel).map(move |r| (c, r)))
                .collect();
            (cfg.dram.clone(), ndas)
        };
        let inner = presets::skylake_like(&host_geom);
        let reserved = if cfg.rank_partition {
            0
        } else {
            cfg.reserved_banks
        };
        let mapper = Arc::new(PartitionedMapping::new(&host_geom, inner, reserved));

        // OS allocator: host rows below the shared boundary.
        let host_rows = (host_geom.rows as u64 * (host_geom.banks_per_rank() - reserved) as u64
            / host_geom.banks_per_rank() as u64) as u32;
        let allocator = ColoredAllocator::new(&host_geom, mapper.inner(), host_rows);

        let mut runtime = Runtime::new(
            cfg.dram.clone(),
            mapper.clone(),
            allocator,
            nda_ranks.clone(),
            cfg.rank_partition,
        );
        runtime.pa_order_walk = cfg.nda_pa_order_walk;

        // Host cores and their footprints.
        let mut cores = Vec::new();
        let mut core_regions = Vec::new();
        let profiles = cfg
            .custom_profiles
            .clone()
            .or_else(|| cfg.mix.map(|m| m.profiles()));
        if let Some(profiles) = profiles {
            for (i, profile) in profiles.into_iter().enumerate() {
                let rows = (profile.footprint_bytes / host_geom.system_row_bytes()).max(1);
                let region = runtime.alloc_host_region(rows as usize);
                cores.push(OooCore::new(cfg.core, profile, cfg.seed ^ (i as u64) << 8));
                core_regions.push(region);
            }
        }

        runtime.configure_recovery(
            !cfg.faults.is_empty(),
            cfg.retry_limit,
            cfg.retry_backoff,
            cfg.retry_backoff_cap,
        );

        let params = ShardParams {
            policy: cfg.policy,
            fast_forward: cfg.fast_forward,
            verify_fsm: cfg.verify_fsm,
            packetized_latency: Cycle::from(cfg.packetized_latency),
            completion_latency: Cycle::from(cfg.completion_latency.max(1)),
            record_events: false,
            faults: cfg.faults,
        };
        let shards: Vec<ChannelShard> = (0..cfg.dram.channels)
            .map(|c| {
                ChannelShard::build(
                    c,
                    &cfg.dram,
                    cfg.scheduler,
                    cfg.page_policy,
                    &nda_ranks,
                    cfg.nda_queue_cap,
                    cfg.seed,
                    params,
                )
            })
            .collect();

        let n = nda_ranks.len();
        let nchannels = cfg.dram.channels;
        let pool = if cfg.sim_threads > 1 && nchannels > 1 {
            Some(ShardPool::new(cfg.sim_threads.min(nchannels)))
        } else {
            None
        };
        let window = cfg.lookahead();
        let cfg_queue_cap = cfg.nda_queue_cap;
        let recovery_active = !cfg.faults.is_empty();
        let instr_timeout = cfg.effective_instr_timeout();
        let mut sys = Self {
            cfg,
            mapper,
            cores,
            core_regions,
            shards,
            pool,
            window,
            nda_local: nda_ranks,
            runtime,
            now: 0,
            cpu_accum: 0,
            cpu_cycles: 0,
            llc_outstanding: 0,
            fills: MergeQueue::default(),
            completions: MergeQueue::default(),
            streams: Vec::new(),
            stream_of: BTreeMap::new(),
            egress: (0..nchannels).map(|_| Vec::new()).collect(),
            ingress_seen: vec![0; nchannels],
            ingress_unseen: vec![0; nchannels],
            launch_stage: VecDeque::new(),
            recovery_active,
            instr_timeout,
            inflight: VecDeque::new(),
            nda_credit: vec![cfg_queue_cap; n],
            next_launch: 0,
            nda_instrs_completed: 0,
            ticks_executed: 0,
            cycles_skipped: 0,
            finalized: false,
            trace_flushed: false,
        };
        if sys.cfg.trace_path.is_some() {
            sys.enable_trace_capture();
        }
        sys
    }

    /// Cycles executed one-by-one vs. leapt over, summed over the
    /// front-end and every shard (fast-forward telemetry).
    pub fn tick_stats(&self) -> (u64, u64) {
        let (mut t, mut s) = (self.ticks_executed, self.cycles_skipped);
        for shard in &self.shards {
            let (st, ss) = shard.tick_stats();
            t += st;
            s += ss;
        }
        (t, s)
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The conservative-lookahead window length (cycles between shard
    /// barriers) this machine runs with.
    pub fn lookahead_window(&self) -> Cycle {
        self.window
    }

    /// One channel's device state (stats inspection).
    pub fn channel(&self, ch: usize) -> &Channel {
        &self.shards[ch].channel
    }

    /// Aggregate device statistics across every channel (the monolithic
    /// `DramSystem::stats` view, reassembled over the shards).
    pub fn mem_stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for shard in &self.shards {
            s.add_channel(&shard.channel.stats);
        }
        s
    }

    /// The host address mapper.
    pub fn mapper(&self) -> &PartitionedMapping {
        &self.mapper
    }

    /// Record every DRAM command for offline validation with
    /// [`chopim_dram::TimingChecker`].
    #[cold]
    pub fn enable_mem_trace(&mut self) {
        for shard in &mut self.shards {
            shard.channel.enable_trace();
        }
    }

    /// Take the recorded command trace, merged over channels in cycle
    /// order (ties resolved by channel index; per-channel order is
    /// application order, which is what the timing checker validates).
    #[cold]
    pub fn take_mem_trace(
        &mut self,
    ) -> Vec<(usize, Cycle, chopim_dram::Command, chopim_dram::Issuer)> {
        let mut all: Vec<(usize, Cycle, chopim_dram::Command, chopim_dram::Issuer)> = Vec::new();
        for (c, shard) in self.shards.iter_mut().enumerate() {
            all.extend(
                shard
                    .channel
                    .take_trace()
                    .into_iter()
                    .map(|(at, cmd, who)| (c, at, cmd, who)),
            );
        }
        all.sort_by_key(|&(c, at, _, _)| (at, c));
        all
    }

    /// Aggregate host IPC so far.
    pub fn host_ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Scheduler queue dump for one channel (debugging aid).
    pub fn explain_mc(&self, ch: usize) -> String {
        self.shards[ch]
            .mc
            .explain(&self.shards[ch].channel, self.now)
    }

    /// Test support for the horizon property suite
    /// (`tests/horizon_props.rs`): for every shard, the uncapped event
    /// horizon it currently claims, paired with the earliest outbound
    /// message stamp it actually produces when run `span` cycles forward
    /// in isolation (no further front-end traffic; messages already in
    /// its inbox still deliver). Conservatism demands `claim <= stamp`
    /// for every produced message. Running the shards ahead desyncs
    /// them from the front-end, so callers must discard the system
    /// afterwards.
    #[doc(hidden)]
    pub fn probe_shard_horizon_conservatism(&mut self, span: Cycle) -> Vec<(Cycle, Option<Cycle>)> {
        self.shards
            .iter_mut()
            .map(|sh| {
                let claim = sh.horizon();
                let fills_before = sh.fills_out.len();
                let comps_before = sh.completions_out.len();
                let target = sh.now + span;
                sh.run_to(target);
                let first = sh.fills_out[fills_before..]
                    .iter()
                    .map(|&(t, _, _)| t)
                    .chain(
                        sh.completions_out[comps_before..]
                            .iter()
                            .map(|&(t, _, _, _, _)| t),
                    )
                    .min();
                (claim, first)
            })
            .collect()
    }

    /// One-line internal state summary (debugging aid).
    pub fn debug_state(&self) -> String {
        format!(
            "llc={} fills={} completions={} core_out={:?} rq={:?} wq={:?} stage={} credits={:?}",
            self.llc_outstanding,
            self.fills.len(),
            self.completions.len(),
            self.cores
                .iter()
                .map(|c| c.outstanding_misses())
                .collect::<Vec<_>>(),
            self.shards
                .iter()
                .map(|s| s.mc.read_queue_len())
                .collect::<Vec<_>>(),
            self.shards
                .iter()
                .map(|s| s.mc.write_queue_len())
                .collect::<Vec<_>>(),
            self.launch_stage.len(),
            self.nda_credit,
        )
    }

    /// Free slots in channel `ch`'s ingress queue, as admissible by the
    /// front-end this window: occupancy at the last grid barrier, plus
    /// everything pushed since (whether still in the outbox or already
    /// transferred at an off-grid barrier).
    fn ingress_free(&self, ch: usize) -> usize {
        INGRESS_CAP
            .saturating_sub(self.ingress_seen[ch] + self.ingress_unseen[ch] + self.egress[ch].len())
    }

    /// One front-end cycle at `self.now`: deliver due shard messages,
    /// step the cores, stage launches. The caller advances `self.now`.
    fn fe_tick(&mut self) {
        let now = self.now;
        self.ticks_executed += 1;
        self.runtime.clock = now;

        // 1. NDA completions that became host-visible.
        while let Some(&(t, id, nda, tag, status)) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            if self.recovery_active {
                self.resolve_completion(id, tag, status, now);
            } else {
                debug_assert_eq!(status, COMPLETION_OK);
                self.nda_credit[nda] += 1;
                self.runtime.credit_returned(nda);
                self.nda_instrs_completed += 1;
                let _ = self.runtime.complete_instr(tag, id, now);
            }
        }

        // 1b. In-flight launch timeouts (fault recovery): a launch whose
        // completion is overdue is declared lost — its credit comes back
        // and the runtime schedules a retry. Deadlines are egress-ordered,
        // so only the queue front needs checking.
        if self.recovery_active {
            while self.inflight.front().is_some_and(|rec| rec.deadline <= now) {
                let rec = self.inflight.pop_front().expect("checked");
                self.nda_credit[rec.launch.nda_idx] += 1;
                self.runtime.credit_returned(rec.launch.nda_idx);
                self.runtime.counters.instr_timeouts += 1;
                self.runtime.instr_failed(rec.launch, now, false);
            }
        }
        // Per-op deadlines (free while none are armed; independent of
        // fault injection — `OpBuilder::deadline` works on any machine).
        self.runtime.check_deadlines(now);

        // 2. Read fills due at the cores.
        while let Some(&(t, core, req)) = self.fills.peek() {
            if t > now {
                break;
            }
            self.fills.pop();
            self.cores[core].fill(req);
            self.llc_outstanding -= 1;
        }

        // 3. CPU cycles (4 GHz vs 1.2 GHz bus).
        self.cpu_accum += CPU_CLOCK_NUM;
        while self.cpu_accum >= CPU_CLOCK_DEN {
            self.cpu_accum -= CPU_CLOCK_DEN;
            self.cpu_cycles += 1;
            self.cpu_step(now);
        }

        // 4. Stage at most one NDA instruction launch per cycle. The
        // pre-stage pass first expires retry wake-ups and drains pending
        // job admissions, so ops admitted by a completion this very cycle
        // are stageable in the same arbitration pass.
        self.runtime.pre_stage(now);
        if self.launch_stage.is_empty() {
            let Self {
                runtime,
                nda_credit,
                launch_stage,
                ..
            } = self;
            runtime.next_launches(|i| nda_credit[i], 1, now, launch_stage);
        }
        if self.recovery_active {
            // Staged heads can go stale under recovery: their op may have
            // concluded (timeout/failure), or their target NDA may have
            // been quarantined since staging.
            while self
                .launch_stage
                .front()
                .is_some_and(|h| self.runtime.op_done(h.op))
            {
                self.launch_stage.pop_front();
            }
            if let Some(cur) = self.launch_stage.front().map(|h| h.nda_idx) {
                let red = self.runtime.redirect_live(cur);
                if red != cur {
                    self.launch_stage.front_mut().expect("checked").nda_idx = red;
                }
            }
        }
        if let Some(head) = self.launch_stage.front() {
            let (ch, rank) = self.nda_local[head.nda_idx];
            let k = self.cfg.launch_writes_per_instr.max(1);
            // The launch occupies k write slots plus its payload
            // side-band in the ingress queue.
            #[allow(clippy::collapsible_if)]
            if self.ingress_free(ch) > k as usize {
                let head = self.launch_stage.pop_front().expect("checked");
                if self.recovery_active {
                    self.inflight.push_back(InflightRec {
                        deadline: now + self.instr_timeout,
                        id: head.instr.id,
                        launch: head.clone(),
                    });
                }
                let id = self.next_launch;
                self.next_launch += 1;
                let delay = Cycle::from(self.cfg.ingress_latency)
                    + Cycle::from(self.cfg.packetized_latency);
                let local = self.shards[ch].local_of(rank);
                self.egress[ch].push((
                    now + delay,
                    ShardInbound::Launch {
                        id,
                        nda_local: local,
                        instr: head.instr,
                        writes: k,
                        tag: head.op,
                    },
                ));
                // Control-register writes: a fixed row in the top bank.
                let ctrl_row = (self.cfg.dram.rows - 1) as u32;
                let flat = self.cfg.dram.banks_per_rank() - 1;
                for w in 0..k {
                    let addr = chopim_dram::DramAddress {
                        channel: ch,
                        rank,
                        bankgroup: flat / self.cfg.dram.banks_per_group,
                        bank: flat % self.cfg.dram.banks_per_group,
                        row: ctrl_row,
                        col: (id as u32 * k + w) % self.cfg.dram.lines_per_row() as u32,
                    };
                    self.egress[ch].push((
                        now + delay,
                        ShardInbound::Tx(HostTransaction {
                            addr,
                            is_write: true,
                            meta: TxMeta::Launch { launch: id },
                            arrival: now,
                        }),
                    ));
                }
                self.nda_credit[head.nda_idx] -= 1;
            }
        }
    }

    /// Resolve a delivered completion against the in-flight records
    /// (fault recovery): the record — not instruction-id arithmetic —
    /// recovers the op chunk, because retried launches carry fresh ids.
    /// A completion with no record (its launch already timed out and was
    /// resolved) is an orphan and is dropped; its credit came back at
    /// timeout time.
    #[cold]
    fn resolve_completion(&mut self, id: u64, tag: OpHandle, status: u8, now: Cycle) {
        let Some(pos) = self.inflight.iter().position(|rec| rec.id == id) else {
            return;
        };
        let rec = self.inflight.remove(pos).expect("checked");
        self.nda_credit[rec.launch.nda_idx] += 1;
        self.runtime.credit_returned(rec.launch.nda_idx);
        if status == COMPLETION_OK {
            self.nda_instrs_completed += 1;
            let _ = self.runtime.instr_completed_via(tag, rec.launch.chunk, now);
        } else {
            if status == COMPLETION_RANK_DEAD {
                self.runtime.quarantine(rec.launch.nda_idx);
            }
            self.runtime
                .instr_failed(rec.launch, now, status == COMPLETION_RANK_DEAD);
        }
    }

    fn cpu_step(&mut self, now: Cycle) {
        let Self {
            cores,
            core_regions,
            mapper,
            llc_outstanding,
            egress,
            ingress_seen,
            ingress_unseen,
            cfg,
            ..
        } = self;
        let delay = Cycle::from(cfg.ingress_latency) + Cycle::from(cfg.packetized_latency);
        for (i, core) in cores.iter_mut().enumerate() {
            let region = &core_regions[i];
            let mut sink = |req: chopim_host::MemRequest| -> bool {
                let offset = (req.line * 64) % region.len_bytes();
                let d = mapper.map_pa(region.pa_of(offset));
                let tx = if req.is_write {
                    HostTransaction {
                        addr: d,
                        is_write: true,
                        meta: TxMeta::CoreWrite,
                        arrival: now,
                    }
                } else {
                    if *llc_outstanding >= LLC_MSHRS {
                        return false;
                    }
                    HostTransaction {
                        addr: d,
                        is_write: false,
                        meta: TxMeta::CoreRead {
                            core: i,
                            req: req.id,
                        },
                        arrival: now,
                    }
                };
                // Bounded ingress: the front-end's occupancy view is its
                // own pushes plus the shard's drain progress as of the
                // last grid-aligned barrier.
                let used =
                    ingress_seen[d.channel] + ingress_unseen[d.channel] + egress[d.channel].len();
                if used >= INGRESS_CAP {
                    return false;
                }
                egress[d.channel].push((now + delay, ShardInbound::Tx(tx)));
                if !tx.is_write {
                    *llc_outstanding += 1;
                }
                true
            };
            core.cpu_cycle(&mut sink);
        }
    }

    /// Earliest cycle at or after `self.now` at which the front-end
    /// could act, assuming no new shard messages (those are exchanged at
    /// barriers, which re-compute horizons).
    fn fe_horizon(&self) -> Cycle {
        let now = self.now;
        if self.cores.iter().any(|c| !c.is_inert()) {
            return now;
        }
        if !self.launch_stage.is_empty() {
            return now;
        }
        if self.runtime.has_pending_admissions() {
            return now;
        }
        {
            let credit = &self.nda_credit;
            if self.runtime.launch_ready(|i| credit[i], now) {
                return now;
            }
        }
        let mut h = Cycle::MAX;
        if let Some(&(t, _, _, _, _)) = self.completions.peek() {
            h = h.min(t);
        }
        if let Some(&(t, _, _)) = self.fills.peek() {
            h = h.min(t);
        }
        // Recovery wake sources must be cycle-exact on every engine:
        // in-flight timeouts, retry-hold expiries, and armed deadlines.
        if let Some(rec) = self.inflight.front() {
            h = h.min(rec.deadline);
        }
        if let Some(w) = self.runtime.next_recovery_wake(now) {
            h = h.min(w);
        }
        h.max(now)
    }

    /// Leap the front-end to `target`: the CPU clock divider advances in
    /// closed form and inert cores bulk-advance their counters.
    fn fe_skip_to(&mut self, target: Cycle) {
        debug_assert!(target > self.now);
        let n = target - self.now;
        self.cycles_skipped += n;
        let total = u64::from(self.cpu_accum) + u64::from(CPU_CLOCK_NUM) * n;
        let steps = total / u64::from(CPU_CLOCK_DEN);
        self.cpu_accum = (total % u64::from(CPU_CLOCK_DEN)) as u32;
        self.cpu_cycles += steps;
        for core in &mut self.cores {
            core.advance_inert(steps);
        }
        self.now = target;
        self.runtime.clock = target;
    }

    /// In fast-forward mode, leap the front-end to its horizon within
    /// the current window (never past `limit`).
    fn fe_maybe_skip(&mut self, limit: Cycle) {
        if !self.cfg.fast_forward || self.now >= limit {
            return;
        }
        let h = self.fe_horizon().min(limit);
        if h > self.now {
            self.fe_skip_to(h);
        }
    }

    /// The end of the current lookahead window, clamped to `limit`.
    /// Windows lie on an absolute grid so the schedule (and therefore
    /// the report) is independent of how `run` calls are sliced.
    fn window_end(&self, limit: Cycle) -> Cycle {
        ((self.now / self.window + 1) * self.window).min(limit)
    }

    /// Barrier: hand this window's outbound messages to the shards, run
    /// every shard up to `target` (on the pool when configured), then
    /// collect their outboxes. The ingress occupancy view is refreshed
    /// only at *grid-aligned* barriers: an early-exit barrier (a stop
    /// predicate firing mid-window, or [`tick`](Self::tick)) must not
    /// let the front-end observe shard drain progress sooner than an
    /// unsliced run would, or the schedule — and the report — would
    /// depend on how `run` calls are sliced.
    fn advance_shards(&mut self, target: Cycle) {
        let on_grid = target.is_multiple_of(self.window);
        let use_horizon = self.cfg.fast_forward && !self.cfg.fixed_window;
        perfcount::bump(Counter::Barriers);
        let mut exchanged = 0u64;
        for (ch, q) in self.egress.iter_mut().enumerate() {
            exchanged += q.len() as u64;
            if !on_grid {
                self.ingress_unseen[ch] += q.len();
            }
            // Double-buffer handoff: the shard gets the full buffer, the
            // front-end keeps the shard's drained one for next window.
            self.shards[ch].inbox.absorb(q);
        }
        // Computed horizons: a shard whose cached event horizon and
        // earliest pending ingress stamp both lie at or beyond the
        // barrier provably does nothing this window — leap it to the
        // target (the same exact skip the in-window fast-forward makes)
        // instead of dispatching it.
        let mut active = self.shards.len();
        if use_horizon {
            active = 0;
            for shard in &mut self.shards {
                if shard.quiet_until() >= target
                    && shard.inbox_first_stamp().is_none_or(|t| t >= target)
                {
                    let prev = perfcount::set_scope(1 + shard.channel_idx());
                    perfcount::add(Counter::HorizonLeapCycles, target - shard.now);
                    shard.skip_to(target);
                    perfcount::set_scope(prev);
                } else {
                    active += 1;
                }
            }
        }
        perfcount::add(Counter::WindowsExecuted, active as u64);
        match &self.pool {
            // With at most one shard left to run, pool dispatch is pure
            // overhead; run it inline.
            Some(pool) if active > 1 => pool.run(&mut self.shards, target),
            _ => {
                for shard in &mut self.shards {
                    if shard.now < target {
                        let prev = perfcount::set_scope(1 + shard.channel_idx());
                        shard.run_to(target);
                        perfcount::set_scope(prev);
                    }
                }
            }
        }
        for shard in &mut self.shards {
            exchanged += (shard.fills_out.len() + shard.completions_out.len()) as u64;
            self.fills.absorb_run(&mut shard.fills_out);
            self.completions.absorb_run(&mut shard.completions_out);
            if perfcount::ENABLED {
                let prev = perfcount::set_scope(1 + shard.channel_idx());
                perfcount::hi(Counter::ArenaHighWater, shard.inbox_high_water() as u64);
                perfcount::set_scope(prev);
            }
            if on_grid {
                self.ingress_seen[shard.channel_idx()] = shard.inbox.len();
                self.ingress_unseen[shard.channel_idx()] = 0;
            }
        }
        self.fills.seal();
        self.completions.seal();
        perfcount::add(Counter::MessagesExchanged, exchanged);
    }

    /// At a barrier (shards synced to `self.now`), leap the whole
    /// machine to the global event horizon when everything is provably
    /// idle — the cross-window fast-forward that keeps idle-heavy
    /// scenarios nearly free.
    fn maybe_global_skip(&mut self, limit: Cycle) {
        if !self.cfg.fast_forward || self.now >= limit {
            return;
        }
        let mut h = self.fe_horizon();
        if h <= self.now {
            return;
        }
        for shard in &mut self.shards {
            h = h.min(shard.horizon());
            if h <= self.now {
                return;
            }
        }
        let h = h.min(limit);
        if h > self.now {
            for shard in &mut self.shards {
                shard.skip_to(h);
            }
            self.fe_skip_to(h);
        }
    }

    /// Advance one DRAM cycle (front-end and every shard).
    ///
    /// This is the single-cycle convenience wrapper; it synchronizes the
    /// shards every cycle, so prefer [`run`](Self::run) (which barriers
    /// once per lookahead window) for anything longer than a probe.
    pub fn tick(&mut self) {
        self.fe_tick();
        self.now += 1;
        self.advance_shards(self.now);
    }

    /// Pump streams off the runtime's finished-op feed: a stream whose
    /// current op has retired submits its next op immediately, so
    /// staging resumes on the very next front-end cycle — the same
    /// cadence the old poll-every-stream loop enforced, but costed per
    /// completion event instead of per stream per cycle (the pump is
    /// what keeps thousand-stream scenarios O(active)). An op that
    /// concludes instantly inside its own resubmission re-enters the
    /// feed, so chains drain in one call.
    fn pump_streams(
        streams: &mut [StreamState],
        stream_of: &mut BTreeMap<OpHandle, u32>,
        rt: &mut Runtime,
    ) {
        while let Some(h) = rt.pop_finished() {
            let Some(si) = stream_of.remove(&h) else {
                continue;
            };
            let st = &mut streams[si as usize];
            if !st.active {
                continue;
            }
            st.completions += 1;
            st.cur = (st.make)(rt, st.sess);
            stream_of.insert(st.cur, si);
        }
    }

    /// The engine driver behind every public drive entry point: advance
    /// in lookahead windows until `end`, stopping as soon as `ctrl`
    /// returns `true`. `ctrl` may mutate the runtime (stream pumping and
    /// the deprecated relaunch shim ride on this) and is re-evaluated
    /// around every front-end cycle — a stop-triggering cycle is never
    /// skipped past, so the consumed-cycle count matches the naive loop
    /// — and shards always end synced to `self.now`.
    fn drive_loop(&mut self, end: Cycle, ctrl: &mut dyn FnMut(&mut Runtime) -> bool) {
        'outer: while self.now < end {
            Self::pump_streams(&mut self.streams, &mut self.stream_of, &mut self.runtime);
            if ctrl(&mut self.runtime) {
                break;
            }
            let target = self.window_end(end);
            while self.now < target {
                self.fe_tick();
                self.now += 1;
                Self::pump_streams(&mut self.streams, &mut self.stream_of, &mut self.runtime);
                if ctrl(&mut self.runtime) {
                    self.advance_shards(self.now);
                    break 'outer;
                }
                self.fe_maybe_skip(target);
            }
            self.advance_shards(self.now);
            Self::pump_streams(&mut self.streams, &mut self.stream_of, &mut self.runtime);
            if ctrl(&mut self.runtime) {
                break;
            }
            self.maybe_global_skip(end);
        }
    }

    /// Run for `cycles` DRAM cycles (pumping any active streams).
    pub fn run(&mut self, cycles: Cycle) {
        self.drive_loop(self.now + cycles, &mut |_| false);
    }

    /// Drive the machine until `until` is satisfied (or `max` cycles
    /// elapse). Returns the cycles consumed.
    ///
    /// This is the single drive entry point the old bespoke loops
    /// collapsed into: pass an [`OpHandle`] to wait for one op, a
    /// `Vec<OpHandle>` / [`Waitable::all_of`] for a set, a [`Session`]
    /// for session-quiescence, or [`Waitable::Quiescent`] for the whole
    /// machine.
    pub fn drive(&mut self, until: impl Into<Waitable>, max: Cycle) -> Cycle {
        let until = until.into();
        let start = self.now;
        self.drive_loop(start.saturating_add(max), &mut |rt| until.satisfied(rt));
        debug_assert!(
            !(matches!(until, Waitable::Quiescent) && self.runtime.quiescent())
                || self.launch_stage.is_empty(),
            "quiescent runtime implies an empty launch stage"
        );
        self.now - start
    }

    /// Spawn a resident relaunching workload on `sess`: `make` submits
    /// one op; whenever it retires, `make` is called again — keeping the
    /// tenant's traffic live for a whole measurement window (the §VI
    /// methodology). Streams are pumped by [`run`](Self::run) and
    /// [`drive`](Self::drive); concurrent streams on different sessions
    /// share the machine under the runtime's fair-share arbitration.
    pub fn spawn_stream(
        &mut self,
        sess: Session,
        mut make: impl FnMut(&mut Runtime, Session) -> OpHandle + Send + 'static,
    ) -> StreamId {
        let cur = make(&mut self.runtime, sess);
        self.streams.push(StreamState {
            sess,
            cur,
            make: Box::new(make),
            completions: 0,
            active: true,
        });
        let id = self.streams.len() - 1;
        self.stream_of.insert(cur, id as u32);
        StreamId(id)
    }

    /// Ops the stream has completed so far (the in-flight op counts only
    /// once it retires).
    pub fn stream_completions(&self, id: StreamId) -> u64 {
        self.streams[id.0].completions
    }

    /// Stop relaunching: the stream's in-flight op still runs to
    /// completion, but nothing new is submitted. Returns the completion
    /// count.
    pub fn stop_stream(&mut self, id: StreamId) -> u64 {
        self.streams[id.0].active = false;
        self.stream_of.remove(&self.streams[id.0].cur);
        self.streams[id.0].completions
    }

    /// Run until every launched op has completed (or `max` cycles).
    /// Returns the cycles consumed.
    #[deprecated(note = "use drive(Waitable::Quiescent, max)")]
    pub fn run_until_quiescent(&mut self, max: Cycle) -> Cycle {
        self.drive(Waitable::Quiescent, max)
    }

    /// Run for `cycles`, relaunching the NDA workload whenever it
    /// completes so concurrent access persists for the whole window — the
    /// paper's methodology (§VI). Returns the number of completions.
    #[deprecated(note = "use spawn_stream(sess, make) + run(cycles)")]
    pub fn run_relaunching(
        &mut self,
        cycles: Cycle,
        mut make: impl FnMut(&mut Runtime) -> OpHandle,
    ) -> u64 {
        let end = self.now + cycles;
        let mut op = make(&mut self.runtime);
        let mut completions = 0;
        self.drive_loop(end, &mut |rt| {
            if rt.op_done(op) {
                completions += 1;
                op = make(rt);
            }
            false
        });
        completions
    }

    /// Run until `op` completes (or `max` cycles). Returns cycles
    /// consumed.
    #[deprecated(note = "use drive(op, max)")]
    pub fn run_until_op(&mut self, op: OpHandle, max: Cycle) -> Cycle {
        self.drive(op, max)
    }

    /// True while every host-side shadow FSM matches its rank's FSM.
    pub fn fsm_in_sync(&self) -> bool {
        self.shards.iter().all(|s| s.fsm_in_sync())
    }

    /// NDA instructions completed so far (as observed by the host: a
    /// completion counts when its delivery message arrives).
    pub fn nda_instrs_completed(&self) -> u64 {
        self.nda_instrs_completed
    }

    /// Build the metrics report for the window `[0, now)`.
    ///
    /// The first call also flushes the captured event trace to
    /// [`ChopimConfig::trace_path`] if one is configured; a write
    /// failure warns on stderr rather than aborting the run.
    pub fn report(&mut self) -> SimReport {
        if !self.finalized {
            for shard in &mut self.shards {
                shard.channel.stats.finalize(self.now);
            }
            self.finalized = true;
            if let Err(e) = self.flush_trace_once() {
                eprintln!(
                    "[trace] failed to write {:?}: {e}",
                    self.cfg
                        .trace_path
                        .as_deref()
                        .unwrap_or(std::path::Path::new("?"))
                );
            }
        }
        let dram = self.mem_stats();
        let per_core_ipc: Vec<f64> = self.cores.iter().map(|c| c.ipc()).collect();
        let host_ipc = per_core_ipc.iter().sum();
        let seconds = self.now as f64 / 1.2e9;
        let nda_bytes = (dram.reads_nda + dram.writes_nda) * 64;
        let host_bytes = (dram.reads_host + dram.writes_host) * 64;
        let core_bytes: u64 = self
            .cores
            .iter()
            .map(|c| (c.reads_sent() + c.writes_sent()) * 64)
            .sum();

        // Idealized NDA bandwidth: all rank cycles the host leaves idle.
        let mut ideal_cycles = 0u64;
        let mut idle_histograms = Vec::new();
        for &(c, r) in self.runtime.nda_ranks() {
            let rs = &self.shards[c].channel.stats.ranks[r];
            ideal_cycles += self.now.saturating_sub(rs.host_data_cycles);
            idle_histograms.push(rs.idle.clone());
        }
        // Each busy data cycle moves `line_bytes / bl` bytes; utilization
        // is the cycle ratio.
        let nda_bw_utilization = if ideal_cycles == 0 {
            0.0
        } else {
            dram.nda_data_cycles as f64 / ideal_cycles as f64
        };

        let n_pes = self.cfg.dram.chips_per_rank * self.runtime.nda_ranks().len();
        let energy = energy::compute(
            &EnergyParams::default(),
            &dram,
            &self.runtime.pe_activity,
            self.now,
            self.cfg.dram.line_bytes(),
            n_pes,
        );
        let (hits, misses) = self.shards.iter().fold((0, 0), |(h, m), s| {
            (h + s.mc.row_hits(), m + s.mc.row_misses)
        });
        let (lat, nreads) = self.shards.iter().fold((0, 0), |(l, n), s| {
            (l + s.mc.read_latency_sum, n + s.mc.reads_completed)
        });
        SimReport {
            cycles: self.now,
            cpu_cycles: self.cpu_cycles,
            host_ipc,
            per_core_ipc,
            nda_bytes,
            nda_bw_gbs: if seconds > 0.0 {
                nda_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            host_bw_gbs: if seconds > 0.0 {
                host_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            core_bw_gbs: if seconds > 0.0 {
                core_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            nda_bw_utilization,
            idle_histograms,
            host_row_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            avg_read_latency: if nreads > 0 {
                lat as f64 / nreads as f64
            } else {
                0.0
            },
            dram,
            energy,
            nda_instrs_completed: self.nda_instrs_completed,
            nda_write_throttle_stalls: self
                .shards
                .iter()
                .flat_map(|s| s.ndas.iter())
                .map(|n| n.write_throttle_stalls)
                .sum(),
            faults: self.fault_report(),
            tenants: self.runtime.tenant_reports(),
        }
    }

    /// Injection counters summed over shards plus the runtime's
    /// recovery-side accounting.
    #[cold]
    fn fault_report(&self) -> FaultReport {
        let mut fr = FaultReport::default();
        for shard in &self.shards {
            shard.add_fault_counts(&mut fr);
        }
        let rc = self.runtime.recovery_counters();
        fr.instr_retries = rc.instr_retries;
        fr.instr_timeouts = rc.instr_timeouts;
        fr.ops_failed = rc.ops_failed;
        fr.ops_timed_out = rc.ops_timed_out;
        fr.ops_dep_failed = rc.ops_dep_failed;
        fr.host_fallbacks = rc.host_fallbacks;
        fr.ranks_quarantined = rc.ranks_quarantined;
        fr.max_retry_backoff = rc.max_retry_backoff;
        fr
    }

    // --- Snapshot / restore -------------------------------------------

    /// Stable fingerprint of the *semantic* configuration: every knob
    /// that shapes machine structure or simulated behavior, and none of
    /// the engine-mode knobs (`sim_threads`, `fixed_window`,
    /// `fast_forward`, `verify_fsm`, `trace_path`) — a snapshot captured
    /// under one engine mode may legitimately resume under another,
    /// since all modes produce bit-identical schedules.
    #[cold]
    fn snapshot_fingerprint(cfg: &ChopimConfig) -> u64 {
        let desc = format!(
            "dram={:016x} reserved={} policy={:?} mix={:?} profiles={:?} core={:?} seed={} \
             launch_writes={} queue_cap={} rank_partition={} pa_order={} sched={:?} page={:?} \
             packetized={} ingress={} completion={} faults={:?} retry={}/{}/{} timeout={}",
            cfg.dram.state_fingerprint(),
            cfg.reserved_banks,
            cfg.policy,
            cfg.mix,
            cfg.custom_profiles,
            cfg.core,
            cfg.seed,
            cfg.launch_writes_per_instr,
            cfg.nda_queue_cap,
            cfg.rank_partition,
            cfg.nda_pa_order_walk,
            cfg.scheduler,
            cfg.page_policy,
            cfg.packetized_latency,
            cfg.ingress_latency,
            cfg.completion_latency,
            cfg.faults,
            cfg.retry_limit,
            cfg.retry_backoff,
            cfg.retry_backoff_cap,
            cfg.effective_instr_timeout(),
        );
        fnv1a(desc.as_bytes())
    }

    /// Capture the complete deterministic machine state as a versioned,
    /// checksummed binary image (`docs/SNAPSHOT_FORMAT.md`). Resuming
    /// the image with [`resume`](Self::resume) — under *any* engine mode
    /// — continues bit-identically to a run that never snapshotted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ActiveStreams`] if any op stream was spawned
    /// (stream generators are opaque closures and cannot be captured);
    /// [`SnapshotError::Finalized`] after [`report`](Self::report) has
    /// finalized the statistics.
    #[cold]
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        if !self.streams.is_empty() {
            return Err(SnapshotError::ActiveStreams);
        }
        if self.finalized {
            return Err(SnapshotError::Finalized);
        }
        let mut w = ByteWriter::new();
        w.u64(Self::snapshot_fingerprint(&self.cfg));
        w.varint(self.now);
        w.u32(self.cpu_accum);
        w.varint(self.cpu_cycles);
        w.varint(self.llc_outstanding as u64);
        w.bool(self.fills.is_dirty());
        w.varint(self.fills.live().len() as u64);
        for &(t, core, req) in self.fills.live() {
            w.varint(t);
            w.varint(core as u64);
            w.varint(req);
        }
        w.bool(self.completions.is_dirty());
        w.varint(self.completions.live().len() as u64);
        for &(t, id, nda, tag, status) in self.completions.live() {
            w.varint(t);
            w.varint(id);
            w.varint(nda as u64);
            encode_handle(tag, &mut w);
            w.u8(status);
        }
        for q in &self.egress {
            w.varint(q.len() as u64);
            for (t, item) in q {
                w.varint(*t);
                item.encode(&mut w);
            }
        }
        for &v in &self.ingress_seen {
            w.varint(v as u64);
        }
        for &v in &self.ingress_unseen {
            w.varint(v as u64);
        }
        w.varint(self.launch_stage.len() as u64);
        for pl in &self.launch_stage {
            w.varint(pl.nda_idx as u64);
            encode_instr(&pl.instr, &mut w);
            encode_handle(pl.op, &mut w);
            w.varint(pl.chunk as u64);
        }
        w.varint(self.inflight.len() as u64);
        for rec in &self.inflight {
            w.varint(rec.deadline);
            w.varint(rec.id);
            w.varint(rec.launch.nda_idx as u64);
            encode_instr(&rec.launch.instr, &mut w);
            encode_handle(rec.launch.op, &mut w);
            w.varint(rec.launch.chunk as u64);
        }
        for &c in &self.nda_credit {
            w.varint(c as u64);
        }
        w.varint(self.next_launch);
        w.varint(self.nda_instrs_completed);
        w.varint(self.ticks_executed);
        w.varint(self.cycles_skipped);
        w.varint(self.cores.len() as u64);
        for core in &self.cores {
            encode_core(&core.export_state(), &mut w);
        }
        self.runtime.encode_state(&mut w);
        for shard in &self.shards {
            shard.encode_state(&mut w);
        }
        Ok(write_framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, w.finish()))
    }

    /// Rebuild a machine from a [`snapshot`](Self::snapshot) image.
    ///
    /// `cfg` must agree with the capture's configuration on every
    /// semantic knob (checked via the embedded fingerprint); the
    /// engine-mode knobs (`sim_threads`, `fixed_window`, `fast_forward`,
    /// `verify_fsm`, `trace_path`) are free — resuming one image under
    /// serial, pooled, and fixed-window engines produces bit-identical
    /// [`SimReport`]s.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`]: framing damage ([`CodecError::BadMagic`],
    /// [`CodecError::BadVersion`], [`CodecError::BadChecksum`],
    /// [`CodecError::Truncated`]), a configuration that does not match
    /// the capture ([`CodecError::ConfigMismatch`]), or a payload whose
    /// fields fail validation ([`CodecError::Corrupt`]).
    #[cold]
    pub fn resume(cfg: ChopimConfig, bytes: &[u8]) -> Result<Self, CodecError> {
        let payload = read_framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, bytes)?;
        let mut sys = Self::new(cfg);
        let mut r = ByteReader::new(payload);
        if r.u64()? != Self::snapshot_fingerprint(&sys.cfg) {
            return Err(CodecError::ConfigMismatch);
        }
        sys.now = r.varint()?;
        sys.cpu_accum = r.u32()?;
        sys.cpu_cycles = r.varint()?;
        sys.llc_outstanding = r.varint_usize()?;
        let dirty = r.bool()?;
        let n = r.varint_usize()?;
        let mut fills = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let t = r.varint()?;
            let core = r.varint_usize()?;
            let req = r.varint()?;
            if core >= sys.cores.len() {
                return Err(CodecError::Corrupt("fill core index out of range"));
            }
            fills.push((t, core, req));
        }
        sys.fills = MergeQueue::restore(fills, dirty);
        let dirty = r.bool()?;
        let n = r.varint_usize()?;
        let mut comps = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let t = r.varint()?;
            let id = r.varint()?;
            let nda = r.varint_usize()?;
            let tag = decode_handle(&mut r)?;
            let status = r.u8()?;
            if nda >= sys.nda_local.len() {
                return Err(CodecError::Corrupt("completion NDA index out of range"));
            }
            if status > COMPLETION_RANK_DEAD {
                return Err(CodecError::Corrupt("completion status"));
            }
            comps.push((t, id, nda, tag, status));
        }
        sys.completions = MergeQueue::restore(comps, dirty);
        for ch in 0..sys.egress.len() {
            let n_ndas = sys.shards[ch].ndas.len();
            let n = r.varint_usize()?;
            let mut q = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                let t = r.varint()?;
                q.push((t, ShardInbound::decode(&mut r, n_ndas)?));
            }
            sys.egress[ch] = q;
        }
        for v in &mut sys.ingress_seen {
            *v = r.varint_usize()?;
        }
        for v in &mut sys.ingress_unseen {
            *v = r.varint_usize()?;
        }
        let n = r.varint_usize()?;
        sys.launch_stage.clear();
        for _ in 0..n {
            let nda_idx = r.varint_usize()?;
            if nda_idx >= sys.nda_local.len() {
                return Err(CodecError::Corrupt("staged launch NDA index out of range"));
            }
            let instr = decode_instr(&mut r)?;
            let op = decode_handle(&mut r)?;
            let chunk = r.varint_usize()?;
            sys.launch_stage.push_back(PendingLaunch {
                nda_idx,
                instr,
                op,
                chunk,
            });
        }
        let n = r.varint_usize()?;
        sys.inflight.clear();
        let mut last_deadline = 0;
        for _ in 0..n {
            let deadline = r.varint()?;
            if deadline < last_deadline {
                return Err(CodecError::Corrupt("inflight deadlines out of order"));
            }
            last_deadline = deadline;
            let id = r.varint()?;
            let nda_idx = r.varint_usize()?;
            if nda_idx >= sys.nda_local.len() {
                return Err(CodecError::Corrupt("inflight NDA index out of range"));
            }
            let instr = decode_instr(&mut r)?;
            let op = decode_handle(&mut r)?;
            let chunk = r.varint_usize()?;
            sys.inflight.push_back(InflightRec {
                deadline,
                id,
                launch: PendingLaunch {
                    nda_idx,
                    instr,
                    op,
                    chunk,
                },
            });
        }
        for c in &mut sys.nda_credit {
            *c = r.varint_usize()?;
            if *c > sys.cfg.nda_queue_cap {
                return Err(CodecError::Corrupt("NDA launch credit over capacity"));
            }
        }
        sys.next_launch = r.varint()?;
        sys.nda_instrs_completed = r.varint()?;
        sys.ticks_executed = r.varint()?;
        sys.cycles_skipped = r.varint()?;
        if r.varint_usize()? != sys.cores.len() {
            return Err(CodecError::ConfigMismatch);
        }
        for core in &mut sys.cores {
            let img = decode_core(&mut r)?;
            core.import_state(&img);
        }
        sys.runtime.decode_state(&mut r)?;
        for shard in &mut sys.shards {
            shard.decode_state(&mut r)?;
        }
        if !r.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        // Handles outside the runtime were decoded before the runtime's
        // own session table; validate them against it now.
        let rt = &sys.runtime;
        let ok = |h: OpHandle| rt.handle_in_range(h);
        if !sys
            .completions
            .live()
            .iter()
            .all(|&(_, _, _, tag, _)| ok(tag))
            || !sys.launch_stage.iter().all(|pl| ok(pl.op))
            || !sys.inflight.iter().all(|rec| ok(rec.launch.op))
            || !sys.egress.iter().flatten().all(|(_, item)| match item {
                ShardInbound::Launch { tag, .. } => ok(*tag),
                ShardInbound::Tx(_) => true,
            })
            || !sys.shards.iter().all(|s| s.handles_ok(&ok))
        {
            return Err(CodecError::Corrupt("op handle out of range"));
        }
        Ok(sys)
    }

    // --- Event-trace capture ------------------------------------------

    /// Start recording the event trace: every DRAM command on every
    /// channel, every NDA launch delivery, and every instruction
    /// completion. Implied at construction when
    /// [`ChopimConfig::trace_path`] is set. Capture only appends to
    /// side logs — it never changes simulated behavior.
    #[cold]
    pub fn enable_trace_capture(&mut self) {
        for shard in &mut self.shards {
            shard.set_record_events(true);
            shard.channel.enable_trace();
        }
    }

    /// Drain the captured events, merged over channels into
    /// non-decreasing cycle order (ties keep channel order, commands
    /// before launches before completions — per-channel command order is
    /// application order, which replay re-validates).
    #[cold]
    pub fn trace_events(&mut self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for (c, shard) in self.shards.iter_mut().enumerate() {
            let channel = c as u32;
            events.extend(
                shard
                    .channel
                    .take_trace()
                    .into_iter()
                    .map(|(cycle, cmd, issuer)| TraceEvent::Cmd {
                        cycle,
                        channel,
                        cmd,
                        issuer,
                    }),
            );
            events.extend(std::mem::take(&mut shard.launch_log).into_iter().map(
                |(cycle, nda_local, instr_id)| TraceEvent::Launch {
                    cycle,
                    channel,
                    nda_local,
                    instr_id,
                },
            ));
            events.extend(
                std::mem::take(&mut shard.completion_log)
                    .into_iter()
                    .map(|(cycle, instr_id)| TraceEvent::Completion { cycle, instr_id }),
            );
        }
        events.sort_by_key(|e| e.cycle());
        events
    }

    /// Drain the captured events and encode them in the
    /// `docs/TRACE_FORMAT.md` binary format (replayable with
    /// [`chopim_dram::trace::replay_bytes`]).
    #[cold]
    pub fn trace_bytes(&mut self) -> Vec<u8> {
        let events = self.trace_events();
        encode_trace(self.cfg.dram.state_fingerprint(), self.now, &events)
    }

    /// Write the captured trace to [`ChopimConfig::trace_path`].
    /// Returns the path written, or `None` when no path is configured.
    /// Called automatically by the first [`report`](Self::report), so
    /// explicit calls are only needed to flush mid-run. Encoding drains
    /// the capture, so each call writes only events since the last one.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error.
    #[cold]
    pub fn write_trace(&mut self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.cfg.trace_path.clone() else {
            return Ok(None);
        };
        let bytes = self.trace_bytes();
        std::fs::write(&path, bytes)?;
        self.trace_flushed = true;
        Ok(Some(path))
    }

    /// [`report`](Self::report)'s auto-flush: a no-op once
    /// [`write_trace`](Self::write_trace) has run, since the drained
    /// capture would otherwise overwrite the file with an empty trace.
    #[cold]
    fn flush_trace_once(&mut self) -> std::io::Result<Option<PathBuf>> {
        if self.trace_flushed {
            return Ok(None);
        }
        self.write_trace()
    }
}

/// Snapshot container framing magic (`docs/SNAPSHOT_FORMAT.md`).
const SNAPSHOT_MAGIC: [u8; 4] = *b"CHSS";
/// Snapshot container format version. v2 added the fault plane:
/// completion status bytes, in-flight launch records, per-op recovery
/// state, and per-shard fault counters. v3 added the thousand-tenant
/// runtime: per-op submission stamps, per-session QoS class /
/// virtual-time / admission limits / job table / metering, the per-band
/// virtual clocks, pending admissions, and the finished-op feed (the
/// ready index itself is derived and rebuilt on resume).
const SNAPSHOT_VERSION: u32 = 3;

/// Why [`ChopimSystem::snapshot`] refused to capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// An op [stream](ChopimSystem::spawn_stream) was spawned. Stream
    /// generators are opaque closures and cannot be serialized; capture
    /// the snapshot before spawning streams.
    ActiveStreams,
    /// [`ChopimSystem::report`] already finalized the statistics; a
    /// finalized machine cannot resume.
    Finalized,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::ActiveStreams => {
                write!(f, "cannot snapshot a machine with spawned op streams")
            }
            SnapshotError::Finalized => {
                write!(f, "cannot snapshot after report() finalized statistics")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize an [`OooCoreState`] image (the host crate deliberately has
/// no codec dependency, so the field-by-field encoding lives here).
#[cold]
fn encode_core(s: &OooCoreState, w: &mut ByteWriter) {
    for word in s.rng {
        w.u64(word);
    }
    w.varint(s.rob.len() as u64);
    for &(is_miss, v) in &s.rob {
        w.bool(is_miss);
        w.varint(v);
    }
    w.varint(s.filled.len() as u64);
    for &id in &s.filled {
        w.varint(id);
    }
    w.varint(s.outstanding);
    w.varint(s.next_id);
    w.varint(s.until_next_miss);
    w.varint(s.stream_pos);
    w.varint(s.stream_left);
    match s.pending_wb_line {
        None => w.bool(false),
        Some(line) => {
            w.bool(true);
            w.varint(line);
        }
    }
    w.varint(s.retired);
    w.varint(s.cycles);
    w.varint(s.reads_sent);
    w.varint(s.writes_sent);
    w.varint(s.dispatch_stall_cycles);
}

/// Decode an [`OooCoreState`] image (mirrors [`encode_core`]).
#[cold]
fn decode_core(r: &mut ByteReader<'_>) -> Result<OooCoreState, CodecError> {
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.u64()?;
    }
    let n = r.varint_usize()?;
    let mut rob = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let is_miss = r.bool()?;
        let v = r.varint()?;
        rob.push((is_miss, v));
    }
    let n = r.varint_usize()?;
    let mut filled = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        filled.push(r.varint()?);
    }
    let outstanding = r.varint()?;
    let next_id = r.varint()?;
    let until_next_miss = r.varint()?;
    let stream_pos = r.varint()?;
    let stream_left = r.varint()?;
    let pending_wb_line = if r.bool()? { Some(r.varint()?) } else { None };
    Ok(OooCoreState {
        rng,
        rob,
        filled,
        outstanding,
        next_id,
        until_next_miss,
        stream_pos,
        stream_left,
        pending_wb_line,
        retired: r.varint()?,
        cycles: r.varint()?,
        reads_sent: r.varint()?,
        writes_sent: r.varint()?,
        dispatch_stall_cycles: r.varint()?,
    })
}
